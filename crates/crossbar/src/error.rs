//! Error type for crossbar construction and reads.

use std::fmt;

/// Errors from mapping games onto crossbars or driving reads.
#[derive(Debug, Clone, PartialEq)]
pub enum CrossbarError {
    /// A payoff element does not fit in the configured `t` cells.
    ElementOverflow {
        /// The offending (already offset/scaled) element value.
        value: u32,
        /// Cells available per element.
        cells_per_element: u32,
    },
    /// Payoffs are not integers at the configured scale.
    NonIntegerPayoff {
        /// Row of the offending element.
        row: usize,
        /// Column of the offending element.
        col: usize,
        /// The scaled value that failed to round cleanly.
        scaled: f64,
    },
    /// Strategy activation counts do not match the crossbar geometry.
    ActivationMismatch(String),
    /// An invalid configuration parameter.
    InvalidConfig(String),
    /// An underlying game-side error.
    Game(cnash_game::GameError),
}

impl fmt::Display for CrossbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossbarError::ElementOverflow {
                value,
                cells_per_element,
            } => write!(
                f,
                "payoff element {value} exceeds {cells_per_element} unary cells"
            ),
            CrossbarError::NonIntegerPayoff { row, col, scaled } => write!(
                f,
                "payoff at ({row}, {col}) is not integer at this scale (got {scaled})"
            ),
            CrossbarError::ActivationMismatch(msg) => write!(f, "activation mismatch: {msg}"),
            CrossbarError::InvalidConfig(msg) => write!(f, "invalid crossbar config: {msg}"),
            CrossbarError::Game(e) => write!(f, "game error: {e}"),
        }
    }
}

impl std::error::Error for CrossbarError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CrossbarError::Game(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cnash_game::GameError> for CrossbarError {
    fn from(e: cnash_game::GameError) -> Self {
        CrossbarError::Game(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CrossbarError::ElementOverflow {
            value: 9,
            cells_per_element: 4,
        };
        assert!(e.to_string().contains("exceeds 4"));
        let e = CrossbarError::InvalidConfig("zero intervals".into());
        assert!(e.to_string().contains("zero intervals"));
    }

    #[test]
    fn from_game_error_keeps_source() {
        use std::error::Error;
        let e = CrossbarError::from(cnash_game::GameError::EmptyActionSet);
        assert!(e.source().is_some());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CrossbarError>();
    }
}
