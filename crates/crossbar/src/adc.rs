//! Sense-amplifier / ADC model.
//!
//! Source-line currents are digitised before the SA logic combines them
//! (paper Fig. 3b/c: `ADC` + `S&A` blocks). A uniform quantizer with a
//! configurable bit width models the conversion; the ideal variant passes
//! currents through unchanged (used for ablations).

use crate::error::CrossbarError;

/// Analog-to-digital conversion applied to every crossbar read.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum AdcSpec {
    /// Infinite-precision conversion (ablation baseline).
    #[default]
    Ideal,
    /// Uniform mid-tread quantizer with `bits` resolution over
    /// `[0, full_scale]`; inputs are clamped to the range.
    Uniform {
        /// Resolution in bits (1..=24).
        bits: u32,
        /// Full-scale input current (A).
        full_scale: f64,
    },
}

impl AdcSpec {
    /// Creates a uniform quantizer, validating parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] for `bits` outside
    /// `1..=24` or a non-positive full scale.
    pub fn uniform(bits: u32, full_scale: f64) -> Result<Self, CrossbarError> {
        if !(1..=24).contains(&bits) {
            return Err(CrossbarError::InvalidConfig(format!(
                "ADC bits {bits} outside 1..=24"
            )));
        }
        if full_scale <= 0.0 || !full_scale.is_finite() {
            return Err(CrossbarError::InvalidConfig(
                "ADC full scale must be positive".into(),
            ));
        }
        Ok(AdcSpec::Uniform { bits, full_scale })
    }

    /// Converts an input current to its quantized representation.
    pub fn convert(&self, current: f64) -> f64 {
        match *self {
            AdcSpec::Ideal => current,
            AdcSpec::Uniform { bits, full_scale } => {
                let levels = (1u64 << bits) as f64 - 1.0;
                let clamped = current.clamp(0.0, full_scale);
                let code = (clamped / full_scale * levels).round();
                code / levels * full_scale
            }
        }
    }

    /// Least-significant-bit step size (0 for the ideal ADC).
    pub fn lsb(&self) -> f64 {
        match *self {
            AdcSpec::Ideal => 0.0,
            AdcSpec::Uniform { bits, full_scale } => full_scale / ((1u64 << bits) as f64 - 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_passthrough() {
        let a = AdcSpec::Ideal;
        assert_eq!(a.convert(1.234e-6), 1.234e-6);
        assert_eq!(a.lsb(), 0.0);
    }

    #[test]
    fn uniform_quantizes_within_half_lsb() {
        let a = AdcSpec::uniform(8, 1e-3).unwrap();
        let lsb = a.lsb();
        for k in 0..100 {
            let x = k as f64 * 1e-5 + 3.3e-7;
            let y = a.convert(x);
            assert!((x - y).abs() <= lsb / 2.0 + 1e-18, "x={x}, y={y}");
        }
    }

    #[test]
    fn clamps_out_of_range() {
        let a = AdcSpec::uniform(4, 1.0).unwrap();
        assert_eq!(a.convert(2.0), 1.0);
        assert_eq!(a.convert(-0.5), 0.0);
    }

    #[test]
    fn endpoints_are_exact() {
        let a = AdcSpec::uniform(6, 1.0).unwrap();
        assert_eq!(a.convert(0.0), 0.0);
        assert_eq!(a.convert(1.0), 1.0);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(AdcSpec::uniform(0, 1.0).is_err());
        assert!(AdcSpec::uniform(25, 1.0).is_err());
        assert!(AdcSpec::uniform(8, 0.0).is_err());
        assert!(AdcSpec::uniform(8, f64::NAN).is_err());
    }

    #[test]
    fn more_bits_less_error() {
        let x = 0.123456;
        let e4 = (AdcSpec::uniform(4, 1.0).unwrap().convert(x) - x).abs();
        let e12 = (AdcSpec::uniform(12, 1.0).unwrap().convert(x) - x).abs();
        assert!(e12 < e4);
    }
}
