//! Lossless affine payoff normalisation.
//!
//! Crossbar cells store non-negative unary integers, but game payoffs may
//! be negative or fractional. We store `M' = round(s · (M − c·J))` with
//! `c = min(M)` and a user-chosen integer scale `s`, and remember `(c, s)`.
//!
//! This is *lossless for the MAX-QUBO objective* (unlike the S-QUBO slack
//! transformation): for strategies on the simplex,
//! `max(M'q) = s(max(Mq) − c)` and `pᵀM'q = s(pᵀMq − c)`, so the regret
//! `max(Mq) − pᵀMq` simply scales by `s` — the offset cancels exactly.
//! The property-based tests of `cnash-game` verify this invariance.

use crate::error::CrossbarError;
use cnash_game::Matrix;

/// A payoff matrix offset/scaled to non-negative integers for unary
/// storage, together with the affine bookkeeping to undo it.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedPayoffs {
    rows: usize,
    cols: usize,
    entries: Vec<u32>,
    offset: f64,
    scale: f64,
}

impl QuantizedPayoffs {
    /// Quantizes `m` with offset `min(min(m), 0)` and multiplicative
    /// `scale`.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::NonIntegerPayoff`] if any scaled entry is
    /// farther than `1e-6` from an integer, and
    /// [`CrossbarError::InvalidConfig`] if `scale <= 0`.
    pub fn from_matrix(m: &Matrix, scale: f64) -> Result<Self, CrossbarError> {
        if scale <= 0.0 {
            return Err(CrossbarError::InvalidConfig(
                "scale must be positive".into(),
            ));
        }
        // Only shift when negative payoffs exist: non-negative matrices are
        // stored verbatim (matching the paper's examples).
        let offset = m.min().min(0.0);
        let mut entries = Vec::with_capacity(m.rows() * m.cols());
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                let scaled = (m[(i, j)] - offset) * scale;
                let rounded = scaled.round();
                if (scaled - rounded).abs() > 1e-6 {
                    return Err(CrossbarError::NonIntegerPayoff {
                        row: i,
                        col: j,
                        scaled,
                    });
                }
                entries.push(rounded as u32);
            }
        }
        Ok(Self {
            rows: m.rows(),
            cols: m.cols(),
            entries,
            offset,
            scale,
        })
    }

    /// Quantizes with unit scale (integer payoff matrices).
    ///
    /// # Errors
    ///
    /// See [`QuantizedPayoffs::from_matrix`].
    pub fn from_integer_matrix(m: &Matrix) -> Result<Self, CrossbarError> {
        Self::from_matrix(m, 1.0)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored non-negative integer entry.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn entry(&self, i: usize, j: usize) -> u32 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.entries[i * self.cols + j]
    }

    /// The subtracted offset `c = min(M)`.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// The multiplicative scale `s`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Largest stored element — determines the minimum `t` (cells per
    /// element) of the mapping.
    pub fn max_element(&self) -> u32 {
        self.entries.iter().copied().max().unwrap_or(0)
    }

    /// Converts a stored-unit value back to original payoff units:
    /// `v / s + c`.
    pub fn to_payoff(&self, stored: f64) -> f64 {
        stored / self.scale + self.offset
    }

    /// Converts a stored-unit *difference* (e.g. a regret) back to payoff
    /// units: the offset cancels, only the scale divides out.
    pub fn to_payoff_delta(&self, stored_delta: f64) -> f64 {
        stored_delta / self.scale
    }

    /// Reconstructs the original payoff matrix (up to rounding).
    pub fn reconstruct(&self) -> Matrix {
        let data: Vec<f64> = self
            .entries
            .iter()
            .map(|&e| self.to_payoff(e as f64))
            .collect();
        Matrix::new(self.rows, self.cols, data).expect("stored entries are finite")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnash_game::games;

    #[test]
    fn integer_matrix_round_trip() {
        let m = games::battle_of_the_sexes().row_payoffs().clone();
        let q = QuantizedPayoffs::from_integer_matrix(&m).unwrap();
        assert_eq!(q.offset(), 0.0);
        assert_eq!(q.max_element(), 2);
        assert!(q.reconstruct().max_abs_diff(&m) < 1e-9);
    }

    #[test]
    fn negative_payoffs_are_offset() {
        let m = games::hawk_dove().row_payoffs().clone(); // min = -1
        let q = QuantizedPayoffs::from_integer_matrix(&m).unwrap();
        assert_eq!(q.offset(), -1.0);
        assert_eq!(q.entry(0, 0), 0); // -1 - (-1)
        assert_eq!(q.entry(0, 1), 3); // 2 - (-1)
        assert!(q.reconstruct().max_abs_diff(&m) < 1e-9);
    }

    #[test]
    fn fractional_payoffs_need_scale() {
        let m = Matrix::from_rows(&[vec![0.5, 1.0], vec![1.5, 0.0]]).unwrap();
        assert!(matches!(
            QuantizedPayoffs::from_integer_matrix(&m),
            Err(CrossbarError::NonIntegerPayoff { .. })
        ));
        let q = QuantizedPayoffs::from_matrix(&m, 2.0).unwrap();
        assert_eq!(q.max_element(), 3);
        assert!(q.reconstruct().max_abs_diff(&m) < 1e-9);
    }

    #[test]
    fn rejects_nonpositive_scale() {
        let m = Matrix::identity(2).unwrap();
        assert!(QuantizedPayoffs::from_matrix(&m, 0.0).is_err());
        assert!(QuantizedPayoffs::from_matrix(&m, -1.0).is_err());
    }

    #[test]
    fn payoff_delta_ignores_offset() {
        let m = games::hawk_dove().row_payoffs().clone();
        let q = QuantizedPayoffs::from_matrix(&m, 2.0).unwrap();
        // A stored-unit difference of 4 is a payoff difference of 2.
        assert_eq!(q.to_payoff_delta(4.0), 2.0);
    }

    #[test]
    fn all_benchmarks_quantize_at_unit_scale() {
        for b in games::paper_benchmarks() {
            let qm = QuantizedPayoffs::from_integer_matrix(b.game.row_payoffs());
            let qn = QuantizedPayoffs::from_integer_matrix(b.game.col_payoffs());
            assert!(qm.is_ok() && qn.is_ok(), "{}", b.game.name());
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn entry_bounds_checked() {
        let m = Matrix::identity(2).unwrap();
        let q = QuantizedPayoffs::from_integer_matrix(&m).unwrap();
        let _ = q.entry(2, 0);
    }
}
