//! Binary-weighted payoff mapping (extension / design alternative).
//!
//! The paper stores payoff elements in **unary**: `t = max(M)` cells per
//! element, every cell equal. An alternative is **bit-slicing**: store
//! `k = ⌈log₂(max+1)⌉` bit planes and weight each plane's current by its
//! power of two at the sense amplifier. Cell count per element drops from
//! `max(M)` to `log₂(max(M))`, at the price of `k` sequential (or `k`
//! parallel, area-matched) reads and amplified sensitivity on the MSB
//! plane.
//!
//! This module implements the bit-sliced read on top of the same
//! 1FeFET1R cell model so the two mappings can be compared
//! apples-to-apples; its tests quantify the area/noise trade.

use crate::error::CrossbarError;
use crate::mapping::MappingSpec;
use crate::offset::QuantizedPayoffs;
use cnash_device::cell::CellParams;
use cnash_device::variability::VariabilityModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A bit-sliced crossbar: one plane of cells per payoff bit.
#[derive(Debug, Clone)]
pub struct BitSlicedCrossbar {
    payoffs: QuantizedPayoffs,
    intervals: u32,
    bits: u32,
    /// Per-plane per-block `(I+1)×(I+1)` prefix tables, plane-major then
    /// element-major (same layout trick as the unary array, one cell per
    /// (row, column-group) position per plane).
    prefix: Vec<f64>,
    nominal_on: f64,
}

impl BitSlicedCrossbar {
    /// Builds the bit-sliced array.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] for zero intervals.
    pub fn build(
        payoffs: QuantizedPayoffs,
        intervals: u32,
        cell_params: CellParams,
        variability: VariabilityModel,
        seed: u64,
    ) -> Result<Self, CrossbarError> {
        if intervals == 0 {
            return Err(CrossbarError::InvalidConfig("zero intervals".into()));
        }
        let max = payoffs.max_element();
        let bits = (u32::BITS - max.leading_zeros()).max(1);
        let (n, m) = (payoffs.rows(), payoffs.cols());
        let i = intervals as usize;
        let side = i + 1;
        let nominal_on = crate::array::unit_current(&cell_params);

        let mut rng = StdRng::seed_from_u64(seed);
        let mut prefix = vec![0.0; bits as usize * n * m * side * side];
        for plane in 0..bits as usize {
            for ei in 0..n {
                for ej in 0..m {
                    let bit_set = payoffs.entry(ei, ej) & (1 << plane) != 0;
                    let base = ((plane * n + ei) * m + ej) * side * side;
                    for r in 1..=i {
                        for g in 1..=i {
                            let cell = cnash_device::cell::OneFeFetOneR::new(
                                cnash_device::fefet::FeFetState::from_bit(bit_set),
                                cell_params,
                                variability.sample(&mut rng),
                            );
                            let block = cell.output_current(true, true);
                            prefix[base + r * side + g] = block
                                + prefix[base + (r - 1) * side + g]
                                + prefix[base + r * side + (g - 1)]
                                - prefix[base + (r - 1) * side + (g - 1)];
                        }
                    }
                }
            }
        }
        Ok(Self {
            payoffs,
            intervals,
            bits,
            prefix,
            nominal_on,
        })
    }

    /// Bit planes used.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Physical cells of this mapping (`k` planes × `I²` per element).
    pub fn cell_count(&self) -> usize {
        let i = self.intervals as usize;
        self.bits as usize * self.payoffs.rows() * self.payoffs.cols() * i * i
    }

    /// Physical cells the unary mapping needs for the same payoffs.
    pub fn unary_cell_count(&self) -> usize {
        let i = self.intervals as usize;
        let spec =
            MappingSpec::new(self.intervals, self.payoffs.max_element().max(1)).expect("valid");
        let (r, c) = spec.physical_size(self.payoffs.rows(), self.payoffs.cols());
        debug_assert_eq!(r, i * self.payoffs.rows());
        r * c
    }

    fn prefix_at(&self, plane: usize, ei: usize, ej: usize, r: u32, g: u32) -> f64 {
        let side = self.intervals as usize + 1;
        let base = ((plane * self.payoffs.rows() + ei) * self.payoffs.cols() + ej) * side * side;
        self.prefix[base + r as usize * side + g as usize]
    }

    /// Bit-sliced VMV read: each plane is read separately and its current
    /// weighted by `2^plane` digitally.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ActivationMismatch`] on bad counts.
    pub fn read_vmv(&self, p: &[u32], q: &[u32]) -> Result<f64, CrossbarError> {
        if p.len() != self.payoffs.rows() || q.len() != self.payoffs.cols() {
            return Err(CrossbarError::ActivationMismatch(
                "activation lengths do not match the matrix".into(),
            ));
        }
        if p.iter().chain(q).any(|&c| c > self.intervals) {
            return Err(CrossbarError::ActivationMismatch(
                "activation exceeds interval count".into(),
            ));
        }
        let mut weighted = 0.0;
        for plane in 0..self.bits as usize {
            let mut plane_current = 0.0;
            for (ei, &pc) in p.iter().enumerate() {
                if pc == 0 {
                    continue;
                }
                for (ej, &qc) in q.iter().enumerate() {
                    plane_current += self.prefix_at(plane, ei, ej, pc, qc);
                }
            }
            weighted += plane_current * (1u64 << plane) as f64;
        }
        Ok(weighted)
    }

    /// Converts a weighted bit-sliced current to stored payoff units.
    pub fn current_to_value(&self, current: f64) -> f64 {
        let i2 = self.intervals as f64 * self.intervals as f64;
        current / (i2 * self.nominal_on)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnash_game::games;

    fn build(intervals: u32, variability: VariabilityModel, seed: u64) -> BitSlicedCrossbar {
        let g = games::modified_prisoners_dilemma();
        let q = QuantizedPayoffs::from_integer_matrix(g.row_payoffs()).expect("integer");
        BitSlicedCrossbar::build(q, intervals, CellParams::default(), variability, seed)
            .expect("builds")
    }

    #[test]
    fn ideal_bit_sliced_read_is_exact() {
        let g = games::modified_prisoners_dilemma();
        let x = build(6, VariabilityModel::none(), 0);
        let p = [0u32, 0, 0, 0, 3, 3, 0, 0];
        let q = [0u32, 0, 0, 0, 0, 6, 0, 0];
        let val = x.current_to_value(x.read_vmv(&p, &q).expect("read"));
        let pv: Vec<f64> = p.iter().map(|&c| c as f64 / 6.0).collect();
        let qv: Vec<f64> = q.iter().map(|&c| c as f64 / 6.0).collect();
        let exact = g.row_payoffs().bilinear(&pv, &qv).expect("shapes");
        assert!((val - exact).abs() < 1e-3, "{val} vs {exact}");
    }

    #[test]
    fn cell_savings_vs_unary() {
        // MPD max element 5 -> unary t = 5 cells, binary k = 3 planes.
        let x = build(12, VariabilityModel::none(), 0);
        assert_eq!(x.bits(), 3);
        assert_eq!(x.unary_cell_count(), x.cell_count() / 3 * 5);
        assert!(x.cell_count() < x.unary_cell_count());
    }

    #[test]
    fn msb_amplifies_noise_versus_unary() {
        // The binary mapping multiplies the MSB plane's per-cell noise by
        // 2^(k-1); at identical device variability its read error should
        // exceed the unary mapping's on average.
        use crate::array::Crossbar;
        let g = games::modified_prisoners_dilemma();
        let qp = QuantizedPayoffs::from_integer_matrix(g.row_payoffs()).expect("integer");
        let spec = MappingSpec::new(6, qp.max_element()).expect("valid");
        let p = [0u32, 0, 0, 0, 2, 2, 1, 1];
        let q = [0u32, 0, 0, 0, 3, 1, 1, 1];
        let pv: Vec<f64> = p.iter().map(|&c| c as f64 / 6.0).collect();
        let qv: Vec<f64> = q.iter().map(|&c| c as f64 / 6.0).collect();
        let exact = g.row_payoffs().bilinear(&pv, &qv).expect("shapes");

        let mut unary_err = 0.0;
        let mut binary_err = 0.0;
        let trials = 20;
        for seed in 0..trials {
            let u = Crossbar::build(
                qp.clone(),
                spec,
                CellParams::default(),
                VariabilityModel::paper(),
                seed,
            )
            .expect("builds");
            unary_err += (u.current_to_value(u.read_vmv(&p, &q).expect("read")) - exact).abs();
            let b = build(6, VariabilityModel::paper(), seed);
            binary_err += (b.current_to_value(b.read_vmv(&p, &q).expect("read")) - exact).abs();
        }
        assert!(
            binary_err > unary_err,
            "binary {binary_err} should be noisier than unary {unary_err}"
        );
    }

    #[test]
    fn rejects_bad_activations() {
        let x = build(6, VariabilityModel::none(), 0);
        assert!(x.read_vmv(&[1, 2], &[0; 8]).is_err());
        assert!(x.read_vmv(&[9; 8], &[0; 8]).is_err());
    }
}
