//! Incremental bi-crossbar evaluation of the MAX-QUBO objective.
//!
//! The full two-phase evaluation ([`BiCrossbar::nash_gap`] /
//! `cnash-core`'s solver pipeline) performs `O(n·m)` prefix lookups per
//! SA iteration, although Algorithm 1 only ever moves a *single* `1/I`
//! probability unit between two actions of one player. A unit move
//! touches exactly two activation counts, so of the `n·m` per-block
//! currents feeding each read:
//!
//! * a **column-player** move changes two leaves in every Phase-1 row sum
//!   of the `M` array and `2n` leaves of each Phase-2 sum, leaving the
//!   `Nᵀ` Phase-1 side untouched;
//! * a **row-player** move is the mirror image.
//!
//! [`DeltaBiCrossbar`] caches every per-data-line accumulated current in
//! [`PairwiseSum`] reduction trees and updates only the touched leaves —
//! `O((n+m)·log(nm))` per proposal instead of `O(n·m)`. Because the trees
//! are fixed-shape pairwise reductions, the incrementally maintained
//! energy is **bit-identical** to rebuilding the evaluator from scratch
//! at the same state (the crate's property tests pin this), so the fast
//! path is a drop-in replacement, not an approximation.
//!
//! The Phase-1 maxima are pluggable through [`PhaseOneMax`]: this crate
//! ships the exact [`ExactMax`] (ablation reference); `cnash-core`
//! routes them through its WTA-tree model.

use crate::adc::AdcSpec;
use crate::bicrossbar::BiCrossbar;
use crate::error::CrossbarError;
use cnash_anneal::delta::{DeltaEnergy, PairwiseSum};
use cnash_anneal::moves::{GridStrategyPair, StrategyMove};
use rand::rngs::StdRng;

/// Reduction of the Phase-1 per-action readings (ADC-quantized
/// source-line currents) to the `α`/`β` maxima of Eq. 9. The reduction
/// happens in the current domain — where the analog WTA trees physically
/// operate — and the evaluator scales the winner to payoff units.
/// Implementations must be pure functions of the input slice.
pub trait PhaseOneMax {
    /// `α`-side reduction of the row player's Phase-1 currents (`Mq`).
    fn max_row(&self, reads: &[f64]) -> f64;
    /// `β`-side reduction of the column player's Phase-1 currents
    /// (`Nᵀp`).
    fn max_col(&self, reads: &[f64]) -> f64;
}

/// Exact maxima (no WTA non-ideality) — the ablation reference used by
/// [`BiCrossbar::nash_gap`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactMax;

impl PhaseOneMax for ExactMax {
    fn max_row(&self, reads: &[f64]) -> f64 {
        reads.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    fn max_col(&self, reads: &[f64]) -> f64 {
        reads.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Precomputed multiply-form ADC quantizer: [`AdcSpec::convert`] divides
/// by the full scale and level count on every conversion, which at one
/// conversion per action per proposal makes `fdiv` latency a measurable
/// slice of the hot path. The reciprocal constants are fixed per
/// evaluator, so quantization becomes two multiplies and a round.
#[derive(Debug, Clone, Copy)]
enum AdcQuant {
    Ideal,
    Uniform {
        to_code: f64,
        from_code: f64,
        full_scale: f64,
    },
}

impl AdcQuant {
    fn from_spec(spec: &AdcSpec) -> Self {
        match *spec {
            AdcSpec::Ideal => AdcQuant::Ideal,
            AdcSpec::Uniform { bits, full_scale } => {
                let levels = (1u64 << bits) as f64 - 1.0;
                AdcQuant::Uniform {
                    to_code: levels / full_scale,
                    from_code: full_scale / levels,
                    full_scale,
                }
            }
        }
    }

    #[inline]
    fn convert(&self, current: f64) -> f64 {
        match *self {
            AdcQuant::Ideal => current,
            AdcQuant::Uniform {
                to_code,
                from_code,
                full_scale,
            } => (current.clamp(0.0, full_scale) * to_code).round() * from_code,
        }
    }
}

/// Undo log of one pending proposal.
#[derive(Debug, Clone, Default)]
struct Undo {
    /// `(tree index, leaf, old value)` for the changed Phase-1 side.
    phase1: Vec<(usize, usize, f64)>,
    /// `(leaf, old value)` in the `M` Phase-2 tree.
    vmv_m: Vec<(usize, f64)>,
    /// `(leaf, old value)` in the `Nᵀ` Phase-2 tree.
    vmv_nt: Vec<(usize, f64)>,
    /// Pre-proposal quantized Phase-1 currents of the changed side.
    old_reads: Vec<f64>,
    old_alpha: f64,
    old_beta: f64,
    old_energy: f64,
}

/// Incremental evaluator of the bi-crossbar MAX-QUBO energy at a grid
/// strategy state.
///
/// Implements [`DeltaEnergy`], so
/// [`cnash_anneal::delta::simulated_annealing_delta`] can drive it
/// directly.
#[derive(Debug, Clone)]
pub struct DeltaBiCrossbar<'x, M: PhaseOneMax = ExactMax> {
    hw: &'x BiCrossbar,
    max: M,
    state: GridStrategyPair,
    /// Phase-1 `M` row sums: tree `i` holds `prefix_m(i, j, I, q_j)` over
    /// `j`.
    row_mv: Vec<PairwiseSum>,
    /// Phase-1 `Nᵀ` row sums: tree `j` holds `prefix_nt(j, i, I, p_i)`
    /// over `i`.
    col_mv: Vec<PairwiseSum>,
    /// Phase-2 `M` sum: leaf `i·m + j` holds `prefix_m(i, j, p_i, q_j)`.
    vmv_m: PairwiseSum,
    /// Phase-2 `Nᵀ` sum: leaf `j·n + i` holds `prefix_nt(j, i, q_j, p_i)`.
    vmv_nt: PairwiseSum,
    /// ADC-quantized Phase-1 currents per action, kept in sync with the
    /// trees — the inputs of the `α`/`β` reduction.
    row_reads: Vec<f64>,
    col_reads: Vec<f64>,
    /// Multiply-form quantizers of the two arrays' ADCs.
    quant_m: AdcQuant,
    quant_nt: AdcQuant,
    /// Current → offset-payoff-unit scale factors (`1/(I²·i_on·scale)`).
    k_m: f64,
    k_nt: f64,
    alpha: f64,
    beta: f64,
    energy: f64,
    pending: Option<StrategyMove>,
    undo: Undo,
}

impl<'x, M: PhaseOneMax> DeltaBiCrossbar<'x, M> {
    /// Builds the evaluator's caches for `state` — the one `O(n·m)` cost,
    /// amortised over the whole SA run.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ActivationMismatch`] if the state's
    /// action counts or interval count do not match the hardware.
    pub fn new(hw: &'x BiCrossbar, state: GridStrategyPair, max: M) -> Result<Self, CrossbarError> {
        let n = hw.array_m().payoffs().rows();
        let m = hw.array_m().payoffs().cols();
        if state.p_counts().len() != n || state.q_counts().len() != m {
            return Err(CrossbarError::ActivationMismatch(format!(
                "state is {}x{} for {n}x{m} hardware",
                state.p_counts().len(),
                state.q_counts().len()
            )));
        }
        if state.intervals() != hw.intervals() {
            return Err(CrossbarError::ActivationMismatch(format!(
                "state uses {} intervals, hardware {}",
                state.intervals(),
                hw.intervals()
            )));
        }
        let p = state.p_counts();
        let q = state.q_counts();

        let row_mv: Vec<PairwiseSum> = (0..n)
            .map(|i| {
                let terms: Vec<f64> = (0..m)
                    .map(|j| hw.array_m().mv_prefix_at(i, j, q[j]))
                    .collect();
                PairwiseSum::new(&terms)
            })
            .collect();
        let col_mv: Vec<PairwiseSum> = (0..m)
            .map(|j| {
                let terms: Vec<f64> = (0..n)
                    .map(|i| hw.array_nt().mv_prefix_at(j, i, p[i]))
                    .collect();
                PairwiseSum::new(&terms)
            })
            .collect();
        let vmv_m_terms: Vec<f64> = (0..n)
            .flat_map(|i| (0..m).map(move |j| (i, j)))
            .map(|(i, j)| hw.array_m().prefix_at(i, j, p[i], q[j]))
            .collect();
        let vmv_nt_terms: Vec<f64> = (0..m)
            .flat_map(|j| (0..n).map(move |i| (j, i)))
            .map(|(j, i)| hw.array_nt().prefix_at(j, i, q[j], p[i]))
            .collect();

        let spec_m = hw.array_m().spec();
        let spec_nt = hw.array_nt().spec();
        let mut eval = Self {
            hw,
            max,
            state,
            row_mv,
            col_mv,
            vmv_m: PairwiseSum::new(&vmv_m_terms),
            vmv_nt: PairwiseSum::new(&vmv_nt_terms),
            row_reads: vec![0.0; n],
            col_reads: vec![0.0; m],
            quant_m: AdcQuant::from_spec(hw.adc_m()),
            quant_nt: AdcQuant::from_spec(hw.adc_nt()),
            k_m: 1.0 / (spec_m.current_denominator(hw.array_m().nominal_on_current()) * hw.scale()),
            k_nt: 1.0
                / (spec_nt.current_denominator(hw.array_nt().nominal_on_current()) * hw.scale()),
            alpha: 0.0,
            beta: 0.0,
            energy: 0.0,
            pending: None,
            undo: Undo::default(),
        };
        for i in 0..n {
            eval.row_reads[i] = eval.quant_m.convert(eval.row_mv[i].total());
        }
        for j in 0..m {
            eval.col_reads[j] = eval.quant_nt.convert(eval.col_mv[j].total());
        }
        eval.alpha = eval.max.max_row(&eval.row_reads) * eval.k_m;
        eval.beta = eval.max.max_col(&eval.col_reads) * eval.k_nt;
        eval.energy = eval.combine();
        Ok(eval)
    }

    /// The hardware being evaluated.
    pub fn hardware(&self) -> &BiCrossbar {
        self.hw
    }

    /// ADC-quantized Phase-1 row-player currents (`Mq` reads).
    pub fn row_reads(&self) -> &[f64] {
        &self.row_reads
    }

    /// ADC-quantized Phase-1 column-player currents (`Nᵀp` reads).
    pub fn col_reads(&self) -> &[f64] {
        &self.col_reads
    }

    /// Combines the cached phase values into the Eq. 9 energy (offsets
    /// cancel, so this estimates the true Nash gap).
    fn combine(&self) -> f64 {
        let v2m = self.quant_m.convert(self.vmv_m.total()) * self.k_m;
        let v2nt = self.quant_nt.convert(self.vmv_nt.total()) * self.k_nt;
        self.alpha + self.beta - v2m - v2nt
    }

    /// Applies a pending move's tree updates for a changed row-player
    /// count at action `a`.
    ///
    /// Phase-2 leaves with the column player's count at zero are exactly
    /// `0.0` before and after the move (the prefix tables' zero row), so
    /// skipping them leaves the trees bitwise untouched — the simplex
    /// spreads at most `I` units over the actions, which caps the
    /// touched Phase-2 leaves per move at `I` regardless of game size.
    fn refresh_p_leaf(&mut self, a: usize) {
        let p = self.state.p_counts()[a];
        let n = self.row_reads.len();
        let m = self.col_reads.len();
        for j in 0..m {
            // `a` is a *column* of the Nᵀ array here: the mirror makes
            // the per-j loads contiguous.
            let leaf = self.hw.array_nt().mv_prefix_at_colmajor(j, a, p);
            let old = self.col_mv[j].update(a, leaf);
            self.undo.phase1.push((j, a, old));

            let q = self.state.q_counts()[j];
            if q == 0 {
                continue;
            }
            let vm = self.hw.array_m().prefix_at(a, j, p, q);
            let old = self.vmv_m.update(a * m + j, vm);
            self.undo.vmv_m.push((a * m + j, old));

            let vnt = self.hw.array_nt().prefix_at_colmajor(j, a, q, p);
            let old = self.vmv_nt.update(j * n + a, vnt);
            self.undo.vmv_nt.push((j * n + a, old));
        }
    }

    /// Mirror of [`Self::refresh_p_leaf`] for a column-player count.
    fn refresh_q_leaf(&mut self, a: usize) {
        let q = self.state.q_counts()[a];
        let n = self.row_reads.len();
        let m = self.col_reads.len();
        for i in 0..n {
            // `a` is a column of the M array: contiguous in the mirror.
            let leaf = self.hw.array_m().mv_prefix_at_colmajor(i, a, q);
            let old = self.row_mv[i].update(a, leaf);
            self.undo.phase1.push((i, a, old));

            let p = self.state.p_counts()[i];
            if p == 0 {
                continue;
            }
            let vm = self.hw.array_m().prefix_at_colmajor(i, a, p, q);
            let old = self.vmv_m.update(i * m + a, vm);
            self.undo.vmv_m.push((i * m + a, old));

            let vnt = self.hw.array_nt().prefix_at(a, i, q, p);
            let old = self.vmv_nt.update(a * n + i, vnt);
            self.undo.vmv_nt.push((a * n + i, old));
        }
    }
}

impl<M: PhaseOneMax> DeltaEnergy for DeltaBiCrossbar<'_, M> {
    type State = GridStrategyPair;
    type Move = StrategyMove;

    fn state(&self) -> &GridStrategyPair {
        &self.state
    }

    fn energy(&self) -> f64 {
        self.energy
    }

    fn sample_move(&self, rng: &mut StdRng) -> Option<StrategyMove> {
        self.state.sample_move(rng)
    }

    fn propose(&mut self, mv: StrategyMove) -> f64 {
        assert!(self.pending.is_none(), "proposal already pending");
        self.undo.old_alpha = self.alpha;
        self.undo.old_beta = self.beta;
        self.undo.old_energy = self.energy;
        self.state.apply(mv);

        if mv.row_player {
            self.refresh_p_leaf(mv.from);
            self.refresh_p_leaf(mv.to);
            // Keep the stale reads for revert with an O(1) buffer swap.
            std::mem::swap(&mut self.undo.old_reads, &mut self.col_reads);
            self.col_reads.resize(self.col_mv.len(), 0.0);
            for (read, tree) in self.col_reads.iter_mut().zip(&self.col_mv) {
                *read = self.quant_nt.convert(tree.total());
            }
            self.beta = self.max.max_col(&self.col_reads) * self.k_nt;
        } else {
            self.refresh_q_leaf(mv.from);
            self.refresh_q_leaf(mv.to);
            std::mem::swap(&mut self.undo.old_reads, &mut self.row_reads);
            self.row_reads.resize(self.row_mv.len(), 0.0);
            for (read, tree) in self.row_reads.iter_mut().zip(&self.row_mv) {
                *read = self.quant_m.convert(tree.total());
            }
            self.alpha = self.max.max_row(&self.row_reads) * self.k_m;
        }

        self.energy = self.combine();
        self.pending = Some(mv);
        self.energy - self.undo.old_energy
    }

    fn commit(&mut self) {
        assert!(self.pending.take().is_some(), "no pending proposal");
        self.undo.phase1.clear();
        self.undo.vmv_m.clear();
        self.undo.vmv_nt.clear();
    }

    fn revert(&mut self) {
        let mv = self.pending.take().expect("no pending proposal");
        self.state.unapply(mv);
        let phase1_trees: &mut [PairwiseSum] = if mv.row_player {
            &mut self.col_mv
        } else {
            &mut self.row_mv
        };
        for (tree, leaf, old) in self.undo.phase1.drain(..) {
            phase1_trees[tree].update(leaf, old);
        }
        for (leaf, old) in self.undo.vmv_m.drain(..) {
            self.vmv_m.update(leaf, old);
        }
        for (leaf, old) in self.undo.vmv_nt.drain(..) {
            self.vmv_nt.update(leaf, old);
        }
        let reads = if mv.row_player {
            &mut self.col_reads
        } else {
            &mut self.row_reads
        };
        std::mem::swap(&mut self.undo.old_reads, reads);
        self.alpha = self.undo.old_alpha;
        self.beta = self.undo.old_beta;
        self.energy = self.undo.old_energy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bicrossbar::CrossbarConfig;
    use cnash_game::games;
    use rand::{RngExt, SeedableRng};

    fn fresh_energy(hw: &BiCrossbar, state: &GridStrategyPair) -> f64 {
        DeltaBiCrossbar::new(hw, state.clone(), ExactMax)
            .unwrap()
            .energy()
    }

    #[test]
    fn matches_full_nash_gap_closely() {
        let g = games::battle_of_the_sexes();
        let hw = BiCrossbar::build(&g, &CrossbarConfig::ideal(12), 0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let s = GridStrategyPair::random(2, 2, 12, &mut rng).unwrap();
            let eval = DeltaBiCrossbar::new(&hw, s.clone(), ExactMax).unwrap();
            let full = hw.nash_gap(&s.p_strategy(), &s.q_strategy()).unwrap();
            // Same physics, different summation association: equal to FP
            // reassociation noise.
            assert!(
                (eval.energy() - full).abs() < 1e-9,
                "{} vs {full}",
                eval.energy()
            );
        }
    }

    #[test]
    fn incremental_walk_is_bit_identical_to_scratch_rebuild() {
        let g = games::bird_game();
        for (cfg, seed) in [
            (CrossbarConfig::ideal(12), 0u64),
            (CrossbarConfig::paper(12), 7),
        ] {
            let hw = BiCrossbar::build(&g, &cfg, seed).unwrap();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
            let init = GridStrategyPair::random(3, 3, 12, &mut rng).unwrap();
            let mut eval = DeltaBiCrossbar::new(&hw, init, ExactMax).unwrap();
            for step in 0..300 {
                let Some(mv) = eval.sample_move(&mut rng) else {
                    break;
                };
                let before = eval.energy();
                let delta = eval.propose(mv);
                assert_eq!(delta, eval.energy() - before, "delta contract broken");
                if rng.random::<bool>() {
                    eval.commit();
                } else {
                    eval.revert();
                    assert_eq!(eval.energy(), before, "revert drifted at step {step}");
                }
                assert_eq!(
                    eval.energy(),
                    fresh_energy(&hw, eval.state()),
                    "incremental energy diverged from scratch at step {step}"
                );
            }
        }
    }

    #[test]
    fn rejects_mismatched_state() {
        let g = games::battle_of_the_sexes();
        let hw = BiCrossbar::build(&g, &CrossbarConfig::ideal(12), 0).unwrap();
        let bad_dims = GridStrategyPair::all_on_first(3, 2, 12).unwrap();
        assert!(DeltaBiCrossbar::new(&hw, bad_dims, ExactMax).is_err());
        let bad_intervals = GridStrategyPair::all_on_first(2, 2, 6).unwrap();
        assert!(DeltaBiCrossbar::new(&hw, bad_intervals, ExactMax).is_err());
    }

    #[test]
    fn commit_then_new_proposal_round_trips() {
        let g = games::hawk_dove();
        let hw = BiCrossbar::build(&g, &CrossbarConfig::ideal(12), 1).unwrap();
        let init = GridStrategyPair::all_on_first(2, 2, 12).unwrap();
        let mut eval = DeltaBiCrossbar::new(&hw, init, ExactMax).unwrap();
        let mv = StrategyMove {
            row_player: true,
            from: 0,
            to: 1,
        };
        let delta = eval.propose(mv);
        eval.commit();
        let back = eval.propose(mv.inverse());
        eval.commit();
        // Unit transfer forth and back restores the exact energy.
        assert_eq!(delta, -back);
        assert_eq!(eval.energy(), fresh_energy(&hw, eval.state()));
    }

    #[test]
    #[should_panic(expected = "proposal already pending")]
    fn double_propose_panics() {
        let g = games::hawk_dove();
        let hw = BiCrossbar::build(&g, &CrossbarConfig::ideal(12), 1).unwrap();
        let init = GridStrategyPair::all_on_first(2, 2, 12).unwrap();
        let mut eval = DeltaBiCrossbar::new(&hw, init, ExactMax).unwrap();
        let mv = StrategyMove {
            row_player: true,
            from: 0,
            to: 1,
        };
        let _ = eval.propose(mv);
        let _ = eval.propose(mv.inverse());
    }
}
