//! The bi-crossbar: two arrays storing `M` and `Nᵀ` (Fig. 3b/c, Fig. 6).
//!
//! Phase 1 reads both arrays in matrix-vector mode (all word lines up) to
//! obtain the payoff vectors `Mq` and `Nᵀp`; Phase 2 reads both in VMV
//! mode to obtain `pᵀMq` and `pᵀNq`. This module performs the reads,
//! ADC conversion and de-normalisation; the `max(·)` of Phase 1 is either
//! exact (for standalone use and ablation) or delegated to the WTA tree by
//! `cnash-core`.

use crate::adc::AdcSpec;
use crate::array::Crossbar;
use crate::error::CrossbarError;
use crate::mapping::MappingSpec;
use crate::offset::QuantizedPayoffs;
use cnash_device::cell::CellParams;
use cnash_device::variability::VariabilityModel;
use cnash_game::{BimatrixGame, MixedStrategy};

/// Build-time configuration of a [`BiCrossbar`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossbarConfig {
    /// Probability quantization intervals `I`.
    pub intervals: u32,
    /// Payoff quantization scale (payoffs × scale must be integers).
    pub payoff_scale: f64,
    /// Cell electrical parameters.
    pub cell: CellParams,
    /// Device-to-device variability.
    pub variability: VariabilityModel,
    /// ADC resolution in bits; `None` = ideal conversion.
    pub adc_bits: Option<u32>,
}

impl CrossbarConfig {
    /// Ideal configuration: no variability, infinite-precision ADC.
    pub fn ideal(intervals: u32) -> Self {
        Self {
            intervals,
            payoff_scale: 1.0,
            cell: CellParams::default(),
            variability: VariabilityModel::none(),
            adc_bits: None,
        }
    }

    /// The paper's hardware assumptions: σ(V_TH) = 40 mV, 8 % resistor
    /// spread, 8-bit ADC.
    pub fn paper(intervals: u32) -> Self {
        Self {
            intervals,
            payoff_scale: 1.0,
            cell: CellParams::default(),
            variability: VariabilityModel::paper(),
            adc_bits: Some(8),
        }
    }

    /// Fingerprint of everything that influences *programming* a
    /// bi-crossbar from a given game: two configs with equal
    /// fingerprints produce interchangeable [`BiCrossbar`]s for the same
    /// `(game, seed)` pair, which is what instance caches key on.
    ///
    /// Hashes the `Debug` rendering of the full config (every field of
    /// [`CrossbarConfig`] feeds `BiCrossbar::build`, and `Debug` of
    /// `f64` is the shortest round-trip form, so distinct configs render
    /// distinctly). The fingerprint is an **in-process** cache key — it
    /// is not stable across versions of this crate and must not be
    /// persisted.
    pub fn program_fingerprint(&self) -> u64 {
        let mut h = cnash_game::canonical::Hasher64::new();
        h.write_str("crossbar-config")
            .write_str(&format!("{self:?}"));
        h.finish()
    }
}

/// Phase-1 read result: digitised payoff-vector values in payoff units.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseOneRead {
    /// `Mq` — row player's payoff per action (offset payoff units).
    pub row_payoffs: Vec<f64>,
    /// `Nᵀp` — column player's payoff per action (offset payoff units).
    pub col_payoffs: Vec<f64>,
}

/// Phase-2 read result: digitised bilinear values in payoff units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseTwoRead {
    /// `pᵀMq` in offset payoff units.
    pub row_value: f64,
    /// `pᵀNq` in offset payoff units.
    pub col_value: f64,
}

/// The FeFET bi-crossbar storing `M` and `Nᵀ`.
#[derive(Debug, Clone)]
pub struct BiCrossbar {
    xbar_m: Crossbar,
    xbar_nt: Crossbar,
    adc_m: AdcSpec,
    adc_nt: AdcSpec,
    intervals: u32,
    scale: f64,
}

impl BiCrossbar {
    /// Maps a game onto a bi-crossbar.
    ///
    /// `t` (cells per element) is sized automatically from the largest
    /// offset payoff of either matrix, so both arrays share one geometry.
    ///
    /// # Errors
    ///
    /// Returns an error if payoffs are not integer at `payoff_scale`, or
    /// the configuration is invalid.
    pub fn build(
        game: &BimatrixGame,
        config: &CrossbarConfig,
        seed: u64,
    ) -> Result<Self, CrossbarError> {
        let qm = QuantizedPayoffs::from_matrix(game.row_payoffs(), config.payoff_scale)?;
        let qnt =
            QuantizedPayoffs::from_matrix(&game.col_payoffs().transposed(), config.payoff_scale)?;
        let t = qm.max_element().max(qnt.max_element()).max(1);
        let spec = MappingSpec::new(config.intervals, t)?;

        let xbar_m = Crossbar::build(qm, spec, config.cell, config.variability, seed)?;
        let xbar_nt = Crossbar::build(
            qnt,
            spec,
            config.cell,
            config.variability,
            seed.wrapping_add(0x9e3779b97f4a7c15),
        )?;

        let mk_adc = |x: &Crossbar| -> Result<AdcSpec, CrossbarError> {
            match config.adc_bits {
                None => Ok(AdcSpec::Ideal),
                Some(bits) => AdcSpec::uniform(bits, x.full_scale_current()),
            }
        };
        let adc_m = mk_adc(&xbar_m)?;
        let adc_nt = mk_adc(&xbar_nt)?;

        Ok(Self {
            xbar_m,
            xbar_nt,
            adc_m,
            adc_nt,
            intervals: config.intervals,
            scale: config.payoff_scale,
        })
    }

    /// Interval count `I`.
    pub fn intervals(&self) -> u32 {
        self.intervals
    }

    /// Action counts `(n, m)` of the game this bi-crossbar was
    /// programmed for — the geometry a reused (cached) instance must be
    /// validated against before serving a request.
    pub fn actions(&self) -> (usize, usize) {
        (self.xbar_m.payoffs().rows(), self.xbar_m.payoffs().cols())
    }

    /// The array storing `M`.
    pub fn array_m(&self) -> &Crossbar {
        &self.xbar_m
    }

    /// The array storing `Nᵀ`.
    pub fn array_nt(&self) -> &Crossbar {
        &self.xbar_nt
    }

    /// ADC in front of the `M` array.
    pub(crate) fn adc_m(&self) -> &AdcSpec {
        &self.adc_m
    }

    /// ADC in front of the `Nᵀ` array.
    pub(crate) fn adc_nt(&self) -> &AdcSpec {
        &self.adc_nt
    }

    /// Payoff quantization scale.
    pub(crate) fn scale(&self) -> f64 {
        self.scale
    }

    /// Grid activation counts for a strategy pair.
    ///
    /// # Errors
    ///
    /// Propagates grid-quantization errors.
    pub fn activations(
        &self,
        p: &MixedStrategy,
        q: &MixedStrategy,
    ) -> Result<(Vec<u32>, Vec<u32>), CrossbarError> {
        Ok((
            p.to_grid_counts(self.intervals)?,
            q.to_grid_counts(self.intervals)?,
        ))
    }

    /// Phase 1: matrix-vector reads with unit input vectors (all word
    /// lines active), returning digitised `Mq` and `Nᵀp` in *offset*
    /// payoff units (the WTA max of these feeds Eq. 9).
    ///
    /// # Errors
    ///
    /// Returns an activation error if counts do not fit the geometry.
    pub fn phase_one(&self, p: &[u32], q: &[u32]) -> Result<PhaseOneRead, CrossbarError> {
        let row_payoffs = self
            .xbar_m
            .read_mv(q)?
            .into_iter()
            .map(|c| self.xbar_m.mv_current_to_value(self.adc_m.convert(c)) / self.scale)
            .collect();
        let col_payoffs = self
            .xbar_nt
            .read_mv(p)?
            .into_iter()
            .map(|c| self.xbar_nt.mv_current_to_value(self.adc_nt.convert(c)) / self.scale)
            .collect();
        Ok(PhaseOneRead {
            row_payoffs,
            col_payoffs,
        })
    }

    /// Phase 2: VMV reads returning digitised `pᵀMq` and `pᵀNq` in offset
    /// payoff units (WTA trees deactivated).
    ///
    /// # Errors
    ///
    /// Returns an activation error if counts do not fit the geometry.
    pub fn phase_two(&self, p: &[u32], q: &[u32]) -> Result<PhaseTwoRead, CrossbarError> {
        let cm = self.xbar_m.read_vmv(p, q)?;
        // N^T is stored transposed: rows are column-player actions.
        let cnt = self.xbar_nt.read_vmv(q, p)?;
        Ok(PhaseTwoRead {
            row_value: self.xbar_m.current_to_value(self.adc_m.convert(cm)) / self.scale,
            col_value: self.xbar_nt.current_to_value(self.adc_nt.convert(cnt)) / self.scale,
        })
    }

    /// Full two-phase hardware evaluation of the MAX-QUBO objective
    /// (Eq. 9) with an *exact* max (no WTA error) — the ablation
    /// reference. `cnash-core` replaces the max with the WTA tree model.
    ///
    /// The payoff offsets cancel between the max terms and the bilinear
    /// terms, so the result is directly comparable to
    /// [`BimatrixGame::nash_gap`].
    ///
    /// # Errors
    ///
    /// Propagates activation/grid errors.
    pub fn nash_gap(&self, p: &MixedStrategy, q: &MixedStrategy) -> Result<f64, CrossbarError> {
        let (pc, qc) = self.activations(p, q)?;
        let ph1 = self.phase_one(&pc, &qc)?;
        let ph2 = self.phase_two(&pc, &qc)?;
        let alpha = ph1
            .row_payoffs
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let beta = ph1
            .col_payoffs
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        Ok(alpha + beta - ph2.row_value - ph2.col_value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnash_game::games;

    #[test]
    fn actions_reports_the_programmed_geometry() {
        let g = games::bird_game();
        let xbar = BiCrossbar::build(&g, &CrossbarConfig::ideal(12), 0).unwrap();
        assert_eq!(xbar.actions(), (g.row_actions(), g.col_actions()));
    }

    #[test]
    fn program_fingerprint_separates_configs() {
        let ideal = CrossbarConfig::ideal(12);
        assert_eq!(
            ideal.program_fingerprint(),
            CrossbarConfig::ideal(12).program_fingerprint()
        );
        assert_ne!(
            ideal.program_fingerprint(),
            CrossbarConfig::ideal(16).program_fingerprint()
        );
        assert_ne!(
            ideal.program_fingerprint(),
            CrossbarConfig::paper(12).program_fingerprint()
        );
    }

    #[test]
    fn ideal_gap_matches_exact_math() {
        let g = games::battle_of_the_sexes();
        let xbar = BiCrossbar::build(&g, &CrossbarConfig::ideal(12), 0).unwrap();
        let profiles = [
            (vec![1.0, 0.0], vec![1.0, 0.0]),
            (vec![2.0 / 3.0, 1.0 / 3.0], vec![1.0 / 3.0, 2.0 / 3.0]),
            (vec![0.5, 0.5], vec![0.25, 0.75]),
        ];
        for (pv, qv) in profiles {
            let p = MixedStrategy::new(pv).unwrap();
            let q = MixedStrategy::new(qv).unwrap();
            let hw = xbar.nash_gap(&p, &q).unwrap();
            let exact = g.nash_gap(&p, &q).unwrap();
            assert!((hw - exact).abs() < 1e-6, "hw {hw} vs exact {exact}");
        }
    }

    #[test]
    fn gap_zero_at_equilibria_of_all_benchmarks() {
        for b in games::paper_benchmarks() {
            let xbar = BiCrossbar::build(&b.game, &CrossbarConfig::ideal(12), 1).unwrap();
            for eq in cnash_game::support_enum::enumerate_equilibria(&b.game, 1e-9) {
                let hw = xbar.nash_gap(&eq.row, &eq.col).unwrap();
                assert!(
                    hw.abs() < 1e-6,
                    "{}: gap {hw} at equilibrium {eq}",
                    b.game.name()
                );
            }
        }
    }

    #[test]
    fn paper_config_gap_is_noisy_but_close() {
        let g = games::bird_game();
        let ideal = BiCrossbar::build(&g, &CrossbarConfig::ideal(12), 3).unwrap();
        let noisy = BiCrossbar::build(&g, &CrossbarConfig::paper(12), 3).unwrap();
        let p = MixedStrategy::new(vec![2.0 / 3.0, 1.0 / 3.0, 0.0]).unwrap();
        let q = p.clone();
        let gi = ideal.nash_gap(&p, &q).unwrap();
        let gn = noisy.nash_gap(&p, &q).unwrap();
        assert!((gi - gn).abs() < 0.25, "noise too large: {gi} vs {gn}");
    }

    #[test]
    fn phase_one_values_match_payoff_vectors() {
        let g = games::bird_game();
        let xbar = BiCrossbar::build(&g, &CrossbarConfig::ideal(12), 0).unwrap();
        let p = MixedStrategy::uniform(3).unwrap();
        let q = MixedStrategy::uniform(3).unwrap();
        let (pc, qc) = xbar.activations(&p, &q).unwrap();
        let ph1 = xbar.phase_one(&pc, &qc).unwrap();
        // Offset is 0 for the bird game (min payoff 0), so values match Mq.
        let exact = g.row_payoff_vector(&q).unwrap();
        for (v, e) in ph1.row_payoffs.iter().zip(exact) {
            // Off-cell subthreshold leakage bounds the residual error.
            assert!((v - e).abs() < 1e-4, "{v} vs {e}");
        }
    }

    #[test]
    fn offset_cancels_for_negative_payoff_games() {
        // Hawk-Dove has negative payoffs; the offset must cancel in the gap.
        let g = games::hawk_dove();
        let xbar = BiCrossbar::build(&g, &CrossbarConfig::ideal(12), 0).unwrap();
        let p = MixedStrategy::new(vec![0.5, 0.5]).unwrap();
        let q = MixedStrategy::new(vec![0.5, 0.5]).unwrap();
        let hw = xbar.nash_gap(&p, &q).unwrap();
        let exact = g.nash_gap(&p, &q).unwrap();
        assert!((hw - exact).abs() < 1e-6, "{hw} vs {exact}");
        assert!(hw.abs() < 1e-6, "mixed ESS is an equilibrium");
    }

    #[test]
    fn fractional_payoffs_with_scale() {
        use cnash_game::{BimatrixGame, Matrix};
        let m = Matrix::from_rows(&[vec![0.5, 0.0], vec![0.0, 1.5]]).unwrap();
        let n = Matrix::from_rows(&[vec![1.5, 0.0], vec![0.0, 0.5]]).unwrap();
        let g = BimatrixGame::new("frac", m, n).unwrap();
        let mut cfg = CrossbarConfig::ideal(12);
        cfg.payoff_scale = 2.0;
        let xbar = BiCrossbar::build(&g, &cfg, 0).unwrap();
        let p = MixedStrategy::pure(2, 0).unwrap();
        let q = MixedStrategy::pure(2, 0).unwrap();
        let hw = xbar.nash_gap(&p, &q).unwrap();
        let exact = g.nash_gap(&p, &q).unwrap();
        assert!((hw - exact).abs() < 1e-6);
    }

    #[test]
    fn adc_quantization_bounded_by_lsb() {
        let g = games::battle_of_the_sexes();
        let mut cfg = CrossbarConfig::ideal(12);
        cfg.adc_bits = Some(8);
        let coarse = BiCrossbar::build(&g, &cfg, 0).unwrap();
        let fine = BiCrossbar::build(&g, &CrossbarConfig::ideal(12), 0).unwrap();
        let p = MixedStrategy::new(vec![0.25, 0.75]).unwrap();
        let q = MixedStrategy::new(vec![0.5, 0.5]).unwrap();
        let a = coarse.nash_gap(&p, &q).unwrap();
        let b = fine.nash_gap(&p, &q).unwrap();
        // 4 reads, each within half an LSB of ~max_payoff/255.
        assert!((a - b).abs() < 0.1, "{a} vs {b}");
    }
}
