//! FeFET computing-in-memory crossbar simulator (paper Sec. 3.2, Fig. 4).
//!
//! The C-Nash bi-crossbar stores the two payoff matrices and evaluates the
//! matrix-vector (Phase 1) and vector-matrix-vector (Phase 2) products of
//! the MAX-QUBO objective in the analog current domain:
//!
//! * probabilities are quantized into `I` intervals — a probability `p_i`
//!   activates `p_i · I` of the `I` word lines of its action's row group,
//!   and `q_j · I` of the `I` column groups of its action (each group is
//!   `t` data lines wide),
//! * each payoff element `m_ij ∈ {0..t}` is stored unary in `t` 1FeFET1R
//!   cells, repeated in every (row, column-group) position of its block,
//! * the summed source-line current of a block is then exactly
//!   `(p_i I) · (q_j I) · m_ij · i_on` — the worked example of Fig. 4c
//!   (`0.25 × 3 × 0.75` with `I = t = 4`) yields 9 active cells.
//!
//! [`array::Crossbar`] samples one device per physical cell (threshold and
//! resistor variability) and pre-computes per-block prefix sums so a read
//! costs `O(n·m)` lookups instead of `O(cells)` — bit-exact with the naive
//! cell-by-cell sum, which [mod@array]'s tests verify.
//!
//! # Example
//!
//! ```
//! use cnash_crossbar::{BiCrossbar, CrossbarConfig};
//! use cnash_game::{games, MixedStrategy};
//!
//! # fn main() -> Result<(), cnash_crossbar::CrossbarError> {
//! let game = games::battle_of_the_sexes();
//! let xbar = BiCrossbar::build(&game, &CrossbarConfig::ideal(12), 42)?;
//! let p = MixedStrategy::pure(2, 0).expect("valid");
//! let q = MixedStrategy::pure(2, 0).expect("valid");
//! let f = xbar.nash_gap(&p, &q)?;            // hardware evaluation of Eq. 9
//! assert!(f.abs() < 1e-6);                   // (p,q) is an equilibrium
//! # Ok(())
//! # }
//! ```

pub mod adc;
pub mod array;
pub mod bicrossbar;
pub mod binary_mapping;
pub mod delta;
pub mod error;
pub mod mapping;
pub mod offset;
pub mod stats;

pub use adc::AdcSpec;
pub use array::Crossbar;
pub use bicrossbar::{BiCrossbar, CrossbarConfig};
pub use delta::{DeltaBiCrossbar, ExactMax, PhaseOneMax};
pub use error::CrossbarError;
pub use mapping::MappingSpec;
pub use offset::QuantizedPayoffs;
