//! One physical FeFET crossbar storing one payoff matrix.
//!
//! Every physical cell is a [`OneFeFetOneR`] with its own sampled device
//! deviations. Because the read currents only ever appear in *sums over
//! activated rectangles* (the unary mapping activates row and column-group
//! prefixes), the array pre-computes 2-D prefix sums per payoff element:
//! a full VMV read then costs `O(n·m)` lookups. The naive cell-by-cell
//! readers are kept for verification and fault-injection studies and the
//! tests assert the two paths agree to floating-point accuracy.

use crate::error::CrossbarError;
use crate::mapping::MappingSpec;
use crate::offset::QuantizedPayoffs;
use cnash_device::cell::{CellParams, OneFeFetOneR};
use cnash_device::fefet::FeFetState;
use cnash_device::variability::VariabilityModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The calibrated unit current: the selected-'1' current of a *nominal*
/// (deviation-free) cell. Sense amplification is referenced to this value,
/// so the systematic channel-resistance drop does not bias read values.
pub fn unit_current(params: &CellParams) -> f64 {
    OneFeFetOneR::new(
        FeFetState::LowVth,
        *params,
        cnash_device::variability::DeviceSample::default(),
    )
    .output_current(true, true)
}

/// A simulated FeFET crossbar storing one (quantized) payoff matrix.
#[derive(Debug, Clone)]
pub struct Crossbar {
    spec: MappingSpec,
    payoffs: QuantizedPayoffs,
    /// Per-cell selected current (WL and DL active), row-major over the
    /// physical `(I·n) × (I·t·m)` array.
    cell_current: Vec<f64>,
    /// Per-element `(I+1)×(I+1)` prefix tables, element-major.
    prefix: Vec<f64>,
    /// Column-major mirror of `prefix` (same values, elements ordered
    /// `(ej, ei)`). The incremental evaluator refreshes whole *columns*
    /// of an array after a move; in the row-major table those blocks sit
    /// a full matrix row apart (a TLB miss per element at 64×64), in the
    /// mirror they are contiguous.
    prefix_colmajor: Vec<f64>,
    /// Compact all-word-lines slice of `prefix` (`r = I` fixed), used by
    /// Phase-1 readers and the incremental evaluator: `(I+1)` values per
    /// element, element-major. ~`I+1`× smaller than the full tables, so
    /// the per-move scattered accesses of the delta path stay cache
    /// resident.
    mv_prefix: Vec<f64>,
    /// Column-major mirror of `mv_prefix`.
    mv_prefix_colmajor: Vec<f64>,
    phys_rows: usize,
    phys_cols: usize,
    nominal_on: f64,
}

impl Crossbar {
    /// Builds a crossbar from quantized payoffs.
    ///
    /// Device deviations are sampled from `variability` with the given
    /// `seed`, one sample per physical cell, so the same seed reproduces
    /// the same silicon instance.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ElementOverflow`] if an element exceeds
    /// `spec.cells_per_element`.
    pub fn build(
        payoffs: QuantizedPayoffs,
        spec: MappingSpec,
        cell_params: CellParams,
        variability: VariabilityModel,
        seed: u64,
    ) -> Result<Self, CrossbarError> {
        let (n, m) = (payoffs.rows(), payoffs.cols());
        let (phys_rows, phys_cols) = spec.physical_size(n, m);
        let i = spec.intervals as usize;
        let t = spec.cells_per_element as usize;

        let mut rng = StdRng::seed_from_u64(seed);
        let mut cell_current = vec![0.0; phys_rows * phys_cols];
        for ei in 0..n {
            for ej in 0..m {
                let value = payoffs.entry(ei, ej);
                let pattern = spec.unary_pattern(value)?;
                for r in 0..i {
                    let phys_r = ei * i + r;
                    for g in 0..i {
                        for (k, &bit) in pattern.iter().enumerate() {
                            let phys_c = ej * i * t + g * t + k;
                            let sample = variability.sample(&mut rng);
                            let cell =
                                OneFeFetOneR::new(FeFetState::from_bit(bit), cell_params, sample);
                            cell_current[phys_r * phys_cols + phys_c] =
                                cell.output_current(true, true);
                        }
                    }
                }
            }
        }

        let mut xbar = Self {
            spec,
            payoffs,
            cell_current,
            prefix: Vec::new(),
            prefix_colmajor: Vec::new(),
            mv_prefix: Vec::new(),
            mv_prefix_colmajor: Vec::new(),
            phys_rows,
            phys_cols,
            nominal_on: unit_current(&cell_params),
        };
        xbar.rebuild_prefix();
        Ok(xbar)
    }

    /// Recomputes the prefix tables from the raw cell currents. Call after
    /// fault injection.
    pub fn rebuild_prefix(&mut self) {
        let (n, m) = (self.payoffs.rows(), self.payoffs.cols());
        let i = self.spec.intervals as usize;
        let t = self.spec.cells_per_element as usize;
        let side = i + 1;
        let mut prefix = vec![0.0; n * m * side * side];
        for ei in 0..n {
            for ej in 0..m {
                let base = (ei * m + ej) * side * side;
                for r in 1..=i {
                    let phys_r = ei * i + (r - 1);
                    for g in 1..=i {
                        let mut block = 0.0;
                        for k in 0..t {
                            let phys_c = ej * i * t + (g - 1) * t + k;
                            block += self.cell_current[phys_r * self.phys_cols + phys_c];
                        }
                        prefix[base + r * side + g] = block
                            + prefix[base + (r - 1) * side + g]
                            + prefix[base + r * side + (g - 1)]
                            - prefix[base + (r - 1) * side + (g - 1)];
                    }
                }
            }
        }
        self.prefix = prefix;
        let block = side * side;
        let mut prefix_colmajor = vec![0.0; n * m * block];
        let mut mv_prefix = vec![0.0; n * m * side];
        let mut mv_prefix_colmajor = vec![0.0; n * m * side];
        for ei in 0..n {
            for ej in 0..m {
                let e = ei * m + ej;
                let et = ej * n + ei;
                prefix_colmajor[et * block..(et + 1) * block]
                    .copy_from_slice(&self.prefix[e * block..(e + 1) * block]);
                let mv_row = &self.prefix[e * block + i * side..e * block + (i + 1) * side];
                mv_prefix[e * side..(e + 1) * side].copy_from_slice(mv_row);
                mv_prefix_colmajor[et * side..(et + 1) * side].copy_from_slice(mv_row);
            }
        }
        self.prefix_colmajor = prefix_colmajor;
        self.mv_prefix = mv_prefix;
        self.mv_prefix_colmajor = mv_prefix_colmajor;
    }

    /// Summed current of the `(r, g)`-activated sub-block of element
    /// `(ei, ej)` — the quantity the incremental evaluator's reduction
    /// trees hold as leaves.
    pub(crate) fn prefix_at(&self, ei: usize, ej: usize, r: u32, g: u32) -> f64 {
        let side = self.spec.intervals as usize + 1;
        let base = (ei * self.payoffs.cols() + ej) * side * side;
        self.prefix[base + r as usize * side + g as usize]
    }

    /// [`Crossbar::prefix_at`] with all `I` word lines of the row group
    /// active (`r = I`) — the Phase-1 case, served from the compact
    /// cache.
    pub(crate) fn mv_prefix_at(&self, ei: usize, ej: usize, g: u32) -> f64 {
        let side = self.spec.intervals as usize + 1;
        self.mv_prefix[(ei * self.payoffs.cols() + ej) * side + g as usize]
    }

    /// [`Crossbar::prefix_at`] served from the column-major mirror —
    /// bitwise the same value, contiguous when walking one column.
    pub(crate) fn prefix_at_colmajor(&self, ei: usize, ej: usize, r: u32, g: u32) -> f64 {
        let side = self.spec.intervals as usize + 1;
        let base = (ej * self.payoffs.rows() + ei) * side * side;
        self.prefix_colmajor[base + r as usize * side + g as usize]
    }

    /// [`Crossbar::mv_prefix_at`] served from the column-major mirror.
    pub(crate) fn mv_prefix_at_colmajor(&self, ei: usize, ej: usize, g: u32) -> f64 {
        let side = self.spec.intervals as usize + 1;
        self.mv_prefix_colmajor[(ej * self.payoffs.rows() + ei) * side + g as usize]
    }

    /// Mapping spec.
    pub fn spec(&self) -> MappingSpec {
        self.spec
    }

    /// Stored payoffs.
    pub fn payoffs(&self) -> &QuantizedPayoffs {
        &self.payoffs
    }

    /// Physical array size `(rows, cols)`.
    pub fn physical_size(&self) -> (usize, usize) {
        (self.phys_rows, self.phys_cols)
    }

    /// Nominal selected-cell ON current (A).
    pub fn nominal_on_current(&self) -> f64 {
        self.nominal_on
    }

    fn check_counts(&self, p: &[u32], q: &[u32]) -> Result<(), CrossbarError> {
        let i = self.spec.intervals;
        if p.len() != self.payoffs.rows() {
            return Err(CrossbarError::ActivationMismatch(format!(
                "{} row counts for {} actions",
                p.len(),
                self.payoffs.rows()
            )));
        }
        if q.len() != self.payoffs.cols() {
            return Err(CrossbarError::ActivationMismatch(format!(
                "{} col counts for {} actions",
                q.len(),
                self.payoffs.cols()
            )));
        }
        if p.iter().chain(q).any(|&c| c > i) {
            return Err(CrossbarError::ActivationMismatch(format!(
                "activation count exceeds {i} intervals"
            )));
        }
        Ok(())
    }

    /// Total source-line current of a VMV read: row group `i` drives its
    /// first `p[i]` word lines, column group `j` its first `q[j]`
    /// `t`-wide data-line groups (Phase 2 of the operation flow).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ActivationMismatch`] on bad counts.
    pub fn read_vmv(&self, p: &[u32], q: &[u32]) -> Result<f64, CrossbarError> {
        self.check_counts(p, q)?;
        let mut total = 0.0;
        for (ei, &pc) in p.iter().enumerate() {
            if pc == 0 {
                continue;
            }
            for (ej, &qc) in q.iter().enumerate() {
                total += self.prefix_at(ei, ej, pc, qc);
            }
        }
        Ok(total)
    }

    /// Per-row-group source-line currents with *all* word lines active —
    /// Phase 1's matrix-vector read producing `M q` (one current per
    /// action of the row player).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ActivationMismatch`] on bad counts.
    pub fn read_mv(&self, q: &[u32]) -> Result<Vec<f64>, CrossbarError> {
        let full = vec![self.spec.intervals; self.payoffs.rows()];
        self.check_counts(&full, q)?;
        Ok((0..self.payoffs.rows())
            .map(|ei| {
                (0..self.payoffs.cols())
                    .map(|ej| self.mv_prefix_at(ei, ej, q[ej]))
                    .sum()
            })
            .collect())
    }

    /// Converts a Phase-2 current to stored payoff units
    /// (`current / (I² · i_on)` recovers `pᵀM'q`).
    pub fn current_to_value(&self, current: f64) -> f64 {
        current / self.spec.current_denominator(self.nominal_on)
    }

    /// Converts a Phase-1 per-row current to stored units. With all `I`
    /// word lines of a group active the current is `I²·(M'q)_i·i_on` —
    /// the same denominator as Phase 2.
    pub fn mv_current_to_value(&self, current: f64) -> f64 {
        self.current_to_value(current)
    }

    /// Largest read current of a *simplex-feasible* activation — the
    /// natural ADC full scale. Because `p` and `q` each distribute `I`
    /// activation units, both the per-row Phase-1 currents
    /// (`I²·(M'q)ᵢ·i_on`) and the total Phase-2 current (`I²·pᵀM'q·i_on`)
    /// are bounded by `I²·max(M')·i_on`; sizing the ADC to this bound
    /// instead of the all-cells-on worst case keeps the LSB far below the
    /// objective landscape's walls.
    pub fn full_scale_current(&self) -> f64 {
        let i = self.spec.intervals as f64;
        i * i * f64::from(self.payoffs.max_element().max(1)) * self.nominal_on * 1.2
        // headroom for positive resistor deviations
    }

    // ------------------------------------------------------------------
    // Verification / fault-injection paths
    // ------------------------------------------------------------------

    /// Naive cell-by-cell VMV read (bit-identical physics, `O(cells)`).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ActivationMismatch`] on bad counts.
    pub fn read_vmv_naive(&self, p: &[u32], q: &[u32]) -> Result<f64, CrossbarError> {
        self.check_counts(p, q)?;
        let i = self.spec.intervals as usize;
        let t = self.spec.cells_per_element as usize;
        let mut total = 0.0;
        for (ei, &pc) in p.iter().enumerate() {
            for r in 0..pc as usize {
                let phys_r = ei * i + r;
                for (ej, &qc) in q.iter().enumerate() {
                    for g in 0..qc as usize {
                        for k in 0..t {
                            let phys_c = ej * i * t + g * t + k;
                            total += self.cell_current[phys_r * self.phys_cols + phys_c];
                        }
                    }
                }
            }
        }
        Ok(total)
    }

    /// Forces a physical cell's current to zero (dead cell).
    ///
    /// Call [`Crossbar::rebuild_prefix`] afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn inject_dead_cell(&mut self, row: usize, col: usize) {
        assert!(
            row < self.phys_rows && col < self.phys_cols,
            "out of bounds"
        );
        self.cell_current[row * self.phys_cols + col] = 0.0;
    }

    /// Forces a physical cell permanently ON at the nominal current
    /// (stuck-at-1 fault). Call [`Crossbar::rebuild_prefix`] afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn inject_stuck_on_cell(&mut self, row: usize, col: usize) {
        assert!(
            row < self.phys_rows && col < self.phys_cols,
            "out of bounds"
        );
        self.cell_current[row * self.phys_cols + col] = self.nominal_on;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnash_game::games;
    use cnash_game::Matrix;

    fn ideal_xbar(m: &Matrix, intervals: u32) -> Crossbar {
        let q = QuantizedPayoffs::from_integer_matrix(m).unwrap();
        let t = q.max_element().max(1);
        let spec = MappingSpec::new(intervals, t).unwrap();
        Crossbar::build(q, spec, CellParams::default(), VariabilityModel::none(), 0).unwrap()
    }

    #[test]
    fn fig4c_example_counts() {
        // 0.25 × 3 × 0.75 with I = 4, t = 4 activates 9 '1' cells.
        let m = Matrix::from_rows(&[vec![3.0]]).unwrap();
        let q = QuantizedPayoffs::from_integer_matrix(&m).unwrap();
        let spec = MappingSpec::new(4, 4).unwrap();
        let xbar =
            Crossbar::build(q, spec, CellParams::default(), VariabilityModel::none(), 0).unwrap();
        assert_eq!(xbar.physical_size(), (4, 16));
        let current = xbar.read_vmv(&[1], &[3]).unwrap();
        let i_on = xbar.nominal_on_current();
        assert!(
            (current - 9.0 * i_on).abs() / i_on < 1e-3,
            "expected 9 cell currents, got {}",
            current / i_on
        );
        // Value: current / (I² i_on) = 9/16 = 0.25·3·0.75.
        assert!((xbar.current_to_value(current) - 0.5625).abs() < 1e-3);
    }

    #[test]
    fn vmv_matches_exact_bilinear_when_ideal() {
        let g = games::battle_of_the_sexes();
        let xbar = ideal_xbar(g.row_payoffs(), 12);
        // p = (1/3, 2/3), q = (3/4, 1/4) on the 1/12 grid.
        let p = [4u32, 8];
        let q = [9u32, 3];
        let val = xbar.current_to_value(xbar.read_vmv(&p, &q).unwrap());
        let exact = g
            .row_payoffs()
            .bilinear(&[1.0 / 3.0, 2.0 / 3.0], &[0.75, 0.25])
            .unwrap();
        assert!((val - exact).abs() < 1e-3, "{val} vs {exact}");
    }

    #[test]
    fn mv_matches_exact_product_when_ideal() {
        let g = games::bird_game();
        let xbar = ideal_xbar(g.row_payoffs(), 12);
        let q = [8u32, 4, 0]; // (2/3, 1/3, 0)
        let currents = xbar.read_mv(&q).unwrap();
        let exact = g
            .row_payoffs()
            .mat_vec(&[2.0 / 3.0, 1.0 / 3.0, 0.0])
            .unwrap();
        for (c, e) in currents.iter().zip(exact) {
            assert!((xbar.mv_current_to_value(*c) - e).abs() < 1e-3);
        }
    }

    #[test]
    fn fast_and_naive_reads_agree() {
        let g = games::modified_prisoners_dilemma();
        let q = QuantizedPayoffs::from_integer_matrix(g.row_payoffs()).unwrap();
        let spec = MappingSpec::new(6, q.max_element()).unwrap();
        let xbar = Crossbar::build(
            q,
            spec,
            CellParams::default(),
            VariabilityModel::paper(),
            123,
        )
        .unwrap();
        let p = [1u32, 0, 2, 0, 3, 0, 0, 0];
        let qc = [0u32, 2, 0, 1, 0, 0, 3, 0];
        let fast = xbar.read_vmv(&p, &qc).unwrap();
        let naive = xbar.read_vmv_naive(&p, &qc).unwrap();
        assert!((fast - naive).abs() <= 1e-15 + fast.abs() * 1e-10);
    }

    #[test]
    fn variability_perturbs_but_stays_close() {
        let g = games::battle_of_the_sexes();
        let qp = QuantizedPayoffs::from_integer_matrix(g.row_payoffs()).unwrap();
        let spec = MappingSpec::new(12, qp.max_element()).unwrap();
        let noisy = Crossbar::build(
            qp,
            spec,
            CellParams::default(),
            VariabilityModel::paper(),
            7,
        )
        .unwrap();
        let p = [6u32, 6];
        let q = [6u32, 6];
        let val = noisy.current_to_value(noisy.read_vmv(&p, &q).unwrap());
        let exact = g.row_payoffs().bilinear(&[0.5, 0.5], &[0.5, 0.5]).unwrap();
        let rel = (val - exact).abs() / exact;
        assert!(rel > 0.0, "variability should perturb the read");
        assert!(rel < 0.05, "8% per-cell spread must average out: {rel}");
    }

    #[test]
    fn activation_validation() {
        let g = games::battle_of_the_sexes();
        let xbar = ideal_xbar(g.row_payoffs(), 4);
        assert!(xbar.read_vmv(&[1], &[1, 1]).is_err());
        assert!(xbar.read_vmv(&[1, 1], &[1]).is_err());
        assert!(xbar.read_vmv(&[5, 0], &[1, 1]).is_err()); // > I
    }

    #[test]
    fn zero_activation_reads_zero() {
        let g = games::battle_of_the_sexes();
        let xbar = ideal_xbar(g.row_payoffs(), 4);
        assert_eq!(xbar.read_vmv(&[0, 0], &[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn dead_cell_reduces_current() {
        let m = Matrix::from_rows(&[vec![2.0]]).unwrap();
        let qp = QuantizedPayoffs::from_integer_matrix(&m).unwrap();
        let spec = MappingSpec::new(2, 2).unwrap();
        let mut xbar =
            Crossbar::build(qp, spec, CellParams::default(), VariabilityModel::none(), 0).unwrap();
        let before = xbar.read_vmv(&[2], &[2]).unwrap();
        xbar.inject_dead_cell(0, 0);
        xbar.rebuild_prefix();
        let after = xbar.read_vmv(&[2], &[2]).unwrap();
        assert!(after < before);
        assert!((before - after - xbar.nominal_on_current()).abs() < 1e-8 * before);
    }

    #[test]
    fn stuck_on_cell_increases_current() {
        let m = Matrix::from_rows(&[vec![0.0]]).unwrap();
        let qp = QuantizedPayoffs::from_integer_matrix(&m).unwrap();
        let spec = MappingSpec::new(2, 2).unwrap();
        let mut xbar =
            Crossbar::build(qp, spec, CellParams::default(), VariabilityModel::none(), 0).unwrap();
        let before = xbar.read_vmv(&[2], &[2]).unwrap();
        xbar.inject_stuck_on_cell(1, 1);
        xbar.rebuild_prefix();
        let after = xbar.read_vmv(&[2], &[2]).unwrap();
        assert!(after > before + 0.9 * xbar.nominal_on_current());
    }

    #[test]
    fn full_scale_bounds_feasible_reads() {
        // The ADC range covers every simplex-feasible activation: both
        // players distribute exactly I units.
        let g = games::bird_game();
        let qp = QuantizedPayoffs::from_integer_matrix(g.row_payoffs()).unwrap();
        let spec = MappingSpec::new(12, qp.max_element()).unwrap();
        let xbar = Crossbar::build(
            qp,
            spec,
            CellParams::default(),
            VariabilityModel::paper(),
            5,
        )
        .unwrap();
        let fs = xbar.full_scale_current();
        // Worst feasible case: all mass on the row/column of the largest
        // element, plus some spread-out profiles.
        for (p, q) in [
            ([12u32, 0, 0], [0u32, 12, 0]),
            ([0, 12, 0], [12, 0, 0]),
            ([4, 4, 4], [4, 4, 4]),
            ([6, 6, 0], [0, 6, 6]),
        ] {
            let read = xbar.read_vmv(&p, &q).unwrap();
            assert!(read <= fs, "feasible read {read} exceeds full scale {fs}");
        }
        // Phase-1 MV row currents are bounded by the same full scale.
        for c in xbar.read_mv(&[4, 4, 4]).unwrap() {
            assert!(c <= fs);
        }
    }
}
