//! Linearity statistics for the crossbar robustness study (Fig. 7a).
//!
//! The experiment of Sec. 4.1: a 64×64 crossbar of 1FeFET1R cells, each
//! with σ(V_TH) = 40 mV and 8 % resistor spread, read while sweeping the
//! number of activated cells in a column. Output current must stay linear
//! in the activation count for the analog VMV products to be trustworthy.

use cnash_device::cell::{CellParams, OneFeFetOneR};
use cnash_device::fefet::FeFetState;
use cnash_device::variability::VariabilityModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of one linearity sweep: current vs. activated-cell count.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearitySweep {
    /// Activated-cell counts (x-axis).
    pub activated: Vec<usize>,
    /// Summed column current per count (y-axis, A).
    pub current: Vec<f64>,
}

impl LinearitySweep {
    /// Least-squares slope of a through-origin fit (A per cell).
    pub fn slope(&self) -> f64 {
        let sxy: f64 = self
            .activated
            .iter()
            .zip(&self.current)
            .map(|(&x, &y)| x as f64 * y)
            .sum();
        let sxx: f64 = self.activated.iter().map(|&x| (x as f64).powi(2)).sum();
        if sxx == 0.0 {
            0.0
        } else {
            sxy / sxx
        }
    }

    /// Coefficient of determination R² of the through-origin linear fit.
    pub fn r_squared(&self) -> f64 {
        let slope = self.slope();
        let mean: f64 = self.current.iter().sum::<f64>() / self.current.len() as f64;
        let ss_tot: f64 = self.current.iter().map(|y| (y - mean).powi(2)).sum();
        let ss_res: f64 = self
            .activated
            .iter()
            .zip(&self.current)
            .map(|(&x, &y)| (y - slope * x as f64).powi(2))
            .sum();
        if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        }
    }

    /// Maximum relative deviation from the linear fit (excluding the
    /// zero-activation point).
    pub fn max_relative_deviation(&self) -> f64 {
        let slope = self.slope();
        self.activated
            .iter()
            .zip(&self.current)
            .filter(|(&x, _)| x > 0)
            .map(|(&x, &y)| {
                let fit = slope * x as f64;
                ((y - fit) / fit).abs()
            })
            .fold(0.0, f64::max)
    }
}

/// Builds a column of `size` 1FeFET1R cells (all storing '1') with the
/// given variability and sweeps the number of activated cells from 0 to
/// `size`, returning the summed current at each step.
pub fn column_linearity_sweep(
    size: usize,
    variability: VariabilityModel,
    params: CellParams,
    seed: u64,
) -> LinearitySweep {
    let mut rng = StdRng::seed_from_u64(seed);
    let cells: Vec<OneFeFetOneR> = (0..size)
        .map(|_| OneFeFetOneR::new(FeFetState::LowVth, params, variability.sample(&mut rng)))
        .collect();

    let mut activated = Vec::with_capacity(size + 1);
    let mut current = Vec::with_capacity(size + 1);
    let mut running = 0.0;
    activated.push(0);
    current.push(0.0);
    for (k, cell) in cells.iter().enumerate() {
        running += cell.output_current(true, true);
        activated.push(k + 1);
        current.push(running);
    }
    LinearitySweep { activated, current }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_column_is_perfectly_linear() {
        let s = column_linearity_sweep(64, VariabilityModel::none(), CellParams::default(), 0);
        assert!(s.r_squared() > 1.0 - 1e-9);
        assert!(s.max_relative_deviation() < 1e-6);
        // Slope is the calibrated unit cell current (≈ 1 µA minus the
        // channel-resistance drop).
        let unit = crate::array::unit_current(&CellParams::default());
        assert!((s.slope() - unit).abs() / unit < 1e-9);
    }

    #[test]
    fn paper_variability_keeps_good_linearity() {
        // Fig. 7a: "robust linearity" under 40 mV / 8 % spreads.
        let s = column_linearity_sweep(64, VariabilityModel::paper(), CellParams::default(), 42);
        assert!(s.r_squared() > 0.995, "R² {}", s.r_squared());
        // Individual points deviate by at most a few percent once several
        // cells average out.
        assert!(s.max_relative_deviation() < 0.15);
    }

    #[test]
    fn current_is_monotone_in_activation() {
        let s = column_linearity_sweep(32, VariabilityModel::paper(), CellParams::default(), 9);
        for w in s.current.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn sweep_is_reproducible() {
        let a = column_linearity_sweep(16, VariabilityModel::paper(), CellParams::default(), 5);
        let b = column_linearity_sweep(16, VariabilityModel::paper(), CellParams::default(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn extreme_variability_degrades_linearity() {
        let mild = column_linearity_sweep(64, VariabilityModel::paper(), CellParams::default(), 1);
        let wild = column_linearity_sweep(
            64,
            VariabilityModel::paper().scaled(10.0),
            CellParams::default(),
            1,
        );
        assert!(wild.max_relative_deviation() > mild.max_relative_deviation());
    }
}
