//! Interval/unary mapping of strategies and payoffs onto the crossbar
//! (paper Sec. 3.2, Fig. 4).

use crate::error::CrossbarError;
use cnash_game::MixedStrategy;

/// Geometric mapping parameters of one crossbar.
///
/// A game element `m_ij` occupies a block of `intervals` rows ×
/// `intervals × cells_per_element` columns; the whole `n × m` matrix needs
/// `(I·n) × (I·t·m)` physical cells (Fig. 4a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MappingSpec {
    /// `I`: probability quantization intervals. A probability must be a
    /// multiple of `1/I` to be represented exactly.
    pub intervals: u32,
    /// `t`: unary cells per payoff element; bounds the largest element.
    pub cells_per_element: u32,
}

impl MappingSpec {
    /// Creates a spec, validating both parameters are non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] if either is zero.
    pub fn new(intervals: u32, cells_per_element: u32) -> Result<Self, CrossbarError> {
        if intervals == 0 {
            return Err(CrossbarError::InvalidConfig("zero intervals".into()));
        }
        if cells_per_element == 0 {
            return Err(CrossbarError::InvalidConfig(
                "zero cells per element".into(),
            ));
        }
        Ok(Self {
            intervals,
            cells_per_element,
        })
    }

    /// Physical crossbar size `(rows, cols)` for an `n × m` payoff matrix
    /// (Fig. 4a: `(I·n) × (I·t·m)`).
    pub fn physical_size(&self, n: usize, m: usize) -> (usize, usize) {
        (
            self.intervals as usize * n,
            self.intervals as usize * self.cells_per_element as usize * m,
        )
    }

    /// Unary cell pattern of one payoff element within a `t`-wide group:
    /// the first `value` cells store '1'.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ElementOverflow`] if `value > t`.
    pub fn unary_pattern(&self, value: u32) -> Result<Vec<bool>, CrossbarError> {
        if value > self.cells_per_element {
            return Err(CrossbarError::ElementOverflow {
                value,
                cells_per_element: self.cells_per_element,
            });
        }
        Ok((0..self.cells_per_element).map(|k| k < value).collect())
    }

    /// Word-line activation counts for a row strategy: action `i`
    /// activates `round(p_i · I)` of its `I` rows.
    ///
    /// # Errors
    ///
    /// Propagates strategy-grid errors.
    pub fn row_activation(&self, p: &MixedStrategy) -> Result<Vec<u32>, CrossbarError> {
        Ok(p.to_grid_counts(self.intervals)?)
    }

    /// Column-group activation counts for a column strategy: action `j`
    /// activates `round(q_j · I)` of its `I` groups (each `t` lines wide),
    /// exactly as in the Fig. 4c example where `q = 0.75` activates 12 of
    /// 16 columns (3 of 4 groups).
    ///
    /// # Errors
    ///
    /// Propagates strategy-grid errors.
    pub fn col_activation(&self, q: &MixedStrategy) -> Result<Vec<u32>, CrossbarError> {
        Ok(q.to_grid_counts(self.intervals)?)
    }

    /// Current normalisation: a stored value `v` read with full activation
    /// contributes `I² · v` units of cell current, so analog currents are
    /// divided by `I² · i_on` to recover payoff units.
    pub fn current_denominator(&self, i_on: f64) -> f64 {
        let i2 = self.intervals as f64 * self.intervals as f64;
        i2 * i_on
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_parameters() {
        assert!(MappingSpec::new(0, 4).is_err());
        assert!(MappingSpec::new(4, 0).is_err());
    }

    #[test]
    fn physical_size_matches_fig4a() {
        let spec = MappingSpec::new(4, 4).unwrap();
        // Fig. 4c example: one element (n=m=1) needs a 4 x 16 crossbar.
        assert_eq!(spec.physical_size(1, 1), (4, 16));
        // 8x8 game at I=12, t=5.
        let spec = MappingSpec::new(12, 5).unwrap();
        assert_eq!(spec.physical_size(8, 8), (96, 480));
    }

    #[test]
    fn unary_pattern_stores_prefix() {
        let spec = MappingSpec::new(4, 4).unwrap();
        assert_eq!(
            spec.unary_pattern(3).unwrap(),
            vec![true, true, true, false]
        );
        assert_eq!(spec.unary_pattern(0).unwrap(), vec![false; 4]);
        assert!(matches!(
            spec.unary_pattern(5),
            Err(CrossbarError::ElementOverflow { .. })
        ));
    }

    #[test]
    fn activations_match_fig4c() {
        // p1 = 0.25 with I = 4 activates 1 row; q1 = 0.75 activates 3 groups.
        let spec = MappingSpec::new(4, 4).unwrap();
        let p = MixedStrategy::new(vec![0.25, 0.75]).unwrap();
        assert_eq!(spec.row_activation(&p).unwrap(), vec![1, 3]);
        let q = MixedStrategy::new(vec![0.75, 0.25]).unwrap();
        assert_eq!(spec.col_activation(&q).unwrap(), vec![3, 1]);
    }

    #[test]
    fn activation_counts_sum_to_intervals() {
        let spec = MappingSpec::new(12, 5).unwrap();
        let p = MixedStrategy::uniform(5).unwrap();
        let counts = spec.row_activation(&p).unwrap();
        assert_eq!(counts.iter().sum::<u32>(), 12);
    }

    #[test]
    fn current_denominator() {
        let spec = MappingSpec::new(4, 4).unwrap();
        assert!((spec.current_denominator(1e-6) - 16e-6).abs() < 1e-18);
    }
}
