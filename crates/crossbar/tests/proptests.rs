//! Property-based tests of the crossbar simulator.

use cnash_crossbar::{BiCrossbar, Crossbar, CrossbarConfig, MappingSpec, QuantizedPayoffs};
use cnash_device::cell::CellParams;
use cnash_device::variability::VariabilityModel;
use cnash_game::{BimatrixGame, Matrix, MixedStrategy};
use proptest::prelude::*;

/// Arbitrary small integer payoff matrix.
fn arb_int_matrix(n: usize, m: usize, max: u32) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(0..=max, n * m).prop_map(move |v| {
        Matrix::new(n, m, v.into_iter().map(f64::from).collect()).expect("valid dims")
    })
}

/// Activation counts summing to exactly `i` over `len` actions.
fn arb_counts(len: usize, i: u32) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..=i, len).prop_map(move |mut v| {
        // Repair to sum exactly i (deterministic largest-first trimming).
        let mut total: u32 = v.iter().sum();
        let mut k = 0;
        while total > i {
            if v[k % len] > 0 {
                v[k % len] -= 1;
                total -= 1;
            }
            k += 1;
        }
        let mut k = 0;
        while total < i {
            v[k % len] += 1;
            total += 1;
            k += 1;
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Noise-free crossbar VMV reads equal the exact bilinear form for any
    /// integer matrix and any grid activation.
    #[test]
    fn ideal_vmv_is_exact(
        m in arb_int_matrix(3, 3, 5),
        p in arb_counts(3, 6),
        q in arb_counts(3, 6),
    ) {
        let qp = QuantizedPayoffs::from_integer_matrix(&m).expect("integer");
        let spec = MappingSpec::new(6, qp.max_element().max(1)).expect("valid");
        let xbar = Crossbar::build(
            qp, spec, CellParams::default(), VariabilityModel::none(), 0,
        ).expect("builds");
        let current = xbar.read_vmv(&p, &q).expect("read");
        let val = xbar.current_to_value(current);
        let pv: Vec<f64> = p.iter().map(|&c| c as f64 / 6.0).collect();
        let qv: Vec<f64> = q.iter().map(|&c| c as f64 / 6.0).collect();
        let exact = m.bilinear(&pv, &qv).expect("shapes");
        prop_assert!((val - exact).abs() < 1e-3, "{val} vs {exact}");
    }

    /// Fast prefix-sum reads and naive cell sums agree bit-for-bit under
    /// full device variability.
    #[test]
    fn fast_equals_naive(
        m in arb_int_matrix(2, 4, 4),
        p in arb_counts(2, 4),
        q in arb_counts(4, 4),
        seed in 0u64..100,
    ) {
        let qp = QuantizedPayoffs::from_integer_matrix(&m).expect("integer");
        let spec = MappingSpec::new(4, qp.max_element().max(1)).expect("valid");
        let xbar = Crossbar::build(
            qp, spec, CellParams::default(), VariabilityModel::paper(), seed,
        ).expect("builds");
        let fast = xbar.read_vmv(&p, &q).expect("read");
        let naive = xbar.read_vmv_naive(&p, &q).expect("read");
        prop_assert!((fast - naive).abs() <= 1e-16 + fast.abs() * 1e-9);
    }

    /// Reads are monotone in activation: adding activation units never
    /// decreases the current.
    #[test]
    fn reads_monotone_in_activation(
        m in arb_int_matrix(3, 3, 4),
        q in arb_counts(3, 6),
        seed in 0u64..50,
    ) {
        let qp = QuantizedPayoffs::from_integer_matrix(&m).expect("integer");
        let spec = MappingSpec::new(6, qp.max_element().max(1)).expect("valid");
        let xbar = Crossbar::build(
            qp, spec, CellParams::default(), VariabilityModel::paper(), seed,
        ).expect("builds");
        let low = xbar.read_vmv(&[1, 0, 0], &q).expect("read");
        let high = xbar.read_vmv(&[6, 0, 0], &q).expect("read");
        prop_assert!(high >= low);
    }

    /// The hardware Nash gap of the ideal bi-crossbar is non-negative (up
    /// to numerical slack) everywhere on the grid, like the exact gap.
    #[test]
    fn ideal_hardware_gap_nonnegative(
        a in arb_int_matrix(2, 2, 4),
        b in arb_int_matrix(2, 2, 4),
        p in arb_counts(2, 12),
        q in arb_counts(2, 12),
    ) {
        let game = BimatrixGame::new("prop", a, b).expect("shapes");
        let xbar = BiCrossbar::build(&game, &CrossbarConfig::ideal(12), 0).expect("builds");
        let ps = MixedStrategy::from_grid_counts(&p, 12).expect("valid");
        let qs = MixedStrategy::from_grid_counts(&q, 12).expect("valid");
        let gap = xbar.nash_gap(&ps, &qs).expect("read");
        prop_assert!(gap > -1e-3, "hardware gap {gap} substantially negative");
    }

    /// Quantized payoffs always reconstruct the original matrix.
    #[test]
    fn quantization_round_trip(m in arb_int_matrix(4, 3, 9)) {
        let shifted = m.map(|x| x - 3.0); // introduce negatives
        let qp = QuantizedPayoffs::from_integer_matrix(&shifted).expect("integer");
        prop_assert!(qp.reconstruct().max_abs_diff(&shifted) < 1e-9);
    }
}
