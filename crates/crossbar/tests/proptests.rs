//! Property-based tests of the crossbar simulator.

use cnash_crossbar::{BiCrossbar, Crossbar, CrossbarConfig, MappingSpec, QuantizedPayoffs};
use cnash_device::cell::CellParams;
use cnash_device::variability::VariabilityModel;
use cnash_game::{BimatrixGame, Matrix, MixedStrategy};
use proptest::prelude::*;

/// Arbitrary small integer payoff matrix.
fn arb_int_matrix(n: usize, m: usize, max: u32) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(0..=max, n * m).prop_map(move |v| {
        Matrix::new(n, m, v.into_iter().map(f64::from).collect()).expect("valid dims")
    })
}

/// Activation counts summing to exactly `i` over `len` actions.
fn arb_counts(len: usize, i: u32) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..=i, len).prop_map(move |mut v| {
        // Repair to sum exactly i (deterministic largest-first trimming).
        let mut total: u32 = v.iter().sum();
        let mut k = 0;
        while total > i {
            if v[k % len] > 0 {
                v[k % len] -= 1;
                total -= 1;
            }
            k += 1;
        }
        let mut k = 0;
        while total < i {
            v[k % len] += 1;
            total += 1;
            k += 1;
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Noise-free crossbar VMV reads equal the exact bilinear form for any
    /// integer matrix and any grid activation.
    #[test]
    fn ideal_vmv_is_exact(
        m in arb_int_matrix(3, 3, 5),
        p in arb_counts(3, 6),
        q in arb_counts(3, 6),
    ) {
        let qp = QuantizedPayoffs::from_integer_matrix(&m).expect("integer");
        let spec = MappingSpec::new(6, qp.max_element().max(1)).expect("valid");
        let xbar = Crossbar::build(
            qp, spec, CellParams::default(), VariabilityModel::none(), 0,
        ).expect("builds");
        let current = xbar.read_vmv(&p, &q).expect("read");
        let val = xbar.current_to_value(current);
        let pv: Vec<f64> = p.iter().map(|&c| c as f64 / 6.0).collect();
        let qv: Vec<f64> = q.iter().map(|&c| c as f64 / 6.0).collect();
        let exact = m.bilinear(&pv, &qv).expect("shapes");
        prop_assert!((val - exact).abs() < 1e-3, "{val} vs {exact}");
    }

    /// Fast prefix-sum reads and naive cell sums agree bit-for-bit under
    /// full device variability.
    #[test]
    fn fast_equals_naive(
        m in arb_int_matrix(2, 4, 4),
        p in arb_counts(2, 4),
        q in arb_counts(4, 4),
        seed in 0u64..100,
    ) {
        let qp = QuantizedPayoffs::from_integer_matrix(&m).expect("integer");
        let spec = MappingSpec::new(4, qp.max_element().max(1)).expect("valid");
        let xbar = Crossbar::build(
            qp, spec, CellParams::default(), VariabilityModel::paper(), seed,
        ).expect("builds");
        let fast = xbar.read_vmv(&p, &q).expect("read");
        let naive = xbar.read_vmv_naive(&p, &q).expect("read");
        prop_assert!((fast - naive).abs() <= 1e-16 + fast.abs() * 1e-9);
    }

    /// Reads are monotone in activation: adding activation units never
    /// decreases the current.
    #[test]
    fn reads_monotone_in_activation(
        m in arb_int_matrix(3, 3, 4),
        q in arb_counts(3, 6),
        seed in 0u64..50,
    ) {
        let qp = QuantizedPayoffs::from_integer_matrix(&m).expect("integer");
        let spec = MappingSpec::new(6, qp.max_element().max(1)).expect("valid");
        let xbar = Crossbar::build(
            qp, spec, CellParams::default(), VariabilityModel::paper(), seed,
        ).expect("builds");
        let low = xbar.read_vmv(&[1, 0, 0], &q).expect("read");
        let high = xbar.read_vmv(&[6, 0, 0], &q).expect("read");
        prop_assert!(high >= low);
    }

    /// The hardware Nash gap of the ideal bi-crossbar is non-negative (up
    /// to numerical slack) everywhere on the grid, like the exact gap.
    #[test]
    fn ideal_hardware_gap_nonnegative(
        a in arb_int_matrix(2, 2, 4),
        b in arb_int_matrix(2, 2, 4),
        p in arb_counts(2, 12),
        q in arb_counts(2, 12),
    ) {
        let game = BimatrixGame::new("prop", a, b).expect("shapes");
        let xbar = BiCrossbar::build(&game, &CrossbarConfig::ideal(12), 0).expect("builds");
        let ps = MixedStrategy::from_grid_counts(&p, 12).expect("valid");
        let qs = MixedStrategy::from_grid_counts(&q, 12).expect("valid");
        let gap = xbar.nash_gap(&ps, &qs).expect("read");
        prop_assert!(gap > -1e-3, "hardware gap {gap} substantially negative");
    }

    /// Quantized payoffs always reconstruct the original matrix.
    #[test]
    fn quantization_round_trip(m in arb_int_matrix(4, 3, 9)) {
        let shifted = m.map(|x| x - 3.0); // introduce negatives
        let qp = QuantizedPayoffs::from_integer_matrix(&shifted).expect("integer");
        prop_assert!(qp.reconstruct().max_abs_diff(&shifted) < 1e-9);
    }

    /// **Delta-vs-full equivalence (Eq. 9 hot path).** Over random
    /// bimatrix games, hardware instances (ideal and full paper noise)
    /// and random propose/commit/revert walks, the incrementally
    /// maintained energy is *bit-identical* to a from-scratch full
    /// evaluation at every visited state.
    #[test]
    fn delta_walk_bit_identical_to_full_evaluation(
        n in 2usize..5,
        m in 2usize..5,
        seed in 0u64..200,
        paper in prop::bool::ANY,
        steps in 1usize..60,
    ) {
        use cnash_anneal::delta::DeltaEnergy;
        use cnash_anneal::moves::GridStrategyPair;
        use cnash_crossbar::{DeltaBiCrossbar, ExactMax};
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};

        let game = cnash_game::generators::random_integer_game(n, m, 6, seed)
            .expect("valid dims");
        let cfg = if paper {
            CrossbarConfig::paper(12)
        } else {
            CrossbarConfig::ideal(12)
        };
        let hw = BiCrossbar::build(&game, &cfg, seed).expect("integer payoffs map");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD417A);
        let init = GridStrategyPair::random(n, m, 12, &mut rng).expect("non-empty");
        let mut eval = DeltaBiCrossbar::new(&hw, init, ExactMax).expect("geometry");
        for _ in 0..steps {
            let Some(mv) = eval.sample_move(&mut rng) else { break };
            let before = eval.energy();
            let delta = eval.propose(mv);
            prop_assert_eq!(delta, eval.energy() - before);
            if rng.random::<bool>() {
                eval.commit();
            } else {
                eval.revert();
                prop_assert_eq!(eval.energy(), before);
            }
            // Full evaluation: rebuild every cache from scratch at the
            // current state. Must agree bit for bit.
            let full = DeltaBiCrossbar::new(&hw, eval.state().clone(), ExactMax)
                .expect("geometry")
                .energy();
            prop_assert_eq!(eval.energy(), full);
        }
    }

    /// **Delta-vs-full SA equivalence.** The incremental Metropolis
    /// driver and the classic driver re-evaluating every candidate from
    /// scratch walk bit-identical trajectories: same best energy, same
    /// best state, same acceptance count.
    #[test]
    fn delta_sa_run_matches_full_sa_run(
        n in 2usize..4,
        m in 2usize..4,
        seed in 0u64..50,
    ) {
        use cnash_anneal::delta::{simulated_annealing_delta, DeltaEnergy};
        use cnash_anneal::engine::{simulated_annealing, SaOptions};
        use cnash_anneal::moves::GridStrategyPair;
        use cnash_anneal::schedule::Schedule;
        use cnash_crossbar::{DeltaBiCrossbar, ExactMax};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let game = cnash_game::generators::random_integer_game(n, m, 5, seed)
            .expect("valid dims");
        let hw = BiCrossbar::build(&game, &CrossbarConfig::paper(12), seed).expect("maps");
        let mut rng = StdRng::seed_from_u64(seed);
        let init = GridStrategyPair::random(n, m, 12, &mut rng).expect("non-empty");
        let opts = SaOptions {
            iterations: 150,
            schedule: Schedule::geometric(1.0, 1e-3),
            seed,
            target_energy: Some(0.05),
            record_trace: true,
            record_hits: true,
        };
        let full = simulated_annealing(
            init.clone(),
            |s| {
                DeltaBiCrossbar::new(&hw, s.clone(), ExactMax)
                    .expect("geometry")
                    .energy()
            },
            |s, r| s.neighbour(r),
            &opts,
        );
        let mut eval = DeltaBiCrossbar::new(&hw, init, ExactMax).expect("geometry");
        let delta = simulated_annealing_delta(&mut eval, &opts);
        prop_assert_eq!(full, delta);
    }
}
