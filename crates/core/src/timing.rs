//! Time-to-solution models (paper Fig. 10).
//!
//! The paper derives C-Nash run times from the operational frequency of
//! the FeFET crossbar array demonstrated by Soliman et al. \[29], scaled to
//! 1-bit/1-bit precision, and compares against D-Wave QPU access times.
//! This module holds the per-iteration latency model of the CiM pipeline;
//! the QPU model lives in [`cnash_qubo::dwave::DWaveModel`].

use cnash_wta::WtaConfig;

/// Per-component latencies of one two-phase SA iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CimTimingModel {
    /// Crossbar read settling time per phase (s). Derived from the
    /// ~500 MHz 1-bit array operation of \[29] plus DESTINY-extracted
    /// 28 nm wiring parasitics.
    pub crossbar_settle: f64,
    /// ADC conversion time per phase (s).
    pub adc_time: f64,
    /// SA logic update (add/sub, compare, accept) time (s).
    pub sa_logic_time: f64,
    /// One WTA cell's settling latency (s); the tree adds
    /// `⌈log₂D⌉ × latency` to Phase 1 (Fig. 5c: 0.08 ns).
    pub wta_cell_latency: f64,
}

impl CimTimingModel {
    /// Nominal 28 nm model.
    pub fn nominal() -> Self {
        Self {
            crossbar_settle: 2e-9,
            adc_time: 1e-9,
            sa_logic_time: 1e-9,
            wta_cell_latency: WtaConfig::nominal().latency,
        }
    }

    /// Latency of one SA iteration for a game with `n × m` actions:
    /// Phase 1 (crossbar + WTA tree + ADC) followed by Phase 2
    /// (crossbar + ADC) and the SA logic update.
    pub fn iteration_latency(&self, row_actions: usize, col_actions: usize) -> f64 {
        let depth = |d: usize| (d.max(2) as f64).log2().ceil();
        let wta = depth(row_actions).max(depth(col_actions)) * self.wta_cell_latency;
        let phase1 = self.crossbar_settle + wta + self.adc_time;
        let phase2 = self.crossbar_settle + self.adc_time;
        phase1 + phase2 + self.sa_logic_time
    }

    /// Model time of a full SA run.
    pub fn run_time(&self, iterations: usize, row_actions: usize, col_actions: usize) -> f64 {
        iterations as f64 * self.iteration_latency(row_actions, col_actions)
    }
}

impl Default for CimTimingModel {
    fn default() -> Self {
        Self::nominal()
    }
}

/// Classic restart-based expected time to solution at 99 % confidence:
/// `TTS₉₉ = t_run · ln(1 − 0.99) / ln(1 − p)` for success probability `p`
/// per run. Returns `t_run` if `p ≥ 1`, infinity if `p ≤ 0`.
pub fn tts99(t_run: f64, p_success: f64) -> f64 {
    if p_success >= 1.0 {
        t_run
    } else if p_success <= 0.0 {
        f64::INFINITY
    } else {
        t_run * (1.0 - 0.99f64).ln() / (1.0 - p_success).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_latency_breakdown() {
        let t = CimTimingModel::nominal();
        // 2x2 game: depth 1 -> 2 + 0.08 + 1 + 2 + 1 + 1 = 7.08 ns.
        let lat = t.iteration_latency(2, 2);
        assert!((lat - 7.08e-9).abs() < 1e-12, "{lat}");
    }

    #[test]
    fn larger_games_have_deeper_wta() {
        let t = CimTimingModel::nominal();
        assert!(t.iteration_latency(8, 8) > t.iteration_latency(2, 2));
        // 8 actions: depth 3 -> +0.24 ns over the 2-action 0.08 ns.
        let d = t.iteration_latency(8, 8) - t.iteration_latency(2, 2);
        assert!((d - 0.16e-9).abs() < 1e-12);
    }

    #[test]
    fn run_time_scales_linearly() {
        let t = CimTimingModel::nominal();
        let one = t.run_time(1, 2, 2);
        assert!((t.run_time(1000, 2, 2) - 1000.0 * one).abs() < 1e-15);
    }

    #[test]
    fn cim_runs_are_orders_of_magnitude_below_qpu_access() {
        // The mechanism behind Fig. 10: one full 10000-iteration C-Nash
        // run is far cheaper than even a handful of QPU samples.
        let t = CimTimingModel::nominal();
        let cim = t.run_time(10_000, 2, 2);
        let qpu = cnash_qubo::dwave::DWaveModel::dwave_2000q().qpu_access_time(100);
        assert!(qpu / cim > 100.0, "qpu {qpu} vs cim {cim}");
    }

    #[test]
    fn tts99_properties() {
        assert_eq!(tts99(1.0, 1.0), 1.0);
        assert!(tts99(1.0, 0.0).is_infinite());
        // p = 0.5: ln(0.01)/ln(0.5) ≈ 6.64 runs.
        assert!((tts99(1.0, 0.5) - 6.6438).abs() < 1e-3);
        // Higher success, lower TTS.
        assert!(tts99(1.0, 0.9) < tts99(1.0, 0.5));
    }
}
