//! Equilibrium verification certificates (extension).
//!
//! A solver's answer is only as good as its audit trail. A
//! [`Certificate`] packages everything needed to check a claimed
//! equilibrium *without trusting the solver*: per-action payoffs against
//! the claimed opponent strategy, per-player regrets, the support, and
//! the best-response action sets. `Display` renders a human-readable
//! verification report.

use cnash_game::{BimatrixGame, GameError, MixedStrategy};
use std::fmt;

/// A self-contained verification record for a claimed equilibrium.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Game name.
    pub game: String,
    /// Claimed row strategy.
    pub row: MixedStrategy,
    /// Claimed column strategy.
    pub col: MixedStrategy,
    /// Row player's payoff per action against `col` (`Mq`).
    pub row_action_payoffs: Vec<f64>,
    /// Column player's payoff per action against `row` (`Nᵀp`).
    pub col_action_payoffs: Vec<f64>,
    /// Achieved payoffs `(pᵀMq, pᵀNq)`.
    pub achieved: (f64, f64),
    /// Per-player regrets (best response minus achieved).
    pub regrets: (f64, f64),
    /// Verification tolerance used.
    pub tolerance: f64,
}

impl Certificate {
    /// Builds the certificate by evaluating the game exactly.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::ShapeMismatch`] if the strategies do not
    /// match the game.
    pub fn build(
        game: &BimatrixGame,
        row: MixedStrategy,
        col: MixedStrategy,
        tolerance: f64,
    ) -> Result<Self, GameError> {
        let row_action_payoffs = game.row_payoff_vector(&col)?;
        let col_action_payoffs = game.col_payoff_vector(&row)?;
        let achieved = game.payoffs(&row, &col)?;
        let regrets = game.regrets(&row, &col)?;
        Ok(Self {
            game: game.name().to_string(),
            row,
            col,
            row_action_payoffs,
            col_action_payoffs,
            achieved,
            regrets,
            tolerance,
        })
    }

    /// `true` if the certificate proves an ε-equilibrium at its
    /// tolerance.
    pub fn is_valid(&self) -> bool {
        self.regrets.0 <= self.tolerance && self.regrets.1 <= self.tolerance
    }

    /// The key *support condition*: every action played with positive
    /// probability must be a best response (within tolerance). This is
    /// the textbook characterisation the crossbar's MAX terms encode.
    pub fn support_condition_holds(&self) -> bool {
        let best_row = self
            .row_action_payoffs
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let best_col = self
            .col_action_payoffs
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let row_ok = self
            .row
            .support(1e-9)
            .into_iter()
            .all(|i| self.row_action_payoffs[i] >= best_row - self.tolerance);
        let col_ok = self
            .col
            .support(1e-9)
            .into_iter()
            .all(|j| self.col_action_payoffs[j] >= best_col - self.tolerance);
        row_ok && col_ok
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "equilibrium certificate — {}", self.game)?;
        writeln!(f, "  p* = {}", self.row)?;
        writeln!(f, "  q* = {}", self.col)?;
        writeln!(
            f,
            "  achieved payoffs: f1 = {:.4}, f2 = {:.4}",
            self.achieved.0, self.achieved.1
        )?;
        writeln!(f, "  row action payoffs vs q*:")?;
        for (i, v) in self.row_action_payoffs.iter().enumerate() {
            let mark = if self.row.prob(i) > 1e-9 { "*" } else { " " };
            writeln!(f, "    {mark} a{i}: {v:.4}")?;
        }
        writeln!(f, "  col action payoffs vs p*:")?;
        for (j, v) in self.col_action_payoffs.iter().enumerate() {
            let mark = if self.col.prob(j) > 1e-9 { "*" } else { " " };
            writeln!(f, "    {mark} b{j}: {v:.4}")?;
        }
        writeln!(
            f,
            "  regrets: ({:.2e}, {:.2e}) at tolerance {:.1e}",
            self.regrets.0, self.regrets.1, self.tolerance
        )?;
        write!(
            f,
            "  verdict: {}",
            if self.is_valid() { "VALID" } else { "INVALID" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnash_game::games;

    #[test]
    fn valid_certificate_for_true_equilibrium() {
        let g = games::battle_of_the_sexes();
        let p = MixedStrategy::new(vec![2.0 / 3.0, 1.0 / 3.0]).unwrap();
        let q = MixedStrategy::new(vec![1.0 / 3.0, 2.0 / 3.0]).unwrap();
        let c = Certificate::build(&g, p, q, 1e-9).unwrap();
        assert!(c.is_valid());
        assert!(c.support_condition_holds());
        assert!(c.regrets.0.abs() < 1e-12);
    }

    #[test]
    fn invalid_certificate_for_non_equilibrium() {
        let g = games::battle_of_the_sexes();
        let p = MixedStrategy::pure(2, 0).unwrap();
        let q = MixedStrategy::pure(2, 1).unwrap();
        let c = Certificate::build(&g, p, q, 1e-9).unwrap();
        assert!(!c.is_valid());
    }

    #[test]
    fn support_condition_detects_bad_support() {
        // Uniform p in BoS plays action 1 while action 0 is strictly
        // better against q = pure(0): support condition fails.
        let g = games::battle_of_the_sexes();
        let p = MixedStrategy::uniform(2).unwrap();
        let q = MixedStrategy::pure(2, 0).unwrap();
        let c = Certificate::build(&g, p, q, 1e-9).unwrap();
        assert!(!c.support_condition_holds());
    }

    #[test]
    fn display_reports_verdict_and_support() {
        let g = games::prisoners_dilemma();
        let p = MixedStrategy::pure(2, 1).unwrap();
        let c = Certificate::build(&g, p.clone(), p, 1e-9).unwrap();
        let s = c.to_string();
        assert!(s.contains("VALID"));
        assert!(s.contains("* a1"));
        assert!(s.contains("  a0") || s.contains("   a0"));
    }

    #[test]
    fn certificates_for_all_enumerated_equilibria() {
        for b in games::paper_benchmarks() {
            for e in cnash_game::support_enum::enumerate_equilibria(&b.game, 1e-9) {
                let c = Certificate::build(&b.game, e.row, e.col, 1e-7).unwrap();
                assert!(c.is_valid(), "{}: {c}", b.game.name());
                assert!(c.support_condition_holds());
            }
        }
    }
}
