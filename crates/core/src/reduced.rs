//! Dominance-reduced C-Nash solving (extension).
//!
//! Strictly dominated actions never appear in equilibria, so eliminating
//! them *before* mapping the game onto the crossbar shrinks the hardware
//! without changing the answer: the 8-action Modified Prisoner's Dilemma
//! drops to its 4-action defect block, quartering the cell count and
//! deepening nothing. [`ReducedCNashSolver`] performs the reduction,
//! solves on the small crossbar, and lifts every returned strategy back
//! to the original action space.

use crate::config::CNashConfig;
use crate::error::CoreError;
use crate::solver::{CNashSolver, NashSolver, RunOutcome};
use cnash_game::reduction::{eliminate_dominated, ReducedGame};
use cnash_game::{BimatrixGame, Game, MixedStrategy, Profile};

/// C-Nash on the dominance-reduced game, reporting in the original
/// action space.
#[derive(Debug, Clone)]
pub struct ReducedCNashSolver {
    name: String,
    original: BimatrixGame,
    reduction: ReducedGame,
    inner: CNashSolver,
}

impl ReducedCNashSolver {
    /// Reduces `game` and builds the hardware for the reduced instance.
    ///
    /// # Errors
    ///
    /// Propagates reduction and hardware-mapping errors.
    pub fn new(
        game: &BimatrixGame,
        config: CNashConfig,
        hardware_seed: u64,
    ) -> Result<Self, CoreError> {
        let reduction = eliminate_dominated(game)?;
        let inner = CNashSolver::new(&reduction.game, config, hardware_seed)?;
        Ok(Self {
            name: "C-Nash (dominance-reduced)".into(),
            original: game.clone(),
            reduction,
            inner,
        })
    }

    /// The reduction applied (for inspecting savings).
    pub fn reduction(&self) -> &ReducedGame {
        &self.reduction
    }

    /// Physical cells of the reduced `M` array vs the cells a direct
    /// mapping would need: `(reduced, direct)`.
    pub fn cell_savings(&self) -> (usize, usize) {
        let (r, c) = self.inner.hardware().array_m().physical_size();
        let reduced = r * c;
        // Direct mapping uses the same I and t on the full action counts.
        let scale_rows =
            self.original.row_actions() as f64 / self.reduction.game.row_actions() as f64;
        let scale_cols =
            self.original.col_actions() as f64 / self.reduction.game.col_actions() as f64;
        let direct = (reduced as f64 * scale_rows * scale_cols).round() as usize;
        (reduced, direct)
    }

    fn lift(&self, p: &MixedStrategy, q: &MixedStrategy) -> (MixedStrategy, MixedStrategy) {
        let lifted_p = self
            .reduction
            .lift_row(p, self.original.row_actions())
            .expect("reduced profile lifts");
        let lifted_q = self
            .reduction
            .lift_col(q, self.original.col_actions())
            .expect("reduced profile lifts");
        (lifted_p, lifted_q)
    }
}

impl NashSolver for ReducedCNashSolver {
    fn name(&self) -> &str {
        &self.name
    }

    fn game(&self) -> &dyn Game {
        &self.original
    }

    fn run(&self, seed: u64) -> RunOutcome {
        let inner_out = self.inner.run(seed);
        let lift_profile = |profile: &Profile| {
            let (p, q) = profile.as_pair().expect("inner solver is bimatrix");
            let (p, q) = self.lift(p, q);
            Profile::pair(p, q)
        };
        let profile = inner_out.profile.as_ref().map(lift_profile);
        let is_eq = profile
            .as_ref()
            .and_then(Profile::as_pair)
            .map(|(p, q)| self.original.is_equilibrium(p, q, 1e-6))
            .unwrap_or(false);
        let solutions = inner_out.solutions.iter().map(lift_profile).collect();
        RunOutcome {
            profile,
            is_equilibrium: is_eq,
            hit_time: inner_out.hit_time,
            total_time: inner_out.total_time,
            measured_objective: inner_out.measured_objective,
            solutions,
            solutions_truncated: inner_out.solutions_truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentRunner;
    use cnash_game::games;
    use cnash_game::support_enum::enumerate_equilibria;

    #[test]
    fn reduced_solver_solves_mpd8_in_original_space() {
        let g = games::modified_prisoners_dilemma();
        let s =
            ReducedCNashSolver::new(&g, CNashConfig::paper(12).with_iterations(5000), 0).unwrap();
        let out = s.run(1);
        assert!(out.is_equilibrium);
        let (p, q) = out.into_pair().expect("profile");
        assert_eq!(p.len(), 8, "profile must be in the original action space");
        assert_eq!(q.len(), 8);
        // All mass on the defect block.
        for a in p.support(1e-9) {
            assert!(a >= 4);
        }
    }

    #[test]
    fn cell_savings_are_4x_for_mpd8() {
        let g = games::modified_prisoners_dilemma();
        let s = ReducedCNashSolver::new(&g, CNashConfig::paper(12), 0).unwrap();
        let (reduced, direct) = s.cell_savings();
        assert_eq!(direct, reduced * 4, "8->4 actions on both sides");
    }

    #[test]
    fn coverage_matches_unreduced_ground_truth() {
        let g = games::modified_prisoners_dilemma();
        let truth = enumerate_equilibria(&g, 1e-9);
        let s =
            ReducedCNashSolver::new(&g, CNashConfig::paper(12).with_iterations(10_000), 0).unwrap();
        let runner = ExperimentRunner::new(30, 0);
        let r = runner.evaluate(&s, &truth);
        assert!(r.success_rate > 80.0, "success {}", r.success_rate);
        assert!(
            r.covered >= 10,
            "reduced solver covered only {}/{}",
            r.covered,
            r.target_count
        );
    }

    #[test]
    fn undominated_games_pass_through() {
        let g = games::battle_of_the_sexes();
        let s = ReducedCNashSolver::new(&g, CNashConfig::ideal(12), 0).unwrap();
        assert_eq!(s.reduction().rounds, 0);
        assert!(s.run(3).is_equilibrium);
    }
}
