//! Counterfactual-regret solver family (extension): external-sampling
//! regret matching over the generic [`Game`] trait.
//!
//! [`CfrSolver`] is the first solver in the workspace written against
//! [`Game`] alone — it never downcasts to a bimatrix view, so it runs
//! unchanged on any N-player strategic-form game. Each iteration samples
//! every opponent's action from their current regret-matching strategy
//! (external sampling, Lanctot et al. 2009), updates clipped cumulative
//! regrets (RM+, Tammelin 2014), and folds the current strategy into a
//! linearly weighted average. The average profile converges to the
//! coarse-correlated-equilibrium set; for the two-player slice this is
//! cross-checked against the exact oracles by the `diffcheck` harness.
//!
//! # Claim discipline
//!
//! A learning dynamic's average strategy is an *approximate* profile, so
//! the solver never claims it as an equilibrium. Instead it keeps two
//! candidates per checkpoint:
//!
//! * the **best average iterate** — the checkpointed average profile
//!   with the lowest exact exploitability seen so far, returned with
//!   `is_equilibrium: false` and the exploitability as
//!   `measured_objective`, and
//! * the **pure snap** — the per-player argmax of the average strategy,
//!   claimed (`is_equilibrium: true`) only when its exact per-player
//!   regrets are within [`CfrConfig::claim_tolerance`]. Pure profiles
//!   evaluate exactly in floating point, so a claim is a certificate,
//!   not a heuristic; the run stops at the claiming checkpoint.

use crate::error::CoreError;
use crate::solver::{NashSolver, RunOutcome};
use cnash_anneal::engine::HitRecorder;
use cnash_game::{Game, MixedStrategy, Profile};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Nominal per-iteration latency (seconds) used for the abstract time
/// axis of [`RunOutcome`]. CFR is a software baseline with no hardware
/// time model; a fixed constant keeps runs bit-reproducible (wall-clock
/// timing would break golden-stream comparisons).
const CFR_ITERATION_TIME: f64 = 20e-9;

/// Seed-stream tag so CFR draws differ from the SA solvers at equal
/// seeds.
const CFR_SEED_TAG: u64 = 0xCF12_3CF1;

/// Tuning knobs for [`CfrSolver`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CfrConfig {
    /// External-sampling iterations per run.
    pub iterations: usize,
    /// Number of evenly spaced checkpoints at which the average profile
    /// is exactly evaluated (and the pure snap tested). Clamped to at
    /// least one; the final iteration always checkpoints.
    pub checkpoints: usize,
    /// Maximum exact per-player regret for the pure snap to be claimed
    /// as an equilibrium.
    pub claim_tolerance: f64,
}

impl CfrConfig {
    /// Default configuration sized for the benchmark-scale games in
    /// this workspace (actions ≤ 8 per player).
    pub fn new(iterations: usize) -> Self {
        Self {
            iterations,
            checkpoints: 64,
            claim_tolerance: 1e-9,
        }
    }
}

impl Default for CfrConfig {
    fn default() -> Self {
        Self::new(50_000)
    }
}

/// External-sampling CFR solver over any [`Game`].
pub struct CfrSolver {
    game: Box<dyn Game>,
    config: CfrConfig,
}

impl CfrSolver {
    /// Wraps `game` with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `iterations` is zero, the
    /// game has no players, or any player has an empty action set.
    pub fn new(game: Box<dyn Game>, config: CfrConfig) -> Result<Self, CoreError> {
        if config.iterations == 0 {
            return Err(CoreError::InvalidConfig("cfr needs iterations > 0".into()));
        }
        if game.players() == 0 {
            return Err(CoreError::InvalidConfig(
                "cfr needs at least 1 player".into(),
            ));
        }
        for p in 0..game.players() {
            if game.num_actions(p) == 0 {
                return Err(CoreError::InvalidConfig(format!(
                    "cfr needs a non-empty action set for player {p}"
                )));
            }
        }
        Ok(Self { game, config })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &CfrConfig {
        &self.config
    }

    /// Regret-matching strategy: positive regrets normalised, uniform
    /// when no action has positive regret.
    fn matched_strategy(regrets: &[f64]) -> Vec<f64> {
        let positive: f64 = regrets.iter().filter(|r| **r > 0.0).sum();
        if positive > 0.0 {
            regrets.iter().map(|r| r.max(0.0) / positive).collect()
        } else {
            vec![1.0 / regrets.len() as f64; regrets.len()]
        }
    }

    fn sample(strategy: &[f64], rng: &mut StdRng) -> usize {
        let draw: f64 = rng.random();
        let mut acc = 0.0;
        for (a, w) in strategy.iter().enumerate() {
            acc += w;
            if draw < acc {
                return a;
            }
        }
        strategy.len() - 1
    }

    /// Normalises the weighted strategy sums into a [`Profile`].
    fn average_profile(sums: &[Vec<f64>]) -> Profile {
        let strategies = sums
            .iter()
            .map(|s| {
                let total: f64 = s.iter().sum();
                MixedStrategy::new(s.iter().map(|w| w / total).collect())
                    .expect("weighted sums normalise to a distribution")
            })
            .collect();
        Profile::new(strategies).expect("game has at least one player")
    }

    /// Per-player argmax of the average, as a pure profile.
    fn pure_snap(sums: &[Vec<f64>]) -> Profile {
        let strategies = sums
            .iter()
            .map(|s| {
                let mut best = 0;
                for (a, w) in s.iter().enumerate() {
                    if *w > s[best] {
                        best = a;
                    }
                }
                MixedStrategy::pure(s.len(), best).expect("argmax is in range")
            })
            .collect();
        Profile::new(strategies).expect("game has at least one player")
    }

    /// Largest exact per-player regret of `profile` (∞-norm, not the
    /// exploitability sum — claims bound every player individually).
    fn max_regret(&self, profile: &Profile) -> f64 {
        (0..self.game.players())
            .map(|p| self.game.regret(p, profile))
            .fold(0.0, f64::max)
    }
}

impl NashSolver for CfrSolver {
    fn name(&self) -> &str {
        "cfr"
    }

    fn game(&self) -> &dyn Game {
        self.game.as_ref()
    }

    fn run(&self, seed: u64) -> RunOutcome {
        let game = self.game.as_ref();
        let players = game.players();
        let mut rng = StdRng::seed_from_u64(seed ^ CFR_SEED_TAG);
        let mut regrets: Vec<Vec<f64>> = (0..players)
            .map(|p| vec![0.0; game.num_actions(p)])
            .collect();
        let mut sums: Vec<Vec<f64>> = (0..players)
            .map(|p| vec![0.0; game.num_actions(p)])
            .collect();
        let every = (self.config.iterations / self.config.checkpoints.max(1)).max(1);

        let mut best: Option<(Profile, f64)> = None;
        let mut claim: Option<(Profile, usize)> = None;
        let mut solutions = HitRecorder::new(true);
        let mut ran = 0;

        for t in 1..=self.config.iterations {
            ran = t;
            let strategies: Vec<Vec<f64>> =
                regrets.iter().map(|r| Self::matched_strategy(r)).collect();
            // External sampling: one joint pure draw from the current
            // strategies serves every traverser this iteration.
            let sampled: Vec<usize> = strategies
                .iter()
                .map(|s| Self::sample(s, &mut rng))
                .collect();
            for p in 0..players {
                let mut actions = sampled.clone();
                let utilities: Vec<f64> = (0..game.num_actions(p))
                    .map(|a| {
                        actions[p] = a;
                        game.pure_payoff(p, &actions)
                    })
                    .collect();
                let node_value: f64 = strategies[p]
                    .iter()
                    .zip(&utilities)
                    .map(|(w, u)| w * u)
                    .sum();
                for (a, u) in utilities.iter().enumerate() {
                    // RM+: clip cumulative regrets at zero.
                    regrets[p][a] = (regrets[p][a] + u - node_value).max(0.0);
                }
                // Linear averaging: later iterates dominate the average.
                for (a, w) in strategies[p].iter().enumerate() {
                    sums[p][a] += t as f64 * w;
                }
            }
            if t % every == 0 || t == self.config.iterations {
                let snap = Self::pure_snap(&sums);
                if self.max_regret(&snap) <= self.config.claim_tolerance {
                    solutions.record(&snap);
                    claim = Some((snap, t));
                    break;
                }
                let average = Self::average_profile(&sums);
                let exploitability = game.exploitability(&average);
                if best.as_ref().is_none_or(|(_, e)| exploitability < *e) {
                    best = Some((average, exploitability));
                }
            }
        }

        let (solutions, solutions_truncated) = solutions.into_parts();
        let total_time = ran as f64 * CFR_ITERATION_TIME;
        match claim {
            Some((snap, t)) => {
                let objective = game.exploitability(&snap);
                RunOutcome {
                    profile: Some(snap),
                    is_equilibrium: true,
                    hit_time: Some(t as f64 * CFR_ITERATION_TIME),
                    total_time,
                    measured_objective: objective,
                    solutions,
                    solutions_truncated,
                }
            }
            None => {
                let (average, exploitability) = best.expect("final iteration always checkpoints");
                RunOutcome {
                    profile: Some(average),
                    is_equilibrium: false,
                    hit_time: None,
                    total_time,
                    measured_objective: exploitability,
                    solutions,
                    solutions_truncated,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnash_game::games;

    fn solver(game: impl Game + 'static, iterations: usize) -> CfrSolver {
        CfrSolver::new(Box::new(game), CfrConfig::new(iterations)).unwrap()
    }

    #[test]
    fn claims_the_pure_equilibrium_of_prisoners_dilemma() {
        let s = solver(games::prisoners_dilemma(), 5_000);
        let out = s.run(0);
        assert!(out.is_equilibrium);
        assert!(out.hit_time.is_some());
        assert!(out.measured_objective.abs() < 1e-12);
        let (p, q) = out.pair().expect("bimatrix profile");
        assert_eq!(p.pure_action(1e-9), Some(1), "defect is dominant");
        assert_eq!(q.pure_action(1e-9), Some(1));
    }

    #[test]
    fn claims_are_exactly_verified_on_bos() {
        let g = games::battle_of_the_sexes();
        let s = solver(g.clone(), 20_000);
        for seed in 0..5 {
            let out = s.run(seed);
            if out.is_equilibrium {
                let (p, q) = out.pair().expect("bimatrix profile");
                assert!(g.is_equilibrium(p, q, 1e-12));
            }
        }
    }

    #[test]
    fn never_claims_on_matching_pennies_but_converges() {
        // The unique NE is fully mixed — no pure snap can ever verify,
        // so CFR must report a low-exploitability average instead.
        let s = solver(games::matching_pennies(), 50_000);
        let out = s.run(3);
        assert!(!out.is_equilibrium);
        assert!(out.hit_time.is_none());
        assert!(
            out.measured_objective < 1e-2,
            "exploitability {}",
            out.measured_objective
        );
        let (p, _) = out.pair().expect("bimatrix profile");
        assert!((p.prob(0) - 0.5).abs() < 0.05);
    }

    #[test]
    fn runs_are_reproducible() {
        let s = solver(games::bird_game(), 2_000);
        assert_eq!(s.run(7), s.run(7));
    }

    #[test]
    fn solves_a_three_player_game_through_the_trait() {
        // Pure coordination for three players: payoff 1 iff everyone
        // picks the same action. No bimatrix view exists, which is the
        // point — CFR runs on the trait alone.
        struct Coordination3;
        impl Game for Coordination3 {
            fn name(&self) -> &str {
                "coordination-3p"
            }
            fn players(&self) -> usize {
                3
            }
            fn num_actions(&self, _player: usize) -> usize {
                2
            }
            fn pure_payoff(&self, _player: usize, actions: &[usize]) -> f64 {
                if actions.iter().all(|a| *a == actions[0]) {
                    1.0
                } else {
                    0.0
                }
            }
            fn fingerprint(&self) -> u64 {
                3
            }
        }
        let s = solver(Coordination3, 10_000);
        assert!(s.game().as_bimatrix().is_none());
        let out = s.run(1);
        assert!(out.is_equilibrium, "3-player coordination has pure NEs");
        let profile = out.profile.expect("profile");
        assert_eq!(profile.players(), 3);
        let first = profile.strategy(0).pure_action(1e-9);
        assert!(first.is_some());
        for p in 1..3 {
            assert_eq!(profile.strategy(p).pure_action(1e-9), first);
        }
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(CfrSolver::new(Box::new(games::bird_game()), CfrConfig::new(0)).is_err());
    }
}
