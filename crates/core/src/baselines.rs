//! The paper's baselines: S-QUBO on emulated D-Wave annealers.

use crate::error::CoreError;
use crate::solver::{NashSolver, RunOutcome};
use cnash_game::{BimatrixGame, Game, Profile};
use cnash_qubo::dwave::DWaveModel;
use cnash_qubo::squbo::{SQubo, SQuboWeights};
use std::sync::Arc;

/// A quantum-annealer Nash solver: Eq. 6 S-QUBO + emulated QPU sampling.
///
/// One "run" programs the QUBO once and draws `reads_per_run` samples; the
/// returned solution is the lowest-energy sample. Time accounting follows
/// QPU access time; the hit time is the access time up to the first sample
/// that decodes to a true equilibrium.
#[derive(Debug, Clone)]
pub struct DWaveNashSolver {
    name: String,
    game: BimatrixGame,
    model: DWaveModel,
    squbo: Arc<SQubo>,
    reads_per_run: usize,
}

impl DWaveNashSolver {
    /// Builds the S-QUBO for `game` and wraps the device model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SQubo`] if the game's payoffs cannot be
    /// binary-encoded (non-integer after offsetting).
    pub fn new(
        game: &BimatrixGame,
        model: DWaveModel,
        reads_per_run: usize,
    ) -> Result<Self, CoreError> {
        let squbo = SQubo::build(game, &SQuboWeights::default())?;
        Ok(Self {
            name: model.name.clone(),
            game: game.clone(),
            model,
            squbo: Arc::new(squbo),
            reads_per_run,
        })
    }

    /// Shares this solver's programmed S-QUBO instance (cheap: an `Arc`
    /// clone; the Eq. 6 build with its slack-variable blow-up is the
    /// expensive part of instantiating a baseline solver).
    pub fn programmed(&self) -> Arc<SQubo> {
        Arc::clone(&self.squbo)
    }

    /// Rebuilds a baseline solver around an already-built S-QUBO,
    /// skipping the QUBO construction. The device model and reads
    /// budget are per-request state and do not affect the programmed
    /// instance, so one cached S-QUBO serves every model/read sweep
    /// over the same game.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the S-QUBO's shape does
    /// not match the game.
    pub fn from_programmed(
        game: &BimatrixGame,
        model: DWaveModel,
        reads_per_run: usize,
        squbo: Arc<SQubo>,
    ) -> Result<Self, CoreError> {
        let dims = (game.row_actions(), game.col_actions());
        if squbo.shape() != dims {
            return Err(CoreError::InvalidConfig(format!(
                "programmed S-QUBO is {:?}, game `{}` is {:?}",
                squbo.shape(),
                game.name(),
                dims
            )));
        }
        Ok(Self {
            name: model.name.clone(),
            game: game.clone(),
            model,
            squbo,
            reads_per_run,
        })
    }

    /// The emulated device.
    pub fn model(&self) -> &DWaveModel {
        &self.model
    }

    /// The S-QUBO instance (exposes the slack-variable blow-up).
    pub fn squbo(&self) -> &SQubo {
        &self.squbo
    }

    /// Reads per run.
    pub fn reads_per_run(&self) -> usize {
        self.reads_per_run
    }

    fn per_read_time(&self) -> f64 {
        self.model.anneal_time + self.model.readout_time + self.model.delay_time
    }
}

impl NashSolver for DWaveNashSolver {
    fn name(&self) -> &str {
        &self.name
    }

    fn game(&self) -> &dyn Game {
        &self.game
    }

    fn run(&self, seed: u64) -> RunOutcome {
        let samples = self
            .model
            .sample(self.squbo.qubo(), self.reads_per_run, seed);
        let mut best: Option<(usize, f64, Vec<bool>)> = None;
        let mut first_true_hit: Option<usize> = None;
        let mut solutions = cnash_anneal::engine::HitRecorder::new(true);
        for (k, x) in samples.into_iter().enumerate() {
            let e = self.squbo.qubo().energy(&x);
            if best.as_ref().is_none_or(|(_, be, _)| e < *be) {
                best = Some((k, e, x.clone()));
            }
            let d = self.squbo.decode(&x);
            if let Some((p, q)) = d.profile {
                if self.game.is_equilibrium(&p, &q, 1e-9) {
                    if first_true_hit.is_none() {
                        first_true_hit = Some(k);
                    }
                    solutions.record(&Profile::pair(p, q));
                }
            }
        }
        let (solutions, solutions_truncated) = solutions.into_parts();
        let (_, best_energy, best_x) = best.expect("at least one read");
        let decoded = self.squbo.decode(&best_x);
        let is_eq = decoded
            .profile
            .as_ref()
            .map(|(p, q)| self.game.is_equilibrium(p, q, 1e-9))
            .unwrap_or(false);
        RunOutcome {
            profile: decoded.profile.map(|(p, q)| Profile::pair(p, q)),
            is_equilibrium: is_eq,
            hit_time: first_true_hit
                .map(|k| self.model.programming_time + (k + 1) as f64 * self.per_read_time()),
            total_time: self.model.qpu_access_time(self.reads_per_run),
            measured_objective: best_energy,
            solutions,
            solutions_truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnash_game::equilibrium::StrategyKind;
    use cnash_game::games;
    use cnash_game::Equilibrium;

    #[test]
    fn solves_bos_with_2000q() {
        let g = games::battle_of_the_sexes();
        let s = DWaveNashSolver::new(&g, DWaveModel::dwave_2000q(), 50).unwrap();
        let out = s.run(1);
        assert!(out.is_equilibrium, "2000Q should solve BoS easily");
        let (p, q) = out.into_pair().expect("decoded");
        let eq = Equilibrium::from_profile(&g, p, q);
        // Baselines can only ever return pure profiles.
        assert_eq!(eq.kind(1e-9), StrategyKind::Pure);
    }

    #[test]
    fn reprogrammed_baseline_is_bit_identical() {
        let g = games::battle_of_the_sexes();
        let cold = DWaveNashSolver::new(&g, DWaveModel::dwave_2000q(), 5).unwrap();
        // Same game, different model/reads: the cached S-QUBO is shared.
        let warm =
            DWaveNashSolver::from_programmed(&g, DWaveModel::dwave_2000q(), 5, cold.programmed())
                .unwrap();
        assert_eq!(cold.run(3), warm.run(3));
        let advantage =
            DWaveNashSolver::from_programmed(&g, DWaveModel::advantage_4_1(), 2, cold.programmed())
                .unwrap();
        assert_eq!(advantage.reads_per_run(), 2);
        // Shape mismatches are rejected.
        assert!(DWaveNashSolver::from_programmed(
            &games::bird_game(),
            DWaveModel::dwave_2000q(),
            1,
            cold.programmed()
        )
        .is_err());
    }

    #[test]
    fn never_returns_mixed_profiles() {
        // Structural lossiness: strategies are single bits.
        let g = games::bird_game();
        let s = DWaveNashSolver::new(&g, DWaveModel::advantage_4_1(), 10).unwrap();
        for seed in 0..10 {
            if let Some((p, q)) = s.run(seed).into_pair() {
                assert!(p.is_pure(1e-9) && q.is_pure(1e-9));
            }
        }
    }

    #[test]
    fn cannot_solve_matching_pennies() {
        // The only equilibrium is mixed; S-QUBO cannot represent it.
        let g = games::matching_pennies();
        let s = DWaveNashSolver::new(&g, DWaveModel::dwave_2000q(), 100).unwrap();
        for seed in 0..5 {
            assert!(!s.run(seed).is_equilibrium);
        }
    }

    #[test]
    fn timing_accounts_programming_and_reads() {
        let g = games::battle_of_the_sexes();
        let s = DWaveNashSolver::new(&g, DWaveModel::dwave_2000q(), 100).unwrap();
        let out = s.run(0);
        assert!((out.total_time - s.model().qpu_access_time(100)).abs() < 1e-12);
        if let Some(h) = out.hit_time {
            assert!(h <= out.total_time + 1e-12);
            assert!(h >= s.model().programming_time);
        }
    }

    #[test]
    fn runs_reproducible() {
        let g = games::bird_game();
        let s = DWaveNashSolver::new(&g, DWaveModel::advantage_4_1(), 20).unwrap();
        assert_eq!(s.run(9), s.run(9));
    }
}
