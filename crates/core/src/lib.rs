//! # C-Nash: ferroelectric CiM Nash-equilibrium solver (DAC 2024)
//!
//! End-to-end reproduction of *"C-Nash: A Novel Ferroelectric
//! Computing-in-Memory Architecture for Solving Mixed Strategy Nash
//! Equilibrium"* (Qian, Ni, Kämpfe, Zhuo, Yin — DAC 2024).
//!
//! The crate wires the substrates together into the full architecture of
//! paper Fig. 3:
//!
//! 1. the game's payoff matrices are transformed into the lossless
//!    **MAX-QUBO** objective (Eq. 9) and mapped onto a FeFET **bi-crossbar**
//!    (`cnash-crossbar` over `cnash-device`),
//! 2. each simulated-annealing iteration evaluates the objective in two
//!    phases — Phase 1 computes `max(Mq)`/`max(Nᵀp)` through **WTA trees**
//!    (`cnash-wta`), Phase 2 the VMV products (Fig. 6),
//! 3. the **two-phase SA logic** (`cnash-anneal`, Algorithm 1) walks the
//!    `1/I` strategy grid until it finds pure or mixed equilibria.
//!
//! Baselines ([`baselines`]) run the lossy S-QUBO transformation on
//! emulated D-Wave annealers (`cnash-qubo`); [`cfr`] adds a classical
//! external-sampling CFR baseline written against the generic
//! `cnash_game::Game` trait. [`experiment`] reproduces the
//! paper's evaluation artefacts (Table 1, Figs. 8–10); [`timing`] holds
//! the CiM and QPU time models.
//!
//! # Quickstart
//!
//! ```
//! use cnash_core::{CNashConfig, CNashSolver, NashSolver};
//! use cnash_game::games;
//!
//! # fn main() -> Result<(), cnash_core::CoreError> {
//! let game = games::battle_of_the_sexes();
//! let solver = CNashSolver::new(&game, CNashConfig::ideal(12), 42)?;
//! let run = solver.run(7);
//! let (p, q) = run.into_pair().expect("C-Nash always returns a profile");
//! assert!(game.is_equilibrium(&p, &q, 1e-6));
//! # Ok(())
//! # }
//! ```

pub mod baselines;
pub mod certificate;
pub mod cfr;
pub mod config;
pub mod energy;
pub mod error;
pub mod experiment;
pub mod reduced;
pub mod report;
pub mod solver;
pub mod timing;

pub use cfr::{CfrConfig, CfrSolver};
pub use config::CNashConfig;
pub use error::CoreError;
pub use experiment::{ExperimentRunner, GameReport};
pub use solver::{CNashSolver, IdealSolver, NashSolver, ProgrammedCNash, RunOutcome, WtaMax};
pub use timing::CimTimingModel;
