//! Plain-text table rendering for the experiment binaries.

use crate::experiment::GameReport;

/// Renders an aligned text table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    for r in rows {
        assert_eq!(r.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (k, cell) in r.iter().enumerate() {
            widths[k] = widths[k].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        let mut s = String::from("| ");
        for (k, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:width$} | ", c, width = widths[k]));
        }
        s.trim_end().to_string()
    };
    let sep: String = {
        let mut s = String::from("|");
        for w in &widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('|');
        }
        s
    };
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&fmt_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for r in rows {
        out.push_str(&fmt_row(r));
        out.push('\n');
    }
    out
}

/// Formats seconds with an adaptive unit.
pub fn format_time(seconds: f64) -> String {
    if !seconds.is_finite() {
        return "inf".to_string();
    }
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.3} ns", seconds * 1e9)
    }
}

/// One row of the Table-1-style success-rate table.
pub fn success_row(r: &GameReport) -> Vec<String> {
    vec![
        r.solver.clone(),
        r.game.clone(),
        format!("{:.2}", r.success_rate),
    ]
}

/// One row of the Fig. 8 solution-distribution table.
pub fn distribution_row(r: &GameReport) -> Vec<String> {
    let (e, p, m) = r.distribution.percentages();
    vec![
        r.solver.clone(),
        r.game.clone(),
        format!("{e:.2}"),
        format!("{p:.2}"),
        format!("{m:.2}"),
    ]
}

/// One row of the Fig. 9 coverage table.
pub fn coverage_row(r: &GameReport) -> Vec<String> {
    vec![
        r.solver.clone(),
        r.game.clone(),
        format!("{}/{}", r.covered, r.target_count),
        format!("{:.1}", 100.0 * r.coverage_fraction()),
    ]
}

/// One row of the Fig. 10 time-to-solution table.
pub fn tts_row(r: &GameReport) -> Vec<String> {
    vec![
        r.solver.clone(),
        r.game.clone(),
        format_time(r.mean_time_to_solution),
        format_time(r.tts99),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::SolutionDistribution;

    fn dummy_report() -> GameReport {
        GameReport {
            solver: "X".into(),
            game: "G".into(),
            runs: 10,
            success_rate: 90.0,
            distribution: SolutionDistribution {
                error: 1,
                pure_ne: 5,
                mixed_ne: 4,
            },
            distinct_found: vec![],
            target_count: 3,
            covered: 2,
            mean_time_to_solution: 1.5e-5,
            tts99: 2.0e-4,
            mean_run_time: 7e-5,
            hits_truncated: false,
        }
    }

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            "T",
            &["a", "bb"],
            &[
                vec!["xxx".into(), "y".into()],
                vec!["1".into(), "22222".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5); // title + header + separator + 2 rows
        assert_eq!(lines[1].len(), lines[3].len());
        assert!(lines[2].starts_with("|--"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = render_table("T", &["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn time_units() {
        assert_eq!(format_time(2.5), "2.500 s");
        assert_eq!(format_time(2.5e-3), "2.500 ms");
        assert_eq!(format_time(2.5e-6), "2.500 us");
        assert_eq!(format_time(2.5e-9), "2.500 ns");
        assert_eq!(format_time(f64::INFINITY), "inf");
    }

    #[test]
    fn report_rows() {
        let r = dummy_report();
        assert_eq!(success_row(&r)[2], "90.00");
        assert_eq!(distribution_row(&r)[2], "10.00");
        assert_eq!(coverage_row(&r)[2], "2/3");
        assert!(tts_row(&r)[2].contains("us"));
    }
}
