//! Unified error type of the C-Nash pipeline.

use std::fmt;

/// Errors surfaced by the end-to-end solver.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Game-side error (shapes, strategies).
    Game(cnash_game::GameError),
    /// Crossbar mapping/read error.
    Crossbar(cnash_crossbar::CrossbarError),
    /// S-QUBO construction error.
    SQubo(String),
    /// Invalid solver configuration.
    InvalidConfig(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Game(e) => write!(f, "game error: {e}"),
            CoreError::Crossbar(e) => write!(f, "crossbar error: {e}"),
            CoreError::SQubo(msg) => write!(f, "s-qubo error: {msg}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Game(e) => Some(e),
            CoreError::Crossbar(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cnash_game::GameError> for CoreError {
    fn from(e: cnash_game::GameError) -> Self {
        CoreError::Game(e)
    }
}

impl From<cnash_crossbar::CrossbarError> for CoreError {
    fn from(e: cnash_crossbar::CrossbarError) -> Self {
        CoreError::Crossbar(e)
    }
}

impl From<cnash_qubo::squbo::SQuboError> for CoreError {
    fn from(e: cnash_qubo::squbo::SQuboError) -> Self {
        CoreError::SQubo(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        use std::error::Error;
        let e = CoreError::from(cnash_game::GameError::EmptyActionSet);
        assert!(e.to_string().contains("game error"));
        assert!(e.source().is_some());
        let e = CoreError::InvalidConfig("bad".into());
        assert!(e.source().is_none());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
