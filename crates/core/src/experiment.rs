//! Evaluation harness reproducing the paper's Sec. 4 artefacts.
//!
//! For each (game, solver) pair the runner executes many independent
//! seeded runs and aggregates:
//!
//! * **success rate** — fraction of runs whose returned solution is a true
//!   equilibrium (Table 1),
//! * **solution distribution** — error / pure-NE / mixed-NE percentages
//!   (Fig. 8),
//! * **coverage** — distinct equilibria found vs the support-enumeration
//!   ground truth (Fig. 9),
//! * **time to solution** — mean model time per found solution and the
//!   99 %-confidence restart TTS (Fig. 10).

use crate::solver::{NashSolver, RunOutcome};
use crate::timing::tts99;
use cnash_game::equilibrium::{coverage, StrategyKind};
use cnash_game::{BimatrixGame, Equilibrium, Game};

/// Per-run solution classification tallies (Fig. 8 buckets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolutionDistribution {
    /// Runs whose solution is not an equilibrium (or undecodable).
    pub error: usize,
    /// Runs that returned a pure equilibrium.
    pub pure_ne: usize,
    /// Runs that returned a mixed equilibrium.
    pub mixed_ne: usize,
}

impl SolutionDistribution {
    /// Total classified runs.
    pub fn total(&self) -> usize {
        self.error + self.pure_ne + self.mixed_ne
    }

    /// `(error %, pure %, mixed %)` of total runs.
    pub fn percentages(&self) -> (f64, f64, f64) {
        let t = self.total().max(1) as f64;
        (
            100.0 * self.error as f64 / t,
            100.0 * self.pure_ne as f64 / t,
            100.0 * self.mixed_ne as f64 / t,
        )
    }
}

/// Aggregated report of one (solver, game) evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct GameReport {
    /// Solver name.
    pub solver: String,
    /// Game name.
    pub game: String,
    /// Number of runs executed.
    pub runs: usize,
    /// Fraction of runs returning a true equilibrium, in percent
    /// (Table 1).
    pub success_rate: f64,
    /// Fig. 8 buckets.
    pub distribution: SolutionDistribution,
    /// Distinct true equilibria found across all runs.
    pub distinct_found: Vec<Equilibrium>,
    /// Ground-truth equilibrium count.
    pub target_count: usize,
    /// How many ground-truth equilibria were found (Fig. 9).
    pub covered: usize,
    /// Mean model time per found solution (s): total model time spent
    /// divided by the number of successful runs (∞ if none succeeded).
    pub mean_time_to_solution: f64,
    /// 99 %-confidence restart TTS (s) based on per-run success
    /// probability and mean run time.
    pub tts99: f64,
    /// Mean model time of one full run (s).
    pub mean_run_time: f64,
    /// `true` when at least one folded run truncated its recorded
    /// solution set at the per-run cap — `covered` and `distinct_found`
    /// are then lower bounds, not exact counts.
    pub hits_truncated: bool,
}

impl GameReport {
    /// Coverage as a fraction in `[0, 1]`.
    pub fn coverage_fraction(&self) -> f64 {
        if self.target_count == 0 {
            1.0
        } else {
            self.covered as f64 / self.target_count as f64
        }
    }
}

/// Runs repeated solver evaluations with sequential seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentRunner {
    /// Independent runs per (solver, game) pair (paper: 5000).
    pub runs: usize,
    /// First seed; run `k` uses `base_seed + k`.
    pub base_seed: u64,
}

impl ExperimentRunner {
    /// Creates a runner.
    ///
    /// # Panics
    ///
    /// Panics if `runs == 0`.
    pub fn new(runs: usize, base_seed: u64) -> Self {
        assert!(runs > 0, "need at least one run");
        Self { runs, base_seed }
    }

    /// Evaluates `solver` against `ground_truth` equilibria of its game.
    pub fn evaluate(&self, solver: &dyn NashSolver, ground_truth: &[Equilibrium]) -> GameReport {
        let mut acc = ReportAccumulator::new(solver.name(), solver.game());
        for k in 0..self.runs {
            acc.fold(&solver.run(self.base_seed.wrapping_add(k as u64)));
        }
        acc.finish(ground_truth)
    }
}

/// Streaming fold of [`RunOutcome`]s into the statistics of a
/// [`GameReport`].
///
/// The accumulator holds O(distinct equilibria) state instead of all
/// outcomes, so arbitrarily large batches aggregate in constant memory.
/// Folding is *order-sensitive* in the floating-point sums; folding the
/// same outcomes in the same order always produces bit-identical
/// reports — the property the parallel runtime's deterministic
/// aggregation builds on.
#[derive(Debug, Clone)]
pub struct ReportAccumulator {
    solver: String,
    game: BimatrixGame,
    dist: SolutionDistribution,
    distinct: Vec<Equilibrium>,
    successes: usize,
    folded: usize,
    total_model_time: f64,
    run_time_sum: f64,
    hits_truncated: bool,
}

impl ReportAccumulator {
    /// Profile-matching tolerance used for classification, dedup and
    /// coverage (the paper's exact-verification epsilon).
    pub const TOL: f64 = 1e-6;

    /// Creates an empty accumulator for a (solver, game) pair.
    ///
    /// # Panics
    ///
    /// Panics if `game` is not bimatrix — the report's classification
    /// buckets (pure/mixed kinds, coverage against enumeration oracles)
    /// are defined on two-player strategic form. N-player game kinds
    /// need their own report shape before they can ride this
    /// accumulator.
    pub fn new(solver_name: &str, game: &dyn Game) -> Self {
        Self {
            solver: solver_name.to_string(),
            game: game
                .as_bimatrix()
                .expect("report accumulator requires a bimatrix game")
                .clone(),
            dist: SolutionDistribution::default(),
            distinct: Vec::new(),
            successes: 0,
            folded: 0,
            total_model_time: 0.0,
            run_time_sum: 0.0,
            hits_truncated: false,
        }
    }

    /// Folds one run outcome into the aggregate.
    ///
    /// The outcome's `is_equilibrium` claim is re-verified against the
    /// game in exact arithmetic: a solver that flags success with a
    /// non-equilibrium profile (a contract violation) is tallied as an
    /// error and contributes nothing to coverage — which is what makes
    /// the runtime's early-stop conditions sound.
    pub fn fold(&mut self, out: &RunOutcome) {
        self.folded += 1;
        self.run_time_sum += out.total_time;
        self.hits_truncated |= out.solutions_truncated;
        let verified = out.is_equilibrium
            && match out.pair() {
                Some((p, q)) => self.game.is_equilibrium(p, q, Self::TOL),
                None => false,
            };
        match (out.pair(), verified) {
            (Some((p, q)), true) => {
                self.successes += 1;
                let eq = Equilibrium::from_profile(&self.game, p.clone(), q.clone());
                match eq.kind(Self::TOL) {
                    StrategyKind::Pure => self.dist.pure_ne += 1,
                    StrategyKind::Mixed => self.dist.mixed_ne += 1,
                }
                self.total_model_time += out.hit_time.unwrap_or(out.total_time);
                self.insert_distinct(eq);
            }
            _ => {
                self.dist.error += 1;
                self.total_model_time += out.total_time;
            }
        }
        // Every solver-flagged solution the run passed through counts
        // toward coverage, after exact verification.
        for profile in &out.solutions {
            let Some((p, q)) = profile.as_pair() else {
                continue;
            };
            if self.game.is_equilibrium(p, q, Self::TOL) {
                let eq = Equilibrium::from_profile(&self.game, p.clone(), q.clone());
                self.insert_distinct(eq);
            }
        }
    }

    fn insert_distinct(&mut self, eq: Equilibrium) {
        if !self.distinct.iter().any(|e| e.same_profile(&eq, Self::TOL)) {
            self.distinct.push(eq);
        }
    }

    /// Runs folded so far.
    pub fn folded_runs(&self) -> usize {
        self.folded
    }

    /// Runs so far whose returned solution was a true equilibrium.
    pub fn successes(&self) -> usize {
        self.successes
    }

    /// Distinct verified equilibria seen so far (insertion order).
    pub fn distinct_found(&self) -> &[Equilibrium] {
        &self.distinct
    }

    /// How many of `ground_truth` the distinct found equilibria cover.
    pub fn covered(&self, ground_truth: &[Equilibrium]) -> usize {
        coverage(&self.distinct, ground_truth, Self::TOL)
    }

    /// Whether any folded run truncated its recorded solutions.
    pub fn hits_truncated(&self) -> bool {
        self.hits_truncated
    }

    /// Finalises the aggregate into a [`GameReport`].
    ///
    /// Zero folded runs (a batch cancelled before any work completed)
    /// yields an empty report: zero rates, infinite times.
    pub fn finish(self, ground_truth: &[Equilibrium]) -> GameReport {
        let covered = coverage(&self.distinct, ground_truth, Self::TOL);
        let denom = self.folded.max(1) as f64;
        let p_success = self.successes as f64 / denom;
        let mean_run_time = self.run_time_sum / denom;

        GameReport {
            solver: self.solver,
            game: self.game.name().to_string(),
            runs: self.folded,
            success_rate: 100.0 * p_success,
            distribution: self.dist,
            distinct_found: self.distinct,
            target_count: ground_truth.len(),
            covered,
            mean_time_to_solution: if self.successes > 0 {
                self.total_model_time / self.successes as f64
            } else {
                f64::INFINITY
            },
            tts99: tts99(mean_run_time, p_success),
            mean_run_time,
            hits_truncated: self.hits_truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::DWaveNashSolver;
    use crate::config::CNashConfig;
    use crate::solver::CNashSolver;
    use cnash_game::games;
    use cnash_game::support_enum::enumerate_equilibria;
    use cnash_qubo::dwave::DWaveModel;

    #[test]
    fn distribution_percentages() {
        let d = SolutionDistribution {
            error: 1,
            pure_ne: 2,
            mixed_ne: 1,
        };
        let (e, p, m) = d.percentages();
        assert_eq!((e, p, m), (25.0, 50.0, 25.0));
        assert_eq!(d.total(), 4);
    }

    #[test]
    fn cnash_bos_report_is_perfect() {
        let g = games::battle_of_the_sexes();
        let gt = enumerate_equilibria(&g, 1e-9);
        let solver = CNashSolver::new(&g, CNashConfig::ideal(12), 0).unwrap();
        let runner = ExperimentRunner::new(30, 100);
        let r = runner.evaluate(&solver, &gt);
        assert_eq!(r.success_rate, 100.0);
        assert_eq!(r.distribution.error, 0);
        assert!(
            r.covered >= 2,
            "covered {} of {}",
            r.covered,
            r.target_count
        );
        assert!(r.mean_time_to_solution.is_finite());
        assert!(r.tts99.is_finite());
    }

    #[test]
    fn cnash_finds_both_pure_and_mixed_on_bos() {
        let g = games::battle_of_the_sexes();
        let gt = enumerate_equilibria(&g, 1e-9);
        let solver = CNashSolver::new(&g, CNashConfig::ideal(12), 0).unwrap();
        let runner = ExperimentRunner::new(60, 0);
        let r = runner.evaluate(&solver, &gt);
        assert!(r.distribution.pure_ne > 0);
        // The walk passes through the mixed NE during runs even though the
        // returned best state is usually pure — coverage catches it.
        assert_eq!(r.covered, 3, "should cover all 3 BoS equilibria");
    }

    #[test]
    fn baseline_never_reports_mixed() {
        let g = games::battle_of_the_sexes();
        let gt = enumerate_equilibria(&g, 1e-9);
        let solver = DWaveNashSolver::new(&g, DWaveModel::dwave_2000q(), 20).unwrap();
        let runner = ExperimentRunner::new(20, 5);
        let r = runner.evaluate(&solver, &gt);
        assert_eq!(r.distribution.mixed_ne, 0);
        assert!(r.covered <= 2, "baseline cannot cover the mixed NE");
    }

    #[test]
    fn coverage_fraction_bounds() {
        let g = games::matching_pennies();
        let gt = enumerate_equilibria(&g, 1e-9);
        let solver = DWaveNashSolver::new(&g, DWaveModel::advantage_4_1(), 5).unwrap();
        let runner = ExperimentRunner::new(5, 0);
        let r = runner.evaluate(&solver, &gt);
        assert_eq!(r.covered, 0);
        assert_eq!(r.coverage_fraction(), 0.0);
        assert_eq!(r.success_rate, 0.0);
        assert!(r.mean_time_to_solution.is_infinite());
        assert!(r.tts99.is_infinite());
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let _ = ExperimentRunner::new(0, 0);
    }

    #[test]
    fn truncated_runs_flag_the_report() {
        use crate::solver::RunOutcome;
        let g = games::battle_of_the_sexes();
        let mut acc = ReportAccumulator::new("t", &g);
        let clean = RunOutcome {
            profile: None,
            is_equilibrium: false,
            hit_time: None,
            total_time: 1e-6,
            measured_objective: 1.0,
            solutions: Vec::new(),
            solutions_truncated: false,
        };
        acc.fold(&clean);
        assert!(!acc.hits_truncated());
        acc.fold(&RunOutcome {
            solutions_truncated: true,
            ..clean.clone()
        });
        assert!(acc.hits_truncated());
        // The flag is sticky and lands in the finished report.
        acc.fold(&clean);
        let report = acc.finish(&[]);
        assert!(report.hits_truncated);
    }
}
