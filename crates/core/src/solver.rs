//! The C-Nash solver: hardware-in-the-loop two-phase SA (Fig. 3, Alg. 1).

use crate::config::CNashConfig;
use crate::error::CoreError;
use crate::timing::CimTimingModel;
use cnash_anneal::delta::simulated_annealing_delta;
use cnash_anneal::engine::{simulated_annealing, SaOptions};
use cnash_anneal::moves::GridStrategyPair;
use cnash_crossbar::{BiCrossbar, DeltaBiCrossbar, PhaseOneMax};
use cnash_game::{BimatrixGame, Game, MixedStrategy, Profile};
use cnash_wta::WtaTree;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Outcome of one solver run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The best strategy profile returned by the run (`None` when a
    /// baseline's decoded assignment violates the one-hot constraints —
    /// an "error solution" in the paper's Fig. 8 vocabulary).
    pub profile: Option<Profile>,
    /// Exact (software-verified) equilibrium check of the profile.
    pub is_equilibrium: bool,
    /// Model time until the solver first *detected* a solution (s).
    pub hit_time: Option<f64>,
    /// Model time of the complete run (s).
    pub total_time: f64,
    /// Solver-measured objective of the returned profile (noisy for
    /// hardware solvers).
    pub measured_objective: f64,
    /// All distinct candidate solutions the run *passed through* (states
    /// the solver's own detector flagged). One run can discover several
    /// equilibria; Fig. 9 coverage unions these across runs.
    pub solutions: Vec<Profile>,
    /// `true` when `solutions` was capped (the run discovered more
    /// distinct candidates than the recorder keeps) — coverage built on
    /// this run undercounts, and reports surface the flag.
    pub solutions_truncated: bool,
}

impl RunOutcome {
    /// Two-player `(row, col)` view of the returned profile — `None`
    /// when no profile was returned or the game is not two-player.
    pub fn pair(&self) -> Option<(&MixedStrategy, &MixedStrategy)> {
        self.profile.as_ref().and_then(Profile::as_pair)
    }

    /// Consumes the outcome into its `(row, col)` profile, if any.
    pub fn into_pair(self) -> Option<(MixedStrategy, MixedStrategy)> {
        self.profile.and_then(Profile::into_pair)
    }
}

/// Common interface of C-Nash and the baselines.
///
/// Solvers are `Send + Sync`: a run is a pure function of `(self, seed)`
/// and mutates no solver state, so the batch runtime (`cnash-runtime`)
/// can fan independent seeded runs of one solver instance across
/// threads.
pub trait NashSolver: Send + Sync {
    /// Human-readable solver name (used in reports).
    fn name(&self) -> &str;

    /// The game being solved, behind the generic [`Game`] interface.
    /// Bimatrix-only machinery (crossbar mapping, QUBO reduction, exact
    /// oracles) recovers the typed view with [`Game::as_bimatrix`].
    fn game(&self) -> &dyn Game;

    /// Executes one independent run with the given seed.
    fn run(&self, seed: u64) -> RunOutcome;
}

/// Phase-1 maxima routed through the solver's WTA-tree model (or the
/// exact max when the `use_wta` ablation switch is off) — the
/// `cnash-core` composition hook that puts the analog max back on top of
/// [`DeltaBiCrossbar`]'s incrementally maintained payoff vectors.
#[derive(Debug, Clone)]
pub struct WtaMax<'a> {
    row: &'a WtaTree,
    col: &'a WtaTree,
    use_wta: bool,
}

impl PhaseOneMax for WtaMax<'_> {
    fn max_row(&self, reads: &[f64]) -> f64 {
        if self.use_wta {
            self.row.eval_value(reads)
        } else {
            reads.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        }
    }

    fn max_col(&self, reads: &[f64]) -> f64 {
        if self.use_wta {
            self.col.eval_value(reads)
        } else {
            reads.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        }
    }
}

/// Payoff-matrix cell count (`n·m`) above which [`NashSolver::run`]
/// drives the incremental delta evaluator instead of full per-proposal
/// re-evaluation. 64 cells = the paper's largest benchmark (8×8), where
/// the measured speedup straddles 1× — everything larger wins clearly
/// (see `BENCH_sa_hotpath.json` trajectory in the README).
pub const DELTA_EVAL_MIN_CELLS: usize = 64;

/// The programmed hardware of a [`CNashSolver`]: the mapped bi-crossbar
/// and both WTA trees, shared by reference counting.
///
/// Programming is the expensive part of instantiating a solver — the
/// `O(n·m·I²·t)` device-sampling mapping pass — while everything else in
/// a solver is cheap per-request state. A service that sees the same
/// game (by canonical fingerprint) twice extracts this with
/// [`CNashSolver::programmed`] on the first request and rebuilds cheap
/// solver handles around it with [`CNashSolver::from_programmed`] on
/// every later one, including parameter sweeps that only change the
/// iteration budget, gap tolerance or WTA routing flag.
#[derive(Debug, Clone)]
pub struct ProgrammedCNash {
    hardware: Arc<BiCrossbar>,
    wta_row: Arc<WtaTree>,
    wta_col: Arc<WtaTree>,
}

impl ProgrammedCNash {
    /// The programmed bi-crossbar.
    pub fn hardware(&self) -> &BiCrossbar {
        &self.hardware
    }
}

/// The full C-Nash architecture: FeFET bi-crossbar + WTA trees + two-phase
/// SA logic.
#[derive(Debug, Clone)]
pub struct CNashSolver {
    name: String,
    game: BimatrixGame,
    config: CNashConfig,
    hardware: Arc<BiCrossbar>,
    wta_row: Arc<WtaTree>,
    wta_col: Arc<WtaTree>,
    timing: CimTimingModel,
}

impl CNashSolver {
    /// Builds the hardware for `game`. `hardware_seed` selects the
    /// silicon instance (device variability and WTA mismatch samples).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Crossbar`] if the game cannot be mapped (e.g.
    /// non-integer payoffs at the configured scale).
    pub fn new(
        game: &BimatrixGame,
        config: CNashConfig,
        hardware_seed: u64,
    ) -> Result<Self, CoreError> {
        let hardware = BiCrossbar::build(game, &config.crossbar, hardware_seed)?;
        let wta_row = WtaTree::build(
            game.row_actions(),
            &config.wta,
            hardware_seed.wrapping_add(0xA11CE),
        );
        let wta_col = WtaTree::build(
            game.col_actions(),
            &config.wta,
            hardware_seed.wrapping_add(0xB0B0),
        );
        Ok(Self {
            name: "C-Nash".into(),
            game: game.clone(),
            config,
            hardware: Arc::new(hardware),
            wta_row: Arc::new(wta_row),
            wta_col: Arc::new(wta_col),
            timing: CimTimingModel::nominal(),
        })
    }

    /// Shares this solver's programmed hardware (cheap: three `Arc`
    /// clones, no device re-sampling).
    pub fn programmed(&self) -> ProgrammedCNash {
        ProgrammedCNash {
            hardware: Arc::clone(&self.hardware),
            wta_row: Arc::clone(&self.wta_row),
            wta_col: Arc::clone(&self.wta_col),
        }
    }

    /// Rebuilds a solver handle around already-programmed hardware,
    /// skipping the mapping/programming pass entirely.
    ///
    /// The caller is responsible for pairing the instance with the same
    /// `(game, crossbar config, WTA config, hardware seed)` it was
    /// programmed from — an instance cache does this by keying on the
    /// game's canonical fingerprint plus the config fingerprints.
    /// Geometry and interval count are re-validated here, so a
    /// mis-keyed cache fails loudly instead of producing wrong physics.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the instance's geometry
    /// or interval count does not match `(game, config)`.
    pub fn from_programmed(
        game: &BimatrixGame,
        config: CNashConfig,
        programmed: ProgrammedCNash,
    ) -> Result<Self, CoreError> {
        let dims = (game.row_actions(), game.col_actions());
        if programmed.hardware.actions() != dims {
            return Err(CoreError::InvalidConfig(format!(
                "programmed instance is {:?}, game `{}` is {:?}",
                programmed.hardware.actions(),
                game.name(),
                dims
            )));
        }
        if programmed.hardware.intervals() != config.intervals {
            return Err(CoreError::InvalidConfig(format!(
                "programmed instance has {} intervals, config wants {}",
                programmed.hardware.intervals(),
                config.intervals
            )));
        }
        if programmed.wta_row.inputs() != dims.0 || programmed.wta_col.inputs() != dims.1 {
            return Err(CoreError::InvalidConfig(format!(
                "programmed WTA trees are {}x{}, game `{}` is {:?}",
                programmed.wta_row.inputs(),
                programmed.wta_col.inputs(),
                game.name(),
                dims
            )));
        }
        Ok(Self {
            name: "C-Nash".into(),
            game: game.clone(),
            config,
            hardware: programmed.hardware,
            wta_row: programmed.wta_row,
            wta_col: programmed.wta_col,
            timing: CimTimingModel::nominal(),
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &CNashConfig {
        &self.config
    }

    /// The underlying bi-crossbar (for inspection / fault injection
    /// studies via its arrays).
    pub fn hardware(&self) -> &BiCrossbar {
        &self.hardware
    }

    /// Hardware evaluation of the MAX-QUBO objective at a grid state:
    /// Phase 1 (MV reads + WTA maxima) then Phase 2 (VMV reads), combined
    /// by the SA logic (Fig. 6). Offsets cancel, so the value estimates
    /// the true Nash gap.
    pub fn evaluate(&self, state: &GridStrategyPair) -> f64 {
        let pc = state.p_counts();
        let qc = state.q_counts();
        let ph1 = self
            .hardware
            .phase_one(pc, qc)
            .expect("state geometry matches the hardware");
        let ph2 = self
            .hardware
            .phase_two(pc, qc)
            .expect("state geometry matches the hardware");
        let (alpha, beta) = if self.config.use_wta {
            (
                self.wta_row.eval(&ph1.row_payoffs).value,
                self.wta_col.eval(&ph1.col_payoffs).value,
            )
        } else {
            let exact_max = |v: &[f64]| v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            (exact_max(&ph1.row_payoffs), exact_max(&ph1.col_payoffs))
        };
        alpha + beta - ph2.row_value - ph2.col_value
    }

    /// Builds the incremental evaluator of this solver's pipeline at
    /// `state`: the same physics as [`CNashSolver::evaluate`], but a
    /// single-unit move updates only the touched rows/columns
    /// (`O((n+m)·log nm)` instead of `O(n·m)` per SA proposal). This is
    /// the hot path [`NashSolver::run`] drives.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Crossbar`] if the state's geometry does not
    /// match the hardware.
    pub fn delta_evaluator(
        &self,
        state: GridStrategyPair,
    ) -> Result<DeltaBiCrossbar<'_, WtaMax<'_>>, CoreError> {
        let max = WtaMax {
            row: &self.wta_row,
            col: &self.wta_col,
            use_wta: self.config.use_wta,
        };
        Ok(DeltaBiCrossbar::new(&self.hardware, state, max)?)
    }

    /// Per-iteration latency of this instance (s).
    pub fn iteration_latency(&self) -> f64 {
        self.timing
            .iteration_latency(self.game.row_actions(), self.game.col_actions())
    }

    fn initial_state(&self, seed: u64) -> GridStrategyPair {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0101);
        GridStrategyPair::random(
            self.game.row_actions(),
            self.game.col_actions(),
            self.config.intervals,
            &mut rng,
        )
        .expect("benchmark games have non-empty action sets")
    }

    /// Runs a *replica-exchange* (parallel tempering) search instead of
    /// plain SA — an extension exploring the paper's convergence
    /// future-work. The replicas time-multiplex the single bi-crossbar,
    /// so the model time charges `replicas × sweeps` iterations.
    pub fn run_tempered(&self, seed: u64, replicas: usize) -> RunOutcome {
        use cnash_anneal::tempering::{parallel_tempering, TemperingOptions};
        let sweeps = (self.config.iterations / replicas.max(1)).max(1);
        let opts = TemperingOptions {
            replicas,
            t_cold: 0.005,
            t_hot: 1.5,
            sweeps,
            swap_interval: 10,
            seed,
            target_energy: Some(self.config.gap_tolerance),
        };
        let run = parallel_tempering(
            self.initial_state(seed),
            |s| self.evaluate(s),
            |s, rng| s.neighbour(rng),
            &opts,
        );
        let p = run.best_state.p_strategy();
        let q = run.best_state.q_strategy();
        let lat = self.iteration_latency();
        let solutions = run
            .hit_states
            .iter()
            .map(|s| Profile::pair(s.p_strategy(), s.q_strategy()))
            .collect();
        RunOutcome {
            is_equilibrium: self.game.is_equilibrium(&p, &q, 1e-6),
            profile: Some(Profile::pair(p, q)),
            hit_time: None, // exchange steps break the linear-time mapping
            total_time: (sweeps * replicas) as f64 * lat,
            measured_objective: run.best_energy,
            solutions,
            solutions_truncated: run.hits_truncated,
        }
    }
}

impl NashSolver for CNashSolver {
    fn name(&self) -> &str {
        &self.name
    }

    fn game(&self) -> &dyn Game {
        &self.game
    }

    fn run(&self, seed: u64) -> RunOutcome {
        let opts = SaOptions {
            iterations: self.config.iterations,
            schedule: self.config.schedule,
            seed,
            target_energy: Some(self.config.gap_tolerance),
            record_trace: false,
            record_hits: true,
        };
        let init = self.initial_state(seed);
        // The incremental evaluator's fixed per-proposal overhead (read
        // requantization, WTA re-reduction, undo bookkeeping) only
        // amortises once the full two-phase read it replaces is large
        // enough; BENCH_sa_hotpath.json puts the crossover around 8×8.
        // Below it — the paper's own benchmark games — the classic full
        // re-evaluation stays the faster production path.
        let sa = if self.game.row_actions() * self.game.col_actions() > DELTA_EVAL_MIN_CELLS {
            let mut evaluator = self
                .delta_evaluator(init)
                .expect("initial state matches the hardware geometry");
            simulated_annealing_delta(&mut evaluator, &opts)
        } else {
            simulated_annealing(init, |s| self.evaluate(s), |s, rng| s.neighbour(rng), &opts)
        };
        // Algorithm 1 returns the final accepted strategy pair. (Tracking
        // the measured-best state instead would let static read-noise
        // outliers dominate — a solver on real hardware cannot tell a
        // noise-depressed reading from a true optimum.)
        let p = sa.final_state.p_strategy();
        let q = sa.final_state.q_strategy();
        let lat = self.iteration_latency();
        let solutions = sa
            .hit_states
            .iter()
            .map(|s| Profile::pair(s.p_strategy(), s.q_strategy()))
            .collect();
        RunOutcome {
            is_equilibrium: self.game.is_equilibrium(&p, &q, 1e-6),
            profile: Some(Profile::pair(p, q)),
            hit_time: sa.first_hit.map(|k| k as f64 * lat),
            total_time: sa.iterations as f64 * lat,
            measured_objective: sa.final_energy,
            solutions,
            solutions_truncated: sa.hits_truncated,
        }
    }
}

/// Exact-arithmetic ablation of C-Nash: identical SA walk on the same
/// grid, but the objective is evaluated in software (no crossbar, ADC or
/// WTA non-idealities). Quantifies what the analog hardware costs.
#[derive(Debug, Clone)]
pub struct IdealSolver {
    name: String,
    game: BimatrixGame,
    config: CNashConfig,
    timing: CimTimingModel,
}

impl IdealSolver {
    /// Wraps a game with an ideal-evaluation solver.
    pub fn new(game: &BimatrixGame, config: CNashConfig) -> Self {
        Self {
            name: "C-Nash (ideal eval)".into(),
            game: game.clone(),
            config,
            timing: CimTimingModel::nominal(),
        }
    }

    fn evaluate(&self, state: &GridStrategyPair) -> f64 {
        self.game
            .nash_gap(&state.p_strategy(), &state.q_strategy())
            .expect("state dimensions match the game")
    }
}

impl NashSolver for IdealSolver {
    fn name(&self) -> &str {
        &self.name
    }

    fn game(&self) -> &dyn Game {
        &self.game
    }

    fn run(&self, seed: u64) -> RunOutcome {
        let opts = SaOptions {
            iterations: self.config.iterations,
            schedule: self.config.schedule,
            seed,
            target_energy: Some(self.config.gap_tolerance.max(1e-9)),
            record_trace: false,
            record_hits: true,
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0101);
        let init = GridStrategyPair::random(
            self.game.row_actions(),
            self.game.col_actions(),
            self.config.intervals,
            &mut rng,
        )
        .expect("non-empty action sets");
        let sa = simulated_annealing(init, |s| self.evaluate(s), |s, rng| s.neighbour(rng), &opts);
        let p = sa.final_state.p_strategy();
        let q = sa.final_state.q_strategy();
        let lat = self
            .timing
            .iteration_latency(self.game.row_actions(), self.game.col_actions());
        let solutions = sa
            .hit_states
            .iter()
            .map(|s| Profile::pair(s.p_strategy(), s.q_strategy()))
            .collect();
        RunOutcome {
            is_equilibrium: self.game.is_equilibrium(&p, &q, 1e-6),
            profile: Some(Profile::pair(p, q)),
            hit_time: sa.first_hit.map(|k| k as f64 * lat),
            total_time: sa.iterations as f64 * lat,
            measured_objective: sa.final_energy,
            solutions,
            solutions_truncated: sa.hits_truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnash_anneal::delta::DeltaEnergy;
    use cnash_game::games;

    #[test]
    fn ideal_cnash_solves_bos() {
        let g = games::battle_of_the_sexes();
        let s = CNashSolver::new(&g, CNashConfig::ideal(12), 0).unwrap();
        let out = s.run(1);
        assert!(out.is_equilibrium);
        assert!(out.hit_time.is_some());
        assert!(out.measured_objective.abs() < 1e-6);
    }

    #[test]
    fn paper_config_cnash_solves_bos() {
        let g = games::battle_of_the_sexes();
        let s = CNashSolver::new(&g, CNashConfig::paper(12), 3).unwrap();
        let mut successes = 0;
        for seed in 0..10 {
            if s.run(seed).is_equilibrium {
                successes += 1;
            }
        }
        assert!(successes >= 8, "only {successes}/10 noisy runs succeeded");
    }

    #[test]
    fn cnash_finds_mixed_equilibria() {
        // Matching pennies has ONLY a mixed equilibrium — the capability
        // that distinguishes C-Nash from the S-QUBO baselines.
        let g = games::matching_pennies();
        let s = CNashSolver::new(&g, CNashConfig::ideal(12), 0).unwrap();
        let out = s.run(5);
        assert!(out.is_equilibrium);
        let (p, _) = out.into_pair().expect("cnash always returns a profile");
        assert!(!p.is_pure(1e-6), "matching pennies NE is mixed");
    }

    #[test]
    fn evaluate_matches_exact_gap_when_ideal() {
        let g = games::bird_game();
        let s = CNashSolver::new(&g, CNashConfig::ideal(12), 0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let state = GridStrategyPair::random(3, 3, 12, &mut rng).unwrap();
            let hw = s.evaluate(&state);
            let exact = g
                .nash_gap(&state.p_strategy(), &state.q_strategy())
                .unwrap();
            assert!((hw - exact).abs() < 1e-4, "hw {hw} vs exact {exact}");
        }
    }

    #[test]
    fn delta_run_matches_full_reevaluation_bitwise() {
        // The incremental evaluator against the full driver re-evaluating
        // every candidate from scratch through the same canonical
        // pipeline: identical trajectories, bit for bit — with the full
        // paper noise model (variability + 8-bit ADC + WTA trees) on.
        let g = games::battle_of_the_sexes();
        let s = CNashSolver::new(&g, CNashConfig::paper(12).with_iterations(400), 3).unwrap();
        for seed in 0..3u64 {
            let opts = SaOptions {
                iterations: 400,
                schedule: s.config().schedule,
                seed,
                target_energy: Some(s.config().gap_tolerance),
                record_trace: true,
                record_hits: true,
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let init = GridStrategyPair::random(2, 2, 12, &mut rng).unwrap();
            let full = simulated_annealing(
                init.clone(),
                |st| s.delta_evaluator(st.clone()).expect("geometry").energy(),
                |st, r| st.neighbour(r),
                &opts,
            );
            let mut evaluator = s.delta_evaluator(init).unwrap();
            let delta = simulated_annealing_delta(&mut evaluator, &opts);
            assert_eq!(full, delta);
        }
    }

    #[test]
    fn reprogrammed_solver_is_bit_identical() {
        // A solver rebuilt around cached hardware must be the same
        // silicon: identical run trajectories, bit for bit, even with
        // the full paper noise model on.
        let g = games::bird_game();
        let cold = CNashSolver::new(&g, CNashConfig::paper(12), 9).unwrap();
        let warm =
            CNashSolver::from_programmed(&g, CNashConfig::paper(12), cold.programmed()).unwrap();
        for seed in 0..3 {
            assert_eq!(cold.run(seed), warm.run(seed));
        }
        // Parameter sweeps reuse the same programming with different
        // algorithmic knobs.
        let swept = CNashSolver::from_programmed(
            &g,
            CNashConfig::paper(12).with_iterations(500),
            cold.programmed(),
        )
        .unwrap();
        assert_eq!(swept.config().iterations, 500);
        assert!(swept.run(1).total_time > 0.0);
    }

    #[test]
    fn from_programmed_rejects_mismatched_instances() {
        let bos = games::battle_of_the_sexes(); // 2x2
        let bird = games::bird_game(); // 3x3
        let programmed = CNashSolver::new(&bos, CNashConfig::paper(12), 0)
            .unwrap()
            .programmed();
        assert!(matches!(
            CNashSolver::from_programmed(&bird, CNashConfig::paper(12), programmed.clone()),
            Err(CoreError::InvalidConfig(_))
        ));
        assert!(matches!(
            CNashSolver::from_programmed(&bos, CNashConfig::paper(16), programmed),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn runs_are_reproducible() {
        let g = games::battle_of_the_sexes();
        let s = CNashSolver::new(&g, CNashConfig::paper(12), 7).unwrap();
        assert_eq!(s.run(3), s.run(3));
    }

    #[test]
    fn different_hardware_seeds_differ_under_noise() {
        let g = games::bird_game();
        let a = CNashSolver::new(&g, CNashConfig::paper(12), 1).unwrap();
        let b = CNashSolver::new(&g, CNashConfig::paper(12), 2).unwrap();
        let state = GridStrategyPair::all_on_first(3, 3, 12).unwrap();
        assert_ne!(a.evaluate(&state), b.evaluate(&state));
    }

    #[test]
    fn ideal_solver_matches_cnash_ideal_semantics() {
        let g = games::stag_hunt();
        let cfg = CNashConfig::ideal(12);
        let ideal = IdealSolver::new(&g, cfg);
        let out = ideal.run(4);
        assert!(out.is_equilibrium);
        assert!(out.total_time > 0.0);
    }

    #[test]
    fn tempered_mode_solves_benchmarks() {
        let g = games::bird_game();
        let s = CNashSolver::new(&g, CNashConfig::paper(12).with_iterations(12_000), 0).unwrap();
        let mut ok = 0;
        for seed in 0..5 {
            let out = s.run_tempered(seed, 6);
            if out.is_equilibrium {
                ok += 1;
            }
            // Time model charges all replicas.
            assert!(out.total_time > 0.0);
        }
        assert!(ok >= 3, "tempered mode solved only {ok}/5");
    }

    #[test]
    fn timing_fields_consistent() {
        let g = games::battle_of_the_sexes();
        let s = CNashSolver::new(&g, CNashConfig::ideal(12), 0).unwrap();
        let out = s.run(0);
        if let Some(h) = out.hit_time {
            assert!(h <= out.total_time);
        }
        let expected = s.iteration_latency() * s.config().iterations as f64;
        assert!((out.total_time - expected).abs() < 1e-15);
    }
}
