//! Solver configuration.

use cnash_anneal::Schedule;
use cnash_crossbar::CrossbarConfig;
use cnash_device::corners::ProcessCorner;
use cnash_wta::WtaConfig;

/// Full configuration of a [`crate::CNashSolver`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CNashConfig {
    /// Probability grid intervals `I` (paper Sec. 3.2). All benchmark
    /// equilibria are representable at `I = 12`.
    pub intervals: u32,
    /// SA iterations per run (paper: 10000/15000/50000 per game).
    pub iterations: usize,
    /// Temperature schedule of the SA logic.
    pub schedule: Schedule,
    /// Crossbar hardware model.
    pub crossbar: CrossbarConfig,
    /// WTA tree hardware model.
    pub wta: WtaConfig,
    /// Route Phase-1 maxima through the WTA tree model (`false` = exact
    /// max, an ablation).
    pub use_wta: bool,
    /// Measured-gap threshold below which the SA logic declares a
    /// solution hit (sets time-to-solution; final verification is exact).
    pub gap_tolerance: f64,
}

impl CNashConfig {
    /// Fully idealised pipeline: no device variability, ideal ADC, exact
    /// max. The algorithmic skeleton of C-Nash.
    pub fn ideal(intervals: u32) -> Self {
        Self {
            intervals,
            iterations: 10_000,
            schedule: Schedule::geometric(1.0, 1e-3),
            crossbar: CrossbarConfig::ideal(intervals),
            wta: WtaConfig::ideal(),
            use_wta: false,
            gap_tolerance: 1e-6,
        }
    }

    /// The paper's hardware assumptions: 40 mV V_TH σ, 8 % resistor σ,
    /// 8-bit ADC, WTA trees with 0.25 % offset at the tt corner.
    pub fn paper(intervals: u32) -> Self {
        Self {
            intervals,
            iterations: 10_000,
            schedule: Schedule::geometric(1.0, 1e-3),
            crossbar: CrossbarConfig::paper(intervals),
            wta: WtaConfig::nominal(),
            use_wta: true,
            gap_tolerance: 0.05,
        }
    }

    /// Paper hardware at a specific process corner.
    pub fn paper_at_corner(intervals: u32, corner: ProcessCorner) -> Self {
        Self {
            wta: WtaConfig::at_corner(corner),
            ..Self::paper(intervals)
        }
    }

    /// Returns a copy with a different iteration budget.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Returns a copy with a different schedule.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_has_no_noise_sources() {
        let c = CNashConfig::ideal(12);
        assert_eq!(c.crossbar.variability.sigma_vth, 0.0);
        assert_eq!(c.crossbar.adc_bits, None);
        assert!(!c.use_wta);
        assert_eq!(c.intervals, 12);
    }

    #[test]
    fn paper_has_all_noise_sources() {
        let c = CNashConfig::paper(12);
        assert_eq!(c.crossbar.variability.sigma_vth, 0.040);
        assert_eq!(c.crossbar.adc_bits, Some(8));
        assert!(c.use_wta);
        assert!(c.gap_tolerance > 0.0);
    }

    #[test]
    fn corner_config_scales_wta() {
        let tt = CNashConfig::paper(12);
        let skew = CNashConfig::paper_at_corner(12, ProcessCorner::Snfp);
        assert!(skew.wta.effective_offset() > tt.wta.effective_offset());
    }

    #[test]
    fn builder_helpers() {
        let c = CNashConfig::ideal(12)
            .with_iterations(99)
            .with_schedule(Schedule::constant(0.5));
        assert_eq!(c.iterations, 99);
        assert_eq!(c.schedule, Schedule::constant(0.5));
    }
}
