//! Energy model of the C-Nash pipeline (extension).
//!
//! The paper motivates FeFETs over ReRAM/MTJ with their voltage-driven,
//! energy-efficient reads (Sec. 2.3) but reports no energy numbers. This
//! module provides first-order estimates so design-space studies (cell
//! count vs interval count vs ADC width) can reason about energy:
//!
//! * crossbar read energy: every *activated* '1' cell conducts its
//!   clamped ON current from the `V_DL` supply for the settle time,
//! * ADC energy: a per-conversion constant scaled exponentially with
//!   resolution (`E ∝ 2^bits`, the usual SAR scaling),
//! * WTA energy: the mirrored currents flow for the tree's settle time,
//! * SA logic: a small digital constant.

use cnash_crossbar::BiCrossbar;
use cnash_game::MixedStrategy;

/// First-order per-component energy constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CimEnergyModel {
    /// Data-line read voltage (V) — the supply the cell currents draw
    /// from.
    pub v_read: f64,
    /// Crossbar settle time per phase (s).
    pub settle_time: f64,
    /// ADC energy per conversion at 1 bit (J); scales as `2^bits`.
    pub adc_unit_energy: f64,
    /// Digital SA-logic energy per iteration (J).
    pub sa_logic_energy: f64,
    /// WTA tree settle time (s) and bias current (A) per cell.
    pub wta_settle: f64,
    /// WTA per-cell bias current (A).
    pub wta_bias_current: f64,
}

impl CimEnergyModel {
    /// Nominal 28 nm constants: 0.1 V reads, 2 ns settles, ~50 fJ/8-bit
    /// conversion, 10 fJ digital update, µA-scale WTA biasing.
    pub fn nominal() -> Self {
        Self {
            v_read: 0.1,
            settle_time: 2e-9,
            adc_unit_energy: 0.2e-15,
            sa_logic_energy: 10e-15,
            wta_settle: 0.24e-9,
            wta_bias_current: 10e-6,
        }
    }

    /// Energy of one analog read that draws `current` (A) for one settle.
    pub fn read_energy(&self, current: f64) -> f64 {
        current * self.v_read * self.settle_time
    }

    /// ADC conversion energy at `bits` resolution.
    pub fn adc_energy(&self, bits: u32) -> f64 {
        self.adc_unit_energy * (1u64 << bits) as f64
    }

    /// WTA tree energy for `cells` 2-input cells settling once.
    pub fn wta_energy(&self, cells: usize) -> f64 {
        cells as f64 * self.wta_bias_current * self.v_read * self.wta_settle
    }

    /// Full two-phase iteration energy for a given bi-crossbar and
    /// strategy pair: Phase 1 reads both arrays with all word lines up,
    /// Phase 2 with the strategy activation; 2 conversions per phase per
    /// array; both WTA trees fire in Phase 1.
    ///
    /// # Errors
    ///
    /// Propagates crossbar activation errors.
    pub fn iteration_energy(
        &self,
        hw: &BiCrossbar,
        p: &MixedStrategy,
        q: &MixedStrategy,
        adc_bits: u32,
        wta_cells: usize,
    ) -> Result<f64, cnash_crossbar::CrossbarError> {
        let (pc, qc) = hw.activations(p, q)?;
        // Phase 1: all WLs active on both arrays.
        let phase1_m: f64 = hw.array_m().read_mv(&qc)?.iter().sum();
        let phase1_nt: f64 = hw.array_nt().read_mv(&pc)?.iter().sum();
        // Phase 2: VMV activations.
        let phase2_m = hw.array_m().read_vmv(&pc, &qc)?;
        let phase2_nt = hw.array_nt().read_vmv(&qc, &pc)?;
        let analog = self.read_energy(phase1_m + phase1_nt + phase2_m + phase2_nt);
        let conversions = 2 * (hw.array_m().payoffs().rows() + hw.array_nt().payoffs().rows()) + 2;
        let digital = conversions as f64 * self.adc_energy(adc_bits) + self.sa_logic_energy;
        Ok(analog + self.wta_energy(wta_cells) + digital)
    }
}

impl Default for CimEnergyModel {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnash_crossbar::CrossbarConfig;
    use cnash_game::games;

    #[test]
    fn read_energy_scales_with_current() {
        let e = CimEnergyModel::nominal();
        assert_eq!(e.read_energy(2e-6), 2.0 * e.read_energy(1e-6));
        // 1 µA for 2 ns at 0.1 V = 0.2 fJ.
        assert!((e.read_energy(1e-6) - 0.2e-15).abs() < 1e-20);
    }

    #[test]
    fn adc_energy_exponential_in_bits() {
        let e = CimEnergyModel::nominal();
        assert_eq!(e.adc_energy(9), 2.0 * e.adc_energy(8));
    }

    #[test]
    fn iteration_energy_positive_and_sane() {
        let g = games::bird_game();
        let hw = BiCrossbar::build(&g, &CrossbarConfig::ideal(12), 0).expect("maps");
        let e = CimEnergyModel::nominal();
        let p = MixedStrategy::uniform(3).expect("valid");
        let q = MixedStrategy::uniform(3).expect("valid");
        let energy = e.iteration_energy(&hw, &p, &q, 8, 3 + 3).expect("reads");
        // Sub-nanojoule per iteration at these scales.
        assert!(energy > 0.0);
        assert!(energy < 1e-9, "iteration energy {energy} J too large");
    }

    #[test]
    fn larger_games_cost_more_energy() {
        let e = CimEnergyModel::nominal();
        let small = {
            let g = games::battle_of_the_sexes();
            let hw = BiCrossbar::build(&g, &CrossbarConfig::ideal(12), 0).expect("maps");
            let u = MixedStrategy::uniform(2).expect("valid");
            e.iteration_energy(&hw, &u, &u, 8, 2).expect("reads")
        };
        let large = {
            let g = games::modified_prisoners_dilemma();
            let hw = BiCrossbar::build(&g, &CrossbarConfig::ideal(12), 0).expect("maps");
            let u = MixedStrategy::uniform(8).expect("valid");
            e.iteration_energy(&hw, &u, &u, 8, 14).expect("reads")
        };
        assert!(large > small);
    }
}
