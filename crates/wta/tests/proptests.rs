//! Property-based tests of the WTA tree.

use cnash_device::corners::ProcessCorner;
use cnash_wta::{WtaConfig, WtaTree};
use proptest::prelude::*;

fn arb_corner() -> impl Strategy<Value = ProcessCorner> {
    prop::sample::select(ProcessCorner::ALL.to_vec())
}

proptest! {
    /// Tree output is always within the compounded offset bound of the
    /// true maximum, for any inputs, any corner, any silicon seed.
    #[test]
    fn output_within_error_bound(
        inputs in prop::collection::vec(0.0f64..1e-4, 1..16),
        corner in arb_corner(),
        seed in 0u64..200,
    ) {
        let tree = WtaTree::build(inputs.len(), &WtaConfig::at_corner(corner), seed);
        let out = tree.eval(&inputs);
        let exact = inputs.iter().copied().fold(0.0f64, f64::max);
        let bound = tree.error_bound();
        prop_assert!(out.value <= exact * (1.0 + bound) + 1e-18);
        prop_assert!(out.value >= exact * (1.0 - bound) - 1e-18);
    }

    /// The argmax always points at a genuine input position, and for an
    /// ideal tree it is exactly the argmax.
    #[test]
    fn ideal_argmax_exact(inputs in prop::collection::vec(0.0f64..1e-4, 1..32)) {
        let tree = WtaTree::ideal(inputs.len());
        let out = tree.eval(&inputs);
        prop_assert!(out.argmax < inputs.len());
        let exact = inputs.iter().copied().fold(0.0f64, f64::max);
        // Eq. 10 (min + |diff|) is exact in real arithmetic; floating
        // point leaves at most a few ULPs.
        prop_assert!((out.value - exact).abs() <= exact * 1e-12);
        prop_assert!((inputs[out.argmax] - exact).abs() <= exact * 1e-12);
    }

    /// Latency depends only on the input count and corner, never on data.
    #[test]
    fn latency_data_independent(
        a in prop::collection::vec(0.0f64..1e-4, 8),
        b in prop::collection::vec(0.0f64..1e-4, 8),
        corner in arb_corner(),
    ) {
        let tree = WtaTree::build(8, &WtaConfig::at_corner(corner), 0);
        prop_assert_eq!(tree.eval(&a).latency, tree.eval(&b).latency);
    }

    /// Permuting the inputs of an ideal tree does not change the maximum.
    #[test]
    fn ideal_tree_permutation_invariant(
        mut inputs in prop::collection::vec(0.0f64..1e-4, 4..12),
        rot in 0usize..12,
    ) {
        let tree = WtaTree::ideal(inputs.len());
        let before = tree.eval(&inputs).value;
        let r = rot % inputs.len();
        inputs.rotate_left(r);
        let after = tree.eval(&inputs).value;
        prop_assert!((after - before).abs() <= before.abs() * 1e-12);
    }

    /// Paper's sizing formula: cell count is 2^ceil(log2 D) − 1.
    #[test]
    fn cell_count_formula(d in 1usize..64) {
        let tree = WtaTree::ideal(d);
        let k = (d as f64).log2().ceil().max(1.0) as u32;
        prop_assert_eq!(tree.cell_count(), (1usize << k) - 1);
        prop_assert_eq!(tree.levels(), k as usize);
    }
}
