//! Transient settling waveforms of WTA cells (Fig. 5c, Fig. 7b).

use crate::cell::WtaConfig;
use cnash_device::corners::ProcessCorner;
use cnash_device::waveform::Waveform;

/// Fraction of the settling latency treated as the first-order time
/// constant: a 1 %-settled first-order system needs `ln(100) ≈ 4.6 τ`, so
/// the 0.08 ns paper latency corresponds to `τ ≈ 0.017 ns`.
const SETTLE_TAUS: f64 = 4.605_170_185_988_091; // ln(100)

/// Simulates the transient response of a WTA cell whose output steps to
/// `target` (A), sampled with `dt` seconds over `duration` seconds.
///
/// The settling time constant is derived from the configured cell latency
/// (corner-scaled), so slow corners visibly settle later — the behaviour
/// Fig. 7b validates.
pub fn cell_transient(config: &WtaConfig, target: f64, dt: f64, duration: f64) -> Waveform {
    let tau = config.effective_latency() / SETTLE_TAUS;
    Waveform::first_order_step(0.0, target, tau, dt, duration)
}

/// One corner's transient for the Fig. 7b sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CornerTransient {
    /// The simulated corner.
    pub corner: ProcessCorner,
    /// Output waveform.
    pub waveform: Waveform,
    /// 1 % settling time (s).
    pub settling_time: f64,
}

/// Runs the WTA transient across all five process corners (Fig. 7b).
pub fn corner_sweep(target: f64, dt: f64, duration: f64) -> Vec<CornerTransient> {
    ProcessCorner::ALL
        .iter()
        .map(|&corner| {
            let cfg = WtaConfig::at_corner(corner);
            let waveform = cell_transient(&cfg, target, dt, duration);
            let settling_time = waveform
                .settling_time(0.01)
                .expect("first-order step always settles");
            CornerTransient {
                corner,
                waveform,
                settling_time,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_settles_at_paper_latency() {
        let cfg = WtaConfig::nominal();
        let w = cell_transient(&cfg, 10e-6, 1e-13, 1e-9);
        let ts = w.settling_time(0.01).unwrap();
        assert!(
            (ts - 0.08e-9).abs() / 0.08e-9 < 0.02,
            "settling {ts:.3e} should be ≈ 0.08 ns"
        );
    }

    #[test]
    fn corner_sweep_covers_all_corners() {
        let sweep = corner_sweep(10e-6, 1e-12, 1e-9);
        assert_eq!(sweep.len(), 5);
        let corners: Vec<_> = sweep.iter().map(|c| c.corner).collect();
        assert!(corners.contains(&ProcessCorner::Tt));
        assert!(corners.contains(&ProcessCorner::Snfp));
    }

    #[test]
    fn slow_corner_settles_last_fast_first() {
        let sweep = corner_sweep(10e-6, 1e-13, 2e-9);
        let get = |c: ProcessCorner| {
            sweep
                .iter()
                .find(|x| x.corner == c)
                .expect("corner present")
                .settling_time
        };
        assert!(get(ProcessCorner::Ss) > get(ProcessCorner::Tt));
        assert!(get(ProcessCorner::Ff) < get(ProcessCorner::Tt));
    }

    #[test]
    fn all_corners_reach_target() {
        for c in corner_sweep(5e-6, 1e-12, 2e-9) {
            assert!(
                (c.waveform.final_value() - 5e-6).abs() / 5e-6 < 0.01,
                "{} did not reach target",
                c.corner
            );
        }
    }

    #[test]
    fn waveform_starts_at_zero() {
        let cfg = WtaConfig::nominal();
        let w = cell_transient(&cfg, 1e-6, 1e-12, 1e-9);
        assert_eq!(w.samples()[0], 0.0);
    }
}
