//! Winner-takes-all (WTA) trees for the MAX of the MAX-QUBO form
//! (paper Sec. 3.3, Fig. 5).
//!
//! A 2-input WTA cell uses a high-swing self-biased cascode current mirror
//! and a cross-coupled PMOS pair to output
//! `I_max = min(I₁,I₂) + |I₁−I₂| = max(I₁,I₂)` (Eq. 10) with a measured
//! 0.08 ns latency and 0.25 % output offset (Fig. 5c). `⌈log₂D⌉` levels of
//! cells (`2^K − 1` cells total) reduce `D` currents to their maximum.
//!
//! This crate models the cell behaviourally: an exact `max` plus a static
//! per-cell relative offset (mismatch sampled at construction, scaled by
//! the process corner) and a corner-dependent latency, and composes cells
//! into [`WtaTree`]s. Transient settling waveforms reproduce Fig. 5c and
//! Fig. 7b.
//!
//! # Example
//!
//! ```
//! use cnash_wta::{WtaTree, WtaConfig};
//!
//! let tree = WtaTree::build(4, &WtaConfig::nominal(), 42);
//! let out = tree.eval(&[1.0e-6, 3.0e-6, 2.0e-6, 0.5e-6]);
//! assert_eq!(out.argmax, 1);
//! assert!((out.value - 3.0e-6).abs() / 3.0e-6 < 0.01);
//! assert!(out.latency > 0.0);
//! ```

pub mod cell;
pub mod transient;
pub mod tree;

pub use cell::{WtaCell, WtaConfig};
pub use tree::{WtaOutput, WtaTree};
