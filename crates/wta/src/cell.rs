//! The 2-input WTA cell (Fig. 5b).

use cnash_device::corners::ProcessCorner;
use rand::{Rng, RngExt};

/// Behavioural parameters of a WTA cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WtaConfig {
    /// 1-σ relative output offset at the typical corner. The paper
    /// measures 0.25 % (Fig. 5c).
    pub offset_rel: f64,
    /// Cell settling latency at the typical corner (s). The paper
    /// measures 0.08 ns.
    pub latency: f64,
    /// Process corner (scales both offset and latency).
    pub corner: ProcessCorner,
}

impl WtaConfig {
    /// Paper-measured nominal parameters at the typical corner.
    pub fn nominal() -> Self {
        Self {
            offset_rel: 0.0025,
            latency: 0.08e-9,
            corner: ProcessCorner::Tt,
        }
    }

    /// Nominal parameters at a specific corner.
    pub fn at_corner(corner: ProcessCorner) -> Self {
        Self {
            corner,
            ..Self::nominal()
        }
    }

    /// Ideal cell: exact max, still with the nominal latency.
    pub fn ideal() -> Self {
        Self {
            offset_rel: 0.0,
            latency: 0.08e-9,
            corner: ProcessCorner::Tt,
        }
    }

    /// Effective offset after corner scaling.
    pub fn effective_offset(&self) -> f64 {
        self.offset_rel * self.corner.offset_scale()
    }

    /// Effective latency after corner scaling.
    pub fn effective_latency(&self) -> f64 {
        self.latency * self.corner.delay_scale()
    }
}

impl Default for WtaConfig {
    fn default() -> Self {
        Self::nominal()
    }
}

/// One 2-input WTA cell with its static mismatch.
///
/// The mirror mismatch is a property of the silicon, so it is sampled once
/// at construction (uniform in `±effective_offset`, a conservative reading
/// of the reported 0.25 % bound) and then applied deterministically:
/// `I_out = max(I₁, I₂) · (1 + ε)`.
///
/// # Example
///
/// ```
/// use cnash_wta::{WtaCell, WtaConfig};
///
/// let cell = WtaCell::with_mismatch(WtaConfig::nominal(), 0.002);
/// let out = cell.compare(1.0e-6, 2.0e-6);
/// assert!((out - 2.0e-6 * 1.002).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WtaCell {
    config: WtaConfig,
    mismatch: f64,
}

impl WtaCell {
    /// Samples a cell's mismatch from `rng`.
    pub fn sample<R: Rng + ?Sized>(config: WtaConfig, rng: &mut R) -> Self {
        let bound = config.effective_offset();
        let u: f64 = rng.random();
        Self {
            config,
            mismatch: (2.0 * u - 1.0) * bound,
        }
    }

    /// Creates a cell with an explicit mismatch (testing / worst-case).
    pub fn with_mismatch(config: WtaConfig, mismatch: f64) -> Self {
        Self { config, mismatch }
    }

    /// The cell's static relative output error.
    pub fn mismatch(&self) -> f64 {
        self.mismatch
    }

    /// Output current: `max(i1, i2)` with the cell's static offset
    /// (Eq. 10 plus mismatch).
    pub fn compare(&self, i1: f64, i2: f64) -> f64 {
        // Eq. 10: I_X + I_Y = min + |diff| = max.
        let exact = i1.min(i2) + (i1 - i2).abs();
        exact * (1.0 + self.mismatch)
    }

    /// Settling latency of this cell (s).
    pub fn latency(&self) -> f64 {
        self.config.effective_latency()
    }

    /// Cell configuration.
    pub fn config(&self) -> &WtaConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_cell_is_exact_max() {
        let c = WtaCell::with_mismatch(WtaConfig::ideal(), 0.0);
        assert_eq!(c.compare(3.0, 5.0), 5.0);
        assert_eq!(c.compare(5.0, 3.0), 5.0);
        assert_eq!(c.compare(4.0, 4.0), 4.0);
    }

    #[test]
    fn eq10_identity() {
        // min + |diff| always equals max.
        let c = WtaCell::with_mismatch(WtaConfig::ideal(), 0.0);
        for (a, b) in [(1.0, 2.0), (7.5, 7.4), (0.0, 0.0), (1e-9, 1e-6)] {
            assert_eq!(c.compare(a, b), a.max(b));
        }
    }

    #[test]
    fn mismatch_bounded_by_config() {
        let cfg = WtaConfig::nominal();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let c = WtaCell::sample(cfg, &mut rng);
            assert!(c.mismatch().abs() <= cfg.effective_offset() + 1e-15);
        }
    }

    #[test]
    fn nominal_offset_within_quarter_percent() {
        let cfg = WtaConfig::nominal();
        assert!((cfg.effective_offset() - 0.0025).abs() < 1e-12);
        let c = WtaCell::with_mismatch(cfg, cfg.effective_offset());
        let out = c.compare(1.0, 2.0);
        assert!((out - 2.0).abs() / 2.0 <= 0.0025 + 1e-12);
    }

    #[test]
    fn corner_scales_offset_and_latency() {
        use cnash_device::corners::ProcessCorner;
        let skew = WtaConfig::at_corner(ProcessCorner::Snfp);
        let nom = WtaConfig::nominal();
        assert!(skew.effective_offset() > nom.effective_offset());
        let slow = WtaConfig::at_corner(ProcessCorner::Ss);
        assert!(slow.effective_latency() > nom.effective_latency());
        let fast = WtaConfig::at_corner(ProcessCorner::Ff);
        assert!(fast.effective_latency() < nom.effective_latency());
    }

    #[test]
    fn paper_latency_value() {
        assert!((WtaConfig::nominal().effective_latency() - 0.08e-9).abs() < 1e-15);
    }

    #[test]
    fn sampling_is_reproducible() {
        let cfg = WtaConfig::nominal();
        let a = WtaCell::sample(cfg, &mut StdRng::seed_from_u64(9));
        let b = WtaCell::sample(cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.mismatch(), b.mismatch());
    }
}
