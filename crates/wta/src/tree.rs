//! Composition of 2-input WTA cells into a max tree (Fig. 5a).

use crate::cell::{WtaCell, WtaConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of one WTA tree evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WtaOutput {
    /// The (offset-afflicted) maximum current.
    pub value: f64,
    /// Index of the winning input.
    pub argmax: usize,
    /// Total settling latency: depth × cell latency (s).
    pub latency: f64,
}

/// A `⌈log₂ D⌉`-level tree of 2-input WTA cells computing the maximum of
/// `D` input currents.
///
/// The paper sizes the tree as `N = 2^K − 1` cells with `K = ⌈log₂ D⌉`
/// (Sec. 3.3); inputs beyond `D` up to the power of two are tied to zero
/// current, which never wins against physical inputs.
#[derive(Debug, Clone)]
pub struct WtaTree {
    inputs: usize,
    levels: usize,
    cells: Vec<WtaCell>,
    config: WtaConfig,
}

impl WtaTree {
    /// Builds a tree for `inputs` currents, sampling each cell's mismatch
    /// from a seeded RNG (same seed ⇒ same silicon).
    ///
    /// # Panics
    ///
    /// Panics if `inputs == 0`.
    pub fn build(inputs: usize, config: &WtaConfig, seed: u64) -> Self {
        assert!(inputs > 0, "WTA tree needs at least one input");
        let levels = usize::max(1, (inputs as f64).log2().ceil() as usize);
        let cell_count = (1usize << levels) - 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let cells = (0..cell_count)
            .map(|_| WtaCell::sample(*config, &mut rng))
            .collect();
        Self {
            inputs,
            levels,
            cells,
            config: *config,
        }
    }

    /// Builds an ideal (mismatch-free) tree.
    pub fn ideal(inputs: usize) -> Self {
        Self::build(inputs, &WtaConfig::ideal(), 0)
    }

    /// Number of inputs `D`.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Tree depth `K = ⌈log₂ D⌉`.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Number of 2-input cells `2^K − 1`.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Total settling latency (s): `K` levels settle in sequence.
    pub fn latency(&self) -> f64 {
        self.levels as f64 * self.config.effective_latency()
    }

    /// Evaluates the maximum of `currents`.
    ///
    /// Each tournament round applies the corresponding physical cells; a
    /// cell's output (max plus its static offset) feeds the next level, so
    /// offsets compound along the path exactly as in the analog tree. The
    /// reported `argmax` follows the winning path — with mismatches, two
    /// nearly equal inputs can legitimately resolve to the "wrong" winner,
    /// which is part of the modelled non-ideality.
    ///
    /// # Panics
    ///
    /// Panics if `currents.len() != inputs`.
    pub fn eval(&self, currents: &[f64]) -> WtaOutput {
        assert_eq!(
            currents.len(),
            self.inputs,
            "expected {} inputs",
            self.inputs
        );
        // Pad to the power of two with zero currents.
        let width = 1usize << self.levels;
        let mut values: Vec<f64> = currents.to_vec();
        values.resize(width, 0.0);
        let mut winners: Vec<usize> = (0..width).collect();

        let mut cell_idx = 0;
        let mut span = width;
        while span > 1 {
            let mut next_values = Vec::with_capacity(span / 2);
            let mut next_winners = Vec::with_capacity(span / 2);
            for k in 0..span / 2 {
                let (i1, i2) = (values[2 * k], values[2 * k + 1]);
                let cell = &self.cells[cell_idx];
                cell_idx += 1;
                next_values.push(cell.compare(i1, i2));
                // The cross-coupled pair steers the larger *cell input*;
                // at this point offsets from lower levels are already in
                // i1/i2, so the comparison is on the afflicted values.
                next_winners.push(if i1 >= i2 {
                    winners[2 * k]
                } else {
                    winners[2 * k + 1]
                });
            }
            values = next_values;
            winners = next_winners;
            span /= 2;
        }

        WtaOutput {
            value: values[0],
            argmax: winners[0].min(self.inputs - 1),
            latency: self.latency(),
        }
    }

    /// The maximum value alone — [`WtaTree::eval`] without the
    /// winning-path bookkeeping, for hot paths that only need the analog
    /// max (one tournament buffer, no per-level allocations). Bitwise the
    /// same value as `eval(currents).value`.
    ///
    /// # Panics
    ///
    /// Panics if `currents.len() != inputs`.
    pub fn eval_value(&self, currents: &[f64]) -> f64 {
        assert_eq!(
            currents.len(),
            self.inputs,
            "expected {} inputs",
            self.inputs
        );
        let width = 1usize << self.levels;
        let mut values: Vec<f64> = currents.to_vec();
        values.resize(width, 0.0);
        let mut cell_idx = 0;
        let mut span = width;
        while span > 1 {
            for k in 0..span / 2 {
                let out = self.cells[cell_idx].compare(values[2 * k], values[2 * k + 1]);
                cell_idx += 1;
                values[k] = out;
            }
            span /= 2;
        }
        values[0]
    }

    /// Worst-case relative error bound of the tree output: offsets
    /// compound multiplicatively over `K` levels.
    pub fn error_bound(&self) -> f64 {
        let per_cell = self.config.effective_offset();
        (1.0 + per_cell).powi(self.levels as i32) - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnash_device::corners::ProcessCorner;

    #[test]
    fn paper_cell_count_formula() {
        // N = 2^K − 1 with K = ⌈log₂ D⌉ (Sec. 3.3).
        for (d, k, n) in [(2, 1, 1), (3, 2, 3), (4, 2, 3), (8, 3, 7), (5, 3, 7)] {
            let t = WtaTree::ideal(d);
            assert_eq!(t.levels(), k, "D={d}");
            assert_eq!(t.cell_count(), n, "D={d}");
        }
    }

    #[test]
    fn ideal_tree_finds_exact_max() {
        let t = WtaTree::ideal(8);
        let inputs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let out = t.eval(&inputs);
        assert_eq!(out.value, 9.0);
        assert_eq!(out.argmax, 5);
    }

    #[test]
    fn single_input_tree() {
        let t = WtaTree::ideal(1);
        let out = t.eval(&[7.0]);
        assert_eq!(out.value, 7.0);
        assert_eq!(out.argmax, 0);
    }

    #[test]
    fn non_power_of_two_padding_never_wins() {
        let t = WtaTree::ideal(3);
        let out = t.eval(&[1e-6, 2e-6, 1.5e-6]);
        assert_eq!(out.argmax, 1);
        assert_eq!(out.value, 2e-6);
    }

    #[test]
    fn eval_value_matches_eval_bitwise() {
        let cfg = WtaConfig::nominal();
        for (inputs, seed) in [(1usize, 0u64), (3, 1), (8, 2), (11, 3), (64, 4)] {
            let t = WtaTree::build(inputs, &cfg, seed);
            let currents: Vec<f64> = (0..inputs).map(|k| (k as f64 * 0.37).sin().abs()).collect();
            assert_eq!(t.eval_value(&currents), t.eval(&currents).value);
        }
    }

    #[test]
    fn latency_is_depth_times_cell() {
        let t = WtaTree::build(8, &WtaConfig::nominal(), 0);
        assert!((t.latency() - 3.0 * 0.08e-9).abs() < 1e-18);
        let out = t.eval(&[0.0; 8]);
        assert_eq!(out.latency, t.latency());
    }

    #[test]
    fn mismatched_tree_error_within_bound() {
        let cfg = WtaConfig::nominal();
        for seed in 0..20 {
            let t = WtaTree::build(16, &cfg, seed);
            let inputs: Vec<f64> = (1..=16).map(|k| k as f64 * 1e-6).collect();
            let out = t.eval(&inputs);
            let exact = 16e-6;
            let rel = (out.value - exact).abs() / exact;
            assert!(
                rel <= t.error_bound() + 1e-12,
                "seed {seed}: rel error {rel} exceeds bound {}",
                t.error_bound()
            );
        }
    }

    #[test]
    fn well_separated_inputs_keep_correct_argmax() {
        // 0.25% offsets cannot flip a 10% separation.
        let cfg = WtaConfig::nominal();
        for seed in 0..20 {
            let t = WtaTree::build(8, &cfg, seed);
            let mut inputs = vec![1e-6; 8];
            inputs[3] = 1.1e-6;
            assert_eq!(t.eval(&inputs).argmax, 3, "seed {seed}");
        }
    }

    #[test]
    fn skewed_corner_has_larger_error_bound() {
        let nom = WtaTree::build(8, &WtaConfig::nominal(), 0);
        let skew = WtaTree::build(8, &WtaConfig::at_corner(ProcessCorner::Snfp), 0);
        assert!(skew.error_bound() > nom.error_bound());
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn zero_inputs_panics() {
        let _ = WtaTree::ideal(0);
    }

    #[test]
    #[should_panic(expected = "expected 4 inputs")]
    fn wrong_input_count_panics() {
        WtaTree::ideal(4).eval(&[1.0, 2.0]);
    }
}
