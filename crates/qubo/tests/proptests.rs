//! Property-based tests of the QUBO machinery.

use cnash_game::generators::random_integer_game;
use cnash_game::{BimatrixGame, Matrix, MixedStrategy};
use cnash_qubo::annealer::{anneal, AnnealParams};
use cnash_qubo::maxqubo::MaxQubo;
use cnash_qubo::model::Qubo;
use cnash_qubo::squbo::{SQubo, SQuboWeights};
use proptest::prelude::*;

/// Arbitrary QUBO with small *integer* coefficients — every derived sum
/// is exact in f64.
fn arb_int_qubo(n: usize) -> impl Strategy<Value = Qubo> {
    (
        prop::collection::vec(-5i32..=5, n),
        prop::collection::vec(-3i32..=3, n * n),
    )
        .prop_map(move |(lin, quad)| {
            let mut q = Qubo::new(n);
            for (i, &l) in lin.iter().enumerate() {
                q.add_linear(i, f64::from(l));
            }
            for i in 0..n {
                for j in i + 1..n {
                    q.add_coupling(i, j, f64::from(quad[i * n + j]));
                }
            }
            q
        })
}

fn arb_qubo(n: usize) -> impl Strategy<Value = Qubo> {
    (
        prop::collection::vec(-3.0f64..3.0, n),
        prop::collection::vec(-2.0f64..2.0, n * n),
    )
        .prop_map(move |(lin, quad)| {
            let mut q = Qubo::new(n);
            for (i, &l) in lin.iter().enumerate() {
                q.add_linear(i, l);
            }
            for i in 0..n {
                for j in i + 1..n {
                    q.add_coupling(i, j, quad[i * n + j]);
                }
            }
            q
        })
}

proptest! {
    /// flip_delta always equals the direct energy difference.
    #[test]
    fn flip_delta_consistent(
        q in arb_qubo(8),
        x in prop::collection::vec(prop::bool::ANY, 8),
        k in 0usize..8,
    ) {
        let mut y = x.clone();
        y[k] = !y[k];
        let delta = q.flip_delta(&x, k);
        let direct = q.energy(&y) - q.energy(&x);
        prop_assert!((delta - direct).abs() < 1e-9);
    }

    /// The annealer's reported best energy matches re-evaluating its best
    /// assignment, and never exceeds the all-false baseline it could
    /// always reach.
    #[test]
    fn annealer_bookkeeping(q in arb_qubo(10), seed in 0u64..100) {
        let r = anneal(&q, &AnnealParams::new(50, 5.0, 0.1), seed);
        prop_assert!((q.energy(&r.best_assignment) - r.best_energy).abs() < 1e-9);
    }

    /// S-QUBO QUBO expansion equals the direct Eq. 6 evaluation for any
    /// random game and assignment.
    #[test]
    fn squbo_expansion_exact(seed in 0u64..50, bits in prop::collection::vec(prop::bool::ANY, 64)) {
        let game = random_integer_game(3, 3, 6, seed).expect("valid");
        let s = SQubo::build(&game, &SQuboWeights::default()).expect("integer");
        let x: Vec<bool> = (0..s.num_vars()).map(|k| bits[k % bits.len()]).collect();
        let a = s.qubo().energy(&x);
        let b = s.direct_energy(&x);
        prop_assert!((a - b).abs() < 1e-6, "qubo {a} vs direct {b}");
    }

    /// MAX-QUBO objective is non-negative for any game and strategies,
    /// and zero exactly on verified equilibria.
    #[test]
    fn maxqubo_nonnegative(
        seed in 0u64..50,
        praw in prop::collection::vec(0.01f64..1.0, 3),
        qraw in prop::collection::vec(0.01f64..1.0, 3),
    ) {
        let game = random_integer_game(3, 3, 9, seed).expect("valid");
        let mq = MaxQubo::new(&game);
        let norm = |v: Vec<f64>| {
            let s: f64 = v.iter().sum();
            MixedStrategy::new(v.into_iter().map(|x| x / s).collect()).expect("valid")
        };
        let p = norm(praw);
        let q = norm(qraw);
        let f = mq.objective(&p, &q).expect("shapes");
        prop_assert!(f >= -1e-9);
        if game.is_equilibrium(&p, &q, 1e-12) {
            prop_assert!(f.abs() < 1e-9);
        }
    }

    /// S-QUBO construction never panics on games with negative payoffs
    /// (the offset handles them) and its variable count follows the
    /// documented formula.
    #[test]
    fn squbo_var_count_formula(seed in 0u64..30) {
        let base = random_integer_game(4, 3, 7, seed).expect("valid");
        let game = BimatrixGame::new(
            "shifted",
            base.row_payoffs().map(|x| x - 3.0),
            base.col_payoffs().map(|x| x - 3.0),
        ).expect("shapes");
        let s = SQubo::build(&game, &SQuboWeights::default()).expect("builds");
        // n + m + ka + kb + n*ka + m*kb with ka, kb >= 1.
        let (n, m) = (4usize, 3usize);
        prop_assert!(s.num_vars() >= n + m + 2 + n + m);
    }

    /// Brute-force minimum of small QUBOs lower-bounds every annealer run.
    #[test]
    fn brute_force_is_global(q in arb_qubo(10), seed in 0u64..20) {
        let (_, emin) = q.brute_force_minimum();
        let r = anneal(&q, &AnnealParams::new(30, 5.0, 0.1), seed);
        prop_assert!(r.best_energy >= emin - 1e-9);
    }

    /// **Delta-vs-full equivalence (QUBO hot path).** Over random
    /// integer-coefficient QUBOs — every coefficient and running sum
    /// exact in f64, the case produced by S-QUBO transformations of
    /// integer games — the local-field incremental annealer and the
    /// O(n)-scan full annealer return bit-identical results: best
    /// energy, best assignment, trajectory statistics.
    #[test]
    fn incremental_anneal_bit_identical_on_integer_qubos(
        q in arb_int_qubo(14),
        seed in 0u64..50,
        sweeps in 5usize..60,
    ) {
        let params = AnnealParams::new(sweeps, 8.0, 0.05);
        let full = anneal(&q, &params, seed);
        let inc = cnash_qubo::annealer::anneal_incremental(&q, &params, seed);
        prop_assert_eq!(full, inc);
    }

    /// The equivalence also holds end-to-end through the S-QUBO of a
    /// random integer game — the production baseline path.
    #[test]
    fn incremental_anneal_bit_identical_on_squbos(
        n in 2usize..4,
        game_seed in 0u64..30,
        seed in 0u64..10,
    ) {
        let game = random_integer_game(n, n, 6, game_seed).expect("valid");
        let s = SQubo::build(&game, &SQuboWeights::default()).expect("integer payoffs");
        let params = AnnealParams::new(40, 10.0, 0.05);
        let full = anneal(s.qubo(), &params, seed);
        let inc = cnash_qubo::annealer::anneal_incremental(s.qubo(), &params, seed);
        prop_assert_eq!(full, inc);
    }

    /// The generic incremental Metropolis driver over [`QuboDelta`]
    /// walks bit-identical trajectories to the classic driver that
    /// fully re-evaluates `Qubo::energy` on every proposal — the same
    /// delta-vs-full contract the crossbar evaluator satisfies, through
    /// the same `cnash-anneal` machinery.
    #[test]
    fn qubo_delta_generic_driver_matches_full_driver(
        q in arb_int_qubo(10),
        seed in 0u64..30,
    ) {
        use cnash_anneal::delta::simulated_annealing_delta;
        use cnash_anneal::engine::{simulated_annealing, SaOptions};
        use cnash_anneal::Schedule;
        use cnash_qubo::QuboDelta;
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};

        let init: Vec<bool> = {
            let mut r = StdRng::seed_from_u64(seed ^ 0xF00D);
            (0..q.num_vars()).map(|_| r.random()).collect()
        };
        let opts = SaOptions {
            iterations: 300,
            schedule: Schedule::geometric(5.0, 0.01),
            seed,
            target_energy: Some(0.0),
            record_trace: true,
            record_hits: true,
        };
        let full = simulated_annealing(
            init.clone(),
            |x: &Vec<bool>| q.energy(x),
            |x, rng| {
                let k = rng.random_range(0..x.len());
                let mut y = x.clone();
                y[k] = !y[k];
                y
            },
            &opts,
        );
        let mut eval = QuboDelta::new(&q, init);
        let delta = simulated_annealing_delta(&mut eval, &opts);
        prop_assert_eq!(full, delta);
    }

    /// On arbitrary float QUBOs the two paths may round differently, but
    /// the incremental path's energy bookkeeping must stay consistent
    /// with a from-scratch energy evaluation of its reported best state.
    #[test]
    fn incremental_anneal_bookkeeping_consistent_on_float_qubos(
        q in arb_qubo(12),
        seed in 0u64..20,
    ) {
        let params = AnnealParams::new(30, 5.0, 0.1);
        let r = cnash_qubo::annealer::anneal_incremental(&q, &params, seed);
        prop_assert!((q.energy(&r.best_assignment) - r.best_energy).abs() < 1e-6);
    }
}

/// Non-proptest regression: the matrix used in the S-QUBO must match the
/// game exactly after the documented offset.
#[test]
fn squbo_offsets_preserve_equilibrium_sets() {
    let m = Matrix::from_rows(&[vec![-1.0, 2.0], vec![0.0, 1.0]]).expect("valid");
    let game = BimatrixGame::symmetric("hawk-dove", m).expect("square");
    let s = SQubo::build(&game, &SQuboWeights::default()).expect("builds");
    let (x, e) = s.qubo().brute_force_minimum();
    assert!(e.abs() < 1e-9);
    let d = s.decode(&x);
    let (p, q) = d.profile.expect("one-hot");
    assert!(game.is_equilibrium(&p, &q, 1e-9));
}
