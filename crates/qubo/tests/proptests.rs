//! Property-based tests of the QUBO machinery.

use cnash_game::generators::random_integer_game;
use cnash_game::{BimatrixGame, Matrix, MixedStrategy};
use cnash_qubo::annealer::{anneal, AnnealParams};
use cnash_qubo::maxqubo::MaxQubo;
use cnash_qubo::model::Qubo;
use cnash_qubo::squbo::{SQubo, SQuboWeights};
use proptest::prelude::*;

fn arb_qubo(n: usize) -> impl Strategy<Value = Qubo> {
    (
        prop::collection::vec(-3.0f64..3.0, n),
        prop::collection::vec(-2.0f64..2.0, n * n),
    )
        .prop_map(move |(lin, quad)| {
            let mut q = Qubo::new(n);
            for (i, &l) in lin.iter().enumerate() {
                q.add_linear(i, l);
            }
            for i in 0..n {
                for j in i + 1..n {
                    q.add_coupling(i, j, quad[i * n + j]);
                }
            }
            q
        })
}

proptest! {
    /// flip_delta always equals the direct energy difference.
    #[test]
    fn flip_delta_consistent(
        q in arb_qubo(8),
        x in prop::collection::vec(prop::bool::ANY, 8),
        k in 0usize..8,
    ) {
        let mut y = x.clone();
        y[k] = !y[k];
        let delta = q.flip_delta(&x, k);
        let direct = q.energy(&y) - q.energy(&x);
        prop_assert!((delta - direct).abs() < 1e-9);
    }

    /// The annealer's reported best energy matches re-evaluating its best
    /// assignment, and never exceeds the all-false baseline it could
    /// always reach.
    #[test]
    fn annealer_bookkeeping(q in arb_qubo(10), seed in 0u64..100) {
        let r = anneal(&q, &AnnealParams::new(50, 5.0, 0.1), seed);
        prop_assert!((q.energy(&r.best_assignment) - r.best_energy).abs() < 1e-9);
    }

    /// S-QUBO QUBO expansion equals the direct Eq. 6 evaluation for any
    /// random game and assignment.
    #[test]
    fn squbo_expansion_exact(seed in 0u64..50, bits in prop::collection::vec(prop::bool::ANY, 64)) {
        let game = random_integer_game(3, 3, 6, seed).expect("valid");
        let s = SQubo::build(&game, &SQuboWeights::default()).expect("integer");
        let x: Vec<bool> = (0..s.num_vars()).map(|k| bits[k % bits.len()]).collect();
        let a = s.qubo().energy(&x);
        let b = s.direct_energy(&x);
        prop_assert!((a - b).abs() < 1e-6, "qubo {a} vs direct {b}");
    }

    /// MAX-QUBO objective is non-negative for any game and strategies,
    /// and zero exactly on verified equilibria.
    #[test]
    fn maxqubo_nonnegative(
        seed in 0u64..50,
        praw in prop::collection::vec(0.01f64..1.0, 3),
        qraw in prop::collection::vec(0.01f64..1.0, 3),
    ) {
        let game = random_integer_game(3, 3, 9, seed).expect("valid");
        let mq = MaxQubo::new(&game);
        let norm = |v: Vec<f64>| {
            let s: f64 = v.iter().sum();
            MixedStrategy::new(v.into_iter().map(|x| x / s).collect()).expect("valid")
        };
        let p = norm(praw);
        let q = norm(qraw);
        let f = mq.objective(&p, &q).expect("shapes");
        prop_assert!(f >= -1e-9);
        if game.is_equilibrium(&p, &q, 1e-12) {
            prop_assert!(f.abs() < 1e-9);
        }
    }

    /// S-QUBO construction never panics on games with negative payoffs
    /// (the offset handles them) and its variable count follows the
    /// documented formula.
    #[test]
    fn squbo_var_count_formula(seed in 0u64..30) {
        let base = random_integer_game(4, 3, 7, seed).expect("valid");
        let game = BimatrixGame::new(
            "shifted",
            base.row_payoffs().map(|x| x - 3.0),
            base.col_payoffs().map(|x| x - 3.0),
        ).expect("shapes");
        let s = SQubo::build(&game, &SQuboWeights::default()).expect("builds");
        // n + m + ka + kb + n*ka + m*kb with ka, kb >= 1.
        let (n, m) = (4usize, 3usize);
        prop_assert!(s.num_vars() >= n + m + 2 + n + m);
    }

    /// Brute-force minimum of small QUBOs lower-bounds every annealer run.
    #[test]
    fn brute_force_is_global(q in arb_qubo(10), seed in 0u64..20) {
        let (_, emin) = q.brute_force_minimum();
        let r = anneal(&q, &AnnealParams::new(30, 5.0, 0.1), seed);
        prop_assert!(r.best_energy >= emin - 1e-9);
    }
}

/// Non-proptest regression: the matrix used in the S-QUBO must match the
/// game exactly after the documented offset.
#[test]
fn squbo_offsets_preserve_equilibrium_sets() {
    let m = Matrix::from_rows(&[vec![-1.0, 2.0], vec![0.0, 1.0]]).expect("valid");
    let game = BimatrixGame::symmetric("hawk-dove", m).expect("square");
    let s = SQubo::build(&game, &SQuboWeights::default()).expect("builds");
    let (x, e) = s.qubo().brute_force_minimum();
    assert!(e.abs() < 1e-9);
    let d = s.decode(&x);
    let (p, q) = d.profile.expect("one-hot");
    assert!(game.is_equilibrium(&p, &q, 1e-9));
}
