//! Minor-embedding chain models for D-Wave QPU topologies.
//!
//! A QPU's qubit graph has bounded degree, so densely connected logical
//! problems (the S-QUBO of Eq. 6 is nearly fully connected through the
//! penalty terms) must be *minor-embedded*: each logical variable becomes
//! a chain of physical qubits. Longer chains break more often during the
//! anneal, corrupting samples — the dominant hardware noise mechanism this
//! model captures. Chain-length scaling for clique embeddings:
//! roughly `L/4 + 1` on Chimera (2000Q) and `L/12 + 1` on Pegasus
//! (Advantage), reflecting their connectivities (6 vs 15).

use std::fmt;

/// A D-Wave qubit-graph family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// Chimera C16 (D-Wave 2000Q): 2048 qubits, degree 6.
    Chimera,
    /// Pegasus P16 (D-Wave Advantage): 5640 qubits, degree 15.
    Pegasus,
}

impl Topology {
    /// Physical qubit count of the flagship QPU of this family.
    pub fn qubit_count(self) -> usize {
        match self {
            Topology::Chimera => 2048,
            Topology::Pegasus => 5640,
        }
    }

    /// Qubit connectivity (graph degree).
    pub fn degree(self) -> usize {
        match self {
            Topology::Chimera => 6,
            Topology::Pegasus => 15,
        }
    }

    /// Estimated chain length for embedding a clique of `logical_vars`.
    pub fn chain_length(self, logical_vars: usize) -> usize {
        let denom = match self {
            Topology::Chimera => 4,
            Topology::Pegasus => 12,
        };
        logical_vars.div_ceil(denom) + 1
    }

    /// Physical qubits consumed by the embedding.
    pub fn physical_qubits(self, logical_vars: usize) -> usize {
        logical_vars * self.chain_length(logical_vars)
    }

    /// `true` if a clique of `logical_vars` fits on this QPU.
    pub fn fits(self, logical_vars: usize) -> bool {
        self.physical_qubits(logical_vars) <= self.qubit_count()
    }

    /// Probability that a chain of the embedding breaks during one
    /// anneal, given a per-link break probability: a chain of length `c`
    /// has `c − 1` internal couplers.
    pub fn chain_break_probability(self, logical_vars: usize, link_break_prob: f64) -> f64 {
        let c = self.chain_length(logical_vars);
        1.0 - (1.0 - link_break_prob).powi(c as i32 - 1)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::Chimera => write!(f, "Chimera (2000Q)"),
            Topology::Pegasus => write!(f, "Pegasus (Advantage)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_counts_and_degrees() {
        assert_eq!(Topology::Chimera.qubit_count(), 2048);
        assert_eq!(Topology::Pegasus.qubit_count(), 5640);
        assert!(Topology::Pegasus.degree() > Topology::Chimera.degree());
    }

    #[test]
    fn pegasus_chains_are_shorter() {
        for l in [16, 40, 88] {
            assert!(
                Topology::Pegasus.chain_length(l) < Topology::Chimera.chain_length(l),
                "L={l}"
            );
        }
    }

    #[test]
    fn chain_length_grows_with_problem() {
        let t = Topology::Chimera;
        assert!(t.chain_length(80) > t.chain_length(16));
    }

    #[test]
    fn small_problems_fit_everywhere() {
        assert!(Topology::Chimera.fits(16));
        assert!(Topology::Pegasus.fits(88));
    }

    #[test]
    fn break_probability_increases_with_chain_length() {
        let p = 0.01;
        let small = Topology::Chimera.chain_break_probability(8, p);
        let big = Topology::Chimera.chain_break_probability(88, p);
        assert!(big > small);
        assert!((0.0..=1.0).contains(&small));
        assert!((0.0..=1.0).contains(&big));
    }

    #[test]
    fn zero_link_break_means_no_chain_break() {
        assert_eq!(Topology::Pegasus.chain_break_probability(40, 0.0), 0.0);
    }

    #[test]
    fn display_names() {
        assert!(Topology::Chimera.to_string().contains("2000Q"));
        assert!(Topology::Pegasus.to_string().contains("Advantage"));
    }
}
