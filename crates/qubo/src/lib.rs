//! QUBO machinery and the D-Wave baseline emulation.
//!
//! The paper's baselines (Khan et al. \[8]) solve Nash-equilibrium problems
//! on D-Wave quantum annealers by converting the Mangasarian–Stone
//! quadratic program into *slack-QUBO* (S-QUBO) form (Eq. 6): inequality
//! constraints become squared equality penalties with extra slack
//! variables, and all quantities are encoded in binary. This conversion is
//! **lossy** in two ways the paper exploits:
//!
//! 1. strategies are binary, so only *pure* profiles are representable —
//!    mixed equilibria are invisible to the solver;
//! 2. the penalty weights and slack discretisation deform the objective,
//!    creating "fake" minima that are not equilibria of the original game.
//!
//! This crate provides:
//!
//! * [`model::Qubo`] — a dense QUBO container with incremental energy
//!   evaluation,
//! * [`squbo`] — the Eq. 6 builder (per-row slacks, binary encodings for
//!   `α`, `β`, `ζᵢ`, `ηⱼ`) and its decoder,
//! * [`annealer`] — seeded single-flip simulated annealing over QUBOs,
//! * [`topology`] / [`dwave`] — Chimera/Pegasus minor-embedding chain
//!   models, chain-break noise, QPU access timing, and the two presets
//!   `dwave_2000q()` / `advantage_4_1()` used as paper baselines,
//! * [`maxqubo`] — the exact MAX-QUBO objective (Eq. 9) for reference.
//!
//! # Example
//!
//! ```
//! use cnash_game::games;
//! use cnash_qubo::squbo::{SQubo, SQuboWeights};
//! use cnash_qubo::annealer::{anneal, AnnealParams};
//!
//! let game = games::battle_of_the_sexes();
//! let squbo = SQubo::build(&game, &SQuboWeights::default()).expect("integer payoffs");
//! let result = anneal(squbo.qubo(), &AnnealParams::default(), 7);
//! let decoded = squbo.decode(&result.best_assignment);
//! // When the anneal reaches the S-QUBO ground state (energy 0), the
//! // decoded profile is one of BoS's two pure equilibria.
//! if result.best_energy.abs() < 1e-9 {
//!     let (p, q) = decoded.profile.expect("ground states are one-hot");
//!     assert!(game.is_equilibrium(&p, &q, 1e-9));
//! }
//! ```

pub mod annealer;
pub mod dwave;
pub mod maxqubo;
pub mod model;
pub mod squbo;
pub mod topology;

pub use annealer::{
    anneal, anneal_incremental, AnnealParams, AnnealResult, LocalFields, QuboDelta,
};
pub use dwave::DWaveModel;
pub use model::Qubo;
pub use squbo::{SQubo, SQuboWeights};
