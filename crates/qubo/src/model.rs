//! Dense QUBO container.

use std::fmt;

/// A quadratic unconstrained binary optimisation problem
/// `E(x) = c + Σᵢ lᵢ xᵢ + Σ_{i<j} Q_{ij} xᵢ xⱼ`, `x ∈ {0,1}ⁿ` (Eq. 5 with
/// an explicit constant so transformed objectives keep their offset).
#[derive(Debug, Clone, PartialEq)]
pub struct Qubo {
    n: usize,
    /// Linear coefficients (diagonal of the canonical Q matrix).
    linear: Vec<f64>,
    /// Symmetric off-diagonal couplings, row-major `n × n`, zero diagonal.
    quad: Vec<f64>,
    constant: f64,
}

impl Qubo {
    /// Creates an all-zero QUBO over `n` variables.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "QUBO needs at least one variable");
        Self {
            n,
            linear: vec![0.0; n],
            quad: vec![0.0; n * n],
            constant: 0.0,
        }
    }

    /// Number of binary variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Constant energy offset.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Adds to the constant offset.
    pub fn add_constant(&mut self, c: f64) {
        self.constant += c;
    }

    /// Adds to a linear coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn add_linear(&mut self, i: usize, w: f64) {
        assert!(i < self.n, "variable {i} out of range");
        self.linear[i] += w;
    }

    /// Adds to the symmetric coupling between `i` and `j`. Adding to
    /// `(i, i)` folds into the linear term (since `xᵢ² = xᵢ`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn add_coupling(&mut self, i: usize, j: usize, w: f64) {
        assert!(i < self.n && j < self.n, "coupling ({i},{j}) out of range");
        if i == j {
            self.linear[i] += w;
        } else {
            self.quad[i * self.n + j] += w / 2.0;
            self.quad[j * self.n + i] += w / 2.0;
        }
    }

    /// Adds `weight · (Σ coefs·x + c0)²`, the workhorse for penalty terms.
    /// Uses `xᵢ² = xᵢ` to fold squares into linear terms.
    pub fn add_squared_penalty(&mut self, terms: &[(usize, f64)], c0: f64, weight: f64) {
        self.add_constant(weight * c0 * c0);
        for &(i, a) in terms {
            // a²xᵢ² = a²xᵢ, plus the 2·c0·a·xᵢ cross term.
            self.add_linear(i, weight * (a * a + 2.0 * c0 * a));
        }
        for (k, &(i, a)) in terms.iter().enumerate() {
            for &(j, b) in &terms[k + 1..] {
                self.add_coupling(i, j, weight * 2.0 * a * b);
            }
        }
    }

    /// Linear coefficient of variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn linear(&self, i: usize) -> f64 {
        assert!(i < self.n);
        self.linear[i]
    }

    /// Symmetric coupling between `i` and `j` (the full `Q_{ij} + Q_{ji}`
    /// weight applied when both bits are 1).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn coupling(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n);
        if i == j {
            0.0
        } else {
            self.quad[i * self.n + j] * 2.0
        }
    }

    /// Full energy of an assignment.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn energy(&self, x: &[bool]) -> f64 {
        assert_eq!(x.len(), self.n, "assignment length mismatch");
        let mut e = self.constant;
        for i in 0..self.n {
            if x[i] {
                e += self.linear[i];
                let row = &self.quad[i * self.n..(i + 1) * self.n];
                for j in i + 1..self.n {
                    if x[j] {
                        e += 2.0 * row[j];
                    }
                }
            }
        }
        e
    }

    /// Energy change from flipping bit `k` of `x` (O(n)).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range or lengths mismatch.
    pub fn flip_delta(&self, x: &[bool], k: usize) -> f64 {
        assert_eq!(x.len(), self.n);
        assert!(k < self.n);
        let row = &self.quad[k * self.n..(k + 1) * self.n];
        let mut field = self.linear[k];
        for j in 0..self.n {
            if x[j] && j != k {
                field += 2.0 * row[j];
            }
        }
        if x[k] {
            -field
        } else {
            field
        }
    }

    /// Exhaustively minimises the QUBO (for testing small instances).
    ///
    /// # Panics
    ///
    /// Panics if `num_vars() > 24`.
    pub fn brute_force_minimum(&self) -> (Vec<bool>, f64) {
        assert!(self.n <= 24, "brute force limited to 24 variables");
        let mut best = (vec![false; self.n], f64::INFINITY);
        for mask in 0u64..(1u64 << self.n) {
            let x: Vec<bool> = (0..self.n).map(|i| mask & (1 << i) != 0).collect();
            let e = self.energy(&x);
            if e < best.1 {
                best = (x, e);
            }
        }
        best
    }
}

impl fmt::Display for Qubo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Qubo({} vars, constant {:.3})", self.n, self.constant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_of_simple_qubo() {
        // E = 1 + 2x0 - 3x1 + 4x0x1
        let mut q = Qubo::new(2);
        q.add_constant(1.0);
        q.add_linear(0, 2.0);
        q.add_linear(1, -3.0);
        q.add_coupling(0, 1, 4.0);
        assert_eq!(q.energy(&[false, false]), 1.0);
        assert_eq!(q.energy(&[true, false]), 3.0);
        assert_eq!(q.energy(&[false, true]), -2.0);
        assert_eq!(q.energy(&[true, true]), 4.0);
    }

    #[test]
    fn coupling_is_symmetric() {
        let mut q = Qubo::new(3);
        q.add_coupling(0, 2, 5.0);
        assert_eq!(q.coupling(0, 2), 5.0);
        assert_eq!(q.coupling(2, 0), 5.0);
        assert_eq!(q.coupling(1, 1), 0.0);
    }

    #[test]
    fn self_coupling_folds_to_linear() {
        let mut q = Qubo::new(2);
        q.add_coupling(1, 1, 3.0);
        assert_eq!(q.linear(1), 3.0);
        assert_eq!(q.energy(&[false, true]), 3.0);
    }

    #[test]
    fn flip_delta_matches_energy_difference() {
        let mut q = Qubo::new(4);
        q.add_linear(0, 1.5);
        q.add_linear(3, -2.0);
        q.add_coupling(0, 1, 2.0);
        q.add_coupling(1, 2, -1.0);
        q.add_coupling(2, 3, 0.5);
        let x = [true, false, true, true];
        for k in 0..4 {
            let mut y = x;
            y[k] = !y[k];
            let delta = q.flip_delta(&x, k);
            let direct = q.energy(&y) - q.energy(&x);
            assert!((delta - direct).abs() < 1e-12, "bit {k}");
        }
    }

    #[test]
    fn squared_penalty_expansion() {
        // weight·(x0 + 2x1 − 1)²: check all four assignments directly.
        let mut q = Qubo::new(2);
        q.add_squared_penalty(&[(0, 1.0), (1, 2.0)], -1.0, 3.0);
        let expect = |x0: bool, x1: bool| {
            let v = x0 as i32 as f64 + 2.0 * (x1 as i32 as f64) - 1.0;
            3.0 * v * v
        };
        for (a, b) in [(false, false), (true, false), (false, true), (true, true)] {
            assert!(
                (q.energy(&[a, b]) - expect(a, b)).abs() < 1e-12,
                "({a},{b})"
            );
        }
    }

    #[test]
    fn brute_force_finds_minimum() {
        let mut q = Qubo::new(3);
        q.add_squared_penalty(&[(0, 1.0), (1, 1.0), (2, 1.0)], -2.0, 1.0);
        // Minimum: exactly two bits set.
        let (x, e) = q.brute_force_minimum();
        assert_eq!(x.iter().filter(|&&b| b).count(), 2);
        assert!(e.abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one variable")]
    fn zero_vars_panics() {
        let _ = Qubo::new(0);
    }

    #[test]
    #[should_panic(expected = "assignment length mismatch")]
    fn wrong_assignment_length_panics() {
        Qubo::new(2).energy(&[true]);
    }
}
