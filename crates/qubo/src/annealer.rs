//! Single-flip simulated annealing over QUBOs.
//!
//! This is both (a) the classical core of the emulated D-Wave samplers
//! (each "read" is modelled as a short thermal anneal, see
//! [`crate::dwave`]) and (b) a general-purpose QUBO heuristic used in the
//! ablation studies.

use crate::model::Qubo;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters of one annealing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealParams {
    /// Number of full sweeps (each sweep proposes `num_vars` flips).
    pub sweeps: usize,
    /// Starting temperature (energy units).
    pub t_max: f64,
    /// Final temperature.
    pub t_min: f64,
}

impl AnnealParams {
    /// Creates parameters, validating the temperature range.
    ///
    /// # Panics
    ///
    /// Panics if `t_max < t_min`, either is non-positive, or `sweeps == 0`.
    pub fn new(sweeps: usize, t_max: f64, t_min: f64) -> Self {
        assert!(sweeps > 0, "need at least one sweep");
        assert!(t_min > 0.0 && t_max >= t_min, "bad temperature range");
        Self {
            sweeps,
            t_max,
            t_min,
        }
    }
}

impl Default for AnnealParams {
    fn default() -> Self {
        Self {
            sweeps: 300,
            t_max: 10.0,
            t_min: 0.05,
        }
    }
}

/// Outcome of one annealing run.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealResult {
    /// Best assignment seen.
    pub best_assignment: Vec<bool>,
    /// Energy of the best assignment.
    pub best_energy: f64,
    /// Final (not necessarily best) assignment.
    pub final_assignment: Vec<bool>,
    /// Number of accepted flips.
    pub accepted: usize,
}

/// Runs one seeded simulated-annealing descent on `qubo`.
///
/// The temperature decays geometrically from `t_max` to `t_min` over the
/// configured sweeps; each sweep proposes one flip per variable in random
/// order with Metropolis acceptance.
///
/// # Example
///
/// ```
/// use cnash_qubo::model::Qubo;
/// use cnash_qubo::annealer::{anneal, AnnealParams};
///
/// // Minimise (x0 + x1 − 1)²: ground states are the two one-hot vectors.
/// let mut q = Qubo::new(2);
/// q.add_squared_penalty(&[(0, 1.0), (1, 1.0)], -1.0, 1.0);
/// let r = anneal(&q, &AnnealParams::default(), 1);
/// assert_eq!(r.best_energy, 0.0);
/// ```
pub fn anneal(qubo: &Qubo, params: &AnnealParams, seed: u64) -> AnnealResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = qubo.num_vars();
    let mut x: Vec<bool> = (0..n).map(|_| rng.random()).collect();
    let mut energy = qubo.energy(&x);
    let mut best = x.clone();
    let mut best_energy = energy;
    let mut accepted = 0;

    let ratio = if params.sweeps > 1 {
        (params.t_min / params.t_max).powf(1.0 / (params.sweeps - 1) as f64)
    } else {
        1.0
    };
    let mut temp = params.t_max;

    for _ in 0..params.sweeps {
        for _ in 0..n {
            let k = rng.random_range(0..n);
            let delta = qubo.flip_delta(&x, k);
            if delta <= 0.0 || rng.random::<f64>() < (-delta / temp).exp() {
                x[k] = !x[k];
                energy += delta;
                accepted += 1;
                if energy < best_energy {
                    best_energy = energy;
                    best = x.clone();
                }
            }
        }
        temp *= ratio;
    }

    AnnealResult {
        best_assignment: best,
        best_energy,
        final_assignment: x,
        accepted,
    }
}

/// Runs `runs` independent anneals (seeds `seed..seed+runs`) and returns
/// all results (the emulated multi-read sampling of a QPU).
pub fn anneal_many(
    qubo: &Qubo,
    params: &AnnealParams,
    runs: usize,
    seed: u64,
) -> Vec<AnnealResult> {
    (0..runs)
        .map(|k| anneal(qubo, params, seed.wrapping_add(k as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_hot_qubo(n: usize) -> Qubo {
        let mut q = Qubo::new(n);
        let terms: Vec<(usize, f64)> = (0..n).map(|i| (i, 1.0)).collect();
        q.add_squared_penalty(&terms, -1.0, 1.0);
        q
    }

    #[test]
    fn finds_ground_state_of_one_hot() {
        let q = one_hot_qubo(8);
        let r = anneal(&q, &AnnealParams::default(), 42);
        assert_eq!(r.best_energy, 0.0);
        assert_eq!(r.best_assignment.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn energy_bookkeeping_consistent() {
        let q = one_hot_qubo(6);
        let r = anneal(&q, &AnnealParams::new(50, 5.0, 0.1), 7);
        assert!((q.energy(&r.best_assignment) - r.best_energy).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_seed() {
        let q = one_hot_qubo(10);
        let p = AnnealParams::default();
        let a = anneal(&q, &p, 5);
        let b = anneal(&q, &p, 5);
        assert_eq!(a.best_assignment, b.best_assignment);
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let q = one_hot_qubo(10);
        let p = AnnealParams::default();
        let a = anneal(&q, &p, 1);
        let b = anneal(&q, &p, 2);
        // Ground energies agree; trajectories generally differ.
        assert_eq!(a.best_energy, b.best_energy);
        assert_ne!(a.accepted, b.accepted);
    }

    #[test]
    fn anneal_many_distinct_runs() {
        let q = one_hot_qubo(5);
        let rs = anneal_many(&q, &AnnealParams::default(), 10, 0);
        assert_eq!(rs.len(), 10);
        assert!(rs.iter().all(|r| r.best_energy == 0.0));
        // Different runs can land on different one-hot ground states.
        let winners: std::collections::HashSet<usize> = rs
            .iter()
            .map(|r| r.best_assignment.iter().position(|&b| b).expect("one bit"))
            .collect();
        assert!(winners.len() > 1, "runs should diversify");
    }

    #[test]
    fn short_hot_anneal_is_worse_than_long_cold() {
        // Statistical sanity: frustrated random QUBO, compare mean best
        // energies.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let n = 24;
        let mut q = Qubo::new(n);
        for i in 0..n {
            for j in i + 1..n {
                q.add_coupling(i, j, rng.random_range(-1.0..1.0));
            }
        }
        let weak = AnnealParams::new(2, 50.0, 40.0);
        let strong = AnnealParams::new(200, 10.0, 0.01);
        let mean = |p: &AnnealParams| {
            anneal_many(&q, p, 20, 3)
                .iter()
                .map(|r| r.best_energy)
                .sum::<f64>()
                / 20.0
        };
        assert!(mean(&strong) < mean(&weak));
    }

    #[test]
    #[should_panic(expected = "bad temperature range")]
    fn rejects_bad_temperatures() {
        let _ = AnnealParams::new(10, 0.1, 1.0);
    }
}
