//! Single-flip simulated annealing over QUBOs.
//!
//! This is both (a) the classical core of the emulated D-Wave samplers
//! (each "read" is modelled as a short thermal anneal, see
//! [`crate::dwave`]) and (b) a general-purpose QUBO heuristic used in the
//! ablation studies.
//!
//! Two evaluation paths share the same Metropolis loop:
//!
//! * [`anneal`] recomputes the flip delta with an `O(n)` row scan per
//!   proposal ([`Qubo::flip_delta`]) — the full-evaluation reference;
//! * [`anneal_incremental`] caches the **local field** of every variable
//!   (`hₖ = lₖ + Σ_j Q_{kj} xⱼ`) in a [`LocalFields`] table: a proposal
//!   reads one cached entry (`O(1)`) and only *accepted* flips pay the
//!   `O(n)` field refresh. For QUBOs whose coefficients are exact in
//!   `f64` (integer games and their S-QUBO penalties) the two paths are
//!   **bit-identical** — same trajectory, same best state — which the
//!   crate's property tests pin.

use crate::model::Qubo;
use cnash_anneal::delta::DeltaEnergy;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters of one annealing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealParams {
    /// Number of full sweeps (each sweep proposes `num_vars` flips).
    pub sweeps: usize,
    /// Starting temperature (energy units).
    pub t_max: f64,
    /// Final temperature.
    pub t_min: f64,
}

impl AnnealParams {
    /// Creates parameters, validating the temperature range.
    ///
    /// # Panics
    ///
    /// Panics if `t_max < t_min`, either is non-positive, or `sweeps == 0`.
    pub fn new(sweeps: usize, t_max: f64, t_min: f64) -> Self {
        assert!(sweeps > 0, "need at least one sweep");
        assert!(t_min > 0.0 && t_max >= t_min, "bad temperature range");
        Self {
            sweeps,
            t_max,
            t_min,
        }
    }
}

impl Default for AnnealParams {
    fn default() -> Self {
        Self {
            sweeps: 300,
            t_max: 10.0,
            t_min: 0.05,
        }
    }
}

/// Outcome of one annealing run.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealResult {
    /// Best assignment seen.
    pub best_assignment: Vec<bool>,
    /// Energy of the best assignment.
    pub best_energy: f64,
    /// Final (not necessarily best) assignment.
    pub final_assignment: Vec<bool>,
    /// Number of accepted flips.
    pub accepted: usize,
}

/// Runs one seeded simulated-annealing descent on `qubo`.
///
/// The temperature decays geometrically from `t_max` to `t_min` over the
/// configured sweeps; each sweep proposes one flip per variable in random
/// order with Metropolis acceptance.
///
/// # Example
///
/// ```
/// use cnash_qubo::model::Qubo;
/// use cnash_qubo::annealer::{anneal, AnnealParams};
///
/// // Minimise (x0 + x1 − 1)²: ground states are the two one-hot vectors.
/// let mut q = Qubo::new(2);
/// q.add_squared_penalty(&[(0, 1.0), (1, 1.0)], -1.0, 1.0);
/// let r = anneal(&q, &AnnealParams::default(), 1);
/// assert_eq!(r.best_energy, 0.0);
/// ```
pub fn anneal(qubo: &Qubo, params: &AnnealParams, seed: u64) -> AnnealResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = qubo.num_vars();
    let mut x: Vec<bool> = (0..n).map(|_| rng.random()).collect();
    let mut energy = qubo.energy(&x);
    let mut best = x.clone();
    let mut best_energy = energy;
    let mut accepted = 0;

    let ratio = if params.sweeps > 1 {
        (params.t_min / params.t_max).powf(1.0 / (params.sweeps - 1) as f64)
    } else {
        1.0
    };
    let mut temp = params.t_max;

    for _ in 0..params.sweeps {
        for _ in 0..n {
            let k = rng.random_range(0..n);
            let delta = qubo.flip_delta(&x, k);
            if delta <= 0.0 || rng.random::<f64>() < (-delta / temp).exp() {
                x[k] = !x[k];
                energy += delta;
                accepted += 1;
                if energy < best_energy {
                    best_energy = energy;
                    best = x.clone();
                }
            }
        }
        temp *= ratio;
    }

    AnnealResult {
        best_assignment: best,
        best_energy,
        final_assignment: x,
        accepted,
    }
}

/// Cached local fields `hₖ = lₖ + Σ_{j≠k} Q_{kj} xⱼ` of an assignment.
///
/// The energy change of flipping bit `k` is `±hₖ` — an `O(1)` read
/// instead of [`Qubo::flip_delta`]'s `O(n)` row scan. Only *accepted*
/// flips pay the `O(n)` refresh of the other variables' fields.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalFields {
    fields: Vec<f64>,
}

impl LocalFields {
    /// Computes the fields of `x` from scratch (`O(n²)`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != qubo.num_vars()`.
    pub fn new(qubo: &Qubo, x: &[bool]) -> Self {
        let n = qubo.num_vars();
        assert_eq!(x.len(), n, "assignment length mismatch");
        let fields = (0..n)
            .map(|k| {
                let mut f = qubo.linear(k);
                for (j, &xj) in x.iter().enumerate() {
                    if xj && j != k {
                        f += qubo.coupling(k, j);
                    }
                }
                f
            })
            .collect();
        Self { fields }
    }

    /// Energy change of flipping bit `k` of `x` (`O(1)`).
    ///
    /// Equals [`Qubo::flip_delta`] exactly whenever the QUBO coefficients
    /// and their running sums are exact in `f64` (integer and dyadic
    /// coefficients — every S-QUBO of an integer game).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn flip_delta(&self, x: &[bool], k: usize) -> f64 {
        if x[k] {
            -self.fields[k]
        } else {
            self.fields[k]
        }
    }

    /// Refreshes the fields after bit `k` of `x` was flipped (`x` is the
    /// assignment *after* the flip; `O(n)`).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range or lengths mismatch.
    pub(crate) fn apply_flip(&mut self, qubo: &Qubo, x: &[bool], k: usize) {
        let n = qubo.num_vars();
        assert_eq!(x.len(), n, "assignment length mismatch");
        assert!(k < n, "variable {k} out of range");
        let sign = if x[k] { 1.0 } else { -1.0 };
        for j in 0..n {
            if j != k {
                self.fields[j] += sign * qubo.coupling(j, k);
            }
        }
    }

    /// The cached field of variable `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn field(&self, k: usize) -> f64 {
        self.fields[k]
    }
}

/// Runs one seeded annealing descent with local-field caching — the
/// incremental counterpart of [`anneal`].
///
/// RNG consumption and acceptance logic are identical to [`anneal`]; for
/// QUBOs whose coefficients are exact in `f64` the two functions return
/// bit-identical results, while this one touches `O(1)` state per
/// proposal and `O(n)` only per accepted flip.
pub fn anneal_incremental(qubo: &Qubo, params: &AnnealParams, seed: u64) -> AnnealResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = qubo.num_vars();
    let mut x: Vec<bool> = (0..n).map(|_| rng.random()).collect();
    let mut energy = qubo.energy(&x);
    let mut fields = LocalFields::new(qubo, &x);
    let mut best = x.clone();
    let mut best_energy = energy;
    let mut accepted = 0;

    let ratio = if params.sweeps > 1 {
        (params.t_min / params.t_max).powf(1.0 / (params.sweeps - 1) as f64)
    } else {
        1.0
    };
    let mut temp = params.t_max;

    for _ in 0..params.sweeps {
        for _ in 0..n {
            let k = rng.random_range(0..n);
            let delta = fields.flip_delta(&x, k);
            if delta <= 0.0 || rng.random::<f64>() < (-delta / temp).exp() {
                x[k] = !x[k];
                fields.apply_flip(qubo, &x, k);
                energy += delta;
                accepted += 1;
                if energy < best_energy {
                    best_energy = energy;
                    best = x.clone();
                }
            }
        }
        temp *= ratio;
    }

    AnnealResult {
        best_assignment: best,
        best_energy,
        final_assignment: x,
        accepted,
    }
}

/// A QUBO assignment as an incrementally evaluable SA objective — the
/// [`DeltaEnergy`] face of [`LocalFields`] for the generic driver
/// [`cnash_anneal::delta::simulated_annealing_delta`].
///
/// `propose` is `O(1)` and defers the field refresh to `commit`, so
/// rejected proposals cost nothing and `revert` restores the evaluator
/// bitwise.
#[derive(Debug, Clone)]
pub struct QuboDelta<'q> {
    qubo: &'q Qubo,
    x: Vec<bool>,
    fields: LocalFields,
    energy: f64,
    /// `(flipped bit, pre-proposal energy)` of the pending proposal.
    pending: Option<(usize, f64)>,
}

impl<'q> QuboDelta<'q> {
    /// Builds the evaluator at assignment `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != qubo.num_vars()`.
    pub fn new(qubo: &'q Qubo, x: Vec<bool>) -> Self {
        let energy = qubo.energy(&x);
        let fields = LocalFields::new(qubo, &x);
        Self {
            qubo,
            x,
            fields,
            energy,
            pending: None,
        }
    }
}

impl DeltaEnergy for QuboDelta<'_> {
    type State = Vec<bool>;
    type Move = usize;

    fn state(&self) -> &Vec<bool> {
        &self.x
    }

    fn energy(&self) -> f64 {
        self.energy
    }

    fn sample_move(&self, rng: &mut StdRng) -> Option<usize> {
        Some(rng.random_range(0..self.x.len()))
    }

    fn propose(&mut self, k: usize) -> f64 {
        assert!(self.pending.is_none(), "proposal already pending");
        let delta = self.fields.flip_delta(&self.x, k);
        self.pending = Some((k, self.energy));
        self.x[k] = !self.x[k];
        self.energy += delta;
        delta
    }

    fn commit(&mut self) {
        let (k, _) = self.pending.take().expect("no pending proposal");
        self.fields.apply_flip(self.qubo, &self.x, k);
    }

    fn revert(&mut self) {
        let (k, old_energy) = self.pending.take().expect("no pending proposal");
        self.x[k] = !self.x[k];
        self.energy = old_energy;
    }
}

/// Runs `runs` independent anneals (seeds `seed..seed+runs`) and returns
/// all results (the emulated multi-read sampling of a QPU).
///
/// Uses the incremental (local-field) path; see [`anneal_incremental`].
pub fn anneal_many(
    qubo: &Qubo,
    params: &AnnealParams,
    runs: usize,
    seed: u64,
) -> Vec<AnnealResult> {
    (0..runs)
        .map(|k| anneal_incremental(qubo, params, seed.wrapping_add(k as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_hot_qubo(n: usize) -> Qubo {
        let mut q = Qubo::new(n);
        let terms: Vec<(usize, f64)> = (0..n).map(|i| (i, 1.0)).collect();
        q.add_squared_penalty(&terms, -1.0, 1.0);
        q
    }

    #[test]
    fn finds_ground_state_of_one_hot() {
        let q = one_hot_qubo(8);
        let r = anneal(&q, &AnnealParams::default(), 42);
        assert_eq!(r.best_energy, 0.0);
        assert_eq!(r.best_assignment.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn energy_bookkeeping_consistent() {
        let q = one_hot_qubo(6);
        let r = anneal(&q, &AnnealParams::new(50, 5.0, 0.1), 7);
        assert!((q.energy(&r.best_assignment) - r.best_energy).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_seed() {
        let q = one_hot_qubo(10);
        let p = AnnealParams::default();
        let a = anneal(&q, &p, 5);
        let b = anneal(&q, &p, 5);
        assert_eq!(a.best_assignment, b.best_assignment);
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let q = one_hot_qubo(10);
        let p = AnnealParams::default();
        let a = anneal(&q, &p, 1);
        let b = anneal(&q, &p, 2);
        // Ground energies agree; trajectories generally differ.
        assert_eq!(a.best_energy, b.best_energy);
        assert_ne!(a.accepted, b.accepted);
    }

    #[test]
    fn anneal_many_distinct_runs() {
        let q = one_hot_qubo(5);
        let rs = anneal_many(&q, &AnnealParams::default(), 10, 0);
        assert_eq!(rs.len(), 10);
        assert!(rs.iter().all(|r| r.best_energy == 0.0));
        // Different runs can land on different one-hot ground states.
        let winners: std::collections::HashSet<usize> = rs
            .iter()
            .map(|r| r.best_assignment.iter().position(|&b| b).expect("one bit"))
            .collect();
        assert!(winners.len() > 1, "runs should diversify");
    }

    #[test]
    fn short_hot_anneal_is_worse_than_long_cold() {
        // Statistical sanity: frustrated random QUBO, compare mean best
        // energies.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let n = 24;
        let mut q = Qubo::new(n);
        for i in 0..n {
            for j in i + 1..n {
                q.add_coupling(i, j, rng.random_range(-1.0..1.0));
            }
        }
        let weak = AnnealParams::new(2, 50.0, 40.0);
        let strong = AnnealParams::new(200, 10.0, 0.01);
        let mean = |p: &AnnealParams| {
            anneal_many(&q, p, 20, 3)
                .iter()
                .map(|r| r.best_energy)
                .sum::<f64>()
                / 20.0
        };
        assert!(mean(&strong) < mean(&weak));
    }

    #[test]
    #[should_panic(expected = "bad temperature range")]
    fn rejects_bad_temperatures() {
        let _ = AnnealParams::new(10, 0.1, 1.0);
    }

    #[test]
    fn incremental_matches_full_scan_bitwise_on_exact_qubos() {
        // Integer (and dyadic) coefficients make every delta exact in
        // f64, so the cached-field path must walk the same trajectory as
        // the O(n)-scan path — not approximately: bitwise.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(9);
        for seed in 0..10u64 {
            let n = 16;
            let mut q = Qubo::new(n);
            for i in 0..n {
                q.add_linear(i, rng.random_range(-5..=5i64) as f64);
                for j in i + 1..n {
                    q.add_coupling(i, j, rng.random_range(-3..=3i64) as f64);
                }
            }
            let p = AnnealParams::new(60, 8.0, 0.05);
            let full = anneal(&q, &p, seed);
            let inc = anneal_incremental(&q, &p, seed);
            assert_eq!(full, inc);
        }
    }

    #[test]
    fn local_fields_match_flip_delta() {
        let q = one_hot_qubo(7);
        let x = [true, false, true, false, false, true, false];
        let fields = LocalFields::new(&q, &x);
        for k in 0..7 {
            assert_eq!(fields.flip_delta(&x, k), q.flip_delta(&x, k));
        }
    }

    #[test]
    fn local_fields_stay_consistent_over_flips() {
        let q = one_hot_qubo(6);
        let mut x = vec![false; 6];
        let mut fields = LocalFields::new(&q, &x);
        for k in [2usize, 4, 2, 0, 5, 4, 1] {
            x[k] = !x[k];
            fields.apply_flip(&q, &x, k);
            let fresh = LocalFields::new(&q, &x);
            for j in 0..6 {
                assert_eq!(fields.field(j), fresh.field(j), "field {j} drifted");
            }
        }
    }

    #[test]
    fn qubo_delta_propose_commit_revert() {
        let q = one_hot_qubo(5);
        let mut eval = QuboDelta::new(&q, vec![false; 5]);
        let e0 = eval.energy();
        let delta = eval.propose(2);
        assert!(eval.state()[2]);
        assert_eq!(delta, q.flip_delta(&[false; 5], 2));
        eval.revert();
        assert_eq!(eval.energy(), e0);
        assert_eq!(eval.state(), &vec![false; 5]);
        let delta = eval.propose(2);
        eval.commit();
        assert!((eval.energy() - (e0 + delta)).abs() < 1e-12);
        // Fields were refreshed on commit: the next delta is exact.
        assert_eq!(
            eval.propose(3),
            q.flip_delta(&[false, false, true, false, false], 3)
        );
        eval.commit();
        assert_eq!(eval.energy(), q.energy(eval.state()));
    }
}
