//! The S-QUBO transformation (Eq. 6) — the baselines' *lossy* conversion.
//!
//! Starting from the Mangasarian–Stone program (Eq. 3/4), the inequality
//! constraints `Mq ≤ αe` and `Nᵀp ≤ βl` are converted to equalities with
//! non-negative slacks (`(Mq)ᵢ − α + ζᵢ = 0`, one per row, and likewise
//! `ηⱼ` per column) and added as squared penalties; the simplex
//! constraints become squared penalties too; `α`, `β` and the slacks are
//! binary-encoded. Strategies `p, q` are single bits per action, so **only
//! pure profiles are representable** — the first lossiness. The penalty
//! weights and discretisation deform the landscape — the second.
//!
//! Payoffs are offset to non-negative integers before encoding (required
//! for the binary encodings); on simplex-feasible assignments the offsets
//! cancel identically, so the feasible restriction of the S-QUBO energy
//! equals the pure-profile Nash gap (which the tests verify).

use crate::model::Qubo;
use cnash_game::{BimatrixGame, Matrix, MixedStrategy};
use std::fmt;

/// Penalty weights `A, B, C, D` of Eq. 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SQuboWeights {
    /// Weight of the row-player simplex penalty `A(Σpᵢ−1)²`.
    pub simplex_row: f64,
    /// Weight of the column-player simplex penalty `B(Σqⱼ−1)²`.
    pub simplex_col: f64,
    /// Weight of the row best-response penalties `C Σᵢ(·)²`.
    pub best_response_row: f64,
    /// Weight of the column best-response penalties `D Σⱼ(·)²`.
    pub best_response_col: f64,
}

impl Default for SQuboWeights {
    /// `C = D = 4` breaks the integer tie between lowering `α` and paying
    /// a unit constraint violation; the simplex weights are set per-game
    /// by [`SQubo::build`] when left at this default scale factor.
    fn default() -> Self {
        Self {
            simplex_row: 0.0, // 0 = auto-size from the game's payoff range
            simplex_col: 0.0,
            best_response_row: 4.0,
            best_response_col: 4.0,
        }
    }
}

/// Error from building an S-QUBO.
#[derive(Debug, Clone, PartialEq)]
pub enum SQuboError {
    /// Payoffs must be integers (after offsetting) for binary encoding.
    NonIntegerPayoffs,
    /// Underlying game error.
    Game(cnash_game::GameError),
}

impl fmt::Display for SQuboError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SQuboError::NonIntegerPayoffs => {
                write!(f, "payoffs must be integers after offsetting")
            }
            SQuboError::Game(e) => write!(f, "game error: {e}"),
        }
    }
}

impl std::error::Error for SQuboError {}

impl From<cnash_game::GameError> for SQuboError {
    fn from(e: cnash_game::GameError) -> Self {
        SQuboError::Game(e)
    }
}

/// Decoded S-QUBO assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedSQubo {
    /// The pure strategy profile, if both one-hot constraints hold.
    pub profile: Option<(MixedStrategy, MixedStrategy)>,
    /// Decoded `α` (offset payoff units).
    pub alpha: f64,
    /// Decoded `β` (offset payoff units).
    pub beta: f64,
    /// Whether *all* penalties are exactly satisfied.
    pub feasible: bool,
    /// S-QUBO energy of the assignment.
    pub energy: f64,
}

/// The S-QUBO instance for one game: variable layout + QUBO matrix.
#[derive(Debug, Clone)]
pub struct SQubo {
    qubo: Qubo,
    n: usize,
    m: usize,
    alpha_bits: usize,
    beta_bits: usize,
    m_hat: Matrix,
    nt_hat: Matrix,
    sum_hat: Matrix,
    weights: SQuboWeights,
}

impl SQubo {
    /// Builds the Eq. 6 QUBO for `game`.
    ///
    /// # Errors
    ///
    /// Returns [`SQuboError::NonIntegerPayoffs`] if the offset payoffs are
    /// not integers (binary slack encoding requires it).
    pub fn build(game: &BimatrixGame, weights: &SQuboWeights) -> Result<Self, SQuboError> {
        let n = game.row_actions();
        let m = game.col_actions();

        // Offset to non-negative integers.
        let m_raw = game.row_payoffs();
        let n_raw = game.col_payoffs();
        let off_m = m_raw.min().min(0.0);
        let off_n = n_raw.min().min(0.0);
        let m_hat = m_raw.map(|x| x - off_m);
        let nt_hat = n_raw.map(|x| x - off_n).transposed();
        if !m_hat.is_nonneg_integer(1e-9) || !nt_hat.is_nonneg_integer(1e-9) {
            return Err(SQuboError::NonIntegerPayoffs);
        }
        let sum_hat = m_hat.add(&n_raw.map(|x| x - off_n))?;

        let max_m = m_hat.max().round() as u64;
        let max_n = nt_hat.max().round() as u64;
        let alpha_bits = bits_for(max_m);
        let beta_bits = bits_for(max_n);

        // Auto-size simplex weights if left at 0: they must dominate the
        // largest payoff gain a simplex violation can unlock.
        let auto = 8.0 * (m_hat.max() + nt_hat.max() + 1.0);
        let w = SQuboWeights {
            simplex_row: if weights.simplex_row > 0.0 {
                weights.simplex_row
            } else {
                auto
            },
            simplex_col: if weights.simplex_col > 0.0 {
                weights.simplex_col
            } else {
                auto
            },
            ..*weights
        };

        // Variable layout:
        //   p: 0..n
        //   q: n..n+m
        //   alpha bits, beta bits,
        //   zeta_i (n groups of alpha_bits), eta_j (m groups of beta_bits).
        let alpha0 = n + m;
        let beta0 = alpha0 + alpha_bits;
        let zeta0 = beta0 + beta_bits;
        let eta0 = zeta0 + n * alpha_bits;
        let total = eta0 + m * beta_bits;

        let mut qubo = Qubo::new(total);

        // −pᵀ(M̂+N̂)q : bilinear couplings.
        for i in 0..n {
            for j in 0..m {
                qubo.add_coupling(i, n + j, -sum_hat[(i, j)]);
            }
        }
        // +α +β : linear on the encoding bits.
        for k in 0..alpha_bits {
            qubo.add_linear(alpha0 + k, (1u64 << k) as f64);
        }
        for k in 0..beta_bits {
            qubo.add_linear(beta0 + k, (1u64 << k) as f64);
        }
        // A(Σp−1)², B(Σq−1)².
        let p_terms: Vec<(usize, f64)> = (0..n).map(|i| (i, 1.0)).collect();
        qubo.add_squared_penalty(&p_terms, -1.0, w.simplex_row);
        let q_terms: Vec<(usize, f64)> = (0..m).map(|j| (n + j, 1.0)).collect();
        qubo.add_squared_penalty(&q_terms, -1.0, w.simplex_col);

        // C Σᵢ ((M̂q)ᵢ − α + ζᵢ)².
        for i in 0..n {
            let mut terms: Vec<(usize, f64)> = Vec::new();
            for j in 0..m {
                terms.push((n + j, m_hat[(i, j)]));
            }
            for k in 0..alpha_bits {
                terms.push((alpha0 + k, -((1u64 << k) as f64)));
            }
            for k in 0..alpha_bits {
                terms.push((zeta0 + i * alpha_bits + k, (1u64 << k) as f64));
            }
            qubo.add_squared_penalty(&terms, 0.0, w.best_response_row);
        }
        // D Σⱼ ((N̂ᵀp)ⱼ − β + ηⱼ)².
        for j in 0..m {
            let mut terms: Vec<(usize, f64)> = Vec::new();
            for i in 0..n {
                terms.push((i, nt_hat[(j, i)]));
            }
            for k in 0..beta_bits {
                terms.push((beta0 + k, -((1u64 << k) as f64)));
            }
            for k in 0..beta_bits {
                terms.push((eta0 + j * beta_bits + k, (1u64 << k) as f64));
            }
            qubo.add_squared_penalty(&terms, 0.0, w.best_response_col);
        }

        Ok(Self {
            qubo,
            n,
            m,
            alpha_bits,
            beta_bits,
            m_hat,
            nt_hat,
            sum_hat,
            weights: w,
        })
    }

    /// The assembled QUBO.
    pub fn qubo(&self) -> &Qubo {
        &self.qubo
    }

    /// Total binary variables (illustrates the slack-variable blow-up:
    /// `n + m + k_α + k_β + n·k_α + m·k_β`).
    pub fn num_vars(&self) -> usize {
        self.qubo.num_vars()
    }

    /// Effective weights (after auto-sizing).
    pub fn weights(&self) -> &SQuboWeights {
        &self.weights
    }

    /// Action counts `(n, m)` of the game this S-QUBO encodes — the
    /// geometry a reused (cached) programmed instance is validated
    /// against before serving a request.
    pub fn shape(&self) -> (usize, usize) {
        (self.n, self.m)
    }

    /// Direct (non-QUBO) evaluation of Eq. 6 for verification.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length mismatches.
    pub fn direct_energy(&self, x: &[bool]) -> f64 {
        assert_eq!(x.len(), self.num_vars());
        let (n, m) = (self.n, self.m);
        let p: Vec<f64> = (0..n).map(|i| x[i] as u8 as f64).collect();
        let q: Vec<f64> = (0..m).map(|j| x[n + j] as u8 as f64).collect();
        let alpha = self.decode_bits(x, n + m, self.alpha_bits);
        let beta = self.decode_bits(x, n + m + self.alpha_bits, self.beta_bits);
        let zeta0 = n + m + self.alpha_bits + self.beta_bits;
        let eta0 = zeta0 + n * self.alpha_bits;

        let w = &self.weights;
        let mut e = alpha + beta;
        for (i, pi) in p.iter().enumerate().take(n) {
            for (j, qj) in q.iter().enumerate().take(m) {
                e -= self.sum_hat[(i, j)] * pi * qj;
            }
        }
        let sp: f64 = p.iter().sum();
        let sq: f64 = q.iter().sum();
        e += w.simplex_row * (sp - 1.0).powi(2);
        e += w.simplex_col * (sq - 1.0).powi(2);
        for i in 0..n {
            let mq: f64 = (0..m).map(|j| self.m_hat[(i, j)] * q[j]).sum();
            let zeta = self.decode_bits(x, zeta0 + i * self.alpha_bits, self.alpha_bits);
            e += w.best_response_row * (mq - alpha + zeta).powi(2);
        }
        for j in 0..m {
            let ntp: f64 = (0..n).map(|i| self.nt_hat[(j, i)] * p[i]).sum();
            let eta = self.decode_bits(x, eta0 + j * self.beta_bits, self.beta_bits);
            e += w.best_response_col * (ntp - beta + eta).powi(2);
        }
        e
    }

    fn decode_bits(&self, x: &[bool], start: usize, bits: usize) -> f64 {
        (0..bits)
            .map(|k| {
                if x[start + k] {
                    (1u64 << k) as f64
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Decodes an assignment into a candidate strategy profile.
    pub fn decode(&self, x: &[bool]) -> DecodedSQubo {
        let (n, m) = (self.n, self.m);
        let p_ones: Vec<usize> = (0..n).filter(|&i| x[i]).collect();
        let q_ones: Vec<usize> = (0..m).filter(|&j| x[n + j]).collect();
        let profile = if p_ones.len() == 1 && q_ones.len() == 1 {
            Some((
                MixedStrategy::pure(n, p_ones[0]).expect("index in range"),
                MixedStrategy::pure(m, q_ones[0]).expect("index in range"),
            ))
        } else {
            None
        };
        let alpha = self.decode_bits(x, n + m, self.alpha_bits);
        let beta = self.decode_bits(x, n + m + self.alpha_bits, self.beta_bits);
        let energy = self.qubo.energy(x);
        // Feasible iff all penalties vanish: energy equals the bare
        // objective −pᵀ(M̂+N̂)q + α + β.
        let bare = {
            let mut e = alpha + beta;
            for &i in &p_ones {
                for &j in &q_ones {
                    e -= self.sum_hat[(i, j)];
                }
            }
            e
        };
        let feasible = (energy - bare).abs() < 1e-6;
        DecodedSQubo {
            profile,
            alpha,
            beta,
            feasible,
            energy,
        }
    }
}

/// Bits needed to encode `0..=max_value`.
fn bits_for(max_value: u64) -> usize {
    (64 - max_value.leading_zeros() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnash_game::games;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn bits_for_ranges() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(7), 3);
    }

    #[test]
    fn variable_count_shows_slack_blowup() {
        let g = games::battle_of_the_sexes();
        let s = SQubo::build(&g, &SQuboWeights::default()).unwrap();
        // n + m + kα + kβ + n·kα + m·kβ = 2+2+2+2+4+4 = 16 ≫ n+m = 4.
        assert_eq!(s.num_vars(), 16);
    }

    #[test]
    fn qubo_matches_direct_energy_on_random_assignments() {
        let g = games::bird_game();
        let s = SQubo::build(&g, &SQuboWeights::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let x: Vec<bool> = (0..s.num_vars()).map(|_| rng.random()).collect();
            let a = s.qubo().energy(&x);
            let b = s.direct_energy(&x);
            assert!((a - b).abs() < 1e-6, "QUBO {a} vs direct {b}");
        }
    }

    #[test]
    fn bos_ground_states_are_pure_equilibria() {
        let g = games::battle_of_the_sexes();
        let s = SQubo::build(&g, &SQuboWeights::default()).unwrap();
        let (x, e) = s.qubo().brute_force_minimum();
        // Feasible optimum: pure NE with zero gap (constant included).
        assert!(e.abs() < 1e-9, "ground energy {e}");
        let d = s.decode(&x);
        assert!(d.feasible);
        let (p, q) = d.profile.expect("one-hot profile");
        assert!(g.is_equilibrium(&p, &q, 1e-9));
    }

    #[test]
    fn feasible_energy_equals_pure_nash_gap() {
        // Construct the feasible assignment for each pure profile and
        // check its S-QUBO energy equals the game's Nash gap — Eq. 6
        // restricted to feasible points is lossless on pure profiles.
        let g = games::battle_of_the_sexes();
        let s = SQubo::build(&g, &SQuboWeights::default()).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let x = feasible_assignment(&s, i, j);
                let p = MixedStrategy::pure(2, i).unwrap();
                let q = MixedStrategy::pure(2, j).unwrap();
                let gap = g.nash_gap(&p, &q).unwrap();
                let e = s.qubo().energy(&x);
                assert!(
                    (e - gap).abs() < 1e-9,
                    "profile ({i},{j}): energy {e} vs gap {gap}"
                );
            }
        }
    }

    /// Builds the exactly-feasible assignment for pure profile `(i, j)`.
    fn feasible_assignment(s: &SQubo, pi: usize, qj: usize) -> Vec<bool> {
        let (n, m) = (s.n, s.m);
        let mut x = vec![false; s.num_vars()];
        x[pi] = true;
        x[n + qj] = true;
        // α = max_i M̂[i][qj], ζ_i = α − M̂[i][qj].
        let alpha = (0..n)
            .map(|i| s.m_hat[(i, qj)].round() as u64)
            .max()
            .expect("non-empty");
        let beta = (0..m)
            .map(|j| s.nt_hat[(j, pi)].round() as u64)
            .max()
            .expect("non-empty");
        let a0 = n + m;
        let b0 = a0 + s.alpha_bits;
        let z0 = b0 + s.beta_bits;
        let e0 = z0 + n * s.alpha_bits;
        set_bits(&mut x, a0, s.alpha_bits, alpha);
        set_bits(&mut x, b0, s.beta_bits, beta);
        for i in 0..n {
            let zeta = alpha - s.m_hat[(i, qj)].round() as u64;
            set_bits(&mut x, z0 + i * s.alpha_bits, s.alpha_bits, zeta);
        }
        for j in 0..m {
            let eta = beta - s.nt_hat[(j, pi)].round() as u64;
            set_bits(&mut x, e0 + j * s.beta_bits, s.beta_bits, eta);
        }
        x
    }

    fn set_bits(x: &mut [bool], start: usize, bits: usize, value: u64) {
        for k in 0..bits {
            x[start + k] = value & (1 << k) != 0;
        }
    }

    #[test]
    fn matching_pennies_ground_state_is_not_an_equilibrium() {
        // No pure NE exists, so the S-QUBO minimum is a *fake* solution —
        // the first lossiness mechanism of Sec. 2.2.
        let g = games::matching_pennies();
        let s = SQubo::build(&g, &SQuboWeights::default()).unwrap();
        let (x, e) = s.qubo().brute_force_minimum();
        let d = s.decode(&x);
        assert!(
            e > 0.1,
            "minimum energy {e} should be positive (no pure NE)"
        );
        if let Some((p, q)) = d.profile {
            assert!(!g.is_equilibrium(&p, &q, 1e-6));
        }
    }

    #[test]
    fn decode_flags_infeasible_assignments() {
        let g = games::battle_of_the_sexes();
        let s = SQubo::build(&g, &SQuboWeights::default()).unwrap();
        // Both p bits on: not a one-hot profile.
        let mut x = vec![false; s.num_vars()];
        x[0] = true;
        x[1] = true;
        x[2] = true;
        let d = s.decode(&x);
        assert!(d.profile.is_none());
        assert!(!d.feasible);
    }

    #[test]
    fn rejects_fractional_payoffs() {
        use cnash_game::{BimatrixGame, Matrix};
        let m = Matrix::from_rows(&[vec![0.5, 0.0], vec![0.0, 1.0]]).unwrap();
        let g = BimatrixGame::new("frac", m.clone(), m).unwrap();
        assert!(matches!(
            SQubo::build(&g, &SQuboWeights::default()),
            Err(SQuboError::NonIntegerPayoffs)
        ));
    }

    #[test]
    fn negative_payoff_games_build() {
        let g = games::hawk_dove();
        let s = SQubo::build(&g, &SQuboWeights::default()).unwrap();
        assert!(s.num_vars() > 4);
        // Pure equilibria (H,D)/(D,H) are ground states with zero energy.
        let (x, e) = s.qubo().brute_force_minimum();
        assert!(e.abs() < 1e-9, "ground energy {e}");
        let d = s.decode(&x);
        let (p, q) = d.profile.expect("one-hot");
        assert!(g.is_equilibrium(&p, &q, 1e-9));
    }
}
