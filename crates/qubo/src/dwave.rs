//! Emulated D-Wave quantum annealers (the paper's baselines).
//!
//! Physical QPUs are replaced (per the reproduction's substitution rules)
//! by a sampler with the three properties the evaluation depends on:
//!
//! 1. **Sampling quality** — each "read" is a short thermal anneal whose
//!    sweep budget and effective temperature are preset per device;
//! 2. **Embedding noise** — logical variables ride on qubit chains
//!    ([`Topology`]); each read independently corrupts variables whose
//!    chain breaks, with probability growing with problem size;
//! 3. **Access timing** — programming + per-read (anneal + readout +
//!    delay) times from the published QPU-access-time breakdowns, which
//!    drive the Fig. 10 time-to-solution comparison.
//!
//! Preset parameters are calibrated so the *shape* of Table 1 holds
//! (2000Q ≳ Advantage 4.1 on these small games, both degrading with game
//! size); absolute percentages are not claimed.

use crate::annealer::{anneal_incremental, AnnealParams};
use crate::model::Qubo;
use crate::topology::Topology;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;

/// An emulated quantum annealer.
#[derive(Debug, Clone, PartialEq)]
pub struct DWaveModel {
    /// Device name for reports.
    pub name: String,
    /// Qubit-graph family (drives the chain model).
    pub topology: Topology,
    /// Annealing time per read (s).
    pub anneal_time: f64,
    /// Readout time per read (s).
    pub readout_time: f64,
    /// Inter-read thermalization delay (s).
    pub delay_time: f64,
    /// One-off problem programming time (s).
    pub programming_time: f64,
    /// Emulation: sweeps of the thermal sampler per read.
    pub sweeps_per_read: usize,
    /// Emulation: starting effective temperature.
    pub t_max: f64,
    /// Emulation: final effective temperature.
    pub t_min: f64,
    /// Per-coupler chain-break probability during one anneal.
    pub link_break_prob: f64,
}

impl DWaveModel {
    /// The D-Wave 2000Q6 preset (Chimera, slower readout, cleaner
    /// small-problem sampling).
    pub fn dwave_2000q() -> Self {
        Self {
            name: "D-Wave 2000Q6".into(),
            topology: Topology::Chimera,
            anneal_time: 20e-6,
            readout_time: 123e-6,
            delay_time: 21e-6,
            programming_time: 10e-3,
            sweeps_per_read: 1000,
            t_max: 60.0,
            t_min: 0.05,
            link_break_prob: 0.001,
        }
    }

    /// The D-Wave Advantage 4.1 preset (Pegasus, faster readout, noisier
    /// sampling on these instances, as Table 1 reports).
    pub fn advantage_4_1() -> Self {
        Self {
            name: "D-Wave Advantage 4.1".into(),
            topology: Topology::Pegasus,
            anneal_time: 20e-6,
            readout_time: 50e-6,
            delay_time: 21e-6,
            programming_time: 14e-3,
            sweeps_per_read: 400,
            t_max: 60.0,
            t_min: 0.08,
            link_break_prob: 0.004,
        }
    }

    /// QPU access time for `num_reads` samples of one programmed problem.
    pub fn qpu_access_time(&self, num_reads: usize) -> f64 {
        self.programming_time
            + num_reads as f64 * (self.anneal_time + self.readout_time + self.delay_time)
    }

    /// Probability that any given logical variable's chain breaks during
    /// one read of a `logical_vars`-variable problem.
    pub fn chain_break_probability(&self, logical_vars: usize) -> f64 {
        self.topology
            .chain_break_probability(logical_vars, self.link_break_prob)
    }

    /// Draws one sample (one annealing read + chain-break corruption).
    pub fn sample_once(&self, qubo: &Qubo, seed: u64) -> Vec<bool> {
        let params = AnnealParams::new(self.sweeps_per_read, self.t_max, self.t_min);
        let result = anneal_incremental(qubo, &params, seed);
        let mut x = result.best_assignment;
        let p_break = self.chain_break_probability(qubo.num_vars());
        if p_break > 0.0 {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE_BEEF_u64);
            for bit in x.iter_mut() {
                if rng.random::<f64>() < p_break {
                    // Majority vote over a broken chain ≈ random bit.
                    *bit = rng.random();
                }
            }
        }
        x
    }

    /// Draws `num_reads` independent samples (seeds derived from `seed`).
    pub fn sample(&self, qubo: &Qubo, num_reads: usize, seed: u64) -> Vec<Vec<bool>> {
        (0..num_reads)
            .map(|k| self.sample_once(qubo, seed.wrapping_add(k as u64).wrapping_mul(0x9E37)))
            .collect()
    }

    /// Lowest-energy sample of a multi-read batch, with its energy.
    pub fn best_of(&self, qubo: &Qubo, num_reads: usize, seed: u64) -> (Vec<bool>, f64) {
        self.sample(qubo, num_reads, seed)
            .into_iter()
            .map(|x| {
                let e = qubo.energy(&x);
                (x, e)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite energies"))
            .expect("at least one read")
    }
}

impl fmt::Display for DWaveModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.topology)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::squbo::{SQubo, SQuboWeights};
    use cnash_game::games;

    #[test]
    fn access_time_breakdown() {
        let d = DWaveModel::dwave_2000q();
        let t = d.qpu_access_time(1000);
        // 10 ms + 1000 × 164 µs = 174 ms.
        assert!((t - 0.174).abs() < 1e-9);
        let a = DWaveModel::advantage_4_1();
        assert!(a.qpu_access_time(1000) < t, "Advantage reads are faster");
    }

    #[test]
    fn chain_break_grows_with_problem_size() {
        let d = DWaveModel::dwave_2000q();
        assert!(d.chain_break_probability(88) > d.chain_break_probability(16));
    }

    #[test]
    fn advantage_is_noisier_preset() {
        let q = DWaveModel::dwave_2000q();
        let a = DWaveModel::advantage_4_1();
        assert!(a.link_break_prob > q.link_break_prob);
        assert!(a.sweeps_per_read < q.sweeps_per_read);
    }

    #[test]
    fn sampling_reproducible() {
        let g = games::battle_of_the_sexes();
        let s = SQubo::build(&g, &SQuboWeights::default()).unwrap();
        let d = DWaveModel::advantage_4_1();
        assert_eq!(d.sample(s.qubo(), 5, 3), d.sample(s.qubo(), 5, 3));
    }

    #[test]
    fn best_of_finds_pure_equilibrium_on_bos() {
        let g = games::battle_of_the_sexes();
        let s = SQubo::build(&g, &SQuboWeights::default()).unwrap();
        let d = DWaveModel::dwave_2000q();
        let (x, e) = d.best_of(s.qubo(), 50, 9);
        assert!(e.abs() < 1e-9, "best energy {e}");
        let dec = s.decode(&x);
        let (p, q) = dec.profile.expect("one-hot");
        assert!(g.is_equilibrium(&p, &q, 1e-9));
    }

    #[test]
    fn single_reads_sometimes_fail_on_harder_games() {
        // The Advantage preset must not be a perfect oracle: over many
        // single-read attempts on the 8-action game, some fail.
        let g = games::modified_prisoners_dilemma();
        let s = SQubo::build(&g, &SQuboWeights::default()).unwrap();
        let d = DWaveModel::advantage_4_1();
        let mut failures = 0;
        for seed in 0..30 {
            let x = d.sample_once(s.qubo(), seed);
            let dec = s.decode(&x);
            let ok = dec
                .profile
                .map(|(p, q)| g.is_equilibrium(&p, &q, 1e-9))
                .unwrap_or(false);
            if !ok {
                failures += 1;
            }
        }
        assert!(failures > 0, "Advantage preset unrealistically perfect");
    }

    #[test]
    fn display_includes_topology() {
        assert!(DWaveModel::dwave_2000q().to_string().contains("Chimera"));
    }
}
