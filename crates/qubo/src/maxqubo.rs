//! The lossless MAX-QUBO form (Eq. 9) — C-Nash's transformation.
//!
//! `min f(p,q) = max(Mq) + max(Nᵀp) − pᵀ(M+N)q` over the product of
//! simplices. Because `f` is the sum of both players' regrets it is
//! non-negative and vanishes exactly at Nash equilibria: **no slack
//! variables, no penalty weights, no deformation** — contrast with
//! [`crate::squbo`].
//!
//! This module gives the exact reference evaluator plus an exhaustive
//! grid minimiser used to validate that every grid-representable
//! equilibrium is a global minimiser.

use cnash_game::{BimatrixGame, GameError, MixedStrategy};

/// Exact MAX-QUBO objective evaluator over a game.
#[derive(Debug, Clone)]
pub struct MaxQubo<'g> {
    game: &'g BimatrixGame,
}

impl<'g> MaxQubo<'g> {
    /// Wraps a game.
    pub fn new(game: &'g BimatrixGame) -> Self {
        Self { game }
    }

    /// The wrapped game.
    pub fn game(&self) -> &BimatrixGame {
        self.game
    }

    /// `α = max(Mq)` (Eq. 7).
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn alpha(&self, q: &MixedStrategy) -> Result<f64, GameError> {
        self.game.row_best_value(q)
    }

    /// `β = max(Nᵀp)` (Eq. 8).
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn beta(&self, p: &MixedStrategy) -> Result<f64, GameError> {
        self.game.col_best_value(p)
    }

    /// The full objective `f(p, q)` of Eq. 9.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn objective(&self, p: &MixedStrategy, q: &MixedStrategy) -> Result<f64, GameError> {
        self.game.nash_gap(p, q)
    }

    /// Exhaustively minimises `f` over the `1/intervals` grid, returning
    /// all grid points whose objective is within `tol` of the global grid
    /// minimum. Cost is `C(I+n−1, n−1) × C(I+m−1, m−1)` evaluations —
    /// use only for small games/intervals.
    ///
    /// # Errors
    ///
    /// Propagates shape/strategy errors.
    pub fn grid_minima(
        &self,
        intervals: u32,
        tol: f64,
    ) -> Result<Vec<(MixedStrategy, MixedStrategy, f64)>, GameError> {
        let n = self.game.row_actions();
        let m = self.game.col_actions();
        let ps = compositions(intervals, n);
        let qs = compositions(intervals, m);
        let mut best = f64::INFINITY;
        let mut hits: Vec<(MixedStrategy, MixedStrategy, f64)> = Vec::new();
        for pc in &ps {
            let p = MixedStrategy::from_grid_counts(pc, intervals)?;
            for qc in &qs {
                let q = MixedStrategy::from_grid_counts(qc, intervals)?;
                let f = self.objective(&p, &q)?;
                if f < best - tol {
                    best = f;
                    hits.clear();
                    hits.push((p.clone(), q.clone(), f));
                } else if f <= best + tol {
                    hits.push((p.clone(), q.clone(), f));
                    if f < best {
                        best = f;
                    }
                }
            }
        }
        // Second pass to drop entries that were within tol of an earlier,
        // higher minimum.
        hits.retain(|(_, _, f)| *f <= best + tol);
        Ok(hits)
    }
}

/// All ways to write `total` as an ordered sum of `parts` non-negative
/// integers (grid points of the simplex).
pub fn compositions(total: u32, parts: usize) -> Vec<Vec<u32>> {
    fn rec(total: u32, parts: usize, prefix: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if parts == 1 {
            let mut v = prefix.clone();
            v.push(total);
            out.push(v);
            return;
        }
        for k in 0..=total {
            prefix.push(k);
            rec(total - k, parts - 1, prefix, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    if parts == 0 {
        return out;
    }
    rec(total, parts, &mut Vec::new(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnash_game::games;
    use cnash_game::support_enum::enumerate_equilibria;

    #[test]
    fn compositions_count() {
        // C(I+n-1, n-1): I=4, n=2 -> 5; I=3, n=3 -> 10.
        assert_eq!(compositions(4, 2).len(), 5);
        assert_eq!(compositions(3, 3).len(), 10);
        assert!(compositions(3, 0).is_empty());
        for c in compositions(5, 3) {
            assert_eq!(c.iter().sum::<u32>(), 5);
        }
    }

    #[test]
    fn objective_zero_iff_equilibrium_on_grid() {
        let g = games::battle_of_the_sexes();
        let mq = MaxQubo::new(&g);
        let minima = mq.grid_minima(12, 1e-9).unwrap();
        // Global grid minimum is 0, attained at the 3 equilibria (all on
        // the 1/12 grid).
        assert_eq!(minima.len(), 3);
        for (p, q, f) in &minima {
            assert!(f.abs() < 1e-9);
            assert!(g.is_equilibrium(p, q, 1e-9));
        }
    }

    #[test]
    fn grid_minima_match_enumeration_for_bird_game() {
        let g = games::bird_game();
        let mq = MaxQubo::new(&g);
        let minima = mq.grid_minima(12, 1e-9).unwrap();
        let eqs = enumerate_equilibria(&g, 1e-9);
        assert_eq!(minima.len(), eqs.len());
        for (p, q, _) in &minima {
            assert!(
                eqs.iter()
                    .any(|e| { e.row.linf_distance(p) < 1e-6 && e.col.linf_distance(q) < 1e-6 }),
                "grid minimum ({p}, {q}) is not an enumerated equilibrium"
            );
        }
    }

    #[test]
    fn alpha_beta_components() {
        let g = games::battle_of_the_sexes();
        let mq = MaxQubo::new(&g);
        let q = MixedStrategy::new(vec![0.5, 0.5]).unwrap();
        let p = MixedStrategy::new(vec![0.5, 0.5]).unwrap();
        assert_eq!(mq.alpha(&q).unwrap(), 1.0);
        assert_eq!(mq.beta(&p).unwrap(), 1.0);
        let f = mq.objective(&p, &q).unwrap();
        // f = 1 + 1 − 0.75 − 0.75 = 0.5.
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coarse_grid_misses_mixed_equilibria() {
        // On a 1/4 grid the BoS mixed NE (2/3, 1/3) is unrepresentable:
        // the grid minimum is still 0 (pure NE) but only 2 minima remain.
        let g = games::battle_of_the_sexes();
        let mq = MaxQubo::new(&g);
        let minima = mq.grid_minima(4, 1e-9).unwrap();
        assert_eq!(minima.len(), 2);
    }

    #[test]
    fn lossless_no_extra_variables() {
        // The MAX-QUBO form adds zero variables: objective is evaluated
        // directly on (p, q). This is a structural assertion contrasting
        // with SQubo::num_vars() > n + m.
        use crate::squbo::{SQubo, SQuboWeights};
        let g = games::battle_of_the_sexes();
        let s = SQubo::build(&g, &SQuboWeights::default()).unwrap();
        assert!(s.num_vars() > g.row_actions() + g.col_actions());
        // MaxQubo by construction uses only the 4 strategy coordinates.
    }
}
