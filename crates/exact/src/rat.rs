//! Normalized big-int fractions forming an ordered field.

use crate::bigint::BigInt;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};
use std::str::FromStr;

/// An exact rational number.
///
/// Canonical-form invariants, restored by every constructor and
/// operation: the denominator is strictly positive, numerator and
/// denominator are coprime, and zero is `0/1` — so structural equality
/// is numeric equality and the canonical representation is unique.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rat {
    num: BigInt,
    den: BigInt,
}

impl Rat {
    /// Zero (`0/1`).
    pub fn zero() -> Self {
        Self {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// One (`1/1`).
    pub fn one() -> Self {
        Self {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// `num / den` in canonical form.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        let (num, den) = if den.is_negative() {
            (-num, -den)
        } else {
            (num, den)
        };
        let g = num.gcd(&den);
        if g.is_zero() {
            return Self::zero();
        }
        let (num, _) = num.div_rem(&g);
        let (den, _) = den.div_rem(&g);
        Self { num, den }
    }

    /// The exact integer `v`.
    pub fn from_int(v: i64) -> Self {
        Self {
            num: BigInt::from(v),
            den: BigInt::one(),
        }
    }

    /// `a / b` as a rational.
    ///
    /// # Panics
    ///
    /// Panics if `b` is zero.
    pub fn from_ratio(a: i64, b: i64) -> Self {
        Self::new(BigInt::from(a), BigInt::from(b))
    }

    /// The **exact** value of a finite `f64` — every finite float is a
    /// dyadic rational `m · 2^e`, so no rounding is involved: the
    /// conversion satisfies `Rat::from_f64(x).unwrap().to_f64() == x`.
    /// Returns `None` for NaN and infinities.
    pub fn from_f64(x: f64) -> Option<Self> {
        if !x.is_finite() {
            return None;
        }
        let bits = x.to_bits();
        let neg = bits >> 63 == 1;
        let exp_field = (bits >> 52 & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        // Normal: (2^52 + frac) * 2^(exp-1075); subnormal: frac * 2^-1074.
        let (mantissa, exp) = if exp_field == 0 {
            (frac, -1074i64)
        } else {
            (frac | 1 << 52, exp_field - 1075)
        };
        let m = BigInt::from(mantissa);
        let m = if neg { -m } else { m };
        Some(if exp >= 0 {
            Self {
                num: m.shl(exp as usize),
                den: BigInt::one(),
            }
        } else {
            Self::new(m, BigInt::pow2((-exp) as usize))
        })
    }

    /// Numerator (canonical form).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (canonical form, always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// `true` iff zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// `true` iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// `true` iff strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.signum() > 0
    }

    /// Sign as `-1`, `0` or `1`.
    pub fn signum(&self) -> i32 {
        self.num.signum()
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        Self {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn recip(&self) -> Self {
        assert!(!self.is_zero(), "reciprocal of zero");
        let (num, den) = if self.num.is_negative() {
            (-&self.den, -&self.num)
        } else {
            (self.den.clone(), self.num.clone())
        };
        Self { num, den }
    }

    /// Nearest `f64`. Exact whenever both numerator and denominator
    /// convert exactly (in particular for all values round-tripped
    /// through [`Rat::from_f64`] that still fit the format); very large
    /// magnitudes scale through a power-of-two split to avoid `inf/inf`.
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let nb = self.num.bits() as i32;
        let db = self.den.bits() as i32;
        if nb <= 900 && db <= 900 {
            return self.num.to_f64() / self.den.to_f64();
        }
        // Shift both so the f64 conversions stay finite, then rescale.
        let shift_n = (nb - 512).max(0) as usize;
        let shift_d = (db - 512).max(0) as usize;
        let (n, _) = self.num.div_rem(&BigInt::pow2(shift_n));
        let (d, _) = self.den.div_rem(&BigInt::pow2(shift_d));
        (n.to_f64() / d.to_f64()) * 2f64.powi(shift_n as i32 - shift_d as i32)
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    /// Total order by cross-multiplication (denominators are positive,
    /// so the comparison direction is preserved).
    fn cmp(&self, other: &Self) -> Ordering {
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for &Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        -&self
    }
}

impl Add for &Rat {
    type Output = Rat;
    fn add(self, rhs: &Rat) -> Rat {
        Rat::new(
            &(&self.num * &rhs.den) + &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Sub for &Rat {
    type Output = Rat;
    fn sub(self, rhs: &Rat) -> Rat {
        self + &(-rhs)
    }
}

impl Mul for &Rat {
    type Output = Rat;
    fn mul(self, rhs: &Rat) -> Rat {
        Rat::new(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div for &Rat {
    type Output = Rat;
    fn div(self, rhs: &Rat) -> Rat {
        // a/b ÷ c/d = ad / bc, with `Rat::new` renormalizing sign+gcd.
        Rat::new(&self.num * &rhs.den, &self.den * &rhs.num)
    }
}

macro_rules! owned_ops {
    ($($trait:ident :: $method:ident),*) => {$(
        impl $trait for Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                $trait::$method(&self, &rhs)
            }
        }
    )*};
}
owned_ops!(Add::add, Sub::sub, Mul::mul, Div::div);

impl FromStr for Rat {
    type Err = String;

    /// Parses `"a"` or `"a/b"` with optionally signed decimal parts.
    fn from_str(s: &str) -> Result<Self, String> {
        match s.split_once('/') {
            None => Ok(Self {
                num: s.parse::<BigInt>()?,
                den: BigInt::one(),
            }),
            Some((a, b)) => {
                let den: BigInt = b.parse()?;
                if den.is_zero() {
                    return Err(format!("zero denominator in rational literal {s:?}"));
                }
                Ok(Self::new(a.parse()?, den))
            }
        }
    }
}

impl fmt::Display for Rat {
    /// Canonical form: `"a"` for integers, `"a/b"` otherwise — so
    /// `Display` → `FromStr` is the identity.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == BigInt::one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rat({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: i64, b: i64) -> Rat {
        Rat::from_ratio(a, b)
    }

    #[test]
    fn canonical_form() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, -7), Rat::zero());
        assert_eq!(r(6, 3).to_string(), "2");
        assert_eq!(r(-10, 4).to_string(), "-5/2");
    }

    #[test]
    fn field_arithmetic() {
        assert_eq!(&r(1, 3) + &r(1, 6), r(1, 2));
        assert_eq!(&r(1, 3) - &r(1, 2), r(-1, 6));
        assert_eq!(&r(2, 3) * &r(9, 4), r(3, 2));
        assert_eq!(&r(2, 3) / &r(4, 9), r(3, 2));
        assert_eq!(r(-5, 7).recip(), r(-7, 5));
        assert_eq!(&r(3, 4) + &(-&r(3, 4)), Rat::zero());
    }

    #[test]
    fn ordering_crosses_denominators() {
        let mut v = vec![r(1, 2), r(-3, 2), r(0, 1), r(2, 3), r(-1, 3)];
        v.sort();
        assert_eq!(v, vec![r(-3, 2), r(-1, 3), Rat::zero(), r(1, 2), r(2, 3)]);
    }

    #[test]
    fn f64_round_trip_is_exact() {
        for x in [
            0.0,
            -0.0,
            1.0,
            0.5,
            -0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 4.0, // subnormal
            f64::MAX,
            -123456.789,
        ] {
            let q = Rat::from_f64(x).unwrap();
            assert_eq!(q.to_f64(), x, "round trip failed for {x}");
        }
        assert_eq!(Rat::from_f64(0.25).unwrap(), r(1, 4));
        assert_eq!(Rat::from_f64(-3.0).unwrap(), r(-3, 1));
        assert!(Rat::from_f64(f64::NAN).is_none());
        assert!(Rat::from_f64(f64::INFINITY).is_none());
    }

    #[test]
    fn to_f64_handles_huge_components() {
        let big = BigInt::pow2(2000);
        let q = Rat::new(big.clone(), &big * &BigInt::from(3i64));
        let f = q.to_f64();
        assert!((f - 1.0 / 3.0).abs() < 1e-12, "got {f}");
        let huge = Rat::new(BigInt::pow2(3000), BigInt::one());
        assert_eq!(huge.to_f64(), f64::INFINITY);
    }

    #[test]
    fn parse_display_round_trip() {
        for s in ["0", "-5", "1/2", "-7/3", "123456789012345678901/2"] {
            let q: Rat = s.parse().unwrap();
            assert_eq!(q.to_string(), s);
        }
        assert_eq!("4/8".parse::<Rat>().unwrap().to_string(), "1/2");
        assert_eq!("6/-4".parse::<Rat>().unwrap().to_string(), "-3/2");
        assert!("1/0".parse::<Rat>().is_err());
        assert!("a/2".parse::<Rat>().is_err());
        assert!("".parse::<Rat>().is_err());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(BigInt::one(), BigInt::zero());
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn zero_reciprocal_panics() {
        let _ = Rat::zero().recip();
    }
}
