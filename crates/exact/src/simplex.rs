//! A textbook two-phase primal simplex over exact rationals.
//!
//! Variables are implicitly nonnegative; constraints are arbitrary
//! `=` / `≤` / `≥` rows. Phase 1 minimizes the sum of artificial
//! variables to decide **feasibility** (and produce a basic feasible
//! solution — a **vertex** of the feasible region); phase 2 minimizes
//! a caller-supplied linear objective from that vertex.
//!
//! Pivoting uses **Bland's rule** (smallest-index entering column,
//! smallest-basis-index leaving row among the minimum ratios), which
//! provably never cycles — combined with exact arithmetic there is no
//! tolerance, no epsilon-pivoting and no stall: the solver terminates
//! with the mathematically correct answer on every input.

use crate::linalg; // re-exported for discoverability next to the LP API
use crate::rat::Rat;

pub use linalg::{solve as solve_linear, LinSolve};

/// Relation of one constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// Equality.
    Eq,
    /// Less-than-or-equal.
    Le,
    /// Greater-than-or-equal.
    Ge,
}

/// One linear constraint `coeffs · x (=|≤|≥) rhs` over nonnegative `x`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// Coefficients, one per structural variable.
    pub coeffs: Vec<Rat>,
    /// Row relation.
    pub rel: Relation,
    /// Right-hand side.
    pub rhs: Rat,
}

impl Constraint {
    /// `coeffs · x = rhs`.
    pub fn eq(coeffs: Vec<Rat>, rhs: Rat) -> Self {
        Self {
            coeffs,
            rel: Relation::Eq,
            rhs,
        }
    }

    /// `coeffs · x ≤ rhs`.
    pub fn le(coeffs: Vec<Rat>, rhs: Rat) -> Self {
        Self {
            coeffs,
            rel: Relation::Le,
            rhs,
        }
    }

    /// `coeffs · x ≥ rhs`.
    pub fn ge(coeffs: Vec<Rat>, rhs: Rat) -> Self {
        Self {
            coeffs,
            rel: Relation::Ge,
            rhs,
        }
    }
}

/// Result of optimizing a [`LinearProgram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpOutcome {
    /// The constraint set is empty.
    Infeasible,
    /// The objective decreases without bound over the feasible region.
    Unbounded,
    /// An optimal vertex.
    Optimal {
        /// The optimal objective value.
        value: Rat,
        /// A minimizing vertex (structural variables only).
        point: Vec<Rat>,
    },
}

/// A linear program over `num_vars` nonnegative structural variables.
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    /// Structural variable count; every constraint row must match it.
    num_vars: usize,
    constraints: Vec<Constraint>,
}

/// Feasibility shortcut: a vertex of `{x ≥ 0 | constraints}`, or
/// `None` if the region is empty. Equivalent to
/// [`LinearProgram::feasible_point`] on a freshly built program.
///
/// # Panics
///
/// Panics if a constraint's coefficient count differs from `num_vars`.
pub fn feasible_point(num_vars: usize, constraints: &[Constraint]) -> Option<Vec<Rat>> {
    let mut lp = LinearProgram::new(num_vars);
    for c in constraints {
        lp.push(c.clone());
    }
    lp.feasible_point()
}

impl LinearProgram {
    /// An empty program over `num_vars` nonnegative variables.
    pub fn new(num_vars: usize) -> Self {
        Self {
            num_vars,
            constraints: Vec::new(),
        }
    }

    /// Structural variable count.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Adds a constraint row.
    ///
    /// # Panics
    ///
    /// Panics if the row's coefficient count differs from `num_vars`.
    pub fn push(&mut self, c: Constraint) {
        assert_eq!(
            c.coeffs.len(),
            self.num_vars,
            "constraint arity must match the program"
        );
        self.constraints.push(c);
    }

    /// A vertex of the feasible region (phase 1 only), or `None` if
    /// the region is empty.
    pub fn feasible_point(&self) -> Option<Vec<Rat>> {
        let mut t = Tableau::build(self);
        if !t.phase1() {
            return None;
        }
        Some(t.point(self.num_vars))
    }

    /// Two-phase minimization of `objective · x`.
    ///
    /// # Panics
    ///
    /// Panics if `objective.len() != num_vars`.
    pub fn minimize(&self, objective: &[Rat]) -> LpOutcome {
        assert_eq!(
            objective.len(),
            self.num_vars,
            "objective arity must match the program"
        );
        let mut t = Tableau::build(self);
        if !t.phase1() {
            return LpOutcome::Infeasible;
        }
        t.drop_artificials();
        let mut cost = objective.to_vec();
        cost.resize(t.cols, Rat::zero());
        if !t.optimize(&cost) {
            return LpOutcome::Unbounded;
        }
        let point = t.point(self.num_vars);
        let value = objective
            .iter()
            .zip(&point)
            .fold(Rat::zero(), |acc, (c, x)| &acc + &(c * x));
        LpOutcome::Optimal { value, point }
    }
}

/// Dense simplex tableau in fully reduced (dictionary) form: each
/// basic variable's column is a unit vector, `rhs` stays ≥ 0.
struct Tableau {
    /// Row-major coefficient rows (length `cols` each).
    rows: Vec<Vec<Rat>>,
    /// Right-hand sides, one per row.
    rhs: Vec<Rat>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// Total column count: structural + slack/surplus + artificial.
    cols: usize,
    /// First artificial column (artificials are the trailing columns).
    art_start: usize,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Self {
        let m = lp.constraints.len();
        let n = lp.num_vars;
        // One slack/surplus per inequality, one artificial per row that
        // lacks a natural initial basic column.
        let slacks = lp
            .constraints
            .iter()
            .filter(|c| c.rel != Relation::Eq)
            .count();
        let art_start = n + slacks;
        let mut rows = Vec::with_capacity(m);
        let mut rhs = Vec::with_capacity(m);
        let mut basis = Vec::with_capacity(m);
        let mut next_slack = n;
        let mut arts = 0usize;
        for c in &lp.constraints {
            // Normalize to rhs ≥ 0 (flips the inequality direction).
            let flip = c.rhs.is_negative();
            let sign = if flip { Rat::from_int(-1) } else { Rat::one() };
            let mut row: Vec<Rat> = c.coeffs.iter().map(|x| x * &sign).collect();
            row.resize(art_start, Rat::zero());
            let b = &c.rhs * &sign;
            let rel = match (c.rel, flip) {
                (Relation::Eq, _) => Relation::Eq,
                (Relation::Le, false) | (Relation::Ge, true) => Relation::Le,
                (Relation::Ge, false) | (Relation::Le, true) => Relation::Ge,
            };
            let basic = match rel {
                Relation::Le => {
                    row[next_slack] = Rat::one();
                    next_slack += 1;
                    next_slack - 1
                }
                Relation::Ge => {
                    row[next_slack] = Rat::from_int(-1);
                    next_slack += 1;
                    arts += 1;
                    usize::MAX // artificial assigned below
                }
                Relation::Eq => {
                    arts += 1;
                    usize::MAX
                }
            };
            rows.push(row);
            rhs.push(b);
            basis.push(basic);
        }
        let cols = art_start + arts;
        let mut art = art_start;
        for (i, b) in basis.iter_mut().enumerate() {
            rows[i].resize(cols, Rat::zero());
            if *b == usize::MAX {
                rows[i][art] = Rat::one();
                *b = art;
                art += 1;
            }
        }
        Self {
            rows,
            rhs,
            basis,
            cols,
            art_start,
        }
    }

    /// Reduced cost of column `j` under cost vector `c`:
    /// `c_j − Σ_i c_{basis[i]} · T[i][j]`.
    fn reduced_cost(&self, c: &[Rat], j: usize) -> Rat {
        let mut acc = c[j].clone();
        for (i, row) in self.rows.iter().enumerate() {
            if !c[self.basis[i]].is_zero() && !row[j].is_zero() {
                acc = &acc - &(&c[self.basis[i]] * &row[j]);
            }
        }
        acc
    }

    /// Gauss–Jordan pivot on `(row, col)`.
    fn pivot(&mut self, row: usize, col: usize) {
        let inv = self.rows[row][col].recip();
        for x in self.rows[row].iter_mut() {
            *x = &*x * &inv;
        }
        self.rhs[row] = &self.rhs[row] * &inv;
        for i in 0..self.rows.len() {
            if i == row || self.rows[i][col].is_zero() {
                continue;
            }
            let f = self.rows[i][col].clone();
            for j in 0..self.cols {
                let delta = &f * &self.rows[row][j];
                self.rows[i][j] = &self.rows[i][j] - &delta;
            }
            let delta = &f * &self.rhs[row];
            self.rhs[i] = &self.rhs[i] - &delta;
        }
        self.basis[row] = col;
    }

    /// Bland-rule minimization of `c · x` from the current basis.
    /// Returns `false` iff the objective is unbounded below.
    fn optimize(&mut self, c: &[Rat]) -> bool {
        loop {
            // Entering: the smallest-index column with negative
            // reduced cost (Bland's anti-cycling rule).
            let Some(enter) = (0..self.cols).find(|&j| self.reduced_cost(c, j).is_negative())
            else {
                return true;
            };
            // Leaving: minimum ratio rhs/coeff over positive pivot
            // coefficients, smallest basis index on ties.
            let mut leave: Option<usize> = None;
            for i in 0..self.rows.len() {
                if !self.rows[i][enter].is_positive() {
                    continue;
                }
                leave = Some(match leave {
                    None => i,
                    Some(best) => {
                        let cur = &self.rhs[i] / &self.rows[i][enter];
                        let b = &self.rhs[best] / &self.rows[best][enter];
                        match cur.cmp(&b) {
                            std::cmp::Ordering::Less => i,
                            std::cmp::Ordering::Greater => best,
                            std::cmp::Ordering::Equal => {
                                if self.basis[i] < self.basis[best] {
                                    i
                                } else {
                                    best
                                }
                            }
                        }
                    }
                });
            }
            let Some(leave) = leave else {
                return false;
            };
            self.pivot(leave, enter);
        }
    }

    /// Phase 1: minimize the artificial sum. `true` iff feasible
    /// (optimum exactly zero), with artificials driven out of the
    /// basis wherever a structural pivot exists (rows where none does
    /// are redundant and harmless: their artificial stays basic at 0).
    fn phase1(&mut self) -> bool {
        let mut c = vec![Rat::zero(); self.cols];
        for x in &mut c[self.art_start..] {
            *x = Rat::one();
        }
        let bounded = self.optimize(&c);
        debug_assert!(bounded, "phase-1 objective is bounded below by 0");
        let value = self
            .basis
            .iter()
            .zip(&self.rhs)
            .filter(|(&b, _)| b >= self.art_start)
            .fold(Rat::zero(), |acc, (_, v)| &acc + &v.clone());
        if !value.is_zero() {
            return false;
        }
        // Pivot basic artificials (at value 0) out on any nonzero
        // structural/slack column so phase 2 can drop their columns.
        for i in 0..self.rows.len() {
            if self.basis[i] >= self.art_start {
                if let Some(j) = (0..self.art_start).find(|&j| !self.rows[i][j].is_zero()) {
                    self.pivot(i, j);
                }
            }
        }
        true
    }

    /// Removes artificial columns (and any residual redundant rows
    /// still basic in one) after a successful phase 1.
    fn drop_artificials(&mut self) {
        let art_start = self.art_start;
        let keep: Vec<bool> = self.basis.iter().map(|&b| b < art_start).collect();
        let mut idx = 0;
        self.rows.retain(|_| {
            idx += 1;
            keep[idx - 1]
        });
        let mut idx = 0;
        self.rhs.retain(|_| {
            idx += 1;
            keep[idx - 1]
        });
        let mut idx = 0;
        self.basis.retain(|_| {
            idx += 1;
            keep[idx - 1]
        });
        for row in &mut self.rows {
            row.truncate(art_start);
        }
        self.cols = art_start;
    }

    /// The current basic solution restricted to the first `n` columns.
    fn point(&self, n: usize) -> Vec<Rat> {
        let mut x = vec![Rat::zero(); n];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < n {
                x[b] = self.rhs[i].clone();
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: i64, b: i64) -> Rat {
        Rat::from_ratio(a, b)
    }

    fn ri(a: i64) -> Rat {
        Rat::from_int(a)
    }

    #[test]
    fn feasible_vertex_of_a_simplex() {
        // x + y = 1, x, y >= 0: a vertex is (1,0) or (0,1).
        let point = feasible_point(2, &[Constraint::eq(vec![ri(1), ri(1)], ri(1))]).unwrap();
        assert_eq!(&point[0] + &point[1], ri(1));
        assert!(point.iter().all(|v| !v.is_negative()));
        assert!(
            point.contains(&ri(0)),
            "a basic feasible solution is a vertex, got {point:?}"
        );
    }

    #[test]
    fn infeasible_region_detected() {
        // x + y = 1 and x + y >= 2 cannot both hold.
        assert_eq!(
            feasible_point(
                2,
                &[
                    Constraint::eq(vec![ri(1), ri(1)], ri(1)),
                    Constraint::ge(vec![ri(1), ri(1)], ri(2)),
                ]
            ),
            None
        );
        // x <= -1 with x >= 0 is empty.
        assert_eq!(
            feasible_point(1, &[Constraint::le(vec![ri(1)], ri(-1))]),
            None
        );
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // -x - y <= -1  ==  x + y >= 1.
        let p = feasible_point(2, &[Constraint::le(vec![ri(-1), ri(-1)], ri(-1))]).unwrap();
        assert!(&p[0] + &p[1] >= ri(1));
    }

    #[test]
    fn two_phase_minimization() {
        // min x + 2y  s.t.  x + y >= 2, y >= 1/2  =>  x = 3/2, y = 1/2.
        let mut lp = LinearProgram::new(2);
        lp.push(Constraint::ge(vec![ri(1), ri(1)], ri(2)));
        lp.push(Constraint::ge(vec![ri(0), ri(1)], r(1, 2)));
        let LpOutcome::Optimal { value, point } = lp.minimize(&[ri(1), ri(2)]) else {
            panic!("bounded feasible LP");
        };
        assert_eq!(value, r(5, 2));
        assert_eq!(point, vec![r(3, 2), r(1, 2)]);
    }

    #[test]
    fn unbounded_objective_detected() {
        // min -x  s.t.  x >= 0 (no upper bound).
        let lp = {
            let mut lp = LinearProgram::new(1);
            lp.push(Constraint::ge(vec![ri(1)], ri(0)));
            lp
        };
        assert_eq!(lp.minimize(&[ri(-1)]), LpOutcome::Unbounded);
    }

    #[test]
    fn minimize_reports_infeasible() {
        let mut lp = LinearProgram::new(1);
        lp.push(Constraint::eq(vec![ri(1)], ri(-3)));
        assert_eq!(lp.minimize(&[ri(1)]), LpOutcome::Infeasible);
    }

    #[test]
    fn redundant_rows_are_harmless() {
        // Same equality twice: phase 1 leaves one artificial basic at
        // zero on the redundant row; the answer is still correct.
        let mut lp = LinearProgram::new(2);
        lp.push(Constraint::eq(vec![ri(1), ri(1)], ri(1)));
        lp.push(Constraint::eq(vec![ri(1), ri(1)], ri(1)));
        lp.push(Constraint::eq(vec![ri(2), ri(2)], ri(2)));
        let LpOutcome::Optimal { value, .. } = lp.minimize(&[ri(1), ri(0)]) else {
            panic!("feasible");
        };
        assert_eq!(value, ri(0));
    }

    #[test]
    fn degenerate_cycling_guard() {
        // The classic Beale-style degenerate LP that cycles under
        // naive most-negative pivoting; Bland's rule must terminate.
        let mut lp = LinearProgram::new(4);
        lp.push(Constraint::le(
            vec![r(1, 4), ri(-60), r(-1, 25), ri(9)],
            ri(0),
        ));
        lp.push(Constraint::le(
            vec![r(1, 2), ri(-90), r(-1, 50), ri(3)],
            ri(0),
        ));
        lp.push(Constraint::le(vec![ri(0), ri(0), ri(1), ri(0)], ri(1)));
        let out = lp.minimize(&[r(-3, 4), ri(150), r(-1, 50), ri(6)]);
        let LpOutcome::Optimal { value, .. } = out else {
            panic!("Beale LP is bounded and feasible, got {out:?}");
        };
        assert_eq!(value, r(-1, 20));
    }

    #[test]
    fn exact_fractional_vertex() {
        // Indifference-style system: 3q0 - 2q1 = 0, q0 + q1 = 1
        // => q = (2/5, 3/5), exactly.
        let p = feasible_point(
            2,
            &[
                Constraint::eq(vec![ri(3), ri(-2)], ri(0)),
                Constraint::eq(vec![ri(1), ri(1)], ri(1)),
            ],
        )
        .unwrap();
        assert_eq!(p, vec![r(2, 5), r(3, 5)]);
    }
}
