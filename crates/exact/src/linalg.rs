//! Exact Gaussian elimination over [`Rat`].

use crate::rat::Rat;

/// Outcome of solving a square linear system exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinSolve {
    /// The system has exactly one solution.
    Unique(Vec<Rat>),
    /// The coefficient matrix is rank-deficient: the system has either
    /// no solution or an affine subspace of them. Exact enumeration
    /// hands these to the simplex, which decides feasibility and
    /// produces a vertex witness.
    Singular,
}

/// Solves the square system `a · x = b` by fraction-exact
/// Gauss–Jordan elimination with full row pivoting on the first
/// nonzero entry — no tolerance anywhere: a pivot is zero iff it is
/// *exactly* zero, which is precisely the singularity test `f64`
/// elimination cannot perform.
///
/// # Panics
///
/// Panics if `a` is not square or `b` has the wrong length.
pub fn solve(a: &[Vec<Rat>], b: &[Rat]) -> LinSolve {
    let n = a.len();
    assert!(a.iter().all(|row| row.len() == n), "matrix must be square");
    assert_eq!(b.len(), n, "rhs length must match");
    // Augmented matrix [a | b].
    let mut m: Vec<Vec<Rat>> = a
        .iter()
        .zip(b)
        .map(|(row, rhs)| {
            let mut r = row.clone();
            r.push(rhs.clone());
            r
        })
        .collect();
    for col in 0..n {
        let Some(pivot) = (col..n).find(|&r| !m[r][col].is_zero()) else {
            return LinSolve::Singular;
        };
        m.swap(col, pivot);
        let inv = m[col][col].recip();
        for x in &mut m[col][col..] {
            *x = &*x * &inv;
        }
        for r in 0..n {
            if r != col && !m[r][col].is_zero() {
                let factor = m[r][col].clone();
                let pivot_row = m[col][col..=n].to_vec();
                for (x, p) in m[r][col..=n].iter_mut().zip(&pivot_row) {
                    *x = &*x - &(&factor * p);
                }
            }
        }
    }
    LinSolve::Unique(m.into_iter().map(|row| row[n].clone()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: i64, b: i64) -> Rat {
        Rat::from_ratio(a, b)
    }

    #[test]
    fn solves_a_unique_system() {
        // 2x + y = 5, x - y = 1  =>  x = 2, y = 1
        let a = vec![vec![r(2, 1), r(1, 1)], vec![r(1, 1), r(-1, 1)]];
        let b = vec![r(5, 1), r(1, 1)];
        assert_eq!(solve(&a, &b), LinSolve::Unique(vec![r(2, 1), r(1, 1)]));
    }

    #[test]
    fn exact_fractions_no_drift() {
        // Hilbert-like 3x3: catastrophically ill-conditioned in f64,
        // trivially exact here.
        let a: Vec<Vec<Rat>> = (1..=3)
            .map(|i| (1..=3).map(|j| r(1, i + j - 1)).collect())
            .collect();
        let b = vec![r(1, 1), r(0, 1), r(0, 1)];
        let LinSolve::Unique(x) = solve(&a, &b) else {
            panic!("hilbert 3x3 is nonsingular");
        };
        // Residual must be exactly zero in every coordinate.
        for (i, row) in a.iter().enumerate() {
            let acc = row
                .iter()
                .zip(&x)
                .fold(Rat::zero(), |acc, (c, v)| &acc + &(c * v));
            assert_eq!(acc, b[i], "row {i} residual nonzero");
        }
    }

    #[test]
    fn detects_exact_singularity() {
        // Second row is 2x the first: singular regardless of rhs.
        let a = vec![vec![r(1, 1), r(2, 1)], vec![r(2, 1), r(4, 1)]];
        assert_eq!(solve(&a, &[r(1, 1), r(2, 1)]), LinSolve::Singular);
        assert_eq!(solve(&a, &[r(1, 1), r(3, 1)]), LinSolve::Singular);
    }

    #[test]
    fn empty_system_is_unique() {
        assert_eq!(solve(&[], &[]), LinSolve::Unique(vec![]));
    }
}
