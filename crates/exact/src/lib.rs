//! Exact rational arithmetic and an exact-rational simplex.
//!
//! This crate is the numerical trust anchor of the workspace: every
//! other layer computes in `f64` and is checked *against* the exact
//! arithmetic here, never the other way around. It is deliberately
//! dependency-free (not even `rand`) so its verdicts share no code —
//! and no rounding behaviour — with the float pipeline it certifies.
//!
//! Three layers, each textbook-simple on purpose:
//!
//! * [`BigInt`] — sign-magnitude arbitrary-precision integers on
//!   `u32` limbs (`u64` intermediates), with schoolbook arithmetic,
//!   long division and Euclidean gcd;
//! * [`Rat`] — normalized big-int fractions (`den > 0`,
//!   `gcd(num, den) = 1`) forming an ordered field, with exact
//!   conversion from any finite `f64` (every finite float *is* a
//!   dyadic rational) and round-trippable decimal parsing/printing;
//! * [`simplex`] — a two-phase primal simplex over [`Rat`] using
//!   Bland's rule (no cycling, hence guaranteed termination), exposing
//!   LP feasibility and a basic-feasible-solution **vertex** of the
//!   feasible region, plus [`linalg`] — exact Gaussian elimination
//!   with rank detection for square systems.
//!
//! The intended consumer is exact support enumeration
//! (`cnash_game::exact_enum`): indifference systems that are singular
//! in `f64` — the source of every `?`-labelled unclassified continuum
//! hit in the differential harness — are decided here exactly, with a
//! vertex representative of the feasible region as the witness.

pub mod bigint;
pub mod linalg;
pub mod rat;
pub mod simplex;

pub use bigint::BigInt;
pub use rat::Rat;
pub use simplex::{feasible_point, Constraint, LinearProgram, LpOutcome, Relation};
