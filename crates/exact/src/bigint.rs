//! Sign-magnitude arbitrary-precision integers on `u32` limbs.
//!
//! Schoolbook arithmetic throughout: the operands this workspace
//! produces (determinants of ≤ 16×16 integer indifference systems,
//! simplex tableau entries over small-payoff games) stay within a few
//! hundred bits, where the simple algorithms are both fast enough and
//! easy to audit. Division is binary long division (quadratic in the
//! bit length), gcd is Euclid on magnitudes.
//!
//! Invariants: limbs are little-endian with no high zero limb, and
//! zero is the empty limb vector with `neg == false` — so structural
//! equality is numeric equality.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};
use std::str::FromStr;

/// An arbitrary-precision signed integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigInt {
    /// Sign flag; never set when `mag` is empty (zero is `+0`).
    neg: bool,
    /// Little-endian base-2³² magnitude, no trailing (high) zero limbs.
    mag: Vec<u32>,
}

/// Strips high zero limbs so the no-leading-zeros invariant holds.
fn norm(mut mag: Vec<u32>) -> Vec<u32> {
    while mag.last() == Some(&0) {
        mag.pop();
    }
    mag
}

/// Magnitude comparison of two normalized limb vectors.
fn cmp_mag(a: &[u32], b: &[u32]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        if x != y {
            return x.cmp(y);
        }
    }
    Ordering::Equal
}

fn add_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().max(b.len()) + 1);
    let mut carry = 0u64;
    for i in 0..a.len().max(b.len()) {
        let x = *a.get(i).unwrap_or(&0) as u64;
        let y = *b.get(i).unwrap_or(&0) as u64;
        let s = x + y + carry;
        out.push(s as u32);
        carry = s >> 32;
    }
    if carry != 0 {
        out.push(carry as u32);
    }
    out
}

/// `a - b` on magnitudes; requires `a >= b`.
fn sub_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
    debug_assert!(cmp_mag(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0i64;
    for (i, limb) in a.iter().enumerate() {
        let x = *limb as i64;
        let y = *b.get(i).unwrap_or(&0) as i64;
        let mut d = x - y - borrow;
        if d < 0 {
            d += 1 << 32;
            borrow = 1;
        } else {
            borrow = 0;
        }
        out.push(d as u32);
    }
    debug_assert_eq!(borrow, 0);
    norm(out)
}

fn mul_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u32; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        let mut carry = 0u64;
        for (j, &y) in b.iter().enumerate() {
            let t = out[i + j] as u64 + x as u64 * y as u64 + carry;
            out[i + j] = t as u32;
            carry = t >> 32;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = out[k] as u64 + carry;
            out[k] = t as u32;
            carry = t >> 32;
            k += 1;
        }
    }
    norm(out)
}

fn bit_len(mag: &[u32]) -> usize {
    match mag.last() {
        None => 0,
        Some(top) => 32 * (mag.len() - 1) + (32 - top.leading_zeros() as usize),
    }
}

fn get_bit(mag: &[u32], i: usize) -> bool {
    mag.get(i / 32)
        .is_some_and(|limb| limb >> (i % 32) & 1 == 1)
}

/// Binary long division on magnitudes: `(n / d, n % d)`, `d != 0`.
fn div_rem_mag(n: &[u32], d: &[u32]) -> (Vec<u32>, Vec<u32>) {
    assert!(!d.is_empty(), "division by zero");
    if cmp_mag(n, d) == Ordering::Less {
        return (Vec::new(), n.to_vec());
    }
    let bits = bit_len(n);
    let mut q = vec![0u32; n.len()];
    let mut r: Vec<u32> = Vec::new();
    for i in (0..bits).rev() {
        // r = 2r + bit_i(n)
        let mut carry = u32::from(get_bit(n, i));
        for limb in r.iter_mut() {
            let t = (*limb as u64) << 1 | carry as u64;
            *limb = t as u32;
            carry = (t >> 32) as u32;
        }
        if carry != 0 {
            r.push(carry);
        }
        if cmp_mag(&r, d) != Ordering::Less {
            r = sub_mag(&r, d);
            q[i / 32] |= 1 << (i % 32);
        }
    }
    (norm(q), r)
}

impl BigInt {
    /// Zero.
    pub fn zero() -> Self {
        Self::default()
    }

    /// One.
    pub fn one() -> Self {
        Self::from(1i64)
    }

    /// `true` iff this is zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_empty()
    }

    /// `true` iff this is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.neg
    }

    /// Sign as `-1`, `0` or `1`.
    pub fn signum(&self) -> i32 {
        if self.mag.is_empty() {
            0
        } else if self.neg {
            -1
        } else {
            1
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        Self {
            neg: false,
            mag: self.mag.clone(),
        }
    }

    /// Number of bits in the magnitude (0 for zero).
    pub fn bits(&self) -> usize {
        bit_len(&self.mag)
    }

    /// `2^k`.
    pub fn pow2(k: usize) -> Self {
        let mut mag = vec![0u32; k / 32 + 1];
        mag[k / 32] = 1 << (k % 32);
        Self {
            neg: false,
            mag: norm(mag),
        }
    }

    /// `self << k` (multiplication by `2^k`).
    pub fn shl(&self, k: usize) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let (limbs, bits) = (k / 32, k % 32);
        let mut mag = vec![0u32; limbs];
        let mut carry = 0u32;
        for &limb in &self.mag {
            if bits == 0 {
                mag.push(limb);
            } else {
                mag.push(limb << bits | carry);
                carry = limb >> (32 - bits);
            }
        }
        if carry != 0 {
            mag.push(carry);
        }
        Self {
            neg: self.neg,
            mag: norm(mag),
        }
    }

    /// Truncated division with remainder: `self = q * d + r` with
    /// `|r| < |d|` and `r` carrying the sign of `self` (truncation
    /// toward zero, like Rust's integer `/` and `%`).
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn div_rem(&self, d: &BigInt) -> (BigInt, BigInt) {
        let (q_mag, r_mag) = div_rem_mag(&self.mag, &d.mag);
        let q = BigInt {
            neg: !q_mag.is_empty() && (self.neg != d.neg),
            mag: q_mag,
        };
        let r = BigInt {
            neg: !r_mag.is_empty() && self.neg,
            mag: r_mag,
        };
        (q, r)
    }

    /// Greatest common divisor of the magnitudes (always ≥ 0;
    /// `gcd(0, 0) = 0`).
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.mag.clone();
        let mut b = other.mag.clone();
        while !b.is_empty() {
            let (_, r) = div_rem_mag(&a, &b);
            a = b;
            b = r;
        }
        BigInt { neg: false, mag: a }
    }

    /// Nearest `f64` (magnitude rounded from the top 96 bits; values
    /// beyond `f64` range become `±inf`).
    pub fn to_f64(&self) -> f64 {
        let len = self.mag.len();
        if len == 0 {
            return 0.0;
        }
        let top = len.saturating_sub(3);
        let mut acc = 0.0f64;
        for &limb in self.mag[top..].iter().rev() {
            acc = acc * 4294967296.0 + limb as f64;
        }
        let scaled = acc * 2f64.powi(32 * top as i32);
        if self.neg {
            -scaled
        } else {
            scaled
        }
    }

    /// Exact value as `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        if self.mag.len() > 2 {
            return None;
        }
        let mut v: u64 = 0;
        for (i, &limb) in self.mag.iter().enumerate() {
            v |= (limb as u64) << (32 * i);
        }
        if self.neg {
            if v > 1 << 63 {
                None
            } else {
                Some((v as i64).wrapping_neg())
            }
        } else {
            i64::try_from(v).ok()
        }
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        let neg = v < 0;
        let u = v.unsigned_abs();
        Self {
            neg: neg && u != 0,
            mag: norm(vec![u as u32, (u >> 32) as u32]),
        }
    }
}

impl From<u64> for BigInt {
    fn from(u: u64) -> Self {
        Self {
            neg: false,
            mag: norm(vec![u as u32, (u >> 32) as u32]),
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.neg, other.neg) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => cmp_mag(&self.mag, &other.mag),
            (true, true) => cmp_mag(&other.mag, &self.mag),
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            neg: !self.mag.is_empty() && !self.neg,
            mag: self.mag.clone(),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -&self
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        if self.neg == rhs.neg {
            return BigInt {
                neg: self.neg,
                mag: add_mag(&self.mag, &rhs.mag),
            };
        }
        match cmp_mag(&self.mag, &rhs.mag) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt {
                neg: self.neg,
                mag: sub_mag(&self.mag, &rhs.mag),
            },
            Ordering::Less => BigInt {
                neg: rhs.neg,
                mag: sub_mag(&rhs.mag, &self.mag),
            },
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        let mag = mul_mag(&self.mag, &rhs.mag);
        BigInt {
            neg: !mag.is_empty() && (self.neg != rhs.neg),
            mag,
        }
    }
}

macro_rules! owned_ops {
    ($($trait:ident :: $method:ident),*) => {$(
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                $trait::$method(&self, &rhs)
            }
        }
    )*};
}
owned_ops!(Add::add, Sub::sub, Mul::mul);

impl FromStr for BigInt {
    type Err = String;

    /// Parses an optionally signed decimal integer.
    fn from_str(s: &str) -> Result<Self, String> {
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() {
            return Err(format!("empty integer literal {s:?}"));
        }
        let mut mag: Vec<u32> = Vec::new();
        for c in digits.chars() {
            let d = c
                .to_digit(10)
                .ok_or_else(|| format!("invalid digit {c:?} in integer literal {s:?}"))?;
            // mag = mag * 10 + d
            let mut carry = d as u64;
            for limb in mag.iter_mut() {
                let t = *limb as u64 * 10 + carry;
                *limb = t as u32;
                carry = t >> 32;
            }
            if carry != 0 {
                mag.push(carry as u32);
            }
        }
        let mag = norm(mag);
        Ok(Self {
            neg: neg && !mag.is_empty(),
            mag,
        })
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Peel 9 decimal digits per pass via single-limb division.
        let mut mag = self.mag.clone();
        let mut chunks: Vec<u32> = Vec::new();
        while !mag.is_empty() {
            let mut rem = 0u64;
            for limb in mag.iter_mut().rev() {
                let cur = rem << 32 | *limb as u64;
                *limb = (cur / 1_000_000_000) as u32;
                rem = cur % 1_000_000_000;
            }
            chunks.push(rem as u32);
            mag = norm(mag);
        }
        if self.neg {
            write!(f, "-")?;
        }
        write!(f, "{}", chunks.last().expect("nonzero has chunks"))?;
        for chunk in chunks.iter().rev().skip(1) {
            write!(f, "{chunk:09}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn small_arithmetic_matches_i64() {
        for x in [-7i64, -1, 0, 1, 3, 1 << 40] {
            for y in [-5i64, 0, 2, 9, (1 << 40) + 17] {
                assert_eq!((&b(x) + &b(y)).to_i64(), Some(x + y), "{x}+{y}");
                assert_eq!((&b(x) - &b(y)).to_i64(), Some(x - y), "{x}-{y}");
                let prod = (x as i128) * (y as i128); // may exceed i64
                assert_eq!((&b(x) * &b(y)).to_string(), prod.to_string(), "{x}*{y}");
                if y != 0 {
                    let (q, r) = b(x).div_rem(&b(y));
                    assert_eq!(q.to_i64(), Some(x / y), "{x}/{y}");
                    assert_eq!(r.to_i64(), Some(x % y), "{x}%{y}");
                }
            }
        }
    }

    #[test]
    fn multiplication_grows_past_native_width() {
        let big = b(i64::MAX);
        let sq = &big * &big;
        assert_eq!(sq.to_i64(), None);
        assert_eq!(sq.to_string(), "85070591730234615847396907784232501249");
        let (q, r) = sq.div_rem(&big);
        assert_eq!(q, big);
        assert!(r.is_zero());
    }

    #[test]
    fn display_parse_round_trip() {
        for s in [
            "0",
            "-1",
            "999999999",
            "1000000000",
            "-340282366920938463463374607431768211456",
            "12345678901234567890123456789012345678901234567890",
        ] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert_eq!("-0".parse::<BigInt>().unwrap(), BigInt::zero());
        assert_eq!("+17".parse::<BigInt>().unwrap(), b(17));
        assert!("".parse::<BigInt>().is_err());
        assert!("12x".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
    }

    #[test]
    fn ordering_is_signed() {
        let mut v = vec![b(3), b(-10), b(0), b(10), b(-2)];
        v.sort();
        assert_eq!(v, vec![b(-10), b(-2), b(0), b(3), b(10)]);
    }

    #[test]
    fn gcd_of_magnitudes() {
        assert_eq!(b(12).gcd(&b(-18)), b(6));
        assert_eq!(b(0).gcd(&b(5)), b(5));
        assert_eq!(b(5).gcd(&b(0)), b(5));
        assert_eq!(b(0).gcd(&b(0)), b(0));
        let a = b(2 * 3 * 5 * 7 * 11);
        let c = b(3 * 7 * 13);
        assert_eq!(a.gcd(&c), b(21));
    }

    #[test]
    fn pow2_and_shl() {
        assert_eq!(BigInt::pow2(0), b(1));
        assert_eq!(BigInt::pow2(40).to_i64(), Some(1 << 40));
        assert_eq!(b(5).shl(3), b(40));
        assert_eq!(b(-5).shl(33).to_i64(), Some(-5 * (1i64 << 33)));
        assert_eq!(BigInt::zero().shl(100), BigInt::zero());
        assert_eq!(BigInt::pow2(200).bits(), 201);
    }

    #[test]
    fn to_f64_small_values_exact() {
        for v in [-(1i64 << 52), -97, 0, 1, 1 << 52] {
            assert_eq!(b(v).to_f64(), v as f64);
        }
        let huge: BigInt = "1000000000000000000000000000000".parse().unwrap();
        let f = huge.to_f64();
        assert!((f - 1e30).abs() / 1e30 < 1e-9);
    }

    #[test]
    fn truncated_division_signs() {
        assert_eq!(b(-7).div_rem(&b(2)), (b(-3), b(-1)));
        assert_eq!(b(7).div_rem(&b(-2)), (b(-3), b(1)));
        assert_eq!(b(-7).div_rem(&b(-2)), (b(3), b(-1)));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = b(1).div_rem(&BigInt::zero());
    }
}
