//! Property-based tests for the exact arithmetic stack: `Rat` must be
//! an ordered field in the literal algebraic sense (laws hold as exact
//! equalities, not up to tolerance), `BigInt`/`Rat` canonical forms
//! must be unique, and the decimal text representation must
//! round-trip. These are the laws every downstream exactness claim
//! (Gauss rank detection, simplex feasibility, oracle refutation)
//! silently leans on.

use cnash_exact::{BigInt, Rat};
use proptest::prelude::*;

/// An arbitrary rational with numerator and denominator drawn well past
/// the single-limb range, so limb-carry paths are exercised.
fn arb_rat() -> impl Strategy<Value = Rat> {
    (-3_000_000_000i64..3_000_000_000, 1i64..3_000_000_000)
        .prop_map(|(n, d)| Rat::new(BigInt::from(n), BigInt::from(d)))
}

/// A small rational whose `f64` image is exact (numerator and
/// denominator products stay far below 2^53).
fn arb_small_rat() -> impl Strategy<Value = Rat> {
    (-10_000i64..10_000, 1i64..10_000).prop_map(|(n, d)| Rat::from_ratio(n, d))
}

proptest! {
    /// Addition and multiplication are associative and commutative,
    /// and multiplication distributes over addition — exactly.
    #[test]
    fn field_laws_hold_exactly(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    /// Additive and multiplicative identities and inverses: `a − a = 0`
    /// and `a · a⁻¹ = 1` as exact equalities.
    #[test]
    fn inverses_cancel_exactly(a in arb_rat()) {
        prop_assert_eq!(&a + &Rat::zero(), a.clone());
        prop_assert_eq!(&a * &Rat::one(), a.clone());
        prop_assert_eq!(&a - &a, Rat::zero());
        if !a.is_zero() {
            prop_assert_eq!(&a * &a.recip(), Rat::one());
            prop_assert_eq!(&a / &a, Rat::one());
        }
    }

    /// Canonical form is unique: any numerator/denominator pair
    /// describing the same value normalizes to coprime terms with a
    /// positive denominator, so structural equality is value equality.
    #[test]
    fn gcd_normalization_is_canonical(
        n in -100_000i64..100_000,
        d in 1i64..100_000,
        scale in 1i64..10_000,
        sign in prop::sample::select(vec![1i64, -1]),
    ) {
        let plain = Rat::from_ratio(n, d);
        let scaled = Rat::new(
            BigInt::from(n * sign) * BigInt::from(scale),
            BigInt::from(d * sign) * BigInt::from(scale),
        );
        prop_assert_eq!(&plain, &scaled);
        // Canonical invariants: den > 0 and gcd(num, den) = 1.
        prop_assert!(!scaled.denom().is_negative() && !scaled.denom().is_zero());
        let g = scaled.numer().gcd(scaled.denom());
        prop_assert!(g == BigInt::one() || scaled.numer().is_zero());
    }

    /// The order is total and transitive, and is exactly the order of
    /// the rational values (cross-multiplication).
    #[test]
    fn order_is_total_and_transitive(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
        let mut v = [a.clone(), b.clone(), c.clone()];
        v.sort();
        prop_assert!(v[0] <= v[1] && v[1] <= v[2]);
        prop_assert!(v[0] <= v[2], "transitivity through the middle element");
        // Antisymmetry: mutual <= means equality.
        if a <= b && b <= a {
            prop_assert_eq!(&a, &b);
        }
        // Compatibility with addition: a <= b implies a + c <= b + c.
        if a <= b {
            prop_assert!(&a + &c <= &b + &c);
        }
    }

    /// On small values the exact order agrees with the `f64` order of
    /// the converted values (conversion is exact in this range, so the
    /// orders must coincide, not merely approximate each other).
    #[test]
    fn order_agrees_with_f64_on_small_values(a in arb_small_rat(), b in arb_small_rat()) {
        let (fa, fb) = (a.to_f64(), b.to_f64());
        prop_assert_eq!(a.cmp(&b), fa.partial_cmp(&fb).expect("finite"));
    }

    /// Every finite f64 converts exactly and converts back to itself.
    #[test]
    fn f64_round_trip(x in -1e12f64..1e12) {
        let q = Rat::from_f64(x).expect("finite");
        prop_assert_eq!(q.to_f64(), x);
    }

    /// `Display` → `FromStr` is the identity, and arithmetic commutes
    /// with the round-trip: parsing the printed operands and re-doing
    /// the sum/product gives the printed result.
    #[test]
    fn add_mul_round_trip_through_strings(a in arb_rat(), b in arb_rat()) {
        let reparse = |r: &Rat| r.to_string().parse::<Rat>().expect("display is parseable");
        prop_assert_eq!(reparse(&a), a.clone());
        let sum = &a + &b;
        let product = &a * &b;
        prop_assert_eq!(&reparse(&a) + &reparse(&b), reparse(&sum));
        prop_assert_eq!(&reparse(&a) * &reparse(&b), reparse(&product));
    }

    /// BigInt decimal printing round-trips and respects ordering.
    #[test]
    fn bigint_string_round_trip(n in -4_000_000_000_000i64..4_000_000_000_000, k in 0usize..5) {
        // Scale past the i64 range by repeated squaring-free shifts so
        // multi-limb printing paths run too.
        let mut big = BigInt::from(n);
        for _ in 0..k {
            big = &big * &BigInt::from(1_000_003i64);
        }
        let s = big.to_string();
        prop_assert_eq!(s.parse::<BigInt>().expect("printed form parses"), big);
    }
}
