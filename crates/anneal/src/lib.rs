//! The two-phase simulated-annealing logic of C-Nash (paper Sec. 3.4,
//! Algorithm 1) — substrate pieces.
//!
//! This crate contains the *algorithmic* half of the SA logic, independent
//! of the hardware model:
//!
//! * [`schedule`] — temperature decay laws `T = D(T)`,
//! * [`moves`] — the strategy-pair neighbourhood: each move transfers one
//!   `1/I` probability unit between two actions of one player, so the
//!   simplex constraints `Σp = Σq = 1` hold *exactly* at every iteration
//!   ("satisfied by circuits" in the paper's words),
//! * [`engine`] — a generic seeded Metropolis driver with best-so-far
//!   tracking, first-solution-hit recording (for time-to-solution) and an
//!   optional energy trace,
//! * [`delta`] — the incremental-evaluation subsystem: the
//!   [`delta::DeltaEnergy`] trait (`propose → commit/revert`), the
//!   matching driver [`delta::simulated_annealing_delta`], and the
//!   [`delta::PairwiseSum`] reduction tree that keeps incremental sums
//!   bit-identical to full re-evaluation.
//!
//! The hardware-in-the-loop objective (bi-crossbar + WTA) is composed on
//! top of this by `cnash-core`.
//!
//! # Example
//!
//! ```
//! use cnash_anneal::engine::{simulated_annealing, SaOptions};
//! use cnash_anneal::schedule::Schedule;
//!
//! // Minimise |x| over integer states with ±1 moves.
//! let opts = SaOptions {
//!     iterations: 2000,
//!     schedule: Schedule::geometric(5.0, 0.01),
//!     seed: 1,
//!     target_energy: Some(0.0),
//!     record_trace: false,
//!     record_hits: false,
//! };
//! let run = simulated_annealing(
//!     40i64,
//!     |&x| (x as f64).abs(),
//!     |&x, rng| if rand::RngExt::random::<bool>(rng) { x + 1 } else { x - 1 },
//!     &opts,
//! );
//! assert_eq!(run.best_state, 0);
//! assert!(run.first_hit.is_some());
//! ```

pub mod adaptive;
pub mod delta;
pub mod engine;
pub mod moves;
pub mod schedule;
pub mod tempering;

pub use delta::{simulated_annealing_delta, DeltaEnergy, PairwiseSum};
pub use engine::{simulated_annealing, SaOptions, SaRun};
pub use moves::{GridStrategyPair, StrategyMove};
pub use schedule::Schedule;
