//! Generic seeded Metropolis/simulated-annealing driver (Algorithm 1).
//!
//! The driver is generic over the state type and the (possibly
//! hardware-in-the-loop) energy function; C-Nash instantiates it with
//! [`crate::moves::GridStrategyPair`] states whose energy is the
//! bi-crossbar + WTA evaluation of Eq. 9.

use crate::schedule::Schedule;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Options of one SA run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaOptions {
    /// Iteration budget (Algorithm 1 loops until `T < T_min`; with a
    /// schedule over a fixed budget the two formulations coincide).
    pub iterations: usize,
    /// Cooling schedule.
    pub schedule: Schedule,
    /// RNG seed (runs are fully reproducible).
    pub seed: u64,
    /// If set, record the first iteration whose energy is `≤ target`
    /// (used for time-to-solution) — the run still continues to the full
    /// budget, tracking the best state.
    pub target_energy: Option<f64>,
    /// Record the per-iteration energy trace (costs memory).
    pub record_trace: bool,
    /// Record every *distinct* visited state whose energy is `≤ target`
    /// (capped at [`MAX_HIT_STATES`]). C-Nash's SA logic logs each zero-
    /// objective state it passes through, which is how one run can report
    /// several equilibria (paper Fig. 9).
    pub record_hits: bool,
}

/// Cap on recorded hit states per run.
pub const MAX_HIT_STATES: usize = 64;

/// Capped recorder of *distinct* solution-hit states, shared by every
/// driver that logs hits (full/delta SA, tempering, the D-Wave
/// baseline): dedups against what it already holds, keeps at most
/// [`MAX_HIT_STATES`] states, and raises `truncated` when a distinct
/// state is dropped at the cap. Centralising this keeps the full and
/// delta drivers bitwise in lockstep and the `truncated` lower-bound
/// semantics uniform.
#[derive(Debug, Clone)]
pub struct HitRecorder<S> {
    enabled: bool,
    states: Vec<S>,
    truncated: bool,
}

impl<S: Clone + PartialEq> HitRecorder<S> {
    /// Creates a recorder; a disabled one ignores every record.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            states: Vec::new(),
            truncated: false,
        }
    }

    /// Records `state` if it is distinct and the cap allows; flags
    /// truncation otherwise.
    pub fn record(&mut self, state: &S) {
        if self.enabled && !self.states.contains(state) {
            if self.states.len() < MAX_HIT_STATES {
                self.states.push(state.clone());
            } else {
                self.truncated = true;
            }
        }
    }

    /// States recorded so far, in visit order.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Whether a distinct state was dropped at the cap.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Consumes the recorder into `(states, truncated)`.
    pub fn into_parts(self) -> (Vec<S>, bool) {
        (self.states, self.truncated)
    }
}

impl Default for SaOptions {
    fn default() -> Self {
        Self {
            iterations: 10_000,
            schedule: Schedule::default(),
            seed: 0,
            target_energy: None,
            record_trace: false,
            record_hits: false,
        }
    }
}

/// Result of one SA run.
#[derive(Debug, Clone, PartialEq)]
pub struct SaRun<S> {
    /// Best state encountered.
    pub best_state: S,
    /// Energy of the best state.
    pub best_energy: f64,
    /// Final accepted state when the schedule ran out (what Algorithm 1
    /// returns as its solution).
    pub final_state: S,
    /// Energy of the final state.
    pub final_energy: f64,
    /// Iteration (0-based) at which `target_energy` was first reached.
    pub first_hit: Option<usize>,
    /// Number of accepted proposals.
    pub accepted: usize,
    /// Iterations executed.
    pub iterations: usize,
    /// Energy trace (empty unless `record_trace`).
    pub trace: Vec<f64>,
    /// Distinct states visited with energy `≤ target_energy` (empty
    /// unless `record_hits`), in visit order.
    pub hit_states: Vec<S>,
    /// `true` if at least one distinct hit state was dropped because the
    /// [`MAX_HIT_STATES`] cap was reached — `hit_states` is then a strict
    /// prefix of the run's discoveries, and coverage statistics built on
    /// it undercount.
    pub hits_truncated: bool,
}

impl<S> SaRun<S> {
    /// Acceptance ratio over the run.
    pub fn acceptance_ratio(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.accepted as f64 / self.iterations as f64
        }
    }
}

/// Runs simulated annealing from `init`, proposing `neighbour` moves with
/// Metropolis acceptance at the scheduled temperature (Algorithm 1).
///
/// `energy` may be stateful (hardware in the loop); it is invoked once for
/// the initial state and once per proposal.
///
/// Telemetry: run aggregates land in [`cnash_telemetry::hot`] once at
/// the end of the run, and an energy sample is pushed to
/// `hot::SA_TRACE` every `hot::sa_trace_interval()`-th iteration (the
/// interval is read once, at run start). Neither touches the RNG or
/// any decision, so the walk — and the returned [`SaRun`] — is
/// bit-identical with telemetry on or off.
pub fn simulated_annealing<S: Clone + PartialEq>(
    init: S,
    mut energy: impl FnMut(&S) -> f64,
    mut neighbour: impl FnMut(&S, &mut StdRng) -> S,
    opts: &SaOptions,
) -> SaRun<S> {
    let trace_every = cnash_telemetry::hot::sa_trace_interval();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut current = init;
    let mut current_energy = energy(&current);
    let mut best_state = current.clone();
    let mut best_energy = current_energy;
    let mut first_hit = None;
    let mut accepted = 0;
    let mut trace = Vec::new();
    let mut hits = HitRecorder::new(opts.record_hits);

    let hit = |e: f64| opts.target_energy.is_some_and(|t| e <= t);
    if hit(current_energy) {
        first_hit = Some(0);
        hits.record(&current);
    }

    for iter in 0..opts.iterations {
        let temp = opts.schedule.temperature(iter, opts.iterations);
        let candidate = neighbour(&current, &mut rng);
        let cand_energy = energy(&candidate);
        let delta = cand_energy - current_energy;
        // Algorithm 1 lines 9–13: accept improvements, else with
        // probability e^{−ΔE/T}.
        if delta <= 0.0 || rng.random::<f64>() < (-delta / temp).exp() {
            current = candidate;
            current_energy = cand_energy;
            accepted += 1;
            if current_energy < best_energy {
                best_energy = current_energy;
                best_state = current.clone();
            }
            if hit(current_energy) {
                if first_hit.is_none() {
                    first_hit = Some(iter + 1);
                }
                hits.record(&current);
            }
        }
        if opts.record_trace {
            trace.push(current_energy);
        }
        if trace_every != 0 && (iter + 1) % trace_every as usize == 0 {
            cnash_telemetry::hot::SA_TRACE.push(
                "sa_energy",
                format!(
                    "seed={} iter={} energy={}",
                    opts.seed,
                    iter + 1,
                    current_energy
                ),
            );
        }
    }

    cnash_telemetry::hot::SA_RUNS.inc();
    cnash_telemetry::hot::SA_SWEEPS.add(opts.iterations as u64);
    cnash_telemetry::hot::SA_ACCEPTS.add(accepted as u64);

    let (hit_states, hits_truncated) = hits.into_parts();
    SaRun {
        best_state,
        best_energy,
        final_state: current,
        final_energy: current_energy,
        first_hit,
        accepted,
        iterations: opts.iterations,
        trace,
        hit_states,
        hits_truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_opts(seed: u64) -> SaOptions {
        SaOptions {
            iterations: 5000,
            schedule: Schedule::geometric(10.0, 1e-3),
            seed,
            target_energy: Some(0.0),
            record_trace: false,
            record_hits: false,
        }
    }

    fn run_quadratic(seed: u64) -> SaRun<i64> {
        simulated_annealing(
            50i64,
            |&x| (x * x) as f64,
            |&x, rng| if rng.random::<bool>() { x + 1 } else { x - 1 },
            &quadratic_opts(seed),
        )
    }

    #[test]
    fn minimises_quadratic() {
        let run = run_quadratic(1);
        assert_eq!(run.best_state, 0);
        assert_eq!(run.best_energy, 0.0);
        assert!(run.first_hit.is_some());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_quadratic(7);
        let b = run_quadratic(7);
        assert_eq!(a.best_state, b.best_state);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.first_hit, b.first_hit);
    }

    #[test]
    fn first_hit_recorded_at_start_if_initial_state_hits() {
        let opts = SaOptions {
            target_energy: Some(1e9),
            iterations: 1,
            ..SaOptions::default()
        };
        let run = simulated_annealing(0i64, |&x| x as f64, |&x, _| x, &opts);
        assert_eq!(run.first_hit, Some(0));
    }

    #[test]
    fn no_target_means_no_hit() {
        let opts = SaOptions {
            iterations: 100,
            target_energy: None,
            ..SaOptions::default()
        };
        let run = simulated_annealing(
            5i64,
            |&x| (x * x) as f64,
            |&x, rng| if rng.random::<bool>() { x + 1 } else { x - 1 },
            &opts,
        );
        assert_eq!(run.first_hit, None);
    }

    #[test]
    fn trace_recorded_when_requested() {
        let opts = SaOptions {
            iterations: 50,
            record_trace: true,
            ..SaOptions::default()
        };
        let run = simulated_annealing(
            10i64,
            |&x| (x * x) as f64,
            |&x, rng| if rng.random::<bool>() { x + 1 } else { x - 1 },
            &opts,
        );
        assert_eq!(run.trace.len(), 50);
    }

    #[test]
    fn hit_truncation_is_flagged() {
        // A deterministic downhill walk through > MAX_HIT_STATES distinct
        // states, all under the target: the cap must trip the flag.
        let opts = SaOptions {
            iterations: MAX_HIT_STATES + 20,
            target_energy: Some(0.0),
            record_hits: true,
            ..SaOptions::default()
        };
        let run = simulated_annealing(0i64, |&x| -(x as f64), |&x, _| x + 1, &opts);
        assert_eq!(run.hit_states.len(), MAX_HIT_STATES);
        assert!(run.hits_truncated);
        // Under the cap the flag stays clear.
        let short = SaOptions {
            iterations: 10,
            ..opts
        };
        let run = simulated_annealing(0i64, |&x| -(x as f64), |&x, _| x + 1, &short);
        assert!(!run.hits_truncated);
        assert_eq!(run.hit_states.len(), 11);
    }

    #[test]
    fn acceptance_ratio_bounds() {
        let run = run_quadratic(3);
        let r = run.acceptance_ratio();
        assert!(r > 0.0 && r <= 1.0);
    }

    #[test]
    fn high_constant_temperature_accepts_more() {
        let hot = SaOptions {
            iterations: 2000,
            schedule: Schedule::constant(1e6),
            seed: 5,
            target_energy: None,
            record_trace: false,
            record_hits: false,
        };
        let cold = SaOptions {
            schedule: Schedule::constant(1e-9),
            ..hot
        };
        let e = |x: &i64| (x * x) as f64;
        let m = |x: &i64, rng: &mut StdRng| if rng.random::<bool>() { x + 1 } else { x - 1 };
        let hot_run = simulated_annealing(100i64, e, m, &hot);
        let cold_run = simulated_annealing(100i64, e, m, &cold);
        assert!(hot_run.accepted > cold_run.accepted);
    }

    #[test]
    fn best_energy_never_worse_than_initial() {
        for seed in 0..10 {
            let run = run_quadratic(seed);
            assert!(run.best_energy <= 2500.0);
        }
    }
}
