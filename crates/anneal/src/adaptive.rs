//! Acceptance-targeted adaptive cooling (extension).
//!
//! Fixed geometric schedules need per-problem tuning (the paper uses
//! different iteration budgets per game). An adaptive controller instead
//! regulates temperature to track a *target acceptance ratio* that decays
//! over the run — hot enough to move early, cold enough to settle late —
//! with no per-game constants. This is the classic Lam–Delosme idea in a
//! simple proportional form.

/// Proportional acceptance-ratio temperature controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveSchedule {
    /// Initial temperature.
    pub t_init: f64,
    /// Acceptance ratio targeted at the start of the run.
    pub accept_start: f64,
    /// Acceptance ratio targeted at the end of the run.
    pub accept_end: f64,
    /// Multiplicative adjustment step per window (e.g. 1.05).
    pub gain: f64,
    /// Observation window (moves per adjustment).
    pub window: usize,
}

impl Default for AdaptiveSchedule {
    fn default() -> Self {
        Self {
            t_init: 1.0,
            accept_start: 0.8,
            accept_end: 0.02,
            gain: 1.1,
            window: 50,
        }
    }
}

/// Stateful controller driving one run.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveController {
    config: AdaptiveSchedule,
    temperature: f64,
    accepted_in_window: usize,
    moves_in_window: usize,
    adjustments: usize,
}

impl AdaptiveController {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics on non-positive temperature/gain ≤ 1/zero window, or
    /// acceptance targets outside `(0, 1)`.
    pub fn new(config: AdaptiveSchedule) -> Self {
        assert!(config.t_init > 0.0, "temperature must be positive");
        assert!(config.gain > 1.0, "gain must exceed 1");
        assert!(config.window > 0, "window must be positive");
        assert!(
            (0.0..=1.0).contains(&config.accept_start) && (0.0..=1.0).contains(&config.accept_end),
            "acceptance targets in [0, 1]"
        );
        Self {
            config,
            temperature: config.t_init,
            accepted_in_window: 0,
            moves_in_window: 0,
            adjustments: 0,
        }
    }

    /// Current temperature.
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Target acceptance ratio at run progress `frac ∈ [0, 1]`
    /// (geometric interpolation).
    pub fn target(&self, frac: f64) -> f64 {
        let f = frac.clamp(0.0, 1.0);
        self.config.accept_start * (self.config.accept_end / self.config.accept_start).powf(f)
    }

    /// Records one proposal outcome at run progress `frac` and adjusts
    /// the temperature at window boundaries: too many acceptances ⇒
    /// cool, too few ⇒ heat.
    pub fn record(&mut self, accepted: bool, frac: f64) {
        self.moves_in_window += 1;
        if accepted {
            self.accepted_in_window += 1;
        }
        if self.moves_in_window >= self.config.window {
            let ratio = self.accepted_in_window as f64 / self.moves_in_window as f64;
            let target = self.target(frac);
            if ratio > target {
                self.temperature /= self.config.gain;
            } else {
                self.temperature *= self.config.gain;
            }
            self.temperature = self.temperature.clamp(1e-12, 1e12);
            self.moves_in_window = 0;
            self.accepted_in_window = 0;
            self.adjustments += 1;
        }
    }

    /// Number of adjustments made so far.
    pub fn adjustments(&self) -> usize {
        self.adjustments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn target_interpolates_geometrically() {
        let c = AdaptiveController::new(AdaptiveSchedule::default());
        assert!((c.target(0.0) - 0.8).abs() < 1e-12);
        assert!((c.target(1.0) - 0.02).abs() < 1e-12);
        let mid = c.target(0.5);
        assert!((mid - (0.8f64 * 0.02).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cools_when_everything_accepts() {
        let mut c = AdaptiveController::new(AdaptiveSchedule::default());
        let t0 = c.temperature();
        for _ in 0..500 {
            c.record(true, 0.5);
        }
        assert!(c.temperature() < t0, "should cool under 100% acceptance");
        assert!(c.adjustments() == 10);
    }

    #[test]
    fn heats_when_everything_rejects() {
        let mut c = AdaptiveController::new(AdaptiveSchedule::default());
        let t0 = c.temperature();
        for _ in 0..500 {
            c.record(false, 0.2);
        }
        assert!(c.temperature() > t0, "should heat under 0% acceptance");
    }

    #[test]
    fn regulates_acceptance_on_a_real_walk() {
        // Metropolis walk on |x| with adaptive control: over the middle
        // of the run the realised acceptance should sit near the target.
        let mut c = AdaptiveController::new(AdaptiveSchedule {
            t_init: 50.0,
            ..AdaptiveSchedule::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let mut x: i64 = 50;
        let total = 20_000;
        let mut mid_accepts = 0;
        let mut mid_moves = 0;
        for k in 0..total {
            let frac = k as f64 / total as f64;
            let cand = if rng.random::<bool>() { x + 1 } else { x - 1 };
            let delta = (cand.abs() - x.abs()) as f64;
            let accept = delta <= 0.0 || rng.random::<f64>() < (-delta / c.temperature()).exp();
            if accept {
                x = cand;
            }
            c.record(accept, frac);
            if (0.4..0.6).contains(&frac) {
                mid_moves += 1;
                if accept {
                    mid_accepts += 1;
                }
            }
        }
        let realised = mid_accepts as f64 / mid_moves as f64;
        let target = c.target(0.5);
        assert!(
            (realised - target).abs() < 0.15,
            "realised {realised:.3} vs target {target:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "gain must exceed 1")]
    fn rejects_bad_gain() {
        let _ = AdaptiveController::new(AdaptiveSchedule {
            gain: 1.0,
            ..AdaptiveSchedule::default()
        });
    }

    #[test]
    fn temperature_stays_clamped() {
        let mut c = AdaptiveController::new(AdaptiveSchedule::default());
        for _ in 0..1_000_000 {
            c.record(true, 1.0);
        }
        assert!(c.temperature() >= 1e-12);
    }
}
