//! Temperature schedules (`T = D(T)` of Algorithm 1, line 14).

/// A cooling schedule mapping iteration progress to temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// Geometric decay from `t_max` to `t_min` (the classic SA choice).
    Geometric {
        /// Starting temperature.
        t_max: f64,
        /// Final temperature.
        t_min: f64,
    },
    /// Linear interpolation from `t_max` down to `t_min`.
    Linear {
        /// Starting temperature.
        t_max: f64,
        /// Final temperature.
        t_min: f64,
    },
    /// Constant temperature (Metropolis sampling; useful for ablations).
    Constant {
        /// The fixed temperature.
        t: f64,
    },
}

impl Schedule {
    /// Geometric schedule with validation.
    ///
    /// # Panics
    ///
    /// Panics unless `t_max ≥ t_min > 0`.
    pub fn geometric(t_max: f64, t_min: f64) -> Self {
        assert!(t_min > 0.0 && t_max >= t_min, "need t_max >= t_min > 0");
        Schedule::Geometric { t_max, t_min }
    }

    /// Linear schedule with validation.
    ///
    /// # Panics
    ///
    /// Panics unless `t_max ≥ t_min > 0`.
    pub fn linear(t_max: f64, t_min: f64) -> Self {
        assert!(t_min > 0.0 && t_max >= t_min, "need t_max >= t_min > 0");
        Schedule::Linear { t_max, t_min }
    }

    /// Constant schedule with validation.
    ///
    /// # Panics
    ///
    /// Panics unless `t > 0`.
    pub fn constant(t: f64) -> Self {
        assert!(t > 0.0, "temperature must be positive");
        Schedule::Constant { t }
    }

    /// Temperature at iteration `iter` of `total` (0-based; `total ≥ 1`).
    pub fn temperature(&self, iter: usize, total: usize) -> f64 {
        let frac = if total <= 1 {
            1.0
        } else {
            iter as f64 / (total - 1) as f64
        };
        match *self {
            Schedule::Geometric { t_max, t_min } => t_max * (t_min / t_max).powf(frac),
            Schedule::Linear { t_max, t_min } => t_max + (t_min - t_max) * frac,
            Schedule::Constant { t } => t,
        }
    }
}

impl Default for Schedule {
    /// A broadly useful geometric schedule.
    fn default() -> Self {
        Schedule::Geometric {
            t_max: 1.0,
            t_min: 1e-3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_endpoints() {
        let s = Schedule::geometric(10.0, 0.1);
        assert!((s.temperature(0, 100) - 10.0).abs() < 1e-12);
        assert!((s.temperature(99, 100) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn geometric_is_monotone_decreasing() {
        let s = Schedule::geometric(5.0, 0.05);
        let mut last = f64::INFINITY;
        for k in 0..50 {
            let t = s.temperature(k, 50);
            assert!(t < last);
            last = t;
        }
    }

    #[test]
    fn linear_midpoint() {
        let s = Schedule::linear(2.0, 1.0);
        assert!((s.temperature(50, 101) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn constant_is_constant() {
        let s = Schedule::constant(0.7);
        assert_eq!(s.temperature(0, 10), 0.7);
        assert_eq!(s.temperature(9, 10), 0.7);
    }

    #[test]
    fn single_iteration_uses_final_temperature() {
        let s = Schedule::geometric(10.0, 0.1);
        assert!((s.temperature(0, 1) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "t_max >= t_min")]
    fn rejects_inverted_range() {
        let _ = Schedule::geometric(0.1, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_constant() {
        let _ = Schedule::constant(0.0);
    }
}
