//! Incremental (delta) energy evaluation for the Metropolis driver.
//!
//! Algorithm 1 proposes *one* elementary move per iteration — a single
//! `1/I` unit transfer for strategy states, a single bit flip for QUBOs —
//! yet the straightforward driver re-evaluates the whole objective on
//! every proposal: `O(n·m)` work for an `O(1)` state change. The
//! [`DeltaEnergy`] trait inverts that: an evaluator keeps internal caches
//! keyed to the current state, a proposal updates only the cache regions
//! the move touches and returns the energy change, and rejected proposals
//! roll the caches back.
//!
//! Production implementations live next to the hardware models:
//!
//! * `cnash-crossbar`'s `DeltaBiCrossbar` caches the per-data-line
//!   accumulated currents of both arrays in [`PairwiseSum`] trees,
//! * `cnash-qubo`'s local-field annealer caches per-variable fields.
//!
//! # Bit-identical incrementality
//!
//! Floating-point addition is not associative, so "subtract the old term,
//! add the new one" drifts away from a from-scratch evaluation. Evaluators
//! that need *bit-identical* equivalence with full re-evaluation (the
//! contract the crossbar implementation provides and the property tests
//! pin) sum through [`PairwiseSum`]: a fixed-shape binary reduction tree
//! whose root is a pure function of the leaves, so updating a leaf and
//! re-reducing its path reproduces exactly the value a full rebuild
//! computes.

use crate::engine::{HitRecorder, SaOptions, SaRun};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// An incrementally evaluable objective for the Metropolis driver.
///
/// The evaluator owns the walk state. At most one proposal may be
/// outstanding: after [`propose`](DeltaEnergy::propose) the evaluator
/// *is* in the candidate state and must receive either
/// [`commit`](DeltaEnergy::commit) or [`revert`](DeltaEnergy::revert)
/// before the next proposal.
///
/// # Contract
///
/// * `propose(mv)` returns `E(after) − E(before)` where both energies are
///   the values [`energy`](DeltaEnergy::energy) would report — the driver
///   folds the delta into its bookkeeping, so a sloppy delta corrupts the
///   acceptance statistics.
/// * `revert` must restore `state()`, `energy()` and every internal cache
///   to exactly (bitwise) their pre-proposal values.
pub trait DeltaEnergy {
    /// The walk state (a strategy pair, a QUBO assignment, ...).
    type State: Clone + PartialEq;
    /// An elementary move between neighbouring states.
    type Move;

    /// The current state (the candidate while a proposal is pending).
    fn state(&self) -> &Self::State;

    /// Energy of the current state.
    fn energy(&self) -> f64;

    /// Samples a move from the current state's neighbourhood; `None` when
    /// the state has no neighbours (degenerate instances).
    fn sample_move(&self, rng: &mut StdRng) -> Option<Self::Move>;

    /// Applies `mv` to the state and caches, returning the energy delta.
    fn propose(&mut self, mv: Self::Move) -> f64;

    /// Accepts the pending proposal.
    fn commit(&mut self);

    /// Rejects the pending proposal, restoring the pre-proposal state.
    fn revert(&mut self);
}

/// Runs simulated annealing through a [`DeltaEnergy`] evaluator instead
/// of a full re-evaluation per proposal (Algorithm 1, incremental form).
///
/// Acceptance logic, RNG consumption and hit/trace bookkeeping mirror
/// [`crate::engine::simulated_annealing`] exactly: an evaluator whose
/// deltas are bit-identical to full re-evaluation walks the same
/// trajectory as the full driver under the same seed.
pub fn simulated_annealing_delta<E: DeltaEnergy>(
    evaluator: &mut E,
    opts: &SaOptions,
) -> SaRun<E::State> {
    let trace_every = cnash_telemetry::hot::sa_trace_interval();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut current_energy = evaluator.energy();
    let mut best_state = evaluator.state().clone();
    let mut best_energy = current_energy;
    let mut first_hit = None;
    let mut accepted = 0;
    let mut trace = Vec::new();
    let mut hits = HitRecorder::new(opts.record_hits);

    let hit = |e: f64| opts.target_energy.is_some_and(|t| e <= t);
    if hit(current_energy) {
        first_hit = Some(0);
        hits.record(evaluator.state());
    }

    for iter in 0..opts.iterations {
        let temp = opts.schedule.temperature(iter, opts.iterations);
        // A state without neighbours proposes itself: delta 0, accepted —
        // the same no-op iteration the full driver executes.
        let (delta, pending) = match evaluator.sample_move(&mut rng) {
            Some(mv) => (evaluator.propose(mv), true),
            None => (0.0, false),
        };
        if delta <= 0.0 || rng.random::<f64>() < (-delta / temp).exp() {
            if pending {
                evaluator.commit();
            }
            current_energy = evaluator.energy();
            accepted += 1;
            if current_energy < best_energy {
                best_energy = current_energy;
                best_state = evaluator.state().clone();
            }
            if hit(current_energy) {
                if first_hit.is_none() {
                    first_hit = Some(iter + 1);
                }
                hits.record(evaluator.state());
            }
        } else if pending {
            evaluator.revert();
        }
        if opts.record_trace {
            trace.push(current_energy);
        }
        if trace_every != 0 && (iter + 1) % trace_every as usize == 0 {
            cnash_telemetry::hot::SA_TRACE.push(
                "sa_energy",
                format!(
                    "seed={} iter={} energy={}",
                    opts.seed,
                    iter + 1,
                    current_energy
                ),
            );
        }
    }

    // Same end-of-run aggregates as the full driver: telemetry reads
    // the walk, never steers it, keeping the two drivers in lockstep.
    cnash_telemetry::hot::SA_RUNS.inc();
    cnash_telemetry::hot::SA_SWEEPS.add(opts.iterations as u64);
    cnash_telemetry::hot::SA_ACCEPTS.add(accepted as u64);

    let (hit_states, hits_truncated) = hits.into_parts();
    SaRun {
        best_state,
        best_energy,
        final_state: evaluator.state().clone(),
        final_energy: current_energy,
        first_hit,
        accepted,
        iterations: opts.iterations,
        trace,
        hit_states,
        hits_truncated,
    }
}

/// A fixed-shape pairwise summation tree over `f64` terms with `O(log n)`
/// single-leaf updates.
///
/// The tree is an implicit perfect binary tree padded with `0.0` leaves;
/// every internal node is the sum of its two children. Because the
/// reduction shape depends only on the leaf count, the root is a pure
/// function of the leaf values: rebuilding from scratch and any sequence
/// of leaf updates arriving at the same leaves produce *bitwise* the same
/// root — the property incremental evaluators need to stay exactly in
/// sync with full evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct PairwiseSum {
    /// 1-indexed heap layout; `nodes[1]` is the root, leaves start at
    /// `cap`.
    nodes: Vec<f64>,
    cap: usize,
    len: usize,
}

impl PairwiseSum {
    /// Builds a tree over `terms` (any length, including 0).
    pub fn new(terms: &[f64]) -> Self {
        let len = terms.len();
        let cap = len.next_power_of_two().max(1);
        let mut nodes = vec![0.0; 2 * cap];
        nodes[cap..cap + len].copy_from_slice(terms);
        for i in (1..cap).rev() {
            nodes[i] = nodes[2 * i] + nodes[2 * i + 1];
        }
        Self { nodes, cap, len }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree holds no terms.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The current value of leaf `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn leaf(&self, i: usize) -> f64 {
        assert!(i < self.len, "leaf {i} out of range");
        self.nodes[self.cap + i]
    }

    /// Sets leaf `i` to `value` and re-reduces its root path, returning
    /// the previous leaf value (for undo logs).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn update(&mut self, i: usize, value: f64) -> f64 {
        assert!(i < self.len, "leaf {i} out of range");
        let mut node = self.cap + i;
        let old = self.nodes[node];
        self.nodes[node] = value;
        // Walk to the root keeping the fresh child value in a register;
        // the sibling is `node ^ 1`. IEEE-754 addition is commutative
        // (only association changes results), so `v + sibling` matches
        // the build pass's `left + right` bitwise for either child.
        let mut v = value;
        while node > 1 {
            v += self.nodes[node ^ 1];
            node /= 2;
            self.nodes[node] = v;
        }
        old
    }

    /// The pairwise sum of all leaves.
    pub fn total(&self) -> f64 {
        self.nodes[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;

    #[test]
    fn pairwise_sum_matches_rebuild_after_updates() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [0usize, 1, 2, 3, 7, 8, 9, 31, 100] {
            let mut terms: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
            let mut tree = PairwiseSum::new(&terms);
            assert_eq!(tree.total(), PairwiseSum::new(&terms).total());
            for _ in 0..50 {
                if n == 0 {
                    break;
                }
                let i = rng.random_range(0..n);
                let v = rng.random_range(-1.0..1.0);
                terms[i] = v;
                tree.update(i, v);
                // Bitwise equality with a from-scratch rebuild.
                assert_eq!(tree.total(), PairwiseSum::new(&terms).total());
            }
        }
    }

    #[test]
    fn pairwise_sum_update_returns_old_value_and_undoes() {
        let terms = [1.5, 2.5, 3.5];
        let mut tree = PairwiseSum::new(&terms);
        let before = tree.total();
        let old = tree.update(1, 9.0);
        assert_eq!(old, 2.5);
        assert_ne!(tree.total(), before);
        tree.update(1, old);
        assert_eq!(tree.total(), before);
        assert_eq!(tree.leaf(1), 2.5);
    }

    #[test]
    fn empty_tree_totals_zero() {
        let tree = PairwiseSum::new(&[]);
        assert!(tree.is_empty());
        assert_eq!(tree.total(), 0.0);
    }

    /// A revertible evaluator over integer states with energy `x²`.
    struct Quadratic {
        x: i64,
        pending: i64,
    }

    impl DeltaEnergy for Quadratic {
        type State = i64;
        type Move = i64;

        fn state(&self) -> &i64 {
            &self.x
        }

        fn energy(&self) -> f64 {
            (self.x * self.x) as f64
        }

        fn sample_move(&self, rng: &mut StdRng) -> Option<i64> {
            Some(if rng.random::<bool>() { 1 } else { -1 })
        }

        fn propose(&mut self, step: i64) -> f64 {
            let before = self.energy();
            self.x += step;
            self.pending = step;
            self.energy() - before
        }

        fn commit(&mut self) {
            self.pending = 0;
        }

        fn revert(&mut self) {
            self.x -= self.pending;
            self.pending = 0;
        }
    }

    #[test]
    fn delta_driver_matches_full_driver_bitwise() {
        // Integer energies are exact in f64, so the incremental deltas
        // equal full re-evaluation bitwise and the two drivers must walk
        // the same trajectory under the same seed.
        for seed in 0..20u64 {
            let opts = SaOptions {
                iterations: 2000,
                schedule: Schedule::geometric(10.0, 1e-3),
                seed,
                target_energy: Some(0.0),
                record_trace: true,
                record_hits: true,
            };
            let full = crate::engine::simulated_annealing(
                50i64,
                |&x| (x * x) as f64,
                |&x, rng| if rng.random::<bool>() { x + 1 } else { x - 1 },
                &opts,
            );
            let mut eval = Quadratic { x: 50, pending: 0 };
            let delta = simulated_annealing_delta(&mut eval, &opts);
            assert_eq!(full, delta);
        }
    }
}
