//! Parallel tempering / replica exchange (extension).
//!
//! The paper's future-work direction of improving SA convergence maps
//! naturally onto replica exchange: `K` replicas walk the same landscape
//! at a geometric ladder of constant temperatures; periodically, adjacent
//! replicas propose to swap states with the Metropolis exchange rule
//! `min(1, exp((1/T_i − 1/T_j)(E_i − E_j)))`. Cold replicas exploit, hot
//! replicas keep crossing barriers — useful on many-equilibria games
//! where plain SA freezes into one basin.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Options of a parallel-tempering run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemperingOptions {
    /// Number of replicas (temperature rungs).
    pub replicas: usize,
    /// Coldest temperature.
    pub t_cold: f64,
    /// Hottest temperature.
    pub t_hot: f64,
    /// Total sweeps; each sweep advances every replica one step.
    pub sweeps: usize,
    /// Propose swaps every `swap_interval` sweeps.
    pub swap_interval: usize,
    /// RNG seed.
    pub seed: u64,
    /// Record every distinct state whose energy is `≤ target` (any rung).
    pub target_energy: Option<f64>,
}

impl Default for TemperingOptions {
    fn default() -> Self {
        Self {
            replicas: 6,
            t_cold: 0.01,
            t_hot: 2.0,
            sweeps: 2000,
            swap_interval: 10,
            seed: 0,
            target_energy: None,
        }
    }
}

/// Result of a parallel-tempering run.
#[derive(Debug, Clone, PartialEq)]
pub struct TemperingRun<S> {
    /// Best state across all replicas.
    pub best_state: S,
    /// Best energy.
    pub best_energy: f64,
    /// Accepted replica swaps.
    pub swaps_accepted: usize,
    /// Proposed replica swaps.
    pub swaps_proposed: usize,
    /// Distinct states that hit the target energy (visit order, ≤ 64).
    pub hit_states: Vec<S>,
    /// `true` if a distinct hit state was dropped at the cap.
    pub hits_truncated: bool,
}

/// Runs replica-exchange Metropolis over the given energy/neighbour
/// functions.
///
/// # Panics
///
/// Panics if `replicas < 2`, `sweeps == 0`, `swap_interval == 0` or the
/// temperature ladder is invalid.
pub fn parallel_tempering<S: Clone + PartialEq>(
    init: S,
    mut energy: impl FnMut(&S) -> f64,
    mut neighbour: impl FnMut(&S, &mut StdRng) -> S,
    opts: &TemperingOptions,
) -> TemperingRun<S> {
    assert!(opts.replicas >= 2, "need at least two replicas");
    assert!(opts.sweeps > 0 && opts.swap_interval > 0, "bad budget");
    assert!(
        opts.t_cold > 0.0 && opts.t_hot >= opts.t_cold,
        "bad temperature ladder"
    );
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // Geometric temperature ladder, cold to hot.
    let k = opts.replicas;
    let temps: Vec<f64> = (0..k)
        .map(|i| {
            let frac = i as f64 / (k - 1) as f64;
            opts.t_cold * (opts.t_hot / opts.t_cold).powf(frac)
        })
        .collect();

    let mut states: Vec<S> = vec![init; k];
    let mut energies: Vec<f64> = states.iter().map(&mut energy).collect();
    let mut best_state = states[0].clone();
    let mut best_energy = energies[0];
    let mut swaps_accepted = 0;
    let mut swaps_proposed = 0;
    let mut hits = crate::engine::HitRecorder::new(true);

    let hit = |e: f64| opts.target_energy.is_some_and(|t| e <= t);
    for (s, &e) in states.iter().zip(&energies) {
        if hit(e) {
            hits.record(s);
        }
    }

    for sweep in 0..opts.sweeps {
        for r in 0..k {
            let cand = neighbour(&states[r], &mut rng);
            let e = energy(&cand);
            let delta = e - energies[r];
            if delta <= 0.0 || rng.random::<f64>() < (-delta / temps[r]).exp() {
                states[r] = cand;
                energies[r] = e;
                if e < best_energy {
                    best_energy = e;
                    best_state = states[r].clone();
                }
                if hit(e) {
                    hits.record(&states[r]);
                }
            }
        }
        if sweep % opts.swap_interval == opts.swap_interval - 1 {
            for r in 0..k - 1 {
                swaps_proposed += 1;
                let arg = (1.0 / temps[r] - 1.0 / temps[r + 1]) * (energies[r] - energies[r + 1]);
                if arg >= 0.0 || rng.random::<f64>() < arg.exp() {
                    states.swap(r, r + 1);
                    energies.swap(r, r + 1);
                    swaps_accepted += 1;
                }
            }
        }
    }

    cnash_telemetry::hot::SA_RUNS.inc();
    cnash_telemetry::hot::SA_SWEEPS.add((opts.sweeps * k) as u64);
    cnash_telemetry::hot::SA_SWAPS.add(swaps_accepted as u64);

    let (hit_states, hits_truncated) = hits.into_parts();
    TemperingRun {
        best_state,
        best_energy,
        swaps_accepted,
        swaps_proposed,
        hit_states,
        hits_truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Double-well landscape over integers: minima at ±20, barrier at 0.
    fn double_well(x: i64) -> f64 {
        let x = x as f64;
        // Quartic with minima at +-20 and a barrier of height 400 at 0.
        ((x * x - 400.0) / 40.0).powi(2)
    }

    fn step(x: &i64, rng: &mut StdRng) -> i64 {
        if rng.random::<bool>() {
            x + 1
        } else {
            x - 1
        }
    }

    #[test]
    fn finds_global_minimum_of_double_well() {
        let run = parallel_tempering(
            35i64,
            |&x| double_well(x),
            step,
            &TemperingOptions {
                sweeps: 3000,
                target_energy: Some(0.0),
                ..TemperingOptions::default()
            },
        );
        assert_eq!(run.best_energy, 0.0);
        assert!(run.best_state == 20 || run.best_state == -20);
    }

    #[test]
    fn crosses_barriers_to_find_both_minima() {
        // Plain cold dynamics starting at +35 only ever sees +20; the
        // tempered ensemble must record both wells among its hits.
        let run = parallel_tempering(
            35i64,
            |&x| double_well(x),
            step,
            &TemperingOptions {
                sweeps: 30_000,
                t_hot: 30.0,
                target_energy: Some(0.0),
                seed: 3,
                ..TemperingOptions::default()
            },
        );
        assert!(
            run.hit_states.contains(&20) && run.hit_states.contains(&-20),
            "hits: {:?}",
            run.hit_states
        );
    }

    #[test]
    fn swap_bookkeeping() {
        let run = parallel_tempering(
            5i64,
            |&x| (x * x) as f64,
            step,
            &TemperingOptions::default(),
        );
        assert!(run.swaps_proposed > 0);
        assert!(run.swaps_accepted <= run.swaps_proposed);
    }

    #[test]
    fn deterministic_per_seed() {
        let opts = TemperingOptions {
            seed: 9,
            ..TemperingOptions::default()
        };
        let a = parallel_tempering(7i64, |&x| (x * x) as f64, step, &opts);
        let b = parallel_tempering(7i64, |&x| (x * x) as f64, step, &opts);
        assert_eq!(a.best_state, b.best_state);
        assert_eq!(a.swaps_accepted, b.swaps_accepted);
    }

    #[test]
    #[should_panic(expected = "at least two replicas")]
    fn rejects_single_replica() {
        let _ = parallel_tempering(
            0i64,
            |&x| x as f64,
            step,
            &TemperingOptions {
                replicas: 1,
                ..TemperingOptions::default()
            },
        );
    }
}
