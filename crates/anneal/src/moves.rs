//! Simplex-grid strategy states and moves (Algorithm 1, line 6).
//!
//! A state is a pair of grid strategies: integer unit counts per action
//! summing to `I` for each player. The SA neighbourhood "randomly
//! increments/decrements action probabilities by the value of the
//! interval": one move transfers a single `1/I` unit from one action to
//! another of the same player, so `Σp = Σq = 1` is preserved *exactly* —
//! no renormalisation, no penalty terms.

use cnash_game::{GameError, MixedStrategy};
use rand::{Rng, RngExt};

/// One elementary SA move: transfer a single `1/I` probability unit from
/// action `from` to action `to` of one player. Moves are self-describing
/// and invertible, which is what lets incremental evaluators
/// ([`crate::delta::DeltaEnergy`]) update caches for exactly the touched
/// rows/columns instead of re-evaluating the whole state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrategyMove {
    /// `true` moves a row-player (`p`) unit, `false` a column-player (`q`)
    /// unit.
    pub row_player: bool,
    /// Donor action index (loses one unit; must hold at least one).
    pub from: usize,
    /// Recipient action index (gains one unit; distinct from `from`).
    pub to: usize,
}

impl StrategyMove {
    /// The inverse move (transfers the unit back).
    pub fn inverse(self) -> Self {
        Self {
            row_player: self.row_player,
            from: self.to,
            to: self.from,
        }
    }
}

/// A strategy pair on the `1/I` probability grid.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GridStrategyPair {
    intervals: u32,
    p: Vec<u32>,
    q: Vec<u32>,
}

impl GridStrategyPair {
    /// Creates a state from unit counts.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidStrategy`] if either count vector does
    /// not sum to `intervals` or is empty.
    pub fn new(p: Vec<u32>, q: Vec<u32>, intervals: u32) -> Result<Self, GameError> {
        // Reuse strategy validation for both sides.
        MixedStrategy::from_grid_counts(&p, intervals)?;
        MixedStrategy::from_grid_counts(&q, intervals)?;
        Ok(Self { intervals, p, q })
    }

    /// A deterministic starting state: all mass on action 0 for both
    /// players.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidStrategy`] for empty action sets or
    /// zero intervals.
    pub fn all_on_first(n: usize, m: usize, intervals: u32) -> Result<Self, GameError> {
        if n == 0 || m == 0 {
            return Err(GameError::InvalidStrategy("empty action set".into()));
        }
        let mut p = vec![0; n];
        p[0] = intervals;
        let mut q = vec![0; m];
        q[0] = intervals;
        Self::new(p, q, intervals)
    }

    /// A random grid state: units distributed uniformly at random.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidStrategy`] for empty action sets.
    pub fn random<R: Rng + ?Sized>(
        n: usize,
        m: usize,
        intervals: u32,
        rng: &mut R,
    ) -> Result<Self, GameError> {
        if n == 0 || m == 0 {
            return Err(GameError::InvalidStrategy("empty action set".into()));
        }
        let mut p = vec![0u32; n];
        for _ in 0..intervals {
            p[rng.random_range(0..n)] += 1;
        }
        let mut q = vec![0u32; m];
        for _ in 0..intervals {
            q[rng.random_range(0..m)] += 1;
        }
        Self::new(p, q, intervals)
    }

    /// Interval count `I`.
    pub fn intervals(&self) -> u32 {
        self.intervals
    }

    /// Row player's unit counts.
    pub fn p_counts(&self) -> &[u32] {
        &self.p
    }

    /// Column player's unit counts.
    pub fn q_counts(&self) -> &[u32] {
        &self.q
    }

    /// Row player's strategy as probabilities.
    pub fn p_strategy(&self) -> MixedStrategy {
        MixedStrategy::from_grid_counts(&self.p, self.intervals)
            .expect("invariant: counts sum to intervals")
    }

    /// Column player's strategy as probabilities.
    pub fn q_strategy(&self) -> MixedStrategy {
        MixedStrategy::from_grid_counts(&self.q, self.intervals)
            .expect("invariant: counts sum to intervals")
    }

    /// Samples one elementary move: a unit transfer between two distinct
    /// actions of a uniformly chosen player. Returns `None` when no move
    /// exists (single action per player).
    ///
    /// The RNG consumption is identical to [`GridStrategyPair::neighbour`]
    /// (which is sample + apply), so full-evaluation and incremental SA
    /// walks driven by the same seed propose the same move sequence.
    pub fn sample_move<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<StrategyMove> {
        let move_row = if self.p.len() > 1 && self.q.len() > 1 {
            rng.random::<bool>()
        } else {
            self.p.len() > 1
        };
        let counts = if move_row { &self.p } else { &self.q };
        if counts.len() <= 1 {
            return None;
        }
        // Donor: uniform among actions holding at least one unit (at most
        // `I` of them, counted without allocating).
        let donors = counts.iter().filter(|&&c| c > 0).count();
        let pick = rng.random_range(0..donors);
        let from = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .nth(pick)
            .expect("pick < donor count")
            .0;
        // Recipient: uniform among the other actions.
        let mut to = rng.random_range(0..counts.len() - 1);
        if to >= from {
            to += 1;
        }
        Some(StrategyMove {
            row_player: move_row,
            from,
            to,
        })
    }

    /// Applies a move in place.
    ///
    /// # Panics
    ///
    /// Panics if the move indices are out of range or the donor action
    /// holds no unit (the simplex invariant would break).
    pub fn apply(&mut self, mv: StrategyMove) {
        let counts = if mv.row_player {
            &mut self.p
        } else {
            &mut self.q
        };
        assert!(
            mv.from != mv.to && mv.from < counts.len() && mv.to < counts.len(),
            "move ({}, {}) out of range",
            mv.from,
            mv.to
        );
        assert!(
            counts[mv.from] > 0,
            "donor action {} holds no unit",
            mv.from
        );
        counts[mv.from] -= 1;
        counts[mv.to] += 1;
    }

    /// Undoes a previously applied move.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`GridStrategyPair::apply`].
    pub fn unapply(&mut self, mv: StrategyMove) {
        self.apply(mv.inverse());
    }

    /// Proposes a neighbour: transfers one unit between two distinct
    /// actions of a uniformly chosen player. With a single action per
    /// player no move exists and the state is returned unchanged.
    pub fn neighbour<R: Rng + ?Sized>(&self, rng: &mut R) -> Self {
        let mut next = self.clone();
        if let Some(mv) = self.sample_move(rng) {
            next.apply(mv);
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_validates_sums() {
        assert!(GridStrategyPair::new(vec![6, 6], vec![12, 0], 12).is_ok());
        assert!(GridStrategyPair::new(vec![6, 5], vec![12, 0], 12).is_err());
        assert!(GridStrategyPair::new(vec![], vec![12], 12).is_err());
    }

    #[test]
    fn all_on_first_state() {
        let s = GridStrategyPair::all_on_first(3, 2, 12).unwrap();
        assert_eq!(s.p_counts(), &[12, 0, 0]);
        assert_eq!(s.q_counts(), &[12, 0]);
        assert_eq!(s.p_strategy().prob(0), 1.0);
    }

    #[test]
    fn random_state_sums_to_intervals() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let s = GridStrategyPair::random(4, 5, 12, &mut rng).unwrap();
            assert_eq!(s.p_counts().iter().sum::<u32>(), 12);
            assert_eq!(s.q_counts().iter().sum::<u32>(), 12);
        }
    }

    #[test]
    fn neighbour_preserves_simplex_invariant() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = GridStrategyPair::random(3, 3, 12, &mut rng).unwrap();
        for _ in 0..1000 {
            s = s.neighbour(&mut rng);
            assert_eq!(s.p_counts().iter().sum::<u32>(), 12);
            assert_eq!(s.q_counts().iter().sum::<u32>(), 12);
        }
    }

    #[test]
    fn neighbour_moves_exactly_one_unit() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = GridStrategyPair::random(3, 3, 12, &mut rng).unwrap();
        let n = s.neighbour(&mut rng);
        let dp: i64 = s
            .p_counts()
            .iter()
            .zip(n.p_counts())
            .map(|(&a, &b)| (a as i64 - b as i64).abs())
            .sum();
        let dq: i64 = s
            .q_counts()
            .iter()
            .zip(n.q_counts())
            .map(|(&a, &b)| (a as i64 - b as i64).abs())
            .sum();
        // Exactly one player moved one unit between two actions.
        assert_eq!(dp + dq, 2, "move changed {dp}+{dq} units");
    }

    #[test]
    fn single_action_player_never_moves() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = GridStrategyPair::new(vec![12], vec![4, 8], 12).unwrap();
        for _ in 0..50 {
            let n = s.neighbour(&mut rng);
            assert_eq!(n.p_counts(), &[12]);
        }
    }

    #[test]
    fn degenerate_one_by_one_game_is_fixed_point() {
        let mut rng = StdRng::seed_from_u64(6);
        let s = GridStrategyPair::new(vec![12], vec![12], 12).unwrap();
        let n = s.neighbour(&mut rng);
        assert_eq!(n, s);
    }

    #[test]
    fn neighbourhood_is_reversible() {
        // If s' is a neighbour of s, then s is reachable back from s'
        // (same |move| structure) — needed for SA detailed balance.
        let mut rng = StdRng::seed_from_u64(8);
        let s = GridStrategyPair::random(3, 3, 6, &mut rng).unwrap();
        let n = s.neighbour(&mut rng);
        // Search: some neighbour of n equals s.
        let mut found = false;
        for _ in 0..2000 {
            if n.neighbour(&mut rng) == s {
                found = true;
                break;
            }
        }
        assert!(found || n == s);
    }

    #[test]
    fn sample_apply_matches_neighbour_rng_stream() {
        // `neighbour` is defined as sample + apply; both paths driven by
        // the same seed must produce identical states forever.
        let mut rng_a = StdRng::seed_from_u64(21);
        let mut rng_b = StdRng::seed_from_u64(21);
        let mut a = GridStrategyPair::random(4, 3, 12, &mut rng_a).unwrap();
        let mut b = a.clone();
        // Re-sync rng_b past the state-construction draws.
        let _ = GridStrategyPair::random(4, 3, 12, &mut rng_b).unwrap();
        for _ in 0..500 {
            a = a.neighbour(&mut rng_a);
            if let Some(mv) = b.sample_move(&mut rng_b) {
                b.apply(mv);
            }
            assert_eq!(a, b);
        }
    }

    #[test]
    fn unapply_restores_state() {
        let mut rng = StdRng::seed_from_u64(2);
        let original = GridStrategyPair::random(3, 4, 6, &mut rng).unwrap();
        let mut s = original.clone();
        let mut applied = Vec::new();
        for _ in 0..100 {
            if let Some(mv) = s.sample_move(&mut rng) {
                s.apply(mv);
                applied.push(mv);
            }
        }
        for mv in applied.into_iter().rev() {
            s.unapply(mv);
        }
        assert_eq!(s, original);
    }

    #[test]
    fn single_action_pair_samples_no_move() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = GridStrategyPair::new(vec![12], vec![12], 12).unwrap();
        assert_eq!(s.sample_move(&mut rng), None);
    }

    #[test]
    #[should_panic(expected = "holds no unit")]
    fn apply_rejects_empty_donor() {
        let mut s = GridStrategyPair::new(vec![12, 0], vec![6, 6], 12).unwrap();
        s.apply(StrategyMove {
            row_player: true,
            from: 1,
            to: 0,
        });
    }

    #[test]
    fn strategies_are_on_grid() {
        let mut rng = StdRng::seed_from_u64(10);
        let s = GridStrategyPair::random(5, 4, 12, &mut rng).unwrap();
        assert!(s.p_strategy().is_on_grid(12, 1e-12));
        assert!(s.q_strategy().is_on_grid(12, 1e-12));
    }
}
