//! Simplex-grid strategy states and moves (Algorithm 1, line 6).
//!
//! A state is a pair of grid strategies: integer unit counts per action
//! summing to `I` for each player. The SA neighbourhood "randomly
//! increments/decrements action probabilities by the value of the
//! interval": one move transfers a single `1/I` unit from one action to
//! another of the same player, so `Σp = Σq = 1` is preserved *exactly* —
//! no renormalisation, no penalty terms.

use cnash_game::{GameError, MixedStrategy};
use rand::{Rng, RngExt};

/// A strategy pair on the `1/I` probability grid.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GridStrategyPair {
    intervals: u32,
    p: Vec<u32>,
    q: Vec<u32>,
}

impl GridStrategyPair {
    /// Creates a state from unit counts.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidStrategy`] if either count vector does
    /// not sum to `intervals` or is empty.
    pub fn new(p: Vec<u32>, q: Vec<u32>, intervals: u32) -> Result<Self, GameError> {
        // Reuse strategy validation for both sides.
        MixedStrategy::from_grid_counts(&p, intervals)?;
        MixedStrategy::from_grid_counts(&q, intervals)?;
        Ok(Self { intervals, p, q })
    }

    /// A deterministic starting state: all mass on action 0 for both
    /// players.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidStrategy`] for empty action sets or
    /// zero intervals.
    pub fn all_on_first(n: usize, m: usize, intervals: u32) -> Result<Self, GameError> {
        if n == 0 || m == 0 {
            return Err(GameError::InvalidStrategy("empty action set".into()));
        }
        let mut p = vec![0; n];
        p[0] = intervals;
        let mut q = vec![0; m];
        q[0] = intervals;
        Self::new(p, q, intervals)
    }

    /// A random grid state: units distributed uniformly at random.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidStrategy`] for empty action sets.
    pub fn random<R: Rng + ?Sized>(
        n: usize,
        m: usize,
        intervals: u32,
        rng: &mut R,
    ) -> Result<Self, GameError> {
        if n == 0 || m == 0 {
            return Err(GameError::InvalidStrategy("empty action set".into()));
        }
        let mut p = vec![0u32; n];
        for _ in 0..intervals {
            p[rng.random_range(0..n)] += 1;
        }
        let mut q = vec![0u32; m];
        for _ in 0..intervals {
            q[rng.random_range(0..m)] += 1;
        }
        Self::new(p, q, intervals)
    }

    /// Interval count `I`.
    pub fn intervals(&self) -> u32 {
        self.intervals
    }

    /// Row player's unit counts.
    pub fn p_counts(&self) -> &[u32] {
        &self.p
    }

    /// Column player's unit counts.
    pub fn q_counts(&self) -> &[u32] {
        &self.q
    }

    /// Row player's strategy as probabilities.
    pub fn p_strategy(&self) -> MixedStrategy {
        MixedStrategy::from_grid_counts(&self.p, self.intervals)
            .expect("invariant: counts sum to intervals")
    }

    /// Column player's strategy as probabilities.
    pub fn q_strategy(&self) -> MixedStrategy {
        MixedStrategy::from_grid_counts(&self.q, self.intervals)
            .expect("invariant: counts sum to intervals")
    }

    /// Proposes a neighbour: transfers one unit between two distinct
    /// actions of a uniformly chosen player. With a single action per
    /// player no move exists and the state is returned unchanged.
    pub fn neighbour<R: Rng + ?Sized>(&self, rng: &mut R) -> Self {
        let mut next = self.clone();
        let move_row = if self.p.len() > 1 && self.q.len() > 1 {
            rng.random::<bool>()
        } else {
            self.p.len() > 1
        };
        let counts = if move_row { &mut next.p } else { &mut next.q };
        if counts.len() <= 1 {
            return next;
        }
        // Donor: uniform among actions holding at least one unit.
        let donors: Vec<usize> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| i)
            .collect();
        let from = donors[rng.random_range(0..donors.len())];
        // Recipient: uniform among the other actions.
        let mut to = rng.random_range(0..counts.len() - 1);
        if to >= from {
            to += 1;
        }
        counts[from] -= 1;
        counts[to] += 1;
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_validates_sums() {
        assert!(GridStrategyPair::new(vec![6, 6], vec![12, 0], 12).is_ok());
        assert!(GridStrategyPair::new(vec![6, 5], vec![12, 0], 12).is_err());
        assert!(GridStrategyPair::new(vec![], vec![12], 12).is_err());
    }

    #[test]
    fn all_on_first_state() {
        let s = GridStrategyPair::all_on_first(3, 2, 12).unwrap();
        assert_eq!(s.p_counts(), &[12, 0, 0]);
        assert_eq!(s.q_counts(), &[12, 0]);
        assert_eq!(s.p_strategy().prob(0), 1.0);
    }

    #[test]
    fn random_state_sums_to_intervals() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let s = GridStrategyPair::random(4, 5, 12, &mut rng).unwrap();
            assert_eq!(s.p_counts().iter().sum::<u32>(), 12);
            assert_eq!(s.q_counts().iter().sum::<u32>(), 12);
        }
    }

    #[test]
    fn neighbour_preserves_simplex_invariant() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = GridStrategyPair::random(3, 3, 12, &mut rng).unwrap();
        for _ in 0..1000 {
            s = s.neighbour(&mut rng);
            assert_eq!(s.p_counts().iter().sum::<u32>(), 12);
            assert_eq!(s.q_counts().iter().sum::<u32>(), 12);
        }
    }

    #[test]
    fn neighbour_moves_exactly_one_unit() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = GridStrategyPair::random(3, 3, 12, &mut rng).unwrap();
        let n = s.neighbour(&mut rng);
        let dp: i64 = s
            .p_counts()
            .iter()
            .zip(n.p_counts())
            .map(|(&a, &b)| (a as i64 - b as i64).abs())
            .sum();
        let dq: i64 = s
            .q_counts()
            .iter()
            .zip(n.q_counts())
            .map(|(&a, &b)| (a as i64 - b as i64).abs())
            .sum();
        // Exactly one player moved one unit between two actions.
        assert_eq!(dp + dq, 2, "move changed {dp}+{dq} units");
    }

    #[test]
    fn single_action_player_never_moves() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = GridStrategyPair::new(vec![12], vec![4, 8], 12).unwrap();
        for _ in 0..50 {
            let n = s.neighbour(&mut rng);
            assert_eq!(n.p_counts(), &[12]);
        }
    }

    #[test]
    fn degenerate_one_by_one_game_is_fixed_point() {
        let mut rng = StdRng::seed_from_u64(6);
        let s = GridStrategyPair::new(vec![12], vec![12], 12).unwrap();
        let n = s.neighbour(&mut rng);
        assert_eq!(n, s);
    }

    #[test]
    fn neighbourhood_is_reversible() {
        // If s' is a neighbour of s, then s is reachable back from s'
        // (same |move| structure) — needed for SA detailed balance.
        let mut rng = StdRng::seed_from_u64(8);
        let s = GridStrategyPair::random(3, 3, 6, &mut rng).unwrap();
        let n = s.neighbour(&mut rng);
        // Search: some neighbour of n equals s.
        let mut found = false;
        for _ in 0..2000 {
            if n.neighbour(&mut rng) == s {
                found = true;
                break;
            }
        }
        assert!(found || n == s);
    }

    #[test]
    fn strategies_are_on_grid() {
        let mut rng = StdRng::seed_from_u64(10);
        let s = GridStrategyPair::random(5, 4, 12, &mut rng).unwrap();
        assert!(s.p_strategy().is_on_grid(12, 1e-12));
        assert!(s.q_strategy().is_on_grid(12, 1e-12));
    }
}
