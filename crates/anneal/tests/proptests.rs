//! Property-based tests of the SA engine and grid moves.

use cnash_anneal::engine::{simulated_annealing, SaOptions};
use cnash_anneal::moves::GridStrategyPair;
use cnash_anneal::schedule::Schedule;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Schedules are monotone non-increasing and stay within
    /// [t_min, t_max] at every iteration.
    #[test]
    fn schedules_monotone_and_bounded(
        t_max in 0.1f64..100.0,
        ratio in 0.01f64..1.0,
        total in 2usize..500,
        geometric in prop::bool::ANY,
    ) {
        let t_min = t_max * ratio;
        let s = if geometric {
            Schedule::geometric(t_max, t_min)
        } else {
            Schedule::linear(t_max, t_min)
        };
        let mut last = f64::INFINITY;
        for k in 0..total {
            let t = s.temperature(k, total);
            prop_assert!(t <= last + 1e-12);
            prop_assert!(t >= t_min - 1e-9 && t <= t_max + 1e-9);
            last = t;
        }
    }

    /// Grid moves preserve the simplex invariant over arbitrarily long
    /// random walks, for any geometry.
    #[test]
    fn long_walks_preserve_simplex(
        n in 1usize..6,
        m in 1usize..6,
        intervals in 1u32..24,
        seed in 0u64..100,
        steps in 1usize..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = GridStrategyPair::random(n, m, intervals, &mut rng).expect("valid");
        for _ in 0..steps {
            s = s.neighbour(&mut rng);
            prop_assert_eq!(s.p_counts().iter().sum::<u32>(), intervals);
            prop_assert_eq!(s.q_counts().iter().sum::<u32>(), intervals);
        }
    }

    /// The engine's best energy never exceeds the initial energy and the
    /// reported hit iteration is consistent with the target.
    #[test]
    fn engine_invariants(seed in 0u64..100, start in -50i64..50) {
        let opts = SaOptions {
            iterations: 500,
            schedule: Schedule::geometric(5.0, 0.01),
            seed,
            target_energy: Some(4.0),
            record_trace: true,
            record_hits: true,
        };
        let run = simulated_annealing(
            start,
            |&x| (x as f64).abs(),
            |&x, rng| if rand::RngExt::random::<bool>(rng) { x + 1 } else { x - 1 },
            &opts,
        );
        prop_assert!(run.best_energy <= (start as f64).abs() + 1e-12);
        prop_assert_eq!(run.trace.len(), 500);
        if let Some(hit) = run.first_hit {
            prop_assert!(hit <= 500);
            // Every recorded hit state satisfies the target.
            for s in &run.hit_states {
                prop_assert!((*s as f64).abs() <= 4.0);
            }
            prop_assert!(!run.hit_states.is_empty());
        }
        // Final energy matches final state.
        prop_assert!(((run.final_state as f64).abs() - run.final_energy).abs() < 1e-12);
    }

    /// Hit states are distinct.
    #[test]
    fn hit_states_distinct(seed in 0u64..50) {
        let opts = SaOptions {
            iterations: 300,
            schedule: Schedule::constant(2.0),
            seed,
            target_energy: Some(3.0),
            record_trace: false,
            record_hits: true,
        };
        let run = simulated_annealing(
            10i64,
            |&x| (x as f64).abs(),
            |&x, rng| if rand::RngExt::random::<bool>(rng) { x + 1 } else { x - 1 },
            &opts,
        );
        for i in 0..run.hit_states.len() {
            for j in i + 1..run.hit_states.len() {
                prop_assert_ne!(run.hit_states[i], run.hit_states[j]);
            }
        }
    }
}
