//! Iterated elimination of strictly dominated strategies (extension).
//!
//! A strictly dominated action is never played in any Nash equilibrium,
//! so eliminating such actions *preserves the equilibrium set exactly*
//! (order-independent for strict dominance). For C-Nash this is a free
//! hardware win: the crossbar for the reduced game needs
//! `(I·n')×(I·t·m')` cells instead of `(I·n)×(I·t·m)` — on the 8-action
//! Modified Prisoner's Dilemma the four cooperate rows/columns vanish and
//! the array shrinks by 4×.
//!
//! Domination is checked against mixtures too (an action can be dominated
//! by a blend without being dominated by any single action); we test
//! domination by pure actions and by pairwise 50/50 blends, which is
//! exact for the benchmark games and conservative in general (we never
//! eliminate a non-dominated action).

use crate::bimatrix::BimatrixGame;
use crate::error::GameError;
use crate::matrix::Matrix;
use crate::strategy::MixedStrategy;

/// The reduced game plus the index maps back to the original actions.
#[derive(Debug, Clone, PartialEq)]
pub struct ReducedGame {
    /// The game over the surviving actions.
    pub game: BimatrixGame,
    /// Surviving row actions (original indices, ascending).
    pub row_map: Vec<usize>,
    /// Surviving column actions (original indices, ascending).
    pub col_map: Vec<usize>,
    /// Number of elimination rounds performed.
    pub rounds: usize,
}

impl ReducedGame {
    /// Lifts a strategy of the reduced game back to the original action
    /// space (eliminated actions get probability 0).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidStrategy`] on a length mismatch.
    pub fn lift_row(
        &self,
        p: &MixedStrategy,
        original_n: usize,
    ) -> Result<MixedStrategy, GameError> {
        lift(p, &self.row_map, original_n)
    }

    /// Lifts a column strategy back to the original action space.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidStrategy`] on a length mismatch.
    pub fn lift_col(
        &self,
        q: &MixedStrategy,
        original_m: usize,
    ) -> Result<MixedStrategy, GameError> {
        lift(q, &self.col_map, original_m)
    }
}

fn lift(s: &MixedStrategy, map: &[usize], original: usize) -> Result<MixedStrategy, GameError> {
    if s.len() != map.len() {
        return Err(GameError::InvalidStrategy(format!(
            "strategy over {} actions does not match the {}-action reduction",
            s.len(),
            map.len()
        )));
    }
    let mut probs = vec![0.0; original];
    for (k, &orig) in map.iter().enumerate() {
        probs[orig] = s.prob(k);
    }
    MixedStrategy::new(probs)
}

/// Iteratively eliminates strictly dominated actions of both players
/// until a fixed point.
///
/// # Errors
///
/// Propagates matrix construction errors (cannot occur for valid games).
pub fn eliminate_dominated(game: &BimatrixGame) -> Result<ReducedGame, GameError> {
    let mut row_map: Vec<usize> = (0..game.row_actions()).collect();
    let mut col_map: Vec<usize> = (0..game.col_actions()).collect();
    let mut rounds = 0;

    loop {
        let m = submatrix(game.row_payoffs(), &row_map, &col_map)?;
        let n = submatrix(game.col_payoffs(), &row_map, &col_map)?;

        let dominated_rows = dominated_actions(&m, false);
        // Column player's actions are the columns of N.
        let dominated_cols = dominated_actions(&n.transposed(), false);

        if dominated_rows.is_empty() && dominated_cols.is_empty() {
            let game = BimatrixGame::new(format!("{} (reduced)", game.name()), m, n)?;
            return Ok(ReducedGame {
                game,
                row_map,
                col_map,
                rounds,
            });
        }
        rounds += 1;
        row_map = row_map
            .iter()
            .enumerate()
            .filter(|(k, _)| !dominated_rows.contains(k))
            .map(|(_, &v)| v)
            .collect();
        col_map = col_map
            .iter()
            .enumerate()
            .filter(|(k, _)| !dominated_cols.contains(k))
            .map(|(_, &v)| v)
            .collect();
        if row_map.is_empty() || col_map.is_empty() {
            return Err(GameError::InvalidParameter(
                "elimination removed all actions (non-strict dominance bug)".into(),
            ));
        }
    }
}

fn submatrix(m: &Matrix, rows: &[usize], cols: &[usize]) -> Result<Matrix, GameError> {
    let data: Vec<f64> = rows
        .iter()
        .flat_map(|&i| cols.iter().map(move |&j| m[(i, j)]))
        .collect();
    Matrix::new(rows.len(), cols.len(), data)
}

/// Actions of the row player (rows of `m`) strictly dominated by another
/// pure action or by a 50/50 blend of two other actions. With
/// `weak = true`, weak dominance would be used (not exposed: it can
/// delete equilibria).
fn dominated_actions(m: &Matrix, weak: bool) -> Vec<usize> {
    let n = m.rows();
    let cols = m.cols();
    let mut out = Vec::new();
    'candidate: for i in 0..n {
        // Pure dominators.
        for d in 0..n {
            if d != i && dominates(&pure_row(m, d), m.row(i), weak) {
                out.push(i);
                continue 'candidate;
            }
        }
        // 50/50 blends of two other actions.
        for a in 0..n {
            for b in a + 1..n {
                if a == i || b == i {
                    continue;
                }
                let blend: Vec<f64> = (0..cols).map(|j| 0.5 * (m[(a, j)] + m[(b, j)])).collect();
                if dominates(&blend, m.row(i), weak) {
                    out.push(i);
                    continue 'candidate;
                }
            }
        }
    }
    out
}

fn pure_row(m: &Matrix, i: usize) -> Vec<f64> {
    m.row(i).to_vec()
}

fn dominates(a: &[f64], b: &[f64], weak: bool) -> bool {
    if weak {
        a.iter().zip(b).all(|(x, y)| x >= y) && a.iter().zip(b).any(|(x, y)| x > y)
    } else {
        a.iter().zip(b).all(|(x, y)| *x > y + 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games;
    use crate::support_enum::enumerate_equilibria;

    #[test]
    fn prisoners_dilemma_reduces_to_defect() {
        let g = games::prisoners_dilemma();
        let r = eliminate_dominated(&g).unwrap();
        assert_eq!(r.row_map, vec![1]);
        assert_eq!(r.col_map, vec![1]);
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn mpd8_reduces_to_defect_block() {
        let g = games::modified_prisoners_dilemma();
        let r = eliminate_dominated(&g).unwrap();
        assert_eq!(r.row_map, vec![4, 5, 6, 7], "cooperate variants eliminated");
        assert_eq!(r.col_map, vec![4, 5, 6, 7]);
        assert_eq!(r.game.row_actions(), 4);
    }

    #[test]
    fn reduction_preserves_equilibrium_count() {
        let g = games::modified_prisoners_dilemma();
        let r = eliminate_dominated(&g).unwrap();
        let full = enumerate_equilibria(&g, 1e-9);
        let reduced = enumerate_equilibria(&r.game, 1e-9);
        assert_eq!(full.len(), reduced.len());
        // Every lifted reduced equilibrium is an equilibrium of the full
        // game.
        for e in &reduced {
            let p = r.lift_row(&e.row, 8).unwrap();
            let q = r.lift_col(&e.col, 8).unwrap();
            assert!(g.is_equilibrium(&p, &q, 1e-7));
        }
    }

    #[test]
    fn games_without_dominance_are_untouched() {
        for g in [
            games::battle_of_the_sexes(),
            games::matching_pennies(),
            games::stag_hunt(),
        ] {
            let r = eliminate_dominated(&g).unwrap();
            assert_eq!(r.rounds, 0, "{}", g.name());
            assert_eq!(r.game.row_actions(), g.row_actions());
        }
    }

    #[test]
    fn bird_game_keeps_low_value_site() {
        // Site 2 (value 1) is not strictly dominated: it is the unique
        // best response to nothing, but anti-coordination keeps it alive
        // only if some mixture doesn't beat it. Verify elimination agrees
        // with the equilibrium support structure rather than guessing.
        let g = games::bird_game();
        let r = eliminate_dominated(&g).unwrap();
        let full = enumerate_equilibria(&g, 1e-9);
        let reduced = enumerate_equilibria(&r.game, 1e-9);
        assert_eq!(full.len(), reduced.len());
    }

    #[test]
    fn lift_validates_lengths() {
        let g = games::prisoners_dilemma();
        let r = eliminate_dominated(&g).unwrap();
        let bad = MixedStrategy::uniform(2).unwrap();
        assert!(r.lift_row(&bad, 2).is_err());
        let good = MixedStrategy::pure(1, 0).unwrap();
        let lifted = r.lift_row(&good, 2).unwrap();
        assert_eq!(lifted.probs(), &[0.0, 1.0]);
    }
}
