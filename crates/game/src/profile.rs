//! N-player strategy profiles.
//!
//! A [`Profile`] is one [`MixedStrategy`] per player, in player order.
//! It is the unit solvers exchange with the [`crate::Game`] trait:
//! bimatrix call sites view it as a `(row, col)` pair via
//! [`Profile::as_pair`] / [`Profile::into_pair`], while N-player games
//! index it by player.

use crate::error::GameError;
use crate::strategy::MixedStrategy;
use std::fmt;

/// One mixed strategy per player, in player order.
///
/// Invariant: a profile holds at least one strategy (a game has at
/// least one player), so `strategies()[0]` never panics.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    strategies: Vec<MixedStrategy>,
}

impl Profile {
    /// Builds a profile from per-player strategies.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] on an empty strategy
    /// list — a game has at least one player.
    pub fn new(strategies: Vec<MixedStrategy>) -> Result<Profile, GameError> {
        if strategies.is_empty() {
            return Err(GameError::InvalidParameter(
                "a profile needs at least one player".into(),
            ));
        }
        Ok(Profile { strategies })
    }

    /// Builds the two-player profile `(row, col)` — the bimatrix case.
    pub fn pair(row: MixedStrategy, col: MixedStrategy) -> Profile {
        Profile {
            strategies: vec![row, col],
        }
    }

    /// Number of players.
    pub fn players(&self) -> usize {
        self.strategies.len()
    }

    /// The strategy of `player`.
    ///
    /// # Panics
    ///
    /// Panics if `player >= self.players()`.
    pub fn strategy(&self, player: usize) -> &MixedStrategy {
        &self.strategies[player]
    }

    /// All strategies, in player order.
    pub fn strategies(&self) -> &[MixedStrategy] {
        &self.strategies
    }

    /// Two-player view as `(row, col)`; `None` unless exactly 2 players.
    pub fn as_pair(&self) -> Option<(&MixedStrategy, &MixedStrategy)> {
        match self.strategies.as_slice() {
            [row, col] => Some((row, col)),
            _ => None,
        }
    }

    /// Consumes the profile into `(row, col)`; `None` unless exactly
    /// 2 players.
    pub fn into_pair(self) -> Option<(MixedStrategy, MixedStrategy)> {
        let mut it = self.strategies.into_iter();
        match (it.next(), it.next(), it.next()) {
            (Some(row), Some(col), None) => Some((row, col)),
            _ => None,
        }
    }

    /// Largest per-player [`MixedStrategy::linf_distance`]; infinite if
    /// the player counts differ.
    pub fn linf_distance(&self, other: &Profile) -> f64 {
        if self.players() != other.players() {
            return f64::INFINITY;
        }
        self.strategies
            .iter()
            .zip(&other.strategies)
            .map(|(a, b)| a.linf_distance(b))
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for Profile {
    /// Renders as `[(0.5000, 0.5000), (1.0000, 0.0000)]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.strategies.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_round_trips_and_indexes() {
        let p = MixedStrategy::pure(2, 0).unwrap();
        let q = MixedStrategy::uniform(3).unwrap();
        let profile = Profile::pair(p.clone(), q.clone());
        assert_eq!(profile.players(), 2);
        assert_eq!(profile.strategy(0), &p);
        assert_eq!(profile.strategy(1), &q);
        let (a, b) = profile.as_pair().unwrap();
        assert_eq!((a, b), (&p, &q));
        let (a, b) = profile.clone().into_pair().unwrap();
        assert_eq!((a, b), (p, q));
    }

    #[test]
    fn non_pair_profiles_have_no_pair_view() {
        let s = MixedStrategy::uniform(2).unwrap();
        let one = Profile::new(vec![s.clone()]).unwrap();
        assert_eq!(one.players(), 1);
        assert!(one.as_pair().is_none());
        assert!(one.into_pair().is_none());
        let three = Profile::new(vec![s.clone(), s.clone(), s]).unwrap();
        assert!(three.as_pair().is_none());
        assert!(three.clone().into_pair().is_none());
        assert_eq!(three.strategies().len(), 3);
    }

    #[test]
    fn empty_profile_is_rejected() {
        assert!(Profile::new(Vec::new()).is_err());
    }

    #[test]
    fn linf_distance_folds_the_worst_player() {
        let a = Profile::pair(
            MixedStrategy::pure(2, 0).unwrap(),
            MixedStrategy::uniform(2).unwrap(),
        );
        let b = Profile::pair(
            MixedStrategy::pure(2, 0).unwrap(),
            MixedStrategy::pure(2, 0).unwrap(),
        );
        assert!((a.linf_distance(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.linf_distance(&a), 0.0);
        let one = Profile::new(vec![MixedStrategy::uniform(2).unwrap()]).unwrap();
        assert_eq!(a.linf_distance(&one), f64::INFINITY);
    }

    #[test]
    fn display_lists_all_players() {
        let profile = Profile::pair(
            MixedStrategy::uniform(2).unwrap(),
            MixedStrategy::pure(2, 1).unwrap(),
        );
        assert_eq!(profile.to_string(), "[(0.5000, 0.5000), (0.0000, 1.0000)]");
    }
}
