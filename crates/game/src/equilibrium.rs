//! Equilibrium records and solution classification.

use crate::bimatrix::BimatrixGame;
use crate::strategy::MixedStrategy;
use std::fmt;

/// Whether a strategy profile is pure or mixed (paper Sec. 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Both players choose a single action deterministically.
    Pure,
    /// At least one player randomizes over several actions.
    Mixed,
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategyKind::Pure => write!(f, "pure"),
            StrategyKind::Mixed => write!(f, "mixed"),
        }
    }
}

/// A (candidate) Nash equilibrium: a pair of strategies with its gap.
#[derive(Debug, Clone, PartialEq)]
pub struct Equilibrium {
    /// Row player's strategy `p*`.
    pub row: MixedStrategy,
    /// Column player's strategy `q*`.
    pub col: MixedStrategy,
    /// Nash gap `f(p,q)` of Eq. (9) at this profile (≈ 0 for true NE).
    pub gap: f64,
}

impl Equilibrium {
    /// Builds an equilibrium record, computing the Nash gap from the game.
    ///
    /// # Panics
    ///
    /// Panics if the strategy lengths do not match the game.
    pub fn from_profile(game: &BimatrixGame, row: MixedStrategy, col: MixedStrategy) -> Self {
        let gap = game
            .nash_gap(&row, &col)
            .expect("strategy lengths must match the game");
        Self { row, col, gap }
    }

    /// Classifies the profile as pure or mixed.
    pub fn kind(&self, tol: f64) -> StrategyKind {
        if self.row.is_pure(tol) && self.col.is_pure(tol) {
            StrategyKind::Pure
        } else {
            StrategyKind::Mixed
        }
    }

    /// `true` if this profile is the same equilibrium as `other` up to an
    /// `L∞` distance of `tol` on both players' strategies.
    pub fn same_profile(&self, other: &Equilibrium, tol: f64) -> bool {
        self.row.linf_distance(&other.row) <= tol && self.col.linf_distance(&other.col) <= tol
    }
}

impl fmt::Display for Equilibrium {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p*={}, q*={} (gap {:.2e})", self.row, self.col, self.gap)
    }
}

/// Deduplicates a list of equilibria with an `L∞` profile tolerance,
/// keeping the first representative of each cluster.
pub fn dedup_equilibria(mut eqs: Vec<Equilibrium>, tol: f64) -> Vec<Equilibrium> {
    let mut out: Vec<Equilibrium> = Vec::new();
    for eq in eqs.drain(..) {
        if !out.iter().any(|e| e.same_profile(&eq, tol)) {
            out.push(eq);
        }
    }
    out
}

/// Counts how many equilibria of `found` match some equilibrium of
/// `targets` (each target counted at most once).
pub fn coverage(found: &[Equilibrium], targets: &[Equilibrium], tol: f64) -> usize {
    targets
        .iter()
        .filter(|t| found.iter().any(|f| f.same_profile(t, tol)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games;

    #[test]
    fn kind_classification() {
        let g = games::battle_of_the_sexes();
        let pure = Equilibrium::from_profile(
            &g,
            MixedStrategy::pure(2, 0).unwrap(),
            MixedStrategy::pure(2, 0).unwrap(),
        );
        assert_eq!(pure.kind(1e-9), StrategyKind::Pure);

        let mixed = Equilibrium::from_profile(
            &g,
            MixedStrategy::new(vec![2.0 / 3.0, 1.0 / 3.0]).unwrap(),
            MixedStrategy::new(vec![1.0 / 3.0, 2.0 / 3.0]).unwrap(),
        );
        assert_eq!(mixed.kind(1e-9), StrategyKind::Mixed);
        assert!(mixed.gap.abs() < 1e-12);
    }

    #[test]
    fn same_profile_tolerance() {
        let g = games::battle_of_the_sexes();
        let a = Equilibrium::from_profile(
            &g,
            MixedStrategy::new(vec![0.5, 0.5]).unwrap(),
            MixedStrategy::new(vec![0.5, 0.5]).unwrap(),
        );
        let b = Equilibrium::from_profile(
            &g,
            MixedStrategy::new(vec![0.500001, 0.499999]).unwrap(),
            MixedStrategy::new(vec![0.5, 0.5]).unwrap(),
        );
        assert!(a.same_profile(&b, 1e-3));
        assert!(!a.same_profile(&b, 1e-9));
    }

    #[test]
    fn dedup_collapses_duplicates() {
        let g = games::battle_of_the_sexes();
        let e = |p0: f64| {
            Equilibrium::from_profile(
                &g,
                MixedStrategy::new(vec![p0, 1.0 - p0]).unwrap(),
                MixedStrategy::new(vec![0.5, 0.5]).unwrap(),
            )
        };
        let eqs = vec![e(0.5), e(0.5000001), e(0.9)];
        let d = dedup_equilibria(eqs, 1e-3);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn coverage_counts_targets_once() {
        let g = games::battle_of_the_sexes();
        let pure0 = Equilibrium::from_profile(
            &g,
            MixedStrategy::pure(2, 0).unwrap(),
            MixedStrategy::pure(2, 0).unwrap(),
        );
        let pure1 = Equilibrium::from_profile(
            &g,
            MixedStrategy::pure(2, 1).unwrap(),
            MixedStrategy::pure(2, 1).unwrap(),
        );
        let found = vec![pure0.clone(), pure0.clone()];
        let targets = vec![pure0, pure1];
        assert_eq!(coverage(&found, &targets, 1e-9), 1);
    }

    #[test]
    fn strategy_kind_display() {
        assert_eq!(StrategyKind::Pure.to_string(), "pure");
        assert_eq!(StrategyKind::Mixed.to_string(), "mixed");
    }
}
