//! Equilibrium records, solution classification and continuum
//! representatives.

use crate::bimatrix::BimatrixGame;
use crate::error::GameError;
use crate::strategy::MixedStrategy;
use std::fmt;

/// Whether a strategy profile is pure or mixed (paper Sec. 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Both players choose a single action deterministically.
    Pure,
    /// At least one player randomizes over several actions.
    Mixed,
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategyKind::Pure => write!(f, "pure"),
            StrategyKind::Mixed => write!(f, "mixed"),
        }
    }
}

/// A (candidate) Nash equilibrium: a pair of strategies with its gap.
#[derive(Debug, Clone, PartialEq)]
pub struct Equilibrium {
    /// Row player's strategy `p*`.
    pub row: MixedStrategy,
    /// Column player's strategy `q*`.
    pub col: MixedStrategy,
    /// Nash gap `f(p,q)` of Eq. (9) at this profile (≈ 0 for true NE).
    pub gap: f64,
}

impl Equilibrium {
    /// Builds an equilibrium record, computing the Nash gap from the game.
    ///
    /// # Panics
    ///
    /// Panics if the strategy lengths do not match the game.
    pub fn from_profile(game: &BimatrixGame, row: MixedStrategy, col: MixedStrategy) -> Self {
        let gap = game
            .nash_gap(&row, &col)
            .expect("strategy lengths must match the game");
        Self { row, col, gap }
    }

    /// Classifies the profile as pure or mixed.
    pub fn kind(&self, tol: f64) -> StrategyKind {
        if self.row.is_pure(tol) && self.col.is_pure(tol) {
            StrategyKind::Pure
        } else {
            StrategyKind::Mixed
        }
    }

    /// `true` if this profile is the same equilibrium as `other` up to an
    /// `L∞` distance of `tol` on both players' strategies.
    pub fn same_profile(&self, other: &Equilibrium, tol: f64) -> bool {
        self.row.linf_distance(&other.row) <= tol && self.col.linf_distance(&other.col) <= tol
    }

    /// The support-pair class this equilibrium belongs to
    /// (see [`SupportClass::of_profile`]).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::ShapeMismatch`] if the profile does not fit
    /// `game`.
    pub fn support_class(&self, game: &BimatrixGame, tol: f64) -> Result<SupportClass, GameError> {
        SupportClass::of_profile(game, &self.row, &self.col, tol)
    }
}

/// A **continuum representative**: the best-response-closure support
/// pair of an equilibrium.
///
/// On degenerate games (tied payoff levels, duplicated strategies) the
/// equilibria form *continua* — connected families of profiles that a
/// finite enumeration can only sample. Points of one continuum face
/// cannot be matched by profile distance against the sampled set, but
/// they share structure: the set of **pure best responses** each side's
/// strategy leaves available. `SupportClass` captures exactly that pair
/// (`rows` = the row player's best responses to `q`, `cols` = the
/// column player's best responses to `p`, both sorted), so two
/// equilibria of the same face — e.g. a pure profile and a mixture over
/// a duplicated copy of the same action — map to the *same* class even
/// though their probability vectors differ arbitrarily.
///
/// Every equilibrium's support is contained in its own class (that is
/// the best-response condition), so classes both label continua and act
/// as membership certificates: a profile whose support pair sits inside
/// an enumerated equilibrium's class mixes only actions that class
/// proves optimal.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SupportClass {
    /// Row actions that are best responses (sorted, deduplicated).
    pub rows: Vec<usize>,
    /// Column actions that are best responses (sorted, deduplicated).
    pub cols: Vec<usize>,
}

impl SupportClass {
    /// The support-pair class of profile `(p, q)`: the row player's
    /// pure best responses to `q` and the column player's pure best
    /// responses to `p`, each within a payoff slack of `tol`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::ShapeMismatch`] if the strategy lengths do
    /// not match the game.
    pub fn of_profile(
        game: &BimatrixGame,
        p: &MixedStrategy,
        q: &MixedStrategy,
        tol: f64,
    ) -> Result<SupportClass, GameError> {
        Ok(SupportClass {
            rows: game.row_best_responses(q, tol)?,
            cols: game.col_best_responses(p, tol)?,
        })
    }

    /// `true` if `(p, q)` mixes only actions this class proves optimal:
    /// `supp(p) ⊆ rows` and `supp(q) ⊆ cols` (supports extracted at
    /// probability tolerance `tol`).
    pub fn contains_profile(&self, p: &MixedStrategy, q: &MixedStrategy, tol: f64) -> bool {
        p.support(tol).iter().all(|a| self.rows.contains(a))
            && q.support(tol).iter().all(|a| self.cols.contains(a))
    }

    /// Stable human/report label, e.g. `r{0,2}xc{1}`.
    pub fn label(&self) -> String {
        let join = |v: &[usize]| {
            v.iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        format!("r{{{}}}xc{{{}}}", join(&self.rows), join(&self.cols))
    }
}

impl fmt::Display for SupportClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The deduplicated support-pair classes of an enumerated equilibrium
/// set — the oracle's continuum representatives, sorted for
/// reproducible reporting.
///
/// # Errors
///
/// Returns [`GameError::ShapeMismatch`] if an equilibrium does not fit
/// `game`.
pub fn continuum_representatives(
    game: &BimatrixGame,
    eqs: &[Equilibrium],
    tol: f64,
) -> Result<Vec<SupportClass>, GameError> {
    let mut classes: Vec<SupportClass> = Vec::new();
    for eq in eqs {
        let class = eq.support_class(game, tol)?;
        if !classes.contains(&class) {
            classes.push(class);
        }
    }
    classes.sort();
    Ok(classes)
}

impl fmt::Display for Equilibrium {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p*={}, q*={} (gap {:.2e})", self.row, self.col, self.gap)
    }
}

/// Deduplicates a list of equilibria with an `L∞` profile tolerance,
/// keeping the first representative of each cluster.
pub fn dedup_equilibria(mut eqs: Vec<Equilibrium>, tol: f64) -> Vec<Equilibrium> {
    let mut out: Vec<Equilibrium> = Vec::new();
    for eq in eqs.drain(..) {
        if !out.iter().any(|e| e.same_profile(&eq, tol)) {
            out.push(eq);
        }
    }
    out
}

/// Counts how many equilibria of `found` match some equilibrium of
/// `targets` (each target counted at most once).
pub fn coverage(found: &[Equilibrium], targets: &[Equilibrium], tol: f64) -> usize {
    targets
        .iter()
        .filter(|t| found.iter().any(|f| f.same_profile(t, tol)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games;

    #[test]
    fn kind_classification() {
        let g = games::battle_of_the_sexes();
        let pure = Equilibrium::from_profile(
            &g,
            MixedStrategy::pure(2, 0).unwrap(),
            MixedStrategy::pure(2, 0).unwrap(),
        );
        assert_eq!(pure.kind(1e-9), StrategyKind::Pure);

        let mixed = Equilibrium::from_profile(
            &g,
            MixedStrategy::new(vec![2.0 / 3.0, 1.0 / 3.0]).unwrap(),
            MixedStrategy::new(vec![1.0 / 3.0, 2.0 / 3.0]).unwrap(),
        );
        assert_eq!(mixed.kind(1e-9), StrategyKind::Mixed);
        assert!(mixed.gap.abs() < 1e-12);
    }

    #[test]
    fn same_profile_tolerance() {
        let g = games::battle_of_the_sexes();
        let a = Equilibrium::from_profile(
            &g,
            MixedStrategy::new(vec![0.5, 0.5]).unwrap(),
            MixedStrategy::new(vec![0.5, 0.5]).unwrap(),
        );
        let b = Equilibrium::from_profile(
            &g,
            MixedStrategy::new(vec![0.500001, 0.499999]).unwrap(),
            MixedStrategy::new(vec![0.5, 0.5]).unwrap(),
        );
        assert!(a.same_profile(&b, 1e-3));
        assert!(!a.same_profile(&b, 1e-9));
    }

    #[test]
    fn dedup_collapses_duplicates() {
        let g = games::battle_of_the_sexes();
        let e = |p0: f64| {
            Equilibrium::from_profile(
                &g,
                MixedStrategy::new(vec![p0, 1.0 - p0]).unwrap(),
                MixedStrategy::new(vec![0.5, 0.5]).unwrap(),
            )
        };
        let eqs = vec![e(0.5), e(0.5000001), e(0.9)];
        let d = dedup_equilibria(eqs, 1e-3);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn coverage_counts_targets_once() {
        let g = games::battle_of_the_sexes();
        let pure0 = Equilibrium::from_profile(
            &g,
            MixedStrategy::pure(2, 0).unwrap(),
            MixedStrategy::pure(2, 0).unwrap(),
        );
        let pure1 = Equilibrium::from_profile(
            &g,
            MixedStrategy::pure(2, 1).unwrap(),
            MixedStrategy::pure(2, 1).unwrap(),
        );
        let found = vec![pure0.clone(), pure0.clone()];
        let targets = vec![pure0, pure1];
        assert_eq!(coverage(&found, &targets, 1e-9), 1);
    }

    #[test]
    fn strategy_kind_display() {
        assert_eq!(StrategyKind::Pure.to_string(), "pure");
        assert_eq!(StrategyKind::Mixed.to_string(), "mixed");
    }

    #[test]
    fn support_class_contains_its_own_equilibrium() {
        let g = games::battle_of_the_sexes();
        for eq in crate::support_enum::enumerate_equilibria(&g, 1e-9) {
            let class = eq.support_class(&g, 1e-6).unwrap();
            assert!(
                class.contains_profile(&eq.row, &eq.col, 1e-9),
                "{class}: must contain its own support"
            );
        }
    }

    #[test]
    fn duplicated_action_continuum_shares_one_class() {
        // A game where row 1 duplicates row 0 (in both matrices): the
        // pure equilibrium at (0, 0) and any mixture over rows {0, 1}
        // are points of one continuum and must land in the same class.
        let m = crate::Matrix::from_rows(&[vec![3.0, 0.0], vec![3.0, 0.0]]).unwrap();
        let b = crate::Matrix::from_rows(&[vec![2.0, 0.0], vec![2.0, 0.0]]).unwrap();
        let g = BimatrixGame::new("dup", m, b).unwrap();
        let pure = SupportClass::of_profile(
            &g,
            &MixedStrategy::pure(2, 0).unwrap(),
            &MixedStrategy::pure(2, 0).unwrap(),
            1e-6,
        )
        .unwrap();
        let mixed = SupportClass::of_profile(
            &g,
            &MixedStrategy::new(vec![0.25, 0.75]).unwrap(),
            &MixedStrategy::pure(2, 0).unwrap(),
            1e-6,
        )
        .unwrap();
        assert_eq!(pure, mixed);
        assert_eq!(pure.rows, vec![0, 1], "duplicate rows tie as responses");
        assert!(mixed.contains_profile(
            &MixedStrategy::new(vec![0.5, 0.5]).unwrap(),
            &MixedStrategy::pure(2, 0).unwrap(),
            1e-9
        ));
    }

    #[test]
    fn representatives_dedup_and_sort() {
        let g = games::battle_of_the_sexes();
        let eqs = crate::support_enum::enumerate_equilibria(&g, 1e-9);
        let reps = continuum_representatives(&g, &eqs, 1e-6).unwrap();
        assert_eq!(reps.len(), 3, "BoS: three distinct classes");
        for w in reps.windows(2) {
            assert!(w[0] < w[1], "sorted and deduplicated");
        }
        assert_eq!(reps[0].label(), "r{0}xc{0}");
    }
}
