//! Mixed strategies: validated probability vectors over a player's actions.

use crate::error::GameError;
use std::fmt;

/// Tolerance used when validating that probabilities sum to one.
pub const SIMPLEX_TOL: f64 = 1e-9;

/// A mixed strategy: a probability distribution over a player's actions.
///
/// Invariants (enforced at construction):
/// * at least one action,
/// * every probability is finite and in `[0, 1]` (up to [`SIMPLEX_TOL`]),
/// * probabilities sum to `1` (up to [`SIMPLEX_TOL`] scaled by length).
///
/// A *pure* strategy is the special case with a single unit entry
/// (paper Sec. 2.1).
///
/// # Example
///
/// ```
/// use cnash_game::MixedStrategy;
///
/// # fn main() -> Result<(), cnash_game::GameError> {
/// let p = MixedStrategy::new(vec![2.0 / 3.0, 1.0 / 3.0])?;
/// assert!(!p.is_pure(1e-9));
/// assert_eq!(p.support(1e-9), vec![0, 1]);
///
/// let pure = MixedStrategy::pure(3, 1)?;
/// assert!(pure.is_pure(1e-9));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MixedStrategy {
    probs: Vec<f64>,
}

impl MixedStrategy {
    /// Creates a mixed strategy from a probability vector.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidStrategy`] if the vector is empty, has
    /// non-finite or out-of-range entries, or does not sum to one.
    pub fn new(probs: Vec<f64>) -> Result<Self, GameError> {
        if probs.is_empty() {
            return Err(GameError::InvalidStrategy("empty action set".into()));
        }
        for (i, &p) in probs.iter().enumerate() {
            if !p.is_finite() {
                return Err(GameError::InvalidStrategy(format!(
                    "probability {i} is not finite"
                )));
            }
            if !(-SIMPLEX_TOL..=1.0 + SIMPLEX_TOL).contains(&p) {
                return Err(GameError::InvalidStrategy(format!(
                    "probability {i} = {p} is outside [0, 1]"
                )));
            }
        }
        let sum: f64 = probs.iter().sum();
        if (sum - 1.0).abs() > SIMPLEX_TOL * probs.len() as f64 {
            return Err(GameError::InvalidStrategy(format!(
                "probabilities sum to {sum}, expected 1"
            )));
        }
        Ok(Self { probs })
    }

    /// Creates the pure strategy selecting `action` among `n` actions.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidStrategy`] if `n == 0` or
    /// `action >= n`.
    pub fn pure(n: usize, action: usize) -> Result<Self, GameError> {
        if n == 0 {
            return Err(GameError::InvalidStrategy("empty action set".into()));
        }
        if action >= n {
            return Err(GameError::InvalidStrategy(format!(
                "action {action} out of range for {n} actions"
            )));
        }
        let mut probs = vec![0.0; n];
        probs[action] = 1.0;
        Ok(Self { probs })
    }

    /// Creates the uniform strategy over `n` actions.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidStrategy`] if `n == 0`.
    pub fn uniform(n: usize) -> Result<Self, GameError> {
        if n == 0 {
            return Err(GameError::InvalidStrategy("empty action set".into()));
        }
        Ok(Self {
            probs: vec![1.0 / n as f64; n],
        })
    }

    /// Creates a strategy from `counts` of `1/I` probability units,
    /// mirroring the crossbar's interval quantization (paper Sec. 3.2).
    ///
    /// `counts` must sum to `intervals`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidStrategy`] if `intervals == 0`, the count
    /// vector is empty, or the counts do not sum to `intervals`.
    pub fn from_grid_counts(counts: &[u32], intervals: u32) -> Result<Self, GameError> {
        if intervals == 0 {
            return Err(GameError::InvalidStrategy("zero intervals".into()));
        }
        if counts.is_empty() {
            return Err(GameError::InvalidStrategy("empty action set".into()));
        }
        let total: u32 = counts.iter().sum();
        if total != intervals {
            return Err(GameError::InvalidStrategy(format!(
                "grid counts sum to {total}, expected {intervals}"
            )));
        }
        Ok(Self {
            probs: counts
                .iter()
                .map(|&c| c as f64 / intervals as f64)
                .collect(),
        })
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Always `false`: a valid strategy has at least one action.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Borrow the probability vector.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Probability of `action`.
    ///
    /// # Panics
    ///
    /// Panics if `action >= len()`.
    pub fn prob(&self, action: usize) -> f64 {
        self.probs[action]
    }

    /// Indices of actions played with probability `> tol`.
    pub fn support(&self, tol: f64) -> Vec<usize> {
        self.probs
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > tol)
            .map(|(i, _)| i)
            .collect()
    }

    /// `true` if exactly one action carries (almost) all probability.
    pub fn is_pure(&self, tol: f64) -> bool {
        self.probs.iter().filter(|&&p| p > tol).count() == 1
    }

    /// If pure (within `tol`), the selected action.
    pub fn pure_action(&self, tol: f64) -> Option<usize> {
        let sup = self.support(tol);
        if sup.len() == 1 {
            Some(sup[0])
        } else {
            None
        }
    }

    /// Maximum absolute probability difference to another strategy, or
    /// `f64::INFINITY` if the lengths differ.
    pub fn linf_distance(&self, other: &MixedStrategy) -> f64 {
        if self.len() != other.len() {
            return f64::INFINITY;
        }
        self.probs
            .iter()
            .zip(&other.probs)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Rounds the strategy onto the `1/intervals` grid, returning unit
    /// counts per action. The rounding redistributes leftover units to the
    /// largest fractional remainders so the counts always sum to
    /// `intervals` (largest-remainder method).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] if `intervals == 0`.
    pub fn to_grid_counts(&self, intervals: u32) -> Result<Vec<u32>, GameError> {
        if intervals == 0 {
            return Err(GameError::InvalidParameter("zero intervals".into()));
        }
        let scaled: Vec<f64> = self.probs.iter().map(|p| p * intervals as f64).collect();
        let mut counts: Vec<u32> = scaled.iter().map(|s| s.floor() as u32).collect();
        let mut assigned: u32 = counts.iter().sum();
        // Distribute the remaining units to largest remainders.
        let mut order: Vec<usize> = (0..scaled.len()).collect();
        order.sort_by(|&a, &b| {
            let ra = scaled[a] - scaled[a].floor();
            let rb = scaled[b] - scaled[b].floor();
            rb.partial_cmp(&ra).expect("finite remainders")
        });
        let mut k = 0;
        while assigned < intervals {
            counts[order[k % order.len()]] += 1;
            assigned += 1;
            k += 1;
        }
        Ok(counts)
    }

    /// `true` if every probability is an exact multiple of `1/intervals`
    /// (within `tol`).
    pub fn is_on_grid(&self, intervals: u32, tol: f64) -> bool {
        self.probs.iter().all(|p| {
            let scaled = p * intervals as f64;
            (scaled - scaled.round()).abs() <= tol * intervals as f64
        })
    }

    /// Shannon entropy (nats); `0` for a pure strategy.
    pub fn entropy(&self) -> f64 {
        -self
            .probs
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f64>()
    }
}

impl fmt::Display for MixedStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.probs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p:.4}")?;
        }
        write!(f, ")")
    }
}

impl AsRef<[f64]> for MixedStrategy {
    fn as_ref(&self) -> &[f64] {
        &self.probs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_valid() {
        let s = MixedStrategy::new(vec![0.3, 0.5, 0.2]).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.prob(1), 0.5);
    }

    #[test]
    fn new_rejects_bad_sum() {
        assert!(MixedStrategy::new(vec![0.3, 0.3]).is_err());
    }

    #[test]
    fn new_rejects_negative() {
        assert!(MixedStrategy::new(vec![-0.1, 1.1]).is_err());
    }

    #[test]
    fn new_rejects_nan() {
        assert!(MixedStrategy::new(vec![f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn new_rejects_empty() {
        assert!(MixedStrategy::new(vec![]).is_err());
    }

    #[test]
    fn pure_and_support() {
        let s = MixedStrategy::pure(4, 2).unwrap();
        assert!(s.is_pure(1e-12));
        assert_eq!(s.pure_action(1e-12), Some(2));
        assert_eq!(s.support(1e-12), vec![2]);
        assert!(MixedStrategy::pure(4, 4).is_err());
        assert!(MixedStrategy::pure(0, 0).is_err());
    }

    #[test]
    fn uniform_is_on_grid() {
        let s = MixedStrategy::uniform(3).unwrap();
        assert!(s.is_on_grid(12, 1e-9));
        assert!(!s.is_on_grid(4, 1e-9)); // 1/3 is not a multiple of 1/4
    }

    #[test]
    fn grid_counts_round_trip() {
        let s = MixedStrategy::from_grid_counts(&[3, 4, 5], 12).unwrap();
        assert_eq!(s.probs(), &[0.25, 1.0 / 3.0, 5.0 / 12.0]);
        assert_eq!(s.to_grid_counts(12).unwrap(), vec![3, 4, 5]);
    }

    #[test]
    fn grid_counts_validation() {
        assert!(MixedStrategy::from_grid_counts(&[1, 2], 12).is_err());
        assert!(MixedStrategy::from_grid_counts(&[], 12).is_err());
        assert!(MixedStrategy::from_grid_counts(&[12], 0).is_err());
    }

    #[test]
    fn largest_remainder_rounding_sums_to_intervals() {
        let s = MixedStrategy::uniform(3).unwrap();
        let counts = s.to_grid_counts(4).unwrap();
        assert_eq!(counts.iter().sum::<u32>(), 4);
    }

    #[test]
    fn linf_distance() {
        let a = MixedStrategy::pure(2, 0).unwrap();
        let b = MixedStrategy::pure(2, 1).unwrap();
        assert_eq!(a.linf_distance(&b), 1.0);
        assert_eq!(a.linf_distance(&a), 0.0);
        let c = MixedStrategy::pure(3, 0).unwrap();
        assert_eq!(a.linf_distance(&c), f64::INFINITY);
    }

    #[test]
    fn entropy_values() {
        assert_eq!(MixedStrategy::pure(5, 0).unwrap().entropy(), 0.0);
        let u = MixedStrategy::uniform(2).unwrap();
        assert!((u.entropy() - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn display_format() {
        let s = MixedStrategy::new(vec![0.5, 0.5]).unwrap();
        assert_eq!(s.to_string(), "(0.5000, 0.5000)");
    }
}
