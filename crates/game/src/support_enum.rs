//! Support-enumeration computation of all Nash equilibria.
//!
//! This is the ground-truth solver of the reproduction, playing the role
//! Nashpy \[31] plays in the paper: given a bimatrix game it enumerates every
//! pair of equal-size supports `(S, T)`, solves the indifference conditions
//! on each support, and keeps the solutions that satisfy feasibility and
//! best-response conditions. For nondegenerate games this finds *all*
//! equilibria (Nash's theorem guarantees at least one exists).
//!
//! Complexity is exponential in the number of actions, which is fine for
//! the paper's benchmark sizes (≤ 8 actions per player).

use crate::bimatrix::BimatrixGame;
use crate::equilibrium::{dedup_equilibria, Equilibrium};
use crate::linalg::solve;
use crate::matrix::Matrix;
use crate::strategy::MixedStrategy;

/// Upper bound on actions per player accepted by the enumerator
/// (`2^n` supports per side).
pub const MAX_ENUM_ACTIONS: usize = 16;

/// Enumerates all Nash equilibria of `game` via support enumeration.
///
/// `tol` is the numerical tolerance for feasibility (probabilities ≥ −tol)
/// and best-response slack. Returned equilibria are deduplicated with an
/// `L∞` profile tolerance of `1e-6` and sorted by (row support, col
/// support) for reproducibility.
///
/// # Panics
///
/// Panics if either player has more than [`MAX_ENUM_ACTIONS`] actions.
///
/// # Example
///
/// ```
/// use cnash_game::{games, support_enum::enumerate_equilibria};
///
/// let eqs = enumerate_equilibria(&games::battle_of_the_sexes(), 1e-9);
/// assert_eq!(eqs.len(), 3); // 2 pure + 1 mixed
/// ```
pub fn enumerate_equilibria(game: &BimatrixGame, tol: f64) -> Vec<Equilibrium> {
    let n = game.row_actions();
    let m = game.col_actions();
    assert!(
        n <= MAX_ENUM_ACTIONS && m <= MAX_ENUM_ACTIONS,
        "support enumeration limited to {MAX_ENUM_ACTIONS} actions per player"
    );

    let mut found = Vec::new();
    let max_k = n.min(m);
    for k in 1..=max_k {
        for s in subsets_of_size(n, k) {
            for t in subsets_of_size(m, k) {
                if let Some((p, q)) = try_support_pair(game, &s, &t, tol) {
                    if game.is_equilibrium(&p, &q, tol.max(1e-9)) {
                        found.push(Equilibrium::from_profile(game, p, q));
                    }
                }
            }
        }
    }
    let mut out = dedup_equilibria(found, 1e-6);
    out.sort_by(|a, b| {
        let ka = profile_key(a);
        let kb = profile_key(b);
        ka.partial_cmp(&kb).expect("finite probabilities")
    });
    out
}

/// Counts equilibria by kind: `(pure, mixed)`.
pub fn count_by_kind(eqs: &[Equilibrium], tol: f64) -> (usize, usize) {
    let pure = eqs
        .iter()
        .filter(|e| e.kind(tol) == crate::equilibrium::StrategyKind::Pure)
        .count();
    (pure, eqs.len() - pure)
}

fn profile_key(e: &Equilibrium) -> Vec<f64> {
    let mut k: Vec<f64> = e.row.probs().to_vec();
    k.extend_from_slice(e.col.probs());
    k
}

/// All subsets of `{0..n}` with exactly `k` elements, in lexicographic
/// order of their bitmasks. Shared with the exact enumerator so both
/// oracles walk support pairs in the same order.
pub(crate) fn subsets_of_size(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for mask in 0u32..(1u32 << n) {
        if mask.count_ones() as usize == k {
            out.push((0..n).filter(|i| mask & (1 << i) != 0).collect());
        }
    }
    out
}

/// Attempts to find an equilibrium with row support `s` and column support
/// `t` (equal sizes). Returns `None` if the indifference system is singular
/// or the solution is infeasible.
fn try_support_pair(
    game: &BimatrixGame,
    s: &[usize],
    t: &[usize],
    tol: f64,
) -> Option<(MixedStrategy, MixedStrategy)> {
    let q = solve_indifference(game.row_payoffs(), s, t, game.col_actions(), tol)?;
    // Column player's payoff matrix transposed: rows become column actions.
    let nt = game.col_payoffs().transposed();
    let p = solve_indifference(&nt, t, s, game.row_actions(), tol)?;

    let p = MixedStrategy::new(p).ok()?;
    let q = MixedStrategy::new(q).ok()?;
    Some((p, q))
}

/// Solves for the *opponent* mixture `q` (length `opp_len`, support `t`)
/// that makes the focal player indifferent across their support `s`, given
/// the focal player's payoff matrix `a` (focal actions on rows).
///
/// Conditions: `(A q)_i` equal for all `i ∈ s`, `Σ_{j∈t} q_j = 1`,
/// `q_j = 0` outside `t`, `q ≥ −tol`, and no action outside `s` strictly
/// better than the support value.
fn solve_indifference(
    a: &Matrix,
    s: &[usize],
    t: &[usize],
    opp_len: usize,
    tol: f64,
) -> Option<Vec<f64>> {
    let k = s.len();
    debug_assert_eq!(k, t.len());

    // Unknowns: q_{t[0]}, ..., q_{t[k-1]}.
    // Equations: (A q)_{s[0]} = (A q)_{s[r]} for r = 1..k, plus Σ q = 1.
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(k);
    for r in 1..k {
        let row: Vec<f64> = t.iter().map(|&j| a[(s[0], j)] - a[(s[r], j)]).collect();
        rows.push(row);
    }
    rows.push(vec![1.0; k]);
    let mut rhs = vec![0.0; k - 1];
    rhs.push(1.0);

    let sys = Matrix::from_rows(&rows).ok()?;
    let sol = solve(&sys, &rhs).ok()?;

    // Feasibility: probabilities in [0, 1] up to tolerance.
    if sol.iter().any(|&x| x < -tol || x > 1.0 + tol) {
        return None;
    }

    // Expand to full-length vector, clamping tiny negatives.
    let mut q = vec![0.0; opp_len];
    for (idx, &j) in t.iter().enumerate() {
        q[j] = sol[idx].max(0.0);
    }
    // Renormalise the clamped vector (clamping can perturb the sum by tol).
    let sum: f64 = q.iter().sum();
    if sum <= 0.0 {
        return None;
    }
    for x in &mut q {
        *x /= sum;
    }

    // Best-response condition: actions off the support must not beat it.
    let payoff = a.mat_vec(&q).ok()?;
    let v = payoff[s[0]];
    for (i, &u) in payoff.iter().enumerate() {
        if !s.contains(&i) && u > v + tol.max(1e-9) {
            return None;
        }
    }
    Some(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::StrategyKind;
    use crate::games;

    #[test]
    fn subsets_counted_correctly() {
        assert_eq!(subsets_of_size(4, 2).len(), 6);
        assert_eq!(subsets_of_size(5, 0).len(), 1);
        assert_eq!(subsets_of_size(3, 3), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn bos_has_three_equilibria() {
        let eqs = enumerate_equilibria(&games::battle_of_the_sexes(), 1e-9);
        assert_eq!(eqs.len(), 3);
        let (pure, mixed) = count_by_kind(&eqs, 1e-6);
        assert_eq!((pure, mixed), (2, 1));
        for e in &eqs {
            assert!(e.gap.abs() < 1e-9, "gap {} too large", e.gap);
        }
    }

    #[test]
    fn bos_mixed_equilibrium_values() {
        let eqs = enumerate_equilibria(&games::battle_of_the_sexes(), 1e-9);
        let mixed: Vec<_> = eqs
            .iter()
            .filter(|e| e.kind(1e-6) == StrategyKind::Mixed)
            .collect();
        assert_eq!(mixed.len(), 1);
        let e = mixed[0];
        assert!((e.row.prob(0) - 2.0 / 3.0).abs() < 1e-9);
        assert!((e.col.prob(0) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn matching_pennies_unique_mixed() {
        let g = games::matching_pennies();
        let eqs = enumerate_equilibria(&g, 1e-9);
        assert_eq!(eqs.len(), 1);
        assert_eq!(eqs[0].kind(1e-6), StrategyKind::Mixed);
        assert!((eqs[0].row.prob(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn prisoners_dilemma_unique_pure() {
        let g = games::prisoners_dilemma();
        let eqs = enumerate_equilibria(&g, 1e-9);
        assert_eq!(eqs.len(), 1);
        assert_eq!(eqs[0].kind(1e-6), StrategyKind::Pure);
        // Defect is action 1 in our convention.
        assert_eq!(eqs[0].row.pure_action(1e-6), Some(1));
        assert_eq!(eqs[0].col.pure_action(1e-6), Some(1));
    }

    #[test]
    fn coordination3_has_seven() {
        // Pure 3x3 coordination: 3 pure + 3 two-support + 1 uniform NE.
        let g = games::coordination(3).unwrap();
        let eqs = enumerate_equilibria(&g, 1e-9);
        assert_eq!(eqs.len(), 7);
        let (pure, mixed) = count_by_kind(&eqs, 1e-6);
        assert_eq!((pure, mixed), (3, 4));
    }

    #[test]
    fn all_enumerated_profiles_verify() {
        for g in [
            games::battle_of_the_sexes(),
            games::bird_game(),
            games::stag_hunt(),
            games::hawk_dove(),
        ] {
            for e in enumerate_equilibria(&g, 1e-9) {
                assert!(
                    g.is_equilibrium(&e.row, &e.col, 1e-7),
                    "{}: {e} fails verification",
                    g.name()
                );
            }
        }
    }

    #[test]
    fn results_are_sorted_and_deduplicated() {
        let eqs = enumerate_equilibria(&games::coordination(3).unwrap(), 1e-9);
        for w in eqs.windows(2) {
            assert!(
                !w[0].same_profile(&w[1], 1e-6),
                "duplicate equilibria in output"
            );
        }
    }
}
