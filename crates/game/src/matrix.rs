//! Dense row-major matrix used for payoff tables.
//!
//! The C-Nash pipeline only needs small dense matrices (payoff tables are at
//! most tens of actions per side), so this type favours clarity and
//! validation over raw performance.

use crate::error::GameError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64` entries.
///
/// # Example
///
/// ```
/// use cnash_game::Matrix;
///
/// # fn main() -> Result<(), cnash_game::GameError> {
/// let m = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 1.0]])?;
/// assert_eq!(m[(0, 0)], 2.0);
/// assert_eq!(m.mat_vec(&[1.0, 1.0])?, vec![2.0, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::DimensionMismatch`] if `data.len() != rows*cols`,
    /// [`GameError::EmptyActionSet`] if either dimension is zero, and
    /// [`GameError::NonFinitePayoff`] if any entry is NaN or infinite.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, GameError> {
        if rows == 0 || cols == 0 {
            return Err(GameError::EmptyActionSet);
        }
        if data.len() != rows * cols {
            return Err(GameError::DimensionMismatch {
                rows,
                cols,
                len: data.len(),
            });
        }
        for (k, v) in data.iter().enumerate() {
            if !v.is_finite() {
                return Err(GameError::NonFinitePayoff {
                    row: k / cols,
                    col: k % cols,
                });
            }
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::EmptyActionSet`] for an empty row set and
    /// [`GameError::DimensionMismatch`] if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, GameError> {
        if rows.is_empty() {
            return Err(GameError::EmptyActionSet);
        }
        let cols = rows[0].len();
        for r in rows {
            if r.len() != cols {
                return Err(GameError::DimensionMismatch {
                    rows: rows.len(),
                    cols,
                    len: r.len(),
                });
            }
        }
        let data: Vec<f64> = rows.iter().flatten().copied().collect();
        Self::new(rows.len(), cols, data)
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::EmptyActionSet`] if either dimension is zero.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Result<Self, GameError> {
        Self::new(rows, cols, vec![value; rows * cols])
    }

    /// Creates an `n x n` identity matrix.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::EmptyActionSet`] if `n == 0`.
    pub fn identity(n: usize) -> Result<Self, GameError> {
        let mut m = Self::filled(n, n, 0.0)?;
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        Ok(m)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the row-major backing data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns column `j` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transposed matrix.
    pub fn transposed(&self) -> Matrix {
        let mut data = vec![0.0; self.data.len()];
        for i in 0..self.rows {
            for j in 0..self.cols {
                data[j * self.rows + i] = self[(i, j)];
            }
        }
        Matrix {
            rows: self.cols,
            cols: self.rows,
            data,
        }
    }

    /// Matrix-vector product `A v`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::ShapeMismatch`] if `v.len() != cols`.
    pub fn mat_vec(&self, v: &[f64]) -> Result<Vec<f64>, GameError> {
        if v.len() != self.cols {
            return Err(GameError::ShapeMismatch {
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Vector-matrix product `uᵀ A`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::ShapeMismatch`] if `u.len() != rows`.
    pub fn vec_mat(&self, u: &[f64]) -> Result<Vec<f64>, GameError> {
        if u.len() != self.rows {
            return Err(GameError::ShapeMismatch {
                left: (1, u.len()),
                right: self.shape(),
            });
        }
        Ok((0..self.cols)
            .map(|j| (0..self.rows).map(|i| u[i] * self[(i, j)]).sum())
            .collect())
    }

    /// Bilinear form `uᵀ A v` — the expected-payoff kernel of Eq. (2).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::ShapeMismatch`] if the vector lengths do not
    /// match the matrix shape.
    pub fn bilinear(&self, u: &[f64], v: &[f64]) -> Result<f64, GameError> {
        let av = self.mat_vec(v)?;
        if u.len() != self.rows {
            return Err(GameError::ShapeMismatch {
                left: (1, u.len()),
                right: self.shape(),
            });
        }
        Ok(u.iter().zip(&av).map(|(a, b)| a * b).sum())
    }

    /// Element-wise sum `A + B`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, GameError> {
        if self.shape() != other.shape() {
            return Err(GameError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns a copy with every entry mapped through `f`.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Minimum entry.
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum entry.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// `true` if every entry is (approximately) a non-negative integer.
    pub fn is_nonneg_integer(&self, tol: f64) -> bool {
        self.data
            .iter()
            .all(|&x| x >= -tol && (x - x.round()).abs() <= tol)
    }

    /// Maximum absolute difference between two equally-shaped matrices.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in diff");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>8.3}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap()
    }

    #[test]
    fn new_validates_length() {
        assert!(matches!(
            Matrix::new(2, 2, vec![1.0; 3]),
            Err(GameError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn new_rejects_empty() {
        assert_eq!(Matrix::new(0, 2, vec![]), Err(GameError::EmptyActionSet));
        assert_eq!(Matrix::new(2, 0, vec![]), Err(GameError::EmptyActionSet));
    }

    #[test]
    fn new_rejects_nan() {
        assert!(matches!(
            Matrix::new(1, 2, vec![1.0, f64::NAN]),
            Err(GameError::NonFinitePayoff { row: 0, col: 1 })
        ));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(matches!(
            Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]),
            Err(GameError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn indexing_round_trip() {
        let mut m = m22();
        m[(1, 0)] = 9.0;
        assert_eq!(m[(1, 0)], 9.0);
        assert_eq!(m.row(1), &[9.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indexing_out_of_bounds_panics() {
        let m = m22();
        let _ = m[(2, 0)];
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transposed();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn mat_vec_matches_hand_computation() {
        let m = m22();
        assert_eq!(m.mat_vec(&[1.0, 0.5]).unwrap(), vec![2.0, 5.0]);
    }

    #[test]
    fn vec_mat_matches_transpose_mat_vec() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let u = [0.25, 0.75];
        assert_eq!(m.vec_mat(&u).unwrap(), m.transposed().mat_vec(&u).unwrap());
    }

    #[test]
    fn bilinear_matches_expansion() {
        let m = m22();
        let v = m.bilinear(&[0.5, 0.5], &[0.5, 0.5]).unwrap();
        // 0.25*(1+2+3+4)
        assert!((v - 2.5).abs() < 1e-12);
    }

    #[test]
    fn shape_errors_reported() {
        let m = m22();
        assert!(matches!(
            m.mat_vec(&[1.0]),
            Err(GameError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            m.vec_mat(&[1.0, 2.0, 3.0]),
            Err(GameError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            m.bilinear(&[1.0], &[1.0, 0.0]),
            Err(GameError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn add_and_map() {
        let m = m22();
        let s = m.add(&m).unwrap();
        assert_eq!(s[(1, 1)], 8.0);
        let neg = m.map(|x| -x);
        assert_eq!(neg[(0, 0)], -1.0);
    }

    #[test]
    fn min_max_and_integer_check() {
        let m = m22();
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.max(), 4.0);
        assert!(m.is_nonneg_integer(1e-9));
        assert!(!m.map(|x| x - 1.5).is_nonneg_integer(1e-9));
    }

    #[test]
    fn identity_is_identity() {
        let id = Matrix::identity(3).unwrap();
        let v = [1.0, 2.0, 3.0];
        assert_eq!(id.mat_vec(&v).unwrap(), v.to_vec());
    }

    #[test]
    fn display_contains_entries() {
        let s = m22().to_string();
        assert!(s.contains("1.000"));
        assert!(s.contains("4.000"));
    }
}
