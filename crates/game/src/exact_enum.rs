//! Exact-arithmetic support enumeration — the trust-anchor oracle.
//!
//! This is the third, independent equilibrium oracle of the harness.
//! It walks the same equal-size support pairs as
//! [`support_enum::enumerate_equilibria`](crate::support_enum::enumerate_equilibria)
//! but computes over [`Rat`] (exact big-int rationals from
//! `cnash-exact`), so it has **no tolerances anywhere**:
//!
//! * the indifference system of a support pair is solved by exact
//!   Gaussian elimination, and "singular" means *exactly* singular —
//!   the rank test `f64` elimination cannot perform;
//! * a singular-but-consistent system describes a **continuum** of
//!   equilibria; instead of giving up (which is what the float
//!   enumerator must do, and the source of every `?`-labelled
//!   unclassified hit in diffcheck), the exact path hands the system —
//!   indifference rows, the probability simplex, and the off-support
//!   best-response inequalities, all of which are linear — to the
//!   exact two-phase simplex and obtains a **vertex representative**
//!   of the face, certified feasible by construction;
//! * feasibility (`q ≥ 0`) and best-response slack are exact
//!   comparisons, so every returned profile is a *mathematically
//!   certain* Nash equilibrium, re-checkable by substitution with
//!   [`verify_exact`].
//!
//! Float oracles are checked **against** this one, never the reverse.

use crate::bimatrix::BimatrixGame;
use crate::equilibrium::Equilibrium;
use crate::error::GameError;
use crate::strategy::MixedStrategy;
use crate::support_enum::{subsets_of_size, MAX_ENUM_ACTIONS};
use cnash_exact::linalg::{solve as exact_solve, LinSolve};
use cnash_exact::{feasible_point, Constraint, Rat};

/// An exactly-certified Nash equilibrium.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactEquilibrium {
    /// Row player's mixture, exact, sums to exactly one.
    pub row: Vec<Rat>,
    /// Column player's mixture, exact, sums to exactly one.
    pub col: Vec<Rat>,
    /// `true` iff at least one side's indifference system was exactly
    /// singular, i.e. this profile is a simplex **vertex
    /// representative** sampled from a continuum of equilibria rather
    /// than an isolated point.
    pub singular: bool,
}

impl ExactEquilibrium {
    /// Rounds the exact profile to an `f64` [`Equilibrium`] record
    /// (nearest-float per coordinate; the Nash gap is recomputed in
    /// `f64` and is near zero, not exactly zero, by construction).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::ShapeMismatch`] if the profile does not
    /// fit `game`.
    pub fn to_equilibrium(&self, game: &BimatrixGame) -> Result<Equilibrium, GameError> {
        let row = MixedStrategy::new(self.row.iter().map(Rat::to_f64).collect())?;
        let col = MixedStrategy::new(self.col.iter().map(Rat::to_f64).collect())?;
        if row.len() != game.row_actions() || col.len() != game.col_actions() {
            return Err(GameError::ShapeMismatch {
                left: (game.row_actions(), game.col_actions()),
                right: (row.len(), col.len()),
            });
        }
        Ok(Equilibrium::from_profile(game, row, col))
    }
}

/// Enumerates Nash equilibria of `game` in exact rational arithmetic.
///
/// Walks every equal-size support pair (the same walk as the float
/// enumerator). Unique indifference systems are accepted or rejected
/// by exact comparison; exactly-singular systems are resolved by the
/// exact simplex, contributing a vertex representative of the
/// continuum they describe (flagged [`ExactEquilibrium::singular`]).
/// Results are deduplicated by exact equality and sorted by exact
/// profile order, so the output is bit-reproducible.
///
/// # Panics
///
/// Panics if either player has more than [`MAX_ENUM_ACTIONS`] actions
/// (same bound as the float enumerator) or a payoff is non-finite
/// (impossible for a validated [`BimatrixGame`]).
pub fn enumerate_exact(game: &BimatrixGame) -> Vec<ExactEquilibrium> {
    let n = game.row_actions();
    let m = game.col_actions();
    assert!(
        n <= MAX_ENUM_ACTIONS && m <= MAX_ENUM_ACTIONS,
        "exact enumeration limited to {MAX_ENUM_ACTIONS} actions per player"
    );

    // Exact payoff tables, converted once: `a[i][j]` pays the row
    // player, `bt[j][i]` (transposed) pays the column player.
    let a: Vec<Vec<Rat>> = (0..n)
        .map(|i| (0..m).map(|j| exact(game.row_payoffs()[(i, j)])).collect())
        .collect();
    let bt: Vec<Vec<Rat>> = (0..m)
        .map(|j| (0..n).map(|i| exact(game.col_payoffs()[(i, j)])).collect())
        .collect();

    let mut found: Vec<ExactEquilibrium> = Vec::new();
    for k in 1..=n.min(m) {
        for s in subsets_of_size(n, k) {
            for t in subsets_of_size(m, k) {
                let Some((q, q_sing)) = solve_side(&a, &s, &t, m) else {
                    continue;
                };
                let Some((p, p_sing)) = solve_side(&bt, &t, &s, n) else {
                    continue;
                };
                let eq = ExactEquilibrium {
                    row: p,
                    col: q,
                    singular: q_sing || p_sing,
                };
                debug_assert!(verify_exact(game, &eq), "support-pair solution must verify");
                if !found.iter().any(|e| e.row == eq.row && e.col == eq.col) {
                    found.push(eq);
                }
            }
        }
    }
    found.sort_by(|x, y| x.row.cmp(&y.row).then_with(|| x.col.cmp(&y.col)));
    found
}

/// Re-verifies an exact profile by direct substitution: both mixtures
/// are nonnegative and sum to exactly one, and each player's expected
/// payoff exactly equals their best pure-action payoff against the
/// opponent's mixture. No tolerance is involved; `true` means the
/// profile is a Nash equilibrium with mathematical certainty.
pub fn verify_exact(game: &BimatrixGame, eq: &ExactEquilibrium) -> bool {
    let n = game.row_actions();
    let m = game.col_actions();
    if eq.row.len() != n || eq.col.len() != m {
        return false;
    }
    let simplex_ok = |v: &[Rat]| {
        !v.iter().any(Rat::is_negative)
            && v.iter().fold(Rat::zero(), |acc, x| &acc + x) == Rat::one()
    };
    if !simplex_ok(&eq.row) || !simplex_ok(&eq.col) {
        return false;
    }
    // Row player: payoff vector (A q), value p · (A q); Nash iff the
    // value equals the maximum entry (support ⊆ argmax).
    let aq: Vec<Rat> = (0..n)
        .map(|i| {
            (0..m).fold(Rat::zero(), |acc, j| {
                &acc + &(&exact(game.row_payoffs()[(i, j)]) * &eq.col[j])
            })
        })
        .collect();
    let pb: Vec<Rat> = (0..m)
        .map(|j| {
            (0..n).fold(Rat::zero(), |acc, i| {
                &acc + &(&exact(game.col_payoffs()[(i, j)]) * &eq.row[i])
            })
        })
        .collect();
    let value = |weights: &[Rat], payoffs: &[Rat]| {
        weights
            .iter()
            .zip(payoffs)
            .fold(Rat::zero(), |acc, (w, u)| &acc + &(w * u))
    };
    let best = |payoffs: &[Rat]| payoffs.iter().max().cloned().expect("nonempty action set");
    value(&eq.row, &aq) == best(&aq) && value(&eq.col, &pb) == best(&pb)
}

/// The **exact** Nash regret of an arbitrary `f64` profile: the larger
/// of the two players' best-response payoff gaps
/// `max_i (A q)_i − p·(A q)` and `max_j (Bᵀp)_j − q·(Bᵀp)`, computed in
/// exact rational arithmetic after exact dyadic conversion of every
/// probability and payoff. This is how the trust anchor *refutes* a
/// float oracle's claim: a profile whose exact regret exceeds the
/// claiming tolerance is certainly not the equilibrium it was sold as,
/// with no rounding left to hide behind.
///
/// # Panics
///
/// Panics if the profile shapes do not match `game` or any probability
/// is non-finite.
pub fn exact_profile_regret(game: &BimatrixGame, p: &MixedStrategy, q: &MixedStrategy) -> Rat {
    let n = game.row_actions();
    let m = game.col_actions();
    assert_eq!(p.len(), n, "row strategy length");
    assert_eq!(q.len(), m, "column strategy length");
    let pr: Vec<Rat> = p.probs().iter().map(|&x| exact(x)).collect();
    let qr: Vec<Rat> = q.probs().iter().map(|&x| exact(x)).collect();
    let aq: Vec<Rat> = (0..n)
        .map(|i| {
            (0..m).fold(Rat::zero(), |acc, j| {
                &acc + &(&exact(game.row_payoffs()[(i, j)]) * &qr[j])
            })
        })
        .collect();
    let pb: Vec<Rat> = (0..m)
        .map(|j| {
            (0..n).fold(Rat::zero(), |acc, i| {
                &acc + &(&exact(game.col_payoffs()[(i, j)]) * &pr[i])
            })
        })
        .collect();
    let gap = |weights: &[Rat], payoffs: &[Rat]| {
        let value = weights
            .iter()
            .zip(payoffs)
            .fold(Rat::zero(), |acc, (w, u)| &acc + &(w * u));
        let best = payoffs.iter().max().cloned().expect("nonempty action set");
        &best - &value
    };
    let row_gap = gap(&pr, &aq);
    let col_gap = gap(&qr, &pb);
    row_gap.max(col_gap)
}

/// The exact value of a finite payoff entry.
fn exact(x: f64) -> Rat {
    Rat::from_f64(x).expect("validated games have finite payoffs")
}

/// Solves one side of a support pair exactly: find the *opponent*
/// mixture (full length `opp_len`, support `t`) that makes the focal
/// player exactly indifferent across their support `s`, exactly
/// feasible, and exactly un-beaten by any off-support action. Returns
/// the mixture and whether the indifference system was singular.
///
/// `a` is the focal player's payoff table, focal actions indexing the
/// outer `Vec`.
fn solve_side(
    a: &[Vec<Rat>],
    s: &[usize],
    t: &[usize],
    opp_len: usize,
) -> Option<(Vec<Rat>, bool)> {
    let k = s.len();
    debug_assert_eq!(k, t.len());

    // Indifference rows: (A x)_{s[0]} − (A x)_{s[r]} = 0 for r = 1..k,
    // plus the normalization Σ x = 1, over unknowns x_j, j ∈ t.
    let mut rows: Vec<Vec<Rat>> = Vec::with_capacity(k);
    for r in 1..k {
        rows.push(
            t.iter()
                .map(|&j| &a[s[0]][j] - &a[s[r]][j])
                .collect::<Vec<_>>(),
        );
    }
    rows.push(vec![Rat::one(); k]);
    let mut rhs = vec![Rat::zero(); k - 1];
    rhs.push(Rat::one());

    // Off-support best-response rows, linear in x:
    // (A x)_i ≤ (A x)_{s[0]}  ⇔  Σ_j (a[i][j] − a[s0][j]) x_j ≤ 0.
    let off_rows = || {
        (0..a.len()).filter(|i| !s.contains(i)).map(|i| {
            t.iter()
                .map(|&j| &a[i][j] - &a[s[0]][j])
                .collect::<Vec<_>>()
        })
    };

    let (sol, singular) = match exact_solve(&rows, &rhs) {
        LinSolve::Unique(sol) => {
            // Exact feasibility and best-response checks.
            if sol.iter().any(Rat::is_negative) {
                return None;
            }
            let zero = Rat::zero();
            for row in off_rows() {
                let slack = row
                    .iter()
                    .zip(&sol)
                    .fold(Rat::zero(), |acc, (c, x)| &acc + &(c * x));
                if slack > zero {
                    return None;
                }
            }
            (sol, false)
        }
        LinSolve::Singular => {
            // The support pair describes a continuum (or nothing).
            // Assemble the full linear system — indifference equalities,
            // normalization, off-support inequalities, x ≥ 0 implicit —
            // and let the exact simplex decide feasibility, returning a
            // vertex of the face as its representative.
            let mut cs: Vec<Constraint> = rows
                .iter()
                .zip(&rhs)
                .map(|(row, b)| Constraint::eq(row.clone(), b.clone()))
                .collect();
            cs.extend(off_rows().map(|row| Constraint::le(row, Rat::zero())));
            (feasible_point(k, &cs)?, true)
        }
    };

    let mut x = vec![Rat::zero(); opp_len];
    for (idx, &j) in t.iter().enumerate() {
        x[j] = sol[idx].clone();
    }
    Some((x, singular))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games;
    use crate::support_enum::enumerate_equilibria;

    fn r(a: i64, b: i64) -> Rat {
        Rat::from_ratio(a, b)
    }

    #[test]
    fn bos_exact_equilibria() {
        let g = games::battle_of_the_sexes();
        let eqs = enumerate_exact(&g);
        assert_eq!(eqs.len(), 3);
        assert!(eqs.iter().all(|e| verify_exact(&g, e)));
        assert!(eqs.iter().all(|e| !e.singular), "BoS is nondegenerate");
        // The mixed equilibrium is exactly (2/3, 1/3) x (1/3, 2/3).
        assert!(eqs
            .iter()
            .any(|e| e.row == vec![r(2, 3), r(1, 3)] && e.col == vec![r(1, 3), r(2, 3)]));
    }

    #[test]
    fn matching_pennies_exact_half() {
        let g = games::matching_pennies();
        let eqs = enumerate_exact(&g);
        assert_eq!(eqs.len(), 1);
        assert_eq!(eqs[0].row, vec![r(1, 2), r(1, 2)]);
        assert_eq!(eqs[0].col, vec![r(1, 2), r(1, 2)]);
        assert!(!eqs[0].singular);
    }

    #[test]
    fn agrees_with_float_enumerator_on_named_games() {
        for g in [
            games::battle_of_the_sexes(),
            games::prisoners_dilemma(),
            games::stag_hunt(),
            games::hawk_dove(),
            games::coordination(3).unwrap(),
        ] {
            let float_eqs = enumerate_equilibria(&g, 1e-9);
            let exact_eqs = enumerate_exact(&g);
            // Every float equilibrium appears among the exact ones.
            for fe in &float_eqs {
                assert!(
                    exact_eqs.iter().any(|ee| {
                        let e = ee.to_equilibrium(&g).unwrap();
                        fe.same_profile(&e, 1e-6)
                    }),
                    "{}: float equilibrium {fe} missing from exact set",
                    g.name()
                );
            }
            // And every exact equilibrium passes f64 verification too.
            for ee in &exact_eqs {
                let e = ee.to_equilibrium(&g).unwrap();
                assert!(
                    g.is_equilibrium(&e.row, &e.col, 1e-7),
                    "{}: exact equilibrium fails float verification",
                    g.name()
                );
            }
        }
    }

    #[test]
    fn singular_continuum_gets_a_vertex_representative() {
        // Row player is payoff-indifferent everywhere (A ≡ 0), column
        // player plays matching pennies. On the full support pair the
        // row-side indifference system is exactly singular (0 = 0 rows)
        // and the equilibria `p = (1/2, 1/2) × any q` form a continuum.
        // The float enumerator drops that pair; the exact path must
        // resolve it through the simplex and certify a vertex.
        let m = crate::Matrix::from_rows(&[vec![0.0, 0.0], vec![0.0, 0.0]]).unwrap();
        let b = crate::Matrix::from_rows(&[vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap();
        let g = BimatrixGame::new("indiff-pennies", m, b).unwrap();
        let eqs = enumerate_exact(&g);
        let singular: Vec<_> = eqs.iter().filter(|e| e.singular).collect();
        assert!(
            !singular.is_empty(),
            "singular full-support pair must surface a representative"
        );
        assert!(
            singular
                .iter()
                .any(|e| e.row == vec![r(1, 2), r(1, 2)] && e.col.contains(&Rat::one())),
            "vertex of the continuum: p = (1/2, 1/2), q a simplex vertex; got {singular:?}"
        );
        for e in &eqs {
            assert!(verify_exact(&g, e), "representative must verify exactly");
        }
    }

    #[test]
    fn verify_exact_rejects_non_equilibria() {
        let g = games::prisoners_dilemma();
        // Cooperate/cooperate is NOT an equilibrium of the PD.
        let bogus = ExactEquilibrium {
            row: vec![Rat::one(), Rat::zero()],
            col: vec![Rat::one(), Rat::zero()],
            singular: false,
        };
        assert!(!verify_exact(&g, &bogus));
        // Wrong shape.
        let short = ExactEquilibrium {
            row: vec![Rat::one()],
            col: vec![Rat::one(), Rat::zero()],
            singular: false,
        };
        assert!(!verify_exact(&g, &short));
        // Not a probability vector.
        let unnormalized = ExactEquilibrium {
            row: vec![r(1, 2), r(1, 4)],
            col: vec![Rat::one(), Rat::zero()],
            singular: false,
        };
        assert!(!verify_exact(&g, &unnormalized));
    }

    #[test]
    fn output_is_sorted_and_deduplicated() {
        let g = games::coordination(3).unwrap();
        let eqs = enumerate_exact(&g);
        for w in eqs.windows(2) {
            let ka = (&w[0].row, &w[0].col);
            let kb = (&w[1].row, &w[1].col);
            assert!(ka < kb, "exact output must be strictly sorted");
        }
    }
}
