//! Canonical game identity: a name-independent fingerprint of a
//! [`BimatrixGame`]'s payoff structure.
//!
//! Long-running services memoize *programmed instances* (crossbar
//! mappings, QUBO builds) across requests. Two requests describing the
//! same payoffs must hit the same cache line even when the games carry
//! different display names or arrived through different spec forms
//! (builtin, explicit matrices, seeded generator) — so the cache key
//! must be derived from the game's **canonical form**:
//!
//! * the shape `(n, m)` and the two payoff matrices, row-major,
//! * each payoff canonicalised to its IEEE-754 bit pattern with the
//!   single redundancy removed (`-0.0` → `+0.0`),
//! * the display name excluded.
//!
//! [`BimatrixGame::canonical_fingerprint`] hashes that canonical byte
//! stream with 64-bit FNV-1a ([`Hasher64`]), which is stable across
//! platforms, builds and process runs. The fingerprint identifies the
//! *strategic* instance: games differing only in name collide (by
//! design), games differing in any payoff or in shape do not (up to the
//! 64-bit collision bound, amply below the size of any in-process
//! cache).

use crate::bimatrix::BimatrixGame;
use crate::matrix::Matrix;

/// Streaming 64-bit FNV-1a hasher.
///
/// Deterministic and dependency-free; the same construction the
/// workspace's vendored proptest uses for test seeds. Collisions are
/// harmless for in-process memoization (a collision could only alias
/// two cache keys, and 64 bits make that astronomically unlikely at
/// cache sizes that fit in memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hasher64 {
    state: u64,
}

impl Hasher64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self {
            state: Self::OFFSET_BASIS,
        }
    }

    /// Absorbs raw bytes.
    pub(crate) fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Absorbs a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Absorbs a `usize` widened to 64 bits (platform-independent).
    pub(crate) fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Absorbs an `f64` by canonical bit pattern (`-0.0` → `+0.0`, so
    /// numerically equal payoffs hash equal).
    pub(crate) fn write_f64(&mut self, v: f64) -> &mut Self {
        let canonical = if v == 0.0 { 0.0f64 } else { v };
        self.write_u64(canonical.to_bits())
    }

    /// Absorbs a string (length-prefixed, so concatenations cannot
    /// alias).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes())
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Hasher64 {
    fn default() -> Self {
        Self::new()
    }
}

fn write_matrix(h: &mut Hasher64, m: &Matrix) {
    h.write_usize(m.rows());
    h.write_usize(m.cols());
    for i in 0..m.rows() {
        for &v in m.row(i) {
            h.write_f64(v);
        }
    }
}

/// The canonical fingerprint of a game's payoff structure (shape + both
/// payoff matrices; the display name is excluded). See the module docs
/// for the exact canonical form.
pub fn game_fingerprint(game: &BimatrixGame) -> u64 {
    let mut h = Hasher64::new();
    h.write_str("cnash-game-v1");
    write_matrix(&mut h, game.row_payoffs());
    write_matrix(&mut h, game.col_payoffs());
    h.finish()
}

impl BimatrixGame {
    /// The canonical, name-independent fingerprint of this game
    /// ([`game_fingerprint`]): equal-payoff games hash equal whatever
    /// they are called, which is what instance caches key on.
    pub fn canonical_fingerprint(&self) -> u64 {
        game_fingerprint(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games;

    #[test]
    fn name_does_not_affect_the_fingerprint() {
        let a = games::battle_of_the_sexes();
        let b = BimatrixGame::new(
            "совершенно другое имя",
            a.row_payoffs().clone(),
            a.col_payoffs().clone(),
        )
        .unwrap();
        assert_eq!(a.canonical_fingerprint(), b.canonical_fingerprint());
    }

    #[test]
    fn any_payoff_change_changes_the_fingerprint() {
        let a = games::battle_of_the_sexes();
        let mut rows: Vec<Vec<f64>> = (0..a.row_payoffs().rows())
            .map(|i| a.row_payoffs().row(i).to_vec())
            .collect();
        rows[1][1] += 1.0;
        let m = Matrix::from_rows(&rows).unwrap();
        let b = BimatrixGame::new(a.name(), m, a.col_payoffs().clone()).unwrap();
        assert_ne!(a.canonical_fingerprint(), b.canonical_fingerprint());
    }

    #[test]
    fn swapping_the_players_matrices_changes_the_fingerprint() {
        let a = games::battle_of_the_sexes();
        let b =
            BimatrixGame::new(a.name(), a.col_payoffs().clone(), a.row_payoffs().clone()).unwrap();
        assert_ne!(a.canonical_fingerprint(), b.canonical_fingerprint());
    }

    #[test]
    fn shape_is_part_of_the_identity() {
        // A 1x4 and a 2x2 game with the same flattened payoffs must not
        // collide: the shape prefix separates them.
        let flat = [1.0, 2.0, 3.0, 4.0];
        let wide = Matrix::new(1, 4, flat.to_vec()).unwrap();
        let square = Matrix::new(2, 2, flat.to_vec()).unwrap();
        let a = BimatrixGame::new("wide", wide.clone(), wide).unwrap();
        let b = BimatrixGame::new("square", square.clone(), square).unwrap();
        assert_ne!(a.canonical_fingerprint(), b.canonical_fingerprint());
    }

    #[test]
    fn negative_zero_is_canonicalised() {
        let m = |z: f64| Matrix::new(1, 1, vec![z]).unwrap();
        let a = BimatrixGame::new("z", m(0.0), m(0.0)).unwrap();
        let b = BimatrixGame::new("z", m(-0.0), m(-0.0)).unwrap();
        assert_eq!(a.canonical_fingerprint(), b.canonical_fingerprint());
    }

    #[test]
    fn fingerprint_is_stable_across_calls() {
        let g = games::matching_pennies();
        assert_eq!(g.canonical_fingerprint(), g.canonical_fingerprint());
        // Distinct builtin games are distinct instances.
        assert_ne!(
            games::matching_pennies().canonical_fingerprint(),
            games::prisoners_dilemma().canonical_fingerprint()
        );
    }

    #[test]
    fn hasher_primitives_do_not_alias() {
        let h = |f: &dyn Fn(&mut Hasher64)| {
            let mut h = Hasher64::new();
            f(&mut h);
            h.finish()
        };
        assert_ne!(
            h(&|h| {
                h.write_str("ab");
            }),
            h(&|h| {
                h.write_str("a").write_str("b");
            }),
            "length prefixes must separate string boundaries"
        );
        assert_ne!(
            h(&|h| {
                h.write_u64(1);
            }),
            h(&|h| {
                h.write_f64(1.0);
            })
        );
    }
}
