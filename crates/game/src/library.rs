//! Extended game library (extension): additional named instances with
//! documented equilibrium structure, for tests, demos and scaling
//! studies beyond the three paper benchmarks.

use crate::bimatrix::BimatrixGame;
use crate::error::GameError;
use crate::matrix::Matrix;

fn must(m: Result<Matrix, GameError>) -> Matrix {
    m.expect("library payoff matrices are statically valid")
}

/// *Chicken* (anti-coordination with crash cost 10): two pure swerve/
/// straight equilibria plus a mixed one at `p_straight = 1/10` — off the
/// 1/12 grid, making it a useful ε-NE test case.
pub fn chicken() -> BimatrixGame {
    let m = must(Matrix::from_rows(&[vec![0.0, -1.0], vec![1.0, -10.0]]));
    BimatrixGame::symmetric("Chicken", m).expect("square")
}

/// *Inspection game* (zero-sum flavoured): an inspector chooses to audit
/// or not; a worker chooses to comply or shirk. No pure equilibrium; the
/// unique mixed equilibrium has audit probability 1/2 and shirk
/// probability 1/3 at these payoffs.
pub fn inspection_game() -> BimatrixGame {
    // Rows: inspector {audit, trust}; cols: worker {comply, shirk}.
    let m = must(Matrix::from_rows(&[vec![0.0, 4.0], vec![2.0, 0.0]]));
    let n = must(Matrix::from_rows(&[vec![2.0, 0.0], vec![2.0, 4.0]]));
    BimatrixGame::new("Inspection Game", m, n).expect("shapes")
}

/// *Quantized traveler's dilemma* with claims `{2, 3}` and bonus 2:
/// unique equilibrium at the lowest claim despite higher joint payoffs
/// above — the classic rationality stress test, miniaturised.
pub fn travelers_dilemma_mini() -> BimatrixGame {
    // payoff(i, j) = min(ci, cj) + 2·sign(j−i) with claims c = {2, 3}.
    let m = must(Matrix::from_rows(&[vec![2.0, 4.0], vec![0.0, 3.0]]));
    BimatrixGame::symmetric("Traveler's Dilemma (mini)", m).expect("square")
}

/// *Public goods* with two contribution levels (0 or full), multiplier
/// 1.5 split two ways: contributing returns only 0.75 per unit, so free-
/// riding dominates — unique (defect, defect) equilibrium.
pub fn public_goods_binary() -> BimatrixGame {
    // Endowment 4; contribute all or nothing; pot × 1.5 split evenly:
    // payoff = kept + 0.75 × (own + other contribution).
    // (C,C) = 6, (C,K) = 3, (K,C) = 7, (K,K) = 4.
    let m = must(Matrix::from_rows(&[vec![6.0, 3.0], vec![7.0, 4.0]]));
    BimatrixGame::symmetric("Public Goods (binary)", m).expect("square")
}

/// *Asymmetric matching pennies* (Goeree–Holt "10-40" flavour): unique
/// mixed equilibrium pushed off 50/50 for the column player only —
/// exercises asymmetric mixed-strategy search.
pub fn asymmetric_matching_pennies() -> BimatrixGame {
    let m = must(Matrix::from_rows(&[vec![4.0, 0.0], vec![0.0, 1.0]]));
    let n = must(Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]));
    BimatrixGame::new("Asymmetric Matching Pennies", m, n).expect("shapes")
}

/// *Deadlock*: like Prisoner's Dilemma but mutual defection is jointly
/// optimal — a dominance-solvable sanity instance.
pub fn deadlock() -> BimatrixGame {
    let m = must(Matrix::from_rows(&[vec![1.0, 0.0], vec![3.0, 2.0]]));
    BimatrixGame::symmetric("Deadlock", m).expect("square")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::StrategyKind;
    use crate::reduction::eliminate_dominated;
    use crate::support_enum::{count_by_kind, enumerate_equilibria};
    use crate::MixedStrategy;

    #[test]
    fn chicken_structure() {
        let eqs = enumerate_equilibria(&chicken(), 1e-9);
        let (pure, mixed) = count_by_kind(&eqs, 1e-6);
        assert_eq!((pure, mixed), (2, 1));
        // Mixed: straight with probability 1/10 (indifference:
        // −s = 1 − 11s).
        let m = eqs
            .iter()
            .find(|e| e.kind(1e-6) == StrategyKind::Mixed)
            .expect("mixed NE");
        assert!((m.row.prob(1) - 0.1).abs() < 1e-9, "{}", m.row);
    }

    #[test]
    fn inspection_game_unique_mixed() {
        let g = inspection_game();
        let eqs = enumerate_equilibria(&g, 1e-9);
        assert_eq!(eqs.len(), 1);
        let e = &eqs[0];
        assert_eq!(e.kind(1e-6), StrategyKind::Mixed);
        // Inspector indifference (4s = 2(1−s)) gives shirk s = 1/3;
        // worker indifference (2 = 4(1−a)) gives audit a = 1/2.
        assert!(g.is_equilibrium(&e.row, &e.col, 1e-9));
        assert!((e.row.prob(0) - 0.5).abs() < 1e-9, "audit prob {}", e.row);
        assert!(
            (e.col.prob(1) - 1.0 / 3.0).abs() < 1e-9,
            "shirk prob {}",
            e.col
        );
    }

    #[test]
    fn travelers_dilemma_unique_low_claim() {
        let eqs = enumerate_equilibria(&travelers_dilemma_mini(), 1e-9);
        assert_eq!(eqs.len(), 1);
        assert_eq!(eqs[0].row.pure_action(1e-6), Some(0), "lowest claim wins");
    }

    #[test]
    fn public_goods_free_riding_dominates() {
        let g = public_goods_binary();
        let r = eliminate_dominated(&g).unwrap();
        assert_eq!(r.row_map, vec![1], "keep strictly dominates");
        let eqs = enumerate_equilibria(&g, 1e-9);
        assert_eq!(eqs.len(), 1);
        assert_eq!(eqs[0].row.pure_action(1e-6), Some(1));
    }

    #[test]
    fn asymmetric_pennies_mixed_off_centre() {
        let g = asymmetric_matching_pennies();
        let eqs = enumerate_equilibria(&g, 1e-9);
        assert_eq!(eqs.len(), 1);
        let e = &eqs[0];
        // Row player still mixes 50/50; the column player compensates
        // the 4-vs-1 asymmetry by playing the first column with 1/5.
        assert!((e.row.prob(0) - 0.5).abs() < 1e-9);
        assert!((e.col.prob(0) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn deadlock_is_dominance_solvable() {
        let g = deadlock();
        let r = eliminate_dominated(&g).unwrap();
        assert_eq!(r.game.row_actions(), 1);
        let eqs = enumerate_equilibria(&g, 1e-9);
        assert_eq!(eqs.len(), 1);
        assert_eq!(eqs[0].row.pure_action(1e-6), Some(1));
    }

    #[test]
    fn all_library_games_have_verified_equilibria() {
        for g in [
            chicken(),
            inspection_game(),
            travelers_dilemma_mini(),
            public_goods_binary(),
            asymmetric_matching_pennies(),
            deadlock(),
        ] {
            let eqs = enumerate_equilibria(&g, 1e-9);
            assert!(!eqs.is_empty(), "{} has no equilibria", g.name());
            for e in &eqs {
                assert!(g.is_equilibrium(&e.row, &e.col, 1e-7), "{}", g.name());
            }
        }
    }

    #[test]
    fn chicken_mixed_equilibrium_needs_fine_grid() {
        // p = 1/10 is not on the 1/12 grid: documents the ε-NE case.
        let eqs = enumerate_equilibria(&chicken(), 1e-9);
        let m = eqs
            .iter()
            .find(|e| e.kind(1e-6) == StrategyKind::Mixed)
            .expect("mixed NE");
        assert!(!m.row.is_on_grid(12, 1e-9));
        assert!(m.row.is_on_grid(10, 1e-9));
        let _ = MixedStrategy::uniform(2).unwrap();
    }
}
