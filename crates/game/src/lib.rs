//! Game-theory substrate for the C-Nash reproduction.
//!
//! This crate implements everything the C-Nash architecture (and its
//! baselines) need to *talk about* two-player games:
//!
//! * [`Matrix`] — a small dense row-major matrix with the handful of linear
//!   algebra operations required by Nash-equilibrium computations,
//! * [`MixedStrategy`] — a validated probability vector over a player's
//!   actions, including quantization onto the `1/I` grid used by the C-Nash
//!   crossbar mapping,
//! * [`Game`] — the generic N-player game interface solvers are built
//!   against, with [`Profile`] as the unit of exchange,
//! * [`BimatrixGame`] — a two-player game in strategic form with payoff
//!   matrices `M` (row player) and `N` (column player); the first
//!   [`Game`] implementor,
//! * [`Equilibrium`] and ε-Nash verification via best-response conditions,
//! * [`support_enum`] — a support-enumeration solver used as ground truth
//!   (the paper used Nashpy the same way),
//! * [`lemke_howson`] — an independent path-following solver used to
//!   cross-check the enumeration,
//! * [`exact_enum`] — exact-rational support enumeration (over
//!   `cnash-exact` big-int fractions), the trust anchor both float
//!   oracles are checked against: no tolerances, certified singular
//!   continua, simplex vertex representatives,
//! * [`games`] — named benchmark instances, including the three games of the
//!   paper's evaluation section,
//! * [`generators`] — seeded random game generators for scaling studies,
//! * [`families`] — GAMUT-style structured game families (congestion,
//!   dominance-solvable, covariant, sparse, degenerate,
//!   anti-coordination) for differential testing at scale.
//!
//! # Example
//!
//! ```
//! use cnash_game::{games, support_enum::enumerate_equilibria};
//!
//! # fn main() -> Result<(), cnash_game::GameError> {
//! let game = games::battle_of_the_sexes();
//! let eqs = enumerate_equilibria(&game, 1e-9);
//! // Battle of the Sexes has two pure and one mixed equilibrium.
//! assert_eq!(eqs.len(), 3);
//! for eq in &eqs {
//!     assert!(game.is_equilibrium(&eq.row, &eq.col, 1e-6));
//! }
//! # Ok(())
//! # }
//! ```

pub mod bimatrix;
pub mod canonical;
pub mod equilibrium;
pub mod error;
pub mod exact_enum;
pub mod families;
pub mod fictitious_play;
pub mod game;
pub mod games;
pub mod generators;
pub mod lemke_howson;
pub mod library;
pub mod linalg;
pub mod matrix;
pub mod profile;
pub mod reduction;
pub mod replicator;
pub mod strategy;
pub mod support_enum;

pub use bimatrix::BimatrixGame;
pub use equilibrium::{Equilibrium, StrategyKind, SupportClass};
pub use error::GameError;
pub use game::Game;
pub use matrix::Matrix;
pub use profile::Profile;
pub use strategy::MixedStrategy;

/// One-stop import for downstream crates: the game abstraction plus
/// the concrete types every solver touches.
///
/// ```
/// use cnash_game::prelude::*;
///
/// let game = cnash_game::games::matching_pennies();
/// let dynamic: &dyn Game = &game;
/// let profile = Profile::pair(
///     MixedStrategy::uniform(2).unwrap(),
///     MixedStrategy::uniform(2).unwrap(),
/// );
/// assert!(dynamic.is_equilibrium_profile(&profile, 1e-9));
/// ```
pub mod prelude {
    pub use crate::bimatrix::BimatrixGame;
    pub use crate::equilibrium::{Equilibrium, StrategyKind, SupportClass};
    pub use crate::error::GameError;
    pub use crate::game::Game;
    pub use crate::matrix::Matrix;
    pub use crate::profile::Profile;
    pub use crate::strategy::MixedStrategy;
}
