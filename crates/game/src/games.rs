//! Named benchmark game instances.
//!
//! The three paper benchmarks (Sec. 4.2) come from Khan et al. \[8]:
//! *Battle of the Sexes* (2 actions), *Bird Game* (3 actions) and *Modified
//! Prisoner's Dilemma* (8 actions). Battle of the Sexes uses the standard
//! textbook payoffs. The exact payoff matrices of the other two instances
//! are not recoverable from the sources available offline, so this module
//! provides faithful stand-ins with the same action counts and the same
//! qualitative equilibrium structure (a mixture of pure and mixed NE, all
//! representable on the crossbar's probability grid) — see `DESIGN.md` for
//! the substitution rationale. Ground-truth equilibrium sets come from
//! [`crate::support_enum`].

use crate::bimatrix::BimatrixGame;
use crate::error::GameError;
use crate::matrix::Matrix;

/// Default probability-grid interval count that makes every equilibrium of
/// every benchmark game exactly representable (`lcm` of the denominators
/// 2, 3, 4 appearing in the mixed equilibria).
pub const BENCHMARK_INTERVALS: u32 = 12;

fn must(m: Result<Matrix, GameError>) -> Matrix {
    m.expect("benchmark payoff matrices are statically valid")
}

/// *Battle of the Sexes* — paper benchmark 1 (2 actions).
///
/// `M = [[2,0],[0,1]]`, `N = [[1,0],[0,2]]`. Equilibria: two pure
/// (coordinate on either event) and one mixed `p=(2/3,1/3), q=(1/3,2/3)`;
/// 3 in total, matching the paper's target of 3 solutions.
pub fn battle_of_the_sexes() -> BimatrixGame {
    let m = must(Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 1.0]]));
    let n = must(Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]));
    BimatrixGame::new("Battle of the Sexes", m, n).expect("shapes match")
}

/// *Bird Game* — paper benchmark 2 stand-in (3 actions).
///
/// Two birds each choose a nesting site of value 4, 2 or 1. If they pick
/// different sites each enjoys its site's value; if they collide both get
/// nothing. This anti-coordination contest has two pure equilibria
/// (the birds split the two best sites either way) and one mixed
/// equilibrium `p = q = (2/3, 1/3, 0)` — all on the `1/12` grid.
///
/// The original instance from Khan et al. \[8] reports 6 target solutions;
/// our stand-in has 3 (see DESIGN.md: the *coverage-relative* comparison
/// of Fig. 9 is preserved).
pub fn bird_game() -> BimatrixGame {
    // M[i][j] = v_i if i != j else 0 ; N = M transposed structure.
    let v = [4.0, 2.0, 1.0];
    let mut m = must(Matrix::filled(3, 3, 0.0));
    let mut n = must(Matrix::filled(3, 3, 0.0));
    for i in 0..3 {
        for j in 0..3 {
            if i != j {
                m[(i, j)] = v[i];
                n[(i, j)] = v[j];
            }
        }
    }
    BimatrixGame::new("Bird Game", m, n).expect("shapes match")
}

/// *Modified Prisoner's Dilemma* — paper benchmark 3 stand-in (8 actions).
///
/// Each prisoner chooses Cooperate or Defect together with one of four
/// "signal" variants (actions 0–3 cooperate, 4–7 defect). Base payoffs are
/// the classic PD (`CC=3, CD=0, DC=5, DD=1`) plus a `+1` coordination bonus
/// when both defect with the *same* variant. Defection strictly dominates,
/// and the defect block is a 4-action coordination subgame, so the game has
/// exactly 15 equilibria: 4 pure and 11 mixed (uniform mixtures over every
/// non-empty subset of defect variants), all on the `1/12` grid.
///
/// The original instance reports 25 target solutions; ours has 15 with the
/// same many-equilibria character (see DESIGN.md).
pub fn modified_prisoners_dilemma() -> BimatrixGame {
    let n_act = 8;
    let is_defect = |a: usize| a >= 4;
    let variant = |a: usize| a % 4;
    let mut m = must(Matrix::filled(n_act, n_act, 0.0));
    let mut n = must(Matrix::filled(n_act, n_act, 0.0));
    for i in 0..n_act {
        for j in 0..n_act {
            let (di, dj) = (is_defect(i), is_defect(j));
            let base_row = match (di, dj) {
                (false, false) => 3.0,
                (false, true) => 0.0,
                (true, false) => 5.0,
                (true, true) => 1.0 + if variant(i) == variant(j) { 1.0 } else { 0.0 },
            };
            let base_col = match (di, dj) {
                (false, false) => 3.0,
                (false, true) => 5.0,
                (true, false) => 0.0,
                (true, true) => 1.0 + if variant(i) == variant(j) { 1.0 } else { 0.0 },
            };
            m[(i, j)] = base_row;
            n[(i, j)] = base_col;
        }
    }
    BimatrixGame::new("Modified Prisoner's Dilemma", m, n).expect("shapes match")
}

/// Classic *Prisoner's Dilemma* (action 0 = cooperate, 1 = defect).
pub fn prisoners_dilemma() -> BimatrixGame {
    let m = must(Matrix::from_rows(&[vec![3.0, 0.0], vec![5.0, 1.0]]));
    let n = m.transposed();
    BimatrixGame::new("Prisoner's Dilemma", m, n).expect("shapes match")
}

/// *Matching Pennies* — zero-sum, unique fully mixed equilibrium.
pub fn matching_pennies() -> BimatrixGame {
    let m = must(Matrix::from_rows(&[vec![1.0, -1.0], vec![-1.0, 1.0]]));
    BimatrixGame::zero_sum("Matching Pennies", m).expect("valid")
}

/// *Rock–Paper–Scissors* — zero-sum, unique uniform equilibrium.
pub fn rock_paper_scissors() -> BimatrixGame {
    let m = must(Matrix::from_rows(&[
        vec![0.0, -1.0, 1.0],
        vec![1.0, 0.0, -1.0],
        vec![-1.0, 1.0, 0.0],
    ]));
    BimatrixGame::zero_sum("Rock-Paper-Scissors", m).expect("valid")
}

/// *Stag Hunt* — two pure and one mixed equilibrium (`q_stag = 3/4`).
pub fn stag_hunt() -> BimatrixGame {
    let m = must(Matrix::from_rows(&[vec![4.0, 0.0], vec![3.0, 3.0]]));
    BimatrixGame::symmetric("Stag Hunt", m).expect("square")
}

/// *Hawk–Dove* with `V = 2, C = 4` — two pure anti-coordination
/// equilibria and the mixed ESS `p_hawk = 1/2`.
pub fn hawk_dove() -> BimatrixGame {
    let m = must(Matrix::from_rows(&[vec![-1.0, 2.0], vec![0.0, 1.0]]));
    BimatrixGame::symmetric("Hawk-Dove", m).expect("square")
}

/// Pure coordination on `n` actions (`M = N = Iₙ`), which has `2ⁿ − 1`
/// equilibria (one uniform mixture per non-empty action subset).
///
/// # Errors
///
/// Returns [`GameError::EmptyActionSet`] if `n == 0`.
pub fn coordination(n: usize) -> Result<BimatrixGame, GameError> {
    let m = Matrix::identity(n)?;
    BimatrixGame::new(format!("Coordination-{n}"), m.clone(), m)
}

/// One paper benchmark together with its evaluation parameters from
/// Sec. 4.2 (iterations per SA run).
#[derive(Debug, Clone)]
pub struct PaperBenchmark {
    /// The game instance.
    pub game: BimatrixGame,
    /// SA iterations per run used in the paper for this instance.
    pub paper_iterations: usize,
    /// Number of distinct target solutions the *paper* reports for its
    /// (unavailable) instance — ours may differ; see DESIGN.md.
    pub paper_target_solutions: usize,
}

/// The three benchmarks of Table 1 / Figs. 8–10, with their paper
/// parameters (5000 SA runs of 10000/15000/50000 iterations).
pub fn paper_benchmarks() -> Vec<PaperBenchmark> {
    vec![
        PaperBenchmark {
            game: battle_of_the_sexes(),
            paper_iterations: 10_000,
            paper_target_solutions: 3,
        },
        PaperBenchmark {
            game: bird_game(),
            paper_iterations: 15_000,
            paper_target_solutions: 6,
        },
        PaperBenchmark {
            game: modified_prisoners_dilemma(),
            paper_iterations: 50_000,
            paper_target_solutions: 25,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::MixedStrategy;
    use crate::support_enum::{count_by_kind, enumerate_equilibria};

    #[test]
    fn bos_payoffs() {
        let g = battle_of_the_sexes();
        assert_eq!(g.row_payoffs()[(0, 0)], 2.0);
        assert_eq!(g.col_payoffs()[(1, 1)], 2.0);
    }

    #[test]
    fn bird_game_equilibrium_structure() {
        let g = bird_game();
        let eqs = enumerate_equilibria(&g, 1e-9);
        let (pure, mixed) = count_by_kind(&eqs, 1e-6);
        assert_eq!(
            (pure, mixed),
            (2, 1),
            "bird game should have 2 pure + 1 mixed"
        );
        // All equilibria on the 1/12 grid.
        for e in &eqs {
            assert!(e.row.is_on_grid(BENCHMARK_INTERVALS, 1e-9), "{e}");
            assert!(e.col.is_on_grid(BENCHMARK_INTERVALS, 1e-9), "{e}");
        }
    }

    #[test]
    fn bird_game_mixed_values() {
        let g = bird_game();
        let p = MixedStrategy::new(vec![2.0 / 3.0, 1.0 / 3.0, 0.0]).unwrap();
        let q = p.clone();
        assert!(g.is_equilibrium(&p, &q, 1e-9));
    }

    #[test]
    fn mpd8_has_fifteen_equilibria() {
        let g = modified_prisoners_dilemma();
        let eqs = enumerate_equilibria(&g, 1e-9);
        assert_eq!(eqs.len(), 15);
        let (pure, mixed) = count_by_kind(&eqs, 1e-6);
        assert_eq!((pure, mixed), (4, 11));
    }

    #[test]
    fn mpd8_defection_dominates() {
        let g = modified_prisoners_dilemma();
        // Every equilibrium support lies within the defect block (actions 4-7).
        for e in enumerate_equilibria(&g, 1e-9) {
            for a in e.row.support(1e-9) {
                assert!(a >= 4, "cooperate action {a} in equilibrium support");
            }
        }
    }

    #[test]
    fn mpd8_equilibria_on_grid() {
        let g = modified_prisoners_dilemma();
        for e in enumerate_equilibria(&g, 1e-9) {
            assert!(e.row.is_on_grid(BENCHMARK_INTERVALS, 1e-9));
            assert!(e.col.is_on_grid(BENCHMARK_INTERVALS, 1e-9));
        }
    }

    #[test]
    fn stag_hunt_mixed_on_grid() {
        let g = stag_hunt();
        let eqs = enumerate_equilibria(&g, 1e-9);
        assert_eq!(eqs.len(), 3);
        for e in &eqs {
            assert!(e.row.is_on_grid(BENCHMARK_INTERVALS, 1e-9));
        }
    }

    #[test]
    fn hawk_dove_structure() {
        let eqs = enumerate_equilibria(&hawk_dove(), 1e-9);
        let (pure, mixed) = count_by_kind(&eqs, 1e-6);
        assert_eq!((pure, mixed), (2, 1));
    }

    #[test]
    fn rps_unique_uniform() {
        let eqs = enumerate_equilibria(&rock_paper_scissors(), 1e-9);
        assert_eq!(eqs.len(), 1);
        for &p in eqs[0].row.probs() {
            assert!((p - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn coordination_counts() {
        assert_eq!(
            enumerate_equilibria(&coordination(2).unwrap(), 1e-9).len(),
            3
        );
        assert_eq!(
            enumerate_equilibria(&coordination(4).unwrap(), 1e-9).len(),
            15
        );
    }

    #[test]
    fn paper_benchmarks_metadata() {
        let b = paper_benchmarks();
        assert_eq!(b.len(), 3);
        assert_eq!(b[0].game.row_actions(), 2);
        assert_eq!(b[1].game.row_actions(), 3);
        assert_eq!(b[2].game.row_actions(), 8);
        assert_eq!(b[2].paper_iterations, 50_000);
    }

    #[test]
    fn payoff_matrices_are_nonneg_integers_after_offset() {
        // The crossbar mapping requires integer payoffs after offsetting;
        // all benchmark games satisfy this with unit scale.
        for b in paper_benchmarks() {
            let m = b.game.row_payoffs();
            let off = m.map(|x| x - m.min());
            assert!(off.is_nonneg_integer(1e-9), "{}", b.game.name());
        }
    }
}
