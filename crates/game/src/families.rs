//! GAMUT-style structured game-family generators.
//!
//! The paper's evaluation exercises a handful of named games plus
//! uniform random integer games ([`crate::generators`]). Differential
//! testing of the hardware solvers needs *structurally diverse*
//! instances — games whose equilibrium landscapes stress different
//! solver behaviours — so this module adds six seeded families in the
//! spirit of the GAMUT benchmark generator suite:
//!
//! | family               | structure                               | stresses |
//! |----------------------|-----------------------------------------|----------|
//! | `congestion`         | resource-choice potential game          | collision avoidance, several pure NE |
//! | `dominance_solvable` | strict-dominance chain, unique pure NE  | convergence to a known target |
//! | `covariant`          | payoff correlation ρ ∈ [−1, 1]          | common-interest ↔ zero-sum spectrum |
//! | `sparse`             | mostly-zero payoffs                     | plateaus, weak gradients |
//! | `degenerate`         | tied payoff levels + duplicated actions | equilibrium continua, oracle corner cases |
//! | `anti_coordination`  | hawk–dove grid (collisions punished)    | asymmetric pure NE + interior mixed NE |
//!
//! Every generator emits **non-negative integer payoffs**, so each
//! instance is exactly representable on the C-Nash crossbar's unary
//! cell mapping and buildable as an S-QUBO.
//!
//! ## Generator parameters: `scale` and `knob`
//!
//! All families share two tuning parameters beyond `size` and `seed`:
//!
//! * **`scale`** is the largest payoff magnitude a generator may emit
//!   (bounded by [`MAX_SCALE`]). It is deliberately small by default
//!   ([`Family::default_scale`]): the crossbar's unary mapping spends
//!   `max payoff` cells per matrix element, so the scale directly
//!   bounds the simulated hardware size.
//! * **`knob`** is the family-specific structural parameter — what it
//!   means, and its valid range, is documented per family by
//!   [`Family::knob_meaning`] (correlation percent for `covariant`,
//!   fill density for `sparse`, dominance gap for `dominance_solvable`,
//!   payoff levels for `degenerate`, collision cap for
//!   `anti_coordination`, max collision delay for `congestion`).
//!   Out-of-range knobs are rejected with
//!   [`GameError::InvalidParameter`], never clamped — a wire-supplied
//!   spec either builds exactly what it names or fails loudly.
//!
//! ## Seeding contract
//!
//! Every generator is a **pure function** of `(rows, cols, scale,
//! knob, seed)`: it draws from a `StdRng` seeded with exactly the given
//! `seed` and consumes randomness in a fixed documented order, so the
//! same tuple always rebuilds the *same* game — bit-for-bit, on every
//! platform, in every thread. This is what lets jobs files, the solver
//! service and the differential-fuzz harness name instances over the
//! wire without shipping payoff matrices (see
//! `cnash_runtime::spec::GameSpec::Family`), and what makes a
//! `diffcheck` counterexample replayable from its spec alone. Distinct
//! seeds produce statistically independent instances; the generators
//! never derive sub-seeds from each other, so `(family, seed)` pairs
//! can be swept in any order. Changing a generator's draw order is a
//! **breaking change** to this contract (it silently reshuffles every
//! seeded instance downstream) and must be treated like a wire-format
//! change. In particular, the rectangular generalisation
//! ([`Family::build_rect`]) loops row-major over `rows × cols`, so a
//! square `build_rect(n, n, ..)` consumes randomness in exactly the
//! order the original square generators did and rebuilds the same
//! instances bit-for-bit.
//!
//! The [`Family`] enum is the registry the wire form and the fuzz grid
//! iterate over; the per-family free functions are the underlying
//! constructors with their parameters spelled out.

use crate::bimatrix::BimatrixGame;
use crate::error::GameError;
use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The structured game families, in registry order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Resource-choice congestion (exact potential) games.
    Congestion,
    /// Iterated-strict-dominance chains with a unique pure equilibrium.
    DominanceSolvable,
    /// Covariant-payoff games with tunable correlation ρ.
    Covariant,
    /// Sparse payoff games (most entries zero).
    Sparse,
    /// Degenerate many-equilibria games (tied levels, duplicate actions).
    Degenerate,
    /// Anti-coordination / hawk–dove grids.
    AntiCoordination,
}

impl Family {
    /// Every family, in registry order (the order fuzz grids sweep).
    pub const ALL: [Family; 6] = [
        Family::Congestion,
        Family::DominanceSolvable,
        Family::Covariant,
        Family::Sparse,
        Family::Degenerate,
        Family::AntiCoordination,
    ];

    /// The family's wire name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Congestion => "congestion",
            Family::DominanceSolvable => "dominance_solvable",
            Family::Covariant => "covariant",
            Family::Sparse => "sparse",
            Family::Degenerate => "degenerate",
            Family::AntiCoordination => "anti_coordination",
        }
    }

    /// Resolves a wire name.
    pub fn from_name(name: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Default payoff scale (largest payoff magnitude). Kept small on
    /// purpose: the crossbar's unary mapping spends `max payoff` cells
    /// per element, so the scale bounds hardware size.
    pub fn default_scale(self) -> u32 {
        match self {
            Family::DominanceSolvable => 3,
            Family::Degenerate => 4,
            _ => 6,
        }
    }

    /// Default family knob (see [`Family::knob_meaning`]).
    pub fn default_knob(self) -> i64 {
        match self {
            Family::Congestion => 6,        // max collision delay
            Family::DominanceSolvable => 1, // dominance gap
            Family::Covariant => 50,        // ρ = +0.5
            Family::Sparse => 30,           // 30 % fill density
            Family::Degenerate => 2,        // two payoff levels
            Family::AntiCoordination => 1,  // collision payoff cap
        }
    }

    /// What the family-specific `knob` parameter means.
    pub fn knob_meaning(self) -> &'static str {
        match self {
            Family::Congestion => "max collision delay (0..=u32::MAX)",
            Family::DominanceSolvable => "dominance gap (1..=1_000_000)",
            Family::Covariant => "payoff correlation in percent (-100..=100)",
            Family::Sparse => "fill density in percent (1..=100)",
            Family::Degenerate => "distinct payoff levels (1..=scale+1)",
            Family::AntiCoordination => "collision payoff cap (0..scale)",
        }
    }

    /// Builds the `size × size` instance of this family.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::EmptyActionSet`] if `size == 0` and
    /// [`GameError::InvalidParameter`] if `scale == 0` or `knob` is
    /// outside the family's range ([`Family::knob_meaning`]).
    pub fn build(
        self,
        size: usize,
        scale: u32,
        knob: i64,
        seed: u64,
    ) -> Result<BimatrixGame, GameError> {
        self.build_rect(size, size, scale, knob, seed)
    }

    /// Builds the rectangular `rows × cols` instance of this family
    /// (the row player has `rows` actions, the column player `cols`).
    ///
    /// Square calls (`rows == cols == n`) are bit-identical to
    /// [`Family::build`]`(n, ..)` — the rectangular generators consume
    /// randomness in the same row-major order, which the seeding
    /// contract above makes a load-bearing guarantee.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::EmptyActionSet`] if either dimension is
    /// zero and [`GameError::InvalidParameter`] if `scale == 0` or
    /// `knob` is outside the family's range ([`Family::knob_meaning`]).
    pub fn build_rect(
        self,
        rows: usize,
        cols: usize,
        scale: u32,
        knob: i64,
        seed: u64,
    ) -> Result<BimatrixGame, GameError> {
        match self {
            Family::Congestion => congestion_rect(rows, cols, scale, knob, seed),
            Family::DominanceSolvable => dominance_solvable_rect(rows, cols, scale, knob, seed),
            Family::Covariant => covariant_rect(rows, cols, scale, knob, seed),
            Family::Sparse => sparse_rect(rows, cols, scale, knob, seed),
            Family::Degenerate => degenerate_rect(rows, cols, scale, knob, seed),
            Family::AntiCoordination => anti_coordination_rect(rows, cols, scale, knob, seed),
        }
    }
}

/// Upper bound on a family's payoff scale. The crossbar's unary
/// mapping spends `max payoff` cells per element, so scales anywhere
/// near this are already absurd in hardware terms; bounding here also
/// keeps every internal payoff computation (`scale + gap` bonuses,
/// level interpolation) comfortably inside exact-integer arithmetic
/// for wire-supplied parameters.
pub const MAX_SCALE: u32 = 1_000_000;

fn validate(rows: usize, cols: usize, scale: u32) -> Result<(), GameError> {
    if rows == 0 || cols == 0 {
        return Err(GameError::EmptyActionSet);
    }
    if scale == 0 {
        return Err(GameError::InvalidParameter("scale must be positive".into()));
    }
    if scale > MAX_SCALE {
        return Err(GameError::InvalidParameter(format!(
            "scale {scale} exceeds MAX_SCALE ({MAX_SCALE})"
        )));
    }
    Ok(())
}

fn knob_err<T>(family: Family, knob: i64) -> Result<T, GameError> {
    Err(GameError::InvalidParameter(format!(
        "{} knob {knob} out of range: {}",
        family.name(),
        family.knob_meaning()
    )))
}

fn game_from_rows(
    family: Family,
    rows: usize,
    cols: usize,
    seed: u64,
    m: Vec<Vec<f64>>,
    b: Vec<Vec<f64>>,
) -> Result<BimatrixGame, GameError> {
    BimatrixGame::new(
        format!("{}-{rows}x{cols}-seed{seed}", family.name()),
        Matrix::from_rows(&m)?,
        Matrix::from_rows(&b)?,
    )
}

/// A two-player resource-choice **congestion game**: each action picks
/// one of `size` resources with a seeded integer benefit; choosing the
/// same resource as the opponent costs a per-resource collision delay.
/// This is an exact potential game — a player's payoff depends only on
/// their own resource and whether it collided — so pure equilibria
/// exist and mostly avoid collisions.
///
/// `knob` caps the collision delay (delays are drawn in
/// `0..=min(knob, benefit)` so payoffs stay non-negative).
///
/// # Errors
///
/// See [`Family::build`].
pub fn congestion_game(
    size: usize,
    scale: u32,
    knob: i64,
    seed: u64,
) -> Result<BimatrixGame, GameError> {
    congestion_rect(size, size, scale, knob, seed)
}

/// Rectangular congestion: `max(rows, cols)` resources get seeded
/// benefits/delays; the row player picks among the first `rows`, the
/// column player among the first `cols`. Square calls draw exactly the
/// sequence [`congestion_game`] historically drew.
fn congestion_rect(
    rows: usize,
    cols: usize,
    scale: u32,
    knob: i64,
    seed: u64,
) -> Result<BimatrixGame, GameError> {
    validate(rows, cols, scale)?;
    if !(0..=u32::MAX as i64).contains(&knob) {
        return knob_err(Family::Congestion, knob);
    }
    let max_delay = knob as u32;
    let resources = rows.max(cols);
    let mut rng = StdRng::seed_from_u64(seed);
    let benefit: Vec<u32> = (0..resources)
        .map(|_| rng.random_range(1..=scale))
        .collect();
    let delay: Vec<u32> = benefit
        .iter()
        .map(|&b| rng.random_range(0..=b.min(max_delay)))
        .collect();
    let payoff = |own: usize, other: usize| -> f64 {
        let collided = if own == other { delay[own] } else { 0 };
        (benefit[own] - collided) as f64
    };
    let m = (0..rows)
        .map(|i| (0..cols).map(|j| payoff(i, j)).collect())
        .collect();
    let b = (0..rows)
        .map(|i| (0..cols).map(|j| payoff(j, i)).collect())
        .collect();
    game_from_rows(Family::Congestion, rows, cols, seed, m, b)
}

/// An iterated-strict-dominance chain: random noise in `0..=scale` plus
/// a per-action bonus that makes action `i` strictly dominate action
/// `i + 1` for both players, whatever the opponent does. The unique
/// Nash equilibrium is the pure profile `(0, 0)` — a known target the
/// differential harness can assert solvers converge toward.
///
/// `knob` is the dominance gap: consecutive actions differ by at least
/// `gap` in payoff for every opponent action.
///
/// # Errors
///
/// See [`Family::build`].
pub fn dominance_solvable_game(
    size: usize,
    scale: u32,
    knob: i64,
    seed: u64,
) -> Result<BimatrixGame, GameError> {
    dominance_solvable_rect(size, size, scale, knob, seed)
}

/// Rectangular dominance chain: each player's bonus ladder spans their
/// own action count, so both chains still terminate in the unique pure
/// equilibrium `(0, 0)`.
fn dominance_solvable_rect(
    rows: usize,
    cols: usize,
    scale: u32,
    knob: i64,
    seed: u64,
) -> Result<BimatrixGame, GameError> {
    validate(rows, cols, scale)?;
    if !(1..=1_000_000).contains(&knob) {
        return knob_err(Family::DominanceSolvable, knob);
    }
    let gap = knob as u32;
    let mut rng = StdRng::seed_from_u64(seed);
    // Noise spans 0..=scale; a bonus step of scale + gap therefore
    // guarantees strict dominance with margin >= gap. Computed in f64
    // (exact for integers far beyond MAX_SCALE-bounded inputs) so no
    // intermediate fixed-width product can wrap.
    let step = (scale + gap) as f64;
    let row_bonus = |k: usize| (rows - 1 - k) as f64 * step;
    let col_bonus = |k: usize| (cols - 1 - k) as f64 * step;
    let mut draw = |own_bonus: f64| -> f64 { own_bonus + rng.random_range(0..=scale) as f64 };
    let m = (0..rows)
        .map(|i| (0..cols).map(|_| draw(row_bonus(i))).collect())
        .collect();
    let b = (0..rows)
        .map(|_| (0..cols).map(|j| draw(col_bonus(j))).collect())
        .collect();
    game_from_rows(Family::DominanceSolvable, rows, cols, seed, m, b)
}

/// A **covariant-payoff game**: each cell's two payoffs are correlated
/// with tunable ρ. At `knob = 100` (ρ = 1) the players share one payoff
/// function (pure coordination); at `knob = −100` (ρ = −1) payoffs sum
/// to `scale` in every cell (an affine zero-sum game); in between, each
/// cell is correlated with probability `|ρ|` and independent otherwise
/// — the GAMUT covariant-game spectrum, discretised to integers.
///
/// # Errors
///
/// See [`Family::build`].
pub fn covariant_game(
    size: usize,
    scale: u32,
    knob: i64,
    seed: u64,
) -> Result<BimatrixGame, GameError> {
    covariant_rect(size, size, scale, knob, seed)
}

/// Rectangular covariant game: the per-cell correlation structure is
/// shape-agnostic, so this is a plain row-major `rows × cols` sweep.
fn covariant_rect(
    rows: usize,
    cols: usize,
    scale: u32,
    knob: i64,
    seed: u64,
) -> Result<BimatrixGame, GameError> {
    validate(rows, cols, scale)?;
    if !(-100..=100).contains(&knob) {
        return knob_err(Family::Covariant, knob);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = vec![vec![0.0; cols]; rows];
    let mut b = vec![vec![0.0; cols]; rows];
    for (row_m, row_b) in m.iter_mut().zip(b.iter_mut()) {
        for (cell_m, cell_b) in row_m.iter_mut().zip(row_b.iter_mut()) {
            let a = rng.random_range(0..=scale);
            let correlated = (rng.random_range(0..100u32) as i64) < knob.abs();
            let other = if correlated {
                if knob >= 0 {
                    a
                } else {
                    scale - a
                }
            } else {
                rng.random_range(0..=scale)
            };
            *cell_m = a as f64;
            *cell_b = other as f64;
        }
    }
    game_from_rows(Family::Covariant, rows, cols, seed, m, b)
}

/// A **sparse payoff game**: each payoff entry is zero except with
/// `knob` percent probability, in which case it is uniform in
/// `1..=scale`. Sparse games have flat plateaus (weak SA gradients) and
/// — at low densities — equilibrium continua, stressing both the
/// annealers and the oracles.
///
/// # Errors
///
/// See [`Family::build`].
pub fn sparse_game(
    size: usize,
    scale: u32,
    knob: i64,
    seed: u64,
) -> Result<BimatrixGame, GameError> {
    sparse_rect(size, size, scale, knob, seed)
}

/// Rectangular sparse game: independent per-cell draws, row-major.
fn sparse_rect(
    rows: usize,
    cols: usize,
    scale: u32,
    knob: i64,
    seed: u64,
) -> Result<BimatrixGame, GameError> {
    validate(rows, cols, scale)?;
    if !(1..=100).contains(&knob) {
        return knob_err(Family::Sparse, knob);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut draw = |_: usize| -> f64 {
        let filled = (rng.random_range(0..100u32) as i64) < knob;
        if filled {
            rng.random_range(1..=scale) as f64
        } else {
            0.0
        }
    };
    let m = (0..rows)
        .map(|_| (0..cols).map(&mut draw).collect())
        .collect();
    let b = (0..rows)
        .map(|_| (0..cols).map(&mut draw).collect())
        .collect();
    game_from_rows(Family::Sparse, rows, cols, seed, m, b)
}

/// A deliberately **degenerate** game: payoffs are drawn from only
/// `knob` distinct levels (spread over `0..=scale`), and for
/// `size >= 2` one row strategy and one column strategy are exact
/// duplicates of another in *both* payoff matrices. Tied best responses
/// and duplicate actions produce equilibrium continua — the corner
/// cases where naive oracles and solvers disagree first.
///
/// # Errors
///
/// See [`Family::build`].
pub fn degenerate_game(
    size: usize,
    scale: u32,
    knob: i64,
    seed: u64,
) -> Result<BimatrixGame, GameError> {
    degenerate_rect(size, size, scale, knob, seed)
}

/// Rectangular degenerate game: level draws sweep `rows × cols`
/// row-major, then the row duplication indexes `rows` and the column
/// duplication indexes `cols` — the same two draw pairs, in the same
/// order, the square generator made (each dimension needs >= 2 actions
/// for its duplication to exist).
fn degenerate_rect(
    rows: usize,
    cols: usize,
    scale: u32,
    knob: i64,
    seed: u64,
) -> Result<BimatrixGame, GameError> {
    validate(rows, cols, scale)?;
    if !(1..=scale as i64 + 1).contains(&knob) {
        return knob_err(Family::Degenerate, knob);
    }
    let levels = knob as u32;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut draw = |_: usize| -> f64 {
        let idx = rng.random_range(0..levels);
        if levels == 1 {
            scale as f64
        } else {
            // u64 keeps idx * scale exact for MAX_SCALE-bounded inputs
            // (a u32 product would wrap near levels == scale + 1).
            (idx as u64 * scale as u64 / (levels as u64 - 1)) as f64
        }
    };
    let mut m: Vec<Vec<f64>> = (0..rows)
        .map(|_| (0..cols).map(&mut draw).collect())
        .collect();
    let mut b: Vec<Vec<f64>> = (0..rows)
        .map(|_| (0..cols).map(&mut draw).collect())
        .collect();
    // Duplicate a row strategy and a column strategy in both matrices:
    // the duplicated actions are strategically identical.
    if rows >= 2 {
        let r_src = rng.random_range(0..rows as u32) as usize;
        let r_dst = (r_src + 1 + rng.random_range(0..rows as u32 - 1) as usize) % rows;
        m[r_dst] = m[r_src].clone();
        b[r_dst] = b[r_src].clone();
    }
    if cols >= 2 {
        let c_src = rng.random_range(0..cols as u32) as usize;
        let c_dst = (c_src + 1 + rng.random_range(0..cols as u32 - 1) as usize) % cols;
        for row in m.iter_mut().chain(b.iter_mut()) {
            row[c_dst] = row[c_src];
        }
    }
    game_from_rows(Family::Degenerate, rows, cols, seed, m, b)
}

/// An **anti-coordination / hawk–dove grid**: colliding on the same
/// action pays at most `knob` (the crash payoff cap), while
/// mis-coordinating pays in `knob+1..=scale` — the opposite incentive
/// structure of a coordination game. At `size = 2` this is the classic
/// hawk–dove/chicken shape: both off-diagonal pure profiles are
/// equilibria and an interior mixed equilibrium exists between them.
///
/// # Errors
///
/// See [`Family::build`]. `knob` must satisfy `0 <= knob < scale`.
pub fn anti_coordination_game(
    size: usize,
    scale: u32,
    knob: i64,
    seed: u64,
) -> Result<BimatrixGame, GameError> {
    anti_coordination_rect(size, size, scale, knob, seed)
}

/// Rectangular anti-coordination: "collision" still means equal action
/// indices (possible only on the shared `min(rows, cols)` diagonal), so
/// the off-diagonal reward structure survives the shape change.
fn anti_coordination_rect(
    rows: usize,
    cols: usize,
    scale: u32,
    knob: i64,
    seed: u64,
) -> Result<BimatrixGame, GameError> {
    validate(rows, cols, scale)?;
    if !(0..scale as i64).contains(&knob) {
        return knob_err(Family::AntiCoordination, knob);
    }
    let crash = knob as u32;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut draw = |i: usize, j: usize| -> f64 {
        if i == j {
            rng.random_range(0..=crash) as f64
        } else {
            rng.random_range(crash + 1..=scale) as f64
        }
    };
    let m = (0..rows)
        .map(|i| (0..cols).map(|j| draw(i, j)).collect())
        .collect();
    let b = (0..rows)
        .map(|i| (0..cols).map(|j| draw(i, j)).collect())
        .collect();
    game_from_rows(Family::AntiCoordination, rows, cols, seed, m, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support_enum::enumerate_equilibria;

    fn default_build(f: Family, size: usize, seed: u64) -> BimatrixGame {
        f.build(size, f.default_scale(), f.default_knob(), seed)
            .unwrap()
    }

    #[test]
    fn registry_names_round_trip() {
        for f in Family::ALL {
            assert_eq!(Family::from_name(f.name()), Some(f));
        }
        assert_eq!(Family::from_name("no_such_family"), None);
    }

    #[test]
    fn every_family_is_deterministic_integer_and_named() {
        for f in Family::ALL {
            for seed in [0, 7] {
                let a = default_build(f, 3, seed);
                let b = default_build(f, 3, seed);
                assert_eq!(a.row_payoffs(), b.row_payoffs(), "{}", f.name());
                assert_eq!(a.col_payoffs(), b.col_payoffs(), "{}", f.name());
                assert!(a.row_payoffs().is_nonneg_integer(1e-9), "{}", f.name());
                assert!(a.col_payoffs().is_nonneg_integer(1e-9), "{}", f.name());
                assert!(a.name().contains(f.name()));
                assert_eq!((a.row_actions(), a.col_actions()), (3, 3));
            }
            let a = default_build(f, 4, 1);
            let b = default_build(f, 4, 2);
            assert_ne!(
                a.row_payoffs(),
                b.row_payoffs(),
                "{}: seeds must differ",
                f.name()
            );
        }
    }

    #[test]
    fn every_family_has_equilibria_at_small_sizes() {
        for f in Family::ALL {
            for size in [2, 3] {
                for seed in 0..4 {
                    let g = default_build(f, size, seed);
                    assert!(
                        !enumerate_equilibria(&g, 1e-9).is_empty(),
                        "{} size {size} seed {seed} has no equilibria",
                        f.name()
                    );
                }
            }
        }
    }

    #[test]
    fn congestion_payoff_ignores_opponent_unless_colliding() {
        let g = congestion_game(4, 6, 6, 11).unwrap();
        let m = g.row_payoffs();
        for i in 0..4 {
            let free: Vec<f64> = (0..4).filter(|&j| j != i).map(|j| m[(i, j)]).collect();
            assert!(
                free.iter().all(|&v| v == free[0]),
                "row payoff must only depend on own resource off-collision"
            );
            assert!(m[(i, i)] <= free[0], "collision can only cost");
        }
    }

    #[test]
    fn dominance_solvable_has_unique_equilibrium_at_origin() {
        for seed in 0..6 {
            let g = dominance_solvable_game(4, 3, 1, seed).unwrap();
            // Strict dominance: row i beats row i+1 everywhere.
            let m = g.row_payoffs();
            for i in 0..3 {
                for j in 0..4 {
                    assert!(m[(i, j)] > m[(i + 1, j)], "seed {seed}: not a chain");
                }
            }
            let eqs = enumerate_equilibria(&g, 1e-9);
            assert_eq!(eqs.len(), 1, "seed {seed}");
            assert_eq!(eqs[0].row.pure_action(1e-9), Some(0));
            assert_eq!(eqs[0].col.pure_action(1e-9), Some(0));
        }
    }

    #[test]
    fn covariant_extremes_are_coordination_and_constant_sum() {
        let common = covariant_game(4, 6, 100, 3).unwrap();
        assert_eq!(common.row_payoffs(), common.col_payoffs());
        let opposed = covariant_game(4, 6, -100, 3).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(
                    opposed.row_payoffs()[(i, j)] + opposed.col_payoffs()[(i, j)],
                    6.0,
                    "rho=-1 must be constant-sum"
                );
            }
        }
    }

    #[test]
    fn sparse_density_controls_fill() {
        let dense = sparse_game(5, 6, 100, 9).unwrap();
        assert!(dense.row_payoffs().min() >= 1.0, "100% density: no zeros");
        let sparse = sparse_game(5, 6, 10, 9).unwrap();
        let zeros = sparse
            .row_payoffs()
            .as_slice()
            .iter()
            .chain(sparse.col_payoffs().as_slice())
            .filter(|&&v| v == 0.0)
            .count();
        assert!(zeros > 25, "10% density should leave most cells empty");
    }

    #[test]
    fn degenerate_duplicates_a_row_and_a_column_strategy() {
        for seed in 0..6 {
            let g = degenerate_game(4, 4, 2, seed).unwrap();
            let (m, b) = (g.row_payoffs(), g.col_payoffs());
            let dup_row = (0..4).any(|i| {
                (i + 1..4).any(|k| (0..4).all(|j| m[(i, j)] == m[(k, j)] && b[(i, j)] == b[(k, j)]))
            });
            let dup_col = (0..4).any(|j| {
                (j + 1..4).any(|k| (0..4).all(|i| m[(i, j)] == m[(i, k)] && b[(i, j)] == b[(i, k)]))
            });
            assert!(dup_row && dup_col, "seed {seed}: no duplicated strategies");
        }
    }

    #[test]
    fn anti_coordination_2x2_has_both_off_diagonal_equilibria() {
        for seed in 0..6 {
            let g = anti_coordination_game(2, 6, 1, seed).unwrap();
            let pure = g.pure_equilibria(1e-9);
            assert!(pure.contains(&(0, 1)), "seed {seed}: {pure:?}");
            assert!(pure.contains(&(1, 0)), "seed {seed}: {pure:?}");
            assert!(!pure.contains(&(0, 0)) && !pure.contains(&(1, 1)));
        }
    }

    #[test]
    fn rejects_out_of_range_parameters() {
        assert!(congestion_game(0, 6, 6, 0).is_err());
        assert!(congestion_game(3, 0, 6, 0).is_err());
        // Wire-reachable scales above MAX_SCALE are rejected before any
        // arithmetic can wrap (dominance bonuses, degenerate levels).
        for f in Family::ALL {
            assert!(
                f.build(3, MAX_SCALE + 1, f.default_knob(), 0).is_err(),
                "{}: oversized scale accepted",
                f.name()
            );
        }
        assert!(dominance_solvable_game(3, u32::MAX, 1, 0).is_err());
        assert!(degenerate_game(3, u32::MAX, u32::MAX as i64, 0).is_err());
        assert!(congestion_game(3, 6, -1, 0).is_err());
        assert!(dominance_solvable_game(3, 3, 0, 0).is_err());
        assert!(covariant_game(3, 6, 101, 0).is_err());
        assert!(covariant_game(3, 6, -101, 0).is_err());
        assert!(sparse_game(3, 6, 0, 0).is_err());
        assert!(sparse_game(3, 6, 101, 0).is_err());
        assert!(degenerate_game(3, 4, 0, 0).is_err());
        assert!(degenerate_game(3, 4, 6, 0).is_err());
        assert!(anti_coordination_game(3, 6, 6, 0).is_err());
        assert!(anti_coordination_game(3, 6, -1, 0).is_err());
    }

    #[test]
    fn enum_build_matches_direct_constructors() {
        let direct = covariant_game(3, 6, -40, 5).unwrap();
        let via_enum = Family::Covariant.build(3, 6, -40, 5).unwrap();
        assert_eq!(direct, via_enum);
    }

    #[test]
    fn square_build_rect_is_bit_identical_to_build() {
        // The seeding contract: build_rect(n, n, ..) must consume
        // randomness in exactly the order build(n, ..) always did.
        for f in Family::ALL {
            for size in [1, 2, 3, 5] {
                for seed in 0..3 {
                    let square = f
                        .build(size, f.default_scale(), f.default_knob(), seed)
                        .unwrap();
                    let rect = f
                        .build_rect(size, size, f.default_scale(), f.default_knob(), seed)
                        .unwrap();
                    assert_eq!(square, rect, "{} size {size} seed {seed}", f.name());
                }
            }
        }
    }

    #[test]
    fn rectangular_builds_have_the_requested_shape() {
        for f in Family::ALL {
            for (rows, cols) in [(2, 5), (5, 2), (1, 4), (4, 1), (3, 4)] {
                let g = f
                    .build_rect(rows, cols, f.default_scale(), f.default_knob(), 3)
                    .unwrap_or_else(|e| panic!("{} {rows}x{cols}: {e}", f.name()));
                assert_eq!(
                    (g.row_actions(), g.col_actions()),
                    (rows, cols),
                    "{}",
                    f.name()
                );
                assert!(g.row_payoffs().is_nonneg_integer(1e-9), "{}", f.name());
                assert!(g.col_payoffs().is_nonneg_integer(1e-9), "{}", f.name());
                assert!(g.name().contains(&format!("{rows}x{cols}")), "{}", f.name());
                // Determinism holds for rectangular shapes too.
                let again = f
                    .build_rect(rows, cols, f.default_scale(), f.default_knob(), 3)
                    .unwrap();
                assert_eq!(g, again, "{}", f.name());
            }
            assert!(f
                .build_rect(0, 3, f.default_scale(), f.default_knob(), 0)
                .is_err());
            assert!(f
                .build_rect(3, 0, f.default_scale(), f.default_knob(), 0)
                .is_err());
        }
    }

    #[test]
    fn rectangular_dominance_chain_still_targets_the_origin() {
        for seed in 0..4 {
            let g = Family::DominanceSolvable
                .build_rect(4, 2, 3, 1, seed)
                .unwrap();
            let eqs = enumerate_equilibria(&g, 1e-9);
            assert_eq!(eqs.len(), 1, "seed {seed}");
            assert_eq!(eqs[0].row.pure_action(1e-9), Some(0));
            assert_eq!(eqs[0].col.pure_action(1e-9), Some(0));
        }
    }

    #[test]
    fn rectangular_degenerate_still_duplicates_where_possible() {
        let g = Family::Degenerate.build_rect(3, 2, 4, 2, 1).unwrap();
        let (m, b) = (g.row_payoffs(), g.col_payoffs());
        let dup_row = (0..3).any(|i| {
            (i + 1..3).any(|k| (0..2).all(|j| m[(i, j)] == m[(k, j)] && b[(i, j)] == b[(k, j)]))
        });
        let dup_col = (0..2).any(|j| {
            (j + 1..2).any(|k| (0..3).all(|i| m[(i, j)] == m[(i, k)] && b[(i, j)] == b[(i, k)]))
        });
        assert!(
            dup_row && dup_col,
            "3x2 degenerate must duplicate both ways"
        );
        // A single-action dimension simply skips its duplication.
        assert!(Family::Degenerate.build_rect(1, 3, 4, 2, 0).is_ok());
        assert!(Family::Degenerate.build_rect(3, 1, 4, 2, 0).is_ok());
    }
}
