//! Small dense linear-system solver (Gaussian elimination with partial
//! pivoting).
//!
//! Support enumeration repeatedly solves systems of the form
//! `A x = b` for supports of size ≤ n, where n is a player's action count —
//! tiny systems, so a straightforward `O(n³)` elimination is the right tool.

use crate::error::GameError;
use crate::matrix::Matrix;

/// Solves `A x = b` for square `A` using Gaussian elimination with partial
/// pivoting.
///
/// # Errors
///
/// Returns [`GameError::ShapeMismatch`] if `A` is not square or `b` has the
/// wrong length, and [`GameError::SingularSystem`] if a pivot smaller than
/// `1e-12` (relative to the largest row entry) is encountered.
///
/// # Example
///
/// ```
/// use cnash_game::{linalg::solve, Matrix};
///
/// # fn main() -> Result<(), cnash_game::GameError> {
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]])?;
/// let x = solve(&a, &[3.0, 4.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, GameError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(GameError::ShapeMismatch {
            left: a.shape(),
            right: a.shape(),
        });
    }
    if b.len() != n {
        return Err(GameError::ShapeMismatch {
            left: a.shape(),
            right: (b.len(), 1),
        });
    }

    // Augmented system in a mutable working copy.
    let mut w: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let mut row = a.row(i).to_vec();
            row.push(b[i]);
            row
        })
        .collect();

    for col in 0..n {
        // Partial pivot: pick the row with the largest magnitude in `col`.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                w[i][col]
                    .abs()
                    .partial_cmp(&w[j][col].abs())
                    .expect("pivot magnitudes are finite")
            })
            .expect("non-empty pivot range");
        let scale = w[pivot_row]
            .iter()
            .take(n)
            .fold(0.0f64, |acc, &x| acc.max(x.abs()))
            .max(1.0);
        if w[pivot_row][col].abs() < 1e-12 * scale {
            return Err(GameError::SingularSystem);
        }
        w.swap(col, pivot_row);

        for row in col + 1..n {
            let factor = w[row][col] / w[col][col];
            if factor == 0.0 {
                continue;
            }
            let (pivot, rest) = w.split_at_mut(row);
            let (pivot_row, target_row) = (&pivot[col], &mut rest[0]);
            for (t, p) in target_row[col..=n].iter_mut().zip(&pivot_row[col..=n]) {
                *t -= factor * p;
            }
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = w[row][n];
        for k in row + 1..n {
            acc -= w[row][k] * x[k];
        }
        x[row] = acc / w[row][row];
    }
    Ok(x)
}

/// Computes the residual `‖A x − b‖∞` of a candidate solution.
///
/// # Errors
///
/// Returns [`GameError::ShapeMismatch`] if shapes are inconsistent.
pub fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> Result<f64, GameError> {
    let ax = a.mat_vec(x)?;
    if ax.len() != b.len() {
        return Err(GameError::ShapeMismatch {
            left: (ax.len(), 1),
            right: (b.len(), 1),
        });
    }
    Ok(ax
        .iter()
        .zip(b)
        .map(|(p, q)| (p - q).abs())
        .fold(0.0, f64::max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = Matrix::identity(4).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(solve(&a, &b).unwrap(), b.to_vec());
    }

    #[test]
    fn solves_with_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = solve(&a, &[5.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 5.0]);
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(solve(&a, &[1.0, 2.0]), Err(GameError::SingularSystem));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert!(matches!(
            solve(&a, &[1.0, 2.0]),
            Err(GameError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_bad_rhs_len() {
        let a = Matrix::identity(2).unwrap();
        assert!(matches!(
            solve(&a, &[1.0]),
            Err(GameError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let a = Matrix::from_rows(&[
            vec![3.0, 1.0, -1.0],
            vec![1.0, 4.0, 1.0],
            vec![2.0, 1.0, 5.0],
        ])
        .unwrap();
        let b = [2.0, 12.0, 10.0];
        let x = solve(&a, &b).unwrap();
        assert!(residual(&a, &x, &b).unwrap() < 1e-10);
    }

    #[test]
    fn random_system_round_trip() {
        // Deterministic pseudo-random coefficients; verify A·solve(A,b) = b.
        let n = 6;
        let mut seed = 42u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let data: Vec<f64> = (0..n * n).map(|_| next() * 10.0).collect();
        let a = Matrix::new(n, n, data).unwrap();
        let b: Vec<f64> = (0..n).map(|_| next() * 10.0).collect();
        match solve(&a, &b) {
            Ok(x) => assert!(residual(&a, &x, &b).unwrap() < 1e-8),
            Err(GameError::SingularSystem) => (), // astronomically unlikely but legal
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}
