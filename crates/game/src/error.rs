//! Error type shared by the game-theory substrate.

use std::fmt;

/// Errors produced while constructing or manipulating games and strategies.
#[derive(Debug, Clone, PartialEq)]
pub enum GameError {
    /// A matrix was constructed from data whose length does not match the
    /// requested dimensions.
    DimensionMismatch {
        /// Number of rows requested.
        rows: usize,
        /// Number of columns requested.
        cols: usize,
        /// Length of the data actually supplied.
        len: usize,
    },
    /// Two matrices (or a matrix and a vector) have incompatible shapes for
    /// the requested operation.
    ShapeMismatch {
        /// Shape of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        right: (usize, usize),
    },
    /// A probability vector does not describe a valid mixed strategy.
    InvalidStrategy(String),
    /// A payoff entry is not finite (NaN or infinite).
    NonFinitePayoff {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
    },
    /// A game with an empty action set was requested.
    EmptyActionSet,
    /// A linear system had no (unique) solution.
    SingularSystem,
    /// A parameter was outside its documented domain.
    InvalidParameter(String),
}

impl fmt::Display for GameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GameError::DimensionMismatch { rows, cols, len } => write!(
                f,
                "matrix data of length {len} cannot fill {rows}x{cols} entries"
            ),
            GameError::ShapeMismatch { left, right } => write!(
                f,
                "incompatible shapes {}x{} and {}x{}",
                left.0, left.1, right.0, right.1
            ),
            GameError::InvalidStrategy(msg) => write!(f, "invalid mixed strategy: {msg}"),
            GameError::NonFinitePayoff { row, col } => {
                write!(f, "payoff at ({row}, {col}) is not finite")
            }
            GameError::EmptyActionSet => write!(f, "a player must have at least one action"),
            GameError::SingularSystem => write!(f, "linear system is singular"),
            GameError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for GameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = GameError::DimensionMismatch {
            rows: 2,
            cols: 3,
            len: 5,
        };
        assert_eq!(
            e.to_string(),
            "matrix data of length 5 cannot fill 2x3 entries"
        );
    }

    #[test]
    fn display_shape_mismatch() {
        let e = GameError::ShapeMismatch {
            left: (2, 3),
            right: (4, 1),
        };
        assert_eq!(e.to_string(), "incompatible shapes 2x3 and 4x1");
    }

    #[test]
    fn display_invalid_strategy() {
        let e = GameError::InvalidStrategy("sums to 0.5".into());
        assert_eq!(e.to_string(), "invalid mixed strategy: sums to 0.5");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GameError>();
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(GameError::EmptyActionSet);
        assert!(e.to_string().contains("at least one action"));
    }
}
