//! Discrete-time replicator dynamics (extension).
//!
//! The Bird Game is an evolutionary-games classic; replicator dynamics is
//! *the* evolutionary lens on it: strategy shares grow in proportion to
//! their payoff advantage over the population mean. Interior rest points
//! of the dynamic are exactly the interior Nash equilibria, giving us yet
//! another independent cross-check of the ground-truth solvers, plus a
//! stability classification (an unstable mixed NE is exactly the kind SA
//! can represent but population learning cannot reach).

use crate::bimatrix::BimatrixGame;
use crate::error::GameError;
use crate::strategy::MixedStrategy;

/// One trajectory of two-population replicator dynamics.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicatorResult {
    /// Row population's final mixture.
    pub row: MixedStrategy,
    /// Column population's final mixture.
    pub col: MixedStrategy,
    /// Nash gap at the final point.
    pub gap: f64,
    /// Steps taken.
    pub steps: usize,
    /// `true` if the trajectory moved less than `tol` in the final step.
    pub converged: bool,
}

/// Runs discrete-time (Maynard Smith form) two-population replicator
/// dynamics from `(p0, q0)` for at most `max_steps`, stopping early when
/// the per-step movement falls below `tol`.
///
/// Payoffs are shifted positive internally (replicator ratios require
/// positive fitness); the dynamic is invariant to the shift.
///
/// # Errors
///
/// Returns [`GameError::ShapeMismatch`] if the strategies do not match
/// the game, or [`GameError::InvalidParameter`] for a zero step budget.
pub fn replicator_dynamics(
    game: &BimatrixGame,
    p0: &MixedStrategy,
    q0: &MixedStrategy,
    max_steps: usize,
    tol: f64,
) -> Result<ReplicatorResult, GameError> {
    if max_steps == 0 {
        return Err(GameError::InvalidParameter("zero steps".into()));
    }
    let shift = 1.0 - game.row_payoffs().min().min(game.col_payoffs().min());
    let m = game.row_payoffs().map(|x| x + shift);
    let nt = game.col_payoffs().map(|x| x + shift).transposed();

    let mut p = p0.probs().to_vec();
    let mut q = q0.probs().to_vec();
    let mut converged = false;
    let mut steps = 0;

    for _ in 0..max_steps {
        steps += 1;
        let fp = m.mat_vec(&q)?; // row fitnesses
        let fq = nt.mat_vec(&p)?; // column fitnesses
        let mean_p: f64 = p.iter().zip(&fp).map(|(x, f)| x * f).sum();
        let mean_q: f64 = q.iter().zip(&fq).map(|(x, f)| x * f).sum();

        let mut moved: f64 = 0.0;
        for (x, f) in p.iter_mut().zip(&fp) {
            let next = *x * f / mean_p;
            moved = moved.max((next - *x).abs());
            *x = next;
        }
        for (x, f) in q.iter_mut().zip(&fq) {
            let next = *x * f / mean_q;
            moved = moved.max((next - *x).abs());
            *x = next;
        }
        if moved < tol {
            converged = true;
            break;
        }
    }

    let row = MixedStrategy::new(normalise(p))?;
    let col = MixedStrategy::new(normalise(q))?;
    let gap = game.nash_gap(&row, &col)?;
    Ok(ReplicatorResult {
        row,
        col,
        gap,
        steps,
        converged,
    })
}

fn normalise(mut v: Vec<f64>) -> Vec<f64> {
    let s: f64 = v.iter().sum();
    for x in &mut v {
        *x = (*x / s).max(0.0);
    }
    let s: f64 = v.iter().sum();
    for x in &mut v {
        *x /= s;
    }
    v
}

/// Classifies the local stability of an interior equilibrium by nudging
/// it and running the dynamic: returns `true` if trajectories return to
/// within `2·delta` of the equilibrium (Lyapunov-style probe, not a
/// formal eigenvalue test).
///
/// # Errors
///
/// Propagates dynamic errors.
pub fn is_locally_stable(
    game: &BimatrixGame,
    p: &MixedStrategy,
    q: &MixedStrategy,
    delta: f64,
    steps: usize,
) -> Result<bool, GameError> {
    let perturb = |s: &MixedStrategy, sign: f64| -> Result<MixedStrategy, GameError> {
        let mut v = s.probs().to_vec();
        if v.len() < 2 {
            return MixedStrategy::new(v);
        }
        let (hi, _) = v
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty");
        let (lo, _) = v
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty");
        // Transfer delta of mass between the extreme entries, direction
        // set by `sign` (clamped to stay on the simplex).
        let (from, to) = if sign > 0.0 { (hi, lo) } else { (lo, hi) };
        let d = delta.min(v[from]);
        v[from] -= d;
        v[to] += d;
        MixedStrategy::new(v)
    };
    // A saddle returns along its stable manifold but escapes along the
    // unstable one, so probe all four perturbation sign combinations and
    // call the point stable only if every trajectory comes home.
    for sp in [1.0, -1.0] {
        for sq in [1.0, -1.0] {
            let p1 = perturb(p, sp)?;
            let q1 = perturb(q, sq)?;
            let r = replicator_dynamics(game, &p1, &q1, steps, 1e-12)?;
            if r.row.linf_distance(p) > 2.0 * delta || r.col.linf_distance(q) > 2.0 * delta {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games;

    #[test]
    fn converges_to_pure_equilibrium_from_its_basin() {
        let g = games::stag_hunt();
        // Start heavily on stag: converge to (stag, stag).
        let p0 = MixedStrategy::new(vec![0.9, 0.1]).unwrap();
        let r = replicator_dynamics(&g, &p0, &p0, 10_000, 1e-12).unwrap();
        assert!(r.gap < 1e-6);
        assert!(r.row.prob(0) > 0.999);
    }

    #[test]
    fn interior_equilibrium_is_a_rest_point() {
        // Starting exactly at the BoS mixed NE, the dynamic stays put.
        let g = games::battle_of_the_sexes();
        let p = MixedStrategy::new(vec![2.0 / 3.0, 1.0 / 3.0]).unwrap();
        let q = MixedStrategy::new(vec![1.0 / 3.0, 2.0 / 3.0]).unwrap();
        let r = replicator_dynamics(&g, &p, &q, 100, 1e-15).unwrap();
        assert!(r.row.linf_distance(&p) < 1e-9);
        assert!(r.col.linf_distance(&q) < 1e-9);
    }

    #[test]
    fn bos_mixed_equilibrium_is_unstable() {
        let g = games::battle_of_the_sexes();
        let p = MixedStrategy::new(vec![2.0 / 3.0, 1.0 / 3.0]).unwrap();
        let q = MixedStrategy::new(vec![1.0 / 3.0, 2.0 / 3.0]).unwrap();
        let stable = is_locally_stable(&g, &p, &q, 0.01, 50_000).unwrap();
        assert!(!stable, "BoS mixed NE should repel trajectories");
    }

    #[test]
    fn pure_coordination_equilibria_are_stable() {
        let g = games::stag_hunt();
        let p = MixedStrategy::new(vec![1.0 - 1e-9, 1e-9]).unwrap();
        let stable = is_locally_stable(&g, &p, &p, 0.01, 50_000).unwrap();
        assert!(stable, "(stag, stag) should attract");
    }

    #[test]
    fn trajectory_stays_on_simplex() {
        let g = games::bird_game();
        let p0 = MixedStrategy::uniform(3).unwrap();
        let r = replicator_dynamics(&g, &p0, &p0, 5000, 0.0).unwrap();
        assert!((r.row.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((r.col.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_zero_steps() {
        let g = games::battle_of_the_sexes();
        let u = MixedStrategy::uniform(2).unwrap();
        assert!(replicator_dynamics(&g, &u, &u, 0, 1e-9).is_err());
    }

    #[test]
    fn negative_payoff_games_work() {
        // Hawk-Dove has negative payoffs; the internal shift handles it.
        let g = games::hawk_dove();
        let p0 = MixedStrategy::new(vec![0.4, 0.6]).unwrap();
        let r = replicator_dynamics(&g, &p0, &p0, 100_000, 1e-13).unwrap();
        // The symmetric trajectory approaches the mixed ESS p = 1/2.
        assert!((r.row.prob(0) - 0.5).abs() < 0.01, "{}", r.row);
    }
}
