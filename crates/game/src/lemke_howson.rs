//! Lemke–Howson path-following computation of one Nash equilibrium.
//!
//! Used as an independent cross-check of [`crate::support_enum`]: the two
//! algorithms share no code, so agreement between them validates the
//! ground-truth equilibrium sets used throughout the evaluation.
//!
//! The implementation follows the classic complementary-pivoting scheme on
//! two tableaux (one per player) with floating-point arithmetic and a
//! minimum-ratio test; it assumes a nondegenerate game and bails out with
//! [`GameError::SingularSystem`] if pivoting cycles.

use crate::bimatrix::BimatrixGame;
use crate::equilibrium::Equilibrium;
use crate::error::GameError;
use crate::strategy::MixedStrategy;

/// Maximum pivot steps before declaring a cycle (degenerate game).
const MAX_PIVOTS: usize = 10_000;

/// A pivoting tableau representing `basic = rhs − coeffs · nonbasic`.
///
/// Column layout: `n + m` variable columns (one per label) plus a trailing
/// right-hand-side column. `basis[r]` is the label of the basic variable of
/// row `r`.
#[derive(Debug, Clone)]
struct Tableau {
    /// `rows x (labels + 1)` coefficients; last column is the RHS.
    t: Vec<Vec<f64>>,
    basis: Vec<usize>,
}

impl Tableau {
    /// Pivots the variable with label `entering` into the basis.
    /// Returns the label that leaves, or `None` if unbounded/singular.
    fn pivot(&mut self, entering: usize) -> Option<usize> {
        // Minimum ratio test over rows with positive entering coefficient.
        let mut best_row = None;
        let mut best_ratio = f64::INFINITY;
        for (r, row) in self.t.iter().enumerate() {
            let coef = row[entering];
            if coef > 1e-12 {
                let rhs = *row.last().expect("rhs column");
                let ratio = rhs / coef;
                if ratio < best_ratio - 1e-12
                    || (ratio < best_ratio + 1e-12
                        && best_row.is_none_or(|br: usize| self.basis[r] < self.basis[br]))
                {
                    best_ratio = ratio;
                    best_row = Some(r);
                }
            }
        }
        let r = best_row?;
        let leaving = self.basis[r];
        let pivot = self.t[r][entering];

        // Normalise the pivot row.
        for x in &mut self.t[r] {
            *x /= pivot;
        }
        // Eliminate the entering column from all other rows.
        for rr in 0..self.t.len() {
            if rr == r {
                continue;
            }
            let factor = self.t[rr][entering];
            if factor != 0.0 {
                for c in 0..self.t[rr].len() {
                    self.t[rr][c] -= factor * self.t[r][c];
                }
            }
        }
        self.basis[r] = entering;
        Some(leaving)
    }

    /// Value of the basic variable with label `label` (0 if nonbasic).
    fn value(&self, label: usize) -> f64 {
        self.basis
            .iter()
            .position(|&b| b == label)
            .map(|r| *self.t[r].last().expect("rhs column"))
            .unwrap_or(0.0)
    }
}

/// Runs Lemke–Howson from the artificial equilibrium, dropping `label`
/// (`0..n` selects a row action, `n..n+m` a column action).
///
/// # Errors
///
/// * [`GameError::InvalidParameter`] if `label >= n + m`,
/// * [`GameError::SingularSystem`] if pivoting fails to terminate
///   (degenerate game) or a tableau becomes unbounded.
///
/// # Example
///
/// ```
/// use cnash_game::{games, lemke_howson::lemke_howson};
///
/// # fn main() -> Result<(), cnash_game::GameError> {
/// let g = games::battle_of_the_sexes();
/// let eq = lemke_howson(&g, 0)?;
/// assert!(g.is_equilibrium(&eq.row, &eq.col, 1e-7));
/// # Ok(())
/// # }
/// ```
pub fn lemke_howson(game: &BimatrixGame, label: usize) -> Result<Equilibrium, GameError> {
    let n = game.row_actions();
    let m = game.col_actions();
    if label >= n + m {
        return Err(GameError::InvalidParameter(format!(
            "label {label} out of range for {n}+{m} labels"
        )));
    }

    // Shift payoffs strictly positive (invariant under LH).
    let shift = 1.0 - game.row_payoffs().min().min(game.col_payoffs().min());
    let a = game.row_payoffs().map(|x| x + shift); // n x m, row player
    let b = game.col_payoffs().map(|x| x + shift); // n x m, col player

    let labels = n + m;

    // Row tableau: slacks r_i (labels 0..n) basic; r = 1 − A y,
    // nonbasic y_j carry labels n..n+m.
    let row_tab = Tableau {
        t: (0..n)
            .map(|i| {
                let mut row = vec![0.0; labels + 1];
                row[i] = 1.0;
                for j in 0..m {
                    row[n + j] = a[(i, j)];
                }
                row[labels] = 1.0;
                row
            })
            .collect(),
        basis: (0..n).collect(),
    };

    // Column tableau: slacks s_j (labels n..n+m) basic; s = 1 − Bᵀ x,
    // nonbasic x_i carry labels 0..n.
    let col_tab = Tableau {
        t: (0..m)
            .map(|j| {
                let mut row = vec![0.0; labels + 1];
                row[n + j] = 1.0;
                for i in 0..n {
                    row[i] = b[(i, j)];
                }
                row[labels] = 1.0;
                row
            })
            .collect(),
        basis: (n..n + m).collect(),
    };

    let mut tabs = [row_tab, col_tab];
    // x variables (labels 0..n) enter the *column* tableau; y variables
    // (labels n..) enter the *row* tableau.
    let tableau_for = |l: usize| if l < n { 1 } else { 0 };

    let mut entering = label;
    for _ in 0..MAX_PIVOTS {
        let t = tableau_for(entering);
        let leaving = tabs[t].pivot(entering).ok_or(GameError::SingularSystem)?;
        if leaving == label {
            // Complementarity restored: extract the equilibrium.
            let x: Vec<f64> = (0..n).map(|i| tabs[1].value(i)).collect();
            let y: Vec<f64> = (0..m).map(|j| tabs[0].value(n + j)).collect();
            let norm = |v: Vec<f64>| -> Result<MixedStrategy, GameError> {
                let s: f64 = v.iter().sum();
                if s <= 0.0 {
                    return Err(GameError::SingularSystem);
                }
                MixedStrategy::new(v.into_iter().map(|x| (x / s).max(0.0)).collect())
            };
            let p = norm(x)?;
            let q = norm(y)?;
            return Ok(Equilibrium::from_profile(game, p, q));
        }
        entering = leaving;
    }
    Err(GameError::SingularSystem)
}

/// Runs Lemke–Howson from every starting label and deduplicates the
/// results — a cheap way to find *several* (not necessarily all)
/// equilibria, used to cross-check support enumeration.
pub fn lemke_howson_all_labels(game: &BimatrixGame) -> Vec<Equilibrium> {
    let labels = game.row_actions() + game.col_actions();
    let found: Vec<Equilibrium> = (0..labels)
        .filter_map(|l| lemke_howson(game, l).ok())
        .filter(|e| game.is_equilibrium(&e.row, &e.col, 1e-7))
        .collect();
    crate::equilibrium::dedup_equilibria(found, 1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games;
    use crate::support_enum::enumerate_equilibria;

    #[test]
    fn finds_equilibrium_of_bos_from_every_label() {
        let g = games::battle_of_the_sexes();
        for l in 0..4 {
            let eq = lemke_howson(&g, l).unwrap();
            assert!(
                g.is_equilibrium(&eq.row, &eq.col, 1e-7),
                "label {l} gave non-equilibrium {eq}"
            );
        }
    }

    #[test]
    fn finds_matching_pennies_mixed() {
        let g = games::matching_pennies();
        let eq = lemke_howson(&g, 0).unwrap();
        assert!((eq.row.prob(0) - 0.5).abs() < 1e-9);
        assert!((eq.col.prob(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn finds_prisoners_dilemma_defect() {
        let g = games::prisoners_dilemma();
        let eq = lemke_howson(&g, 0).unwrap();
        assert_eq!(eq.row.pure_action(1e-9), Some(1));
        assert_eq!(eq.col.pure_action(1e-9), Some(1));
    }

    #[test]
    fn rejects_out_of_range_label() {
        let g = games::battle_of_the_sexes();
        assert!(matches!(
            lemke_howson(&g, 4),
            Err(GameError::InvalidParameter(_))
        ));
    }

    #[test]
    fn agrees_with_support_enumeration() {
        // Every LH solution must appear in the enumerated set.
        for g in [
            games::battle_of_the_sexes(),
            games::stag_hunt(),
            games::hawk_dove(),
            games::matching_pennies(),
        ] {
            let all = enumerate_equilibria(&g, 1e-9);
            for eq in lemke_howson_all_labels(&g) {
                assert!(
                    all.iter().any(|t| t.same_profile(&eq, 1e-5)),
                    "{}: LH found {eq} missing from enumeration",
                    g.name()
                );
            }
        }
    }

    #[test]
    fn all_labels_dedup_nonempty() {
        let g = games::bird_game();
        let eqs = lemke_howson_all_labels(&g);
        assert!(!eqs.is_empty());
        for w in 0..eqs.len() {
            for v in w + 1..eqs.len() {
                assert!(!eqs[w].same_profile(&eqs[v], 1e-6));
            }
        }
    }
}
