//! Seeded random game generators for scaling and robustness studies.

use crate::bimatrix::BimatrixGame;
use crate::error::GameError;
use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a random bimatrix game with integer payoffs drawn uniformly
/// from `0..=max_payoff`.
///
/// Integer payoffs keep the game exactly representable on the C-Nash
/// crossbar (each element needs at most `max_payoff` unary cells).
///
/// # Errors
///
/// Returns [`GameError::EmptyActionSet`] if either action count is zero and
/// [`GameError::InvalidParameter`] if `max_payoff == 0`.
///
/// # Example
///
/// ```
/// use cnash_game::generators::random_integer_game;
///
/// # fn main() -> Result<(), cnash_game::GameError> {
/// let g = random_integer_game(4, 4, 5, 42)?;
/// assert_eq!(g.row_actions(), 4);
/// assert!(g.row_payoffs().is_nonneg_integer(1e-9));
/// # Ok(())
/// # }
/// ```
pub fn random_integer_game(
    rows: usize,
    cols: usize,
    max_payoff: u32,
    seed: u64,
) -> Result<BimatrixGame, GameError> {
    if rows == 0 || cols == 0 {
        return Err(GameError::EmptyActionSet);
    }
    if max_payoff == 0 {
        return Err(GameError::InvalidParameter(
            "max_payoff must be positive".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let draw = |rng: &mut StdRng| -> Vec<f64> {
        (0..rows * cols)
            .map(|_| rng.random_range(0..=max_payoff) as f64)
            .collect()
    };
    let m = Matrix::new(rows, cols, draw(&mut rng))?;
    let n = Matrix::new(rows, cols, draw(&mut rng))?;
    BimatrixGame::new(format!("random-{rows}x{cols}-seed{seed}"), m, n)
}

/// Generates a random *coordination-flavoured* game: a diagonal coordination
/// backbone plus integer noise of amplitude `noise`, producing games with
/// several pure and mixed equilibria (useful for coverage studies).
///
/// # Errors
///
/// Returns [`GameError::EmptyActionSet`] if `n == 0`.
pub fn random_coordination_game(
    n: usize,
    diag: u32,
    noise: u32,
    seed: u64,
) -> Result<BimatrixGame, GameError> {
    if n == 0 {
        return Err(GameError::EmptyActionSet);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matrix::filled(n, n, 0.0)?;
    let mut b = Matrix::filled(n, n, 0.0)?;
    for i in 0..n {
        for j in 0..n {
            let bonus = if i == j { diag as f64 } else { 0.0 };
            m[(i, j)] = bonus + rng.random_range(0..=noise) as f64;
            b[(i, j)] = bonus + rng.random_range(0..=noise) as f64;
        }
    }
    BimatrixGame::new(format!("coord-{n}-seed{seed}"), m, b)
}

/// Generates a random zero-sum game with integer payoffs in
/// `[-max_payoff, max_payoff]`.
///
/// # Errors
///
/// Returns [`GameError::EmptyActionSet`] if either dimension is zero.
pub fn random_zero_sum_game(
    rows: usize,
    cols: usize,
    max_payoff: u32,
    seed: u64,
) -> Result<BimatrixGame, GameError> {
    if rows == 0 || cols == 0 {
        return Err(GameError::EmptyActionSet);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let span = max_payoff as i64;
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| rng.random_range(-span..=span) as f64)
        .collect();
    let m = Matrix::new(rows, cols, data)?;
    BimatrixGame::zero_sum(format!("zerosum-{rows}x{cols}-seed{seed}"), m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support_enum::enumerate_equilibria;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = random_integer_game(3, 3, 9, 7).unwrap();
        let b = random_integer_game(3, 3, 9, 7).unwrap();
        assert_eq!(a.row_payoffs(), b.row_payoffs());
        assert_eq!(a.col_payoffs(), b.col_payoffs());
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_integer_game(4, 4, 9, 1).unwrap();
        let b = random_integer_game(4, 4, 9, 2).unwrap();
        assert_ne!(a.row_payoffs(), b.row_payoffs());
    }

    #[test]
    fn payoffs_in_range() {
        let g = random_integer_game(5, 3, 4, 11).unwrap();
        assert!(g.row_payoffs().min() >= 0.0);
        assert!(g.row_payoffs().max() <= 4.0);
        assert!(g.row_payoffs().is_nonneg_integer(1e-9));
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(random_integer_game(0, 3, 4, 0).is_err());
        assert!(random_integer_game(3, 3, 0, 0).is_err());
        assert!(random_coordination_game(0, 1, 1, 0).is_err());
        assert!(random_zero_sum_game(2, 0, 1, 0).is_err());
    }

    #[test]
    fn random_games_have_equilibria() {
        // Nash's theorem: every finite game has at least one NE; the
        // enumerator must find one for nondegenerate random instances.
        for seed in 0..5 {
            let g = random_integer_game(3, 3, 20, seed).unwrap();
            let eqs = enumerate_equilibria(&g, 1e-9);
            assert!(!eqs.is_empty(), "seed {seed} found no equilibria");
        }
    }

    #[test]
    fn coordination_games_have_multiple_equilibria() {
        let g = random_coordination_game(3, 10, 2, 3).unwrap();
        let eqs = enumerate_equilibria(&g, 1e-9);
        assert!(
            eqs.len() >= 3,
            "expected several equilibria, got {}",
            eqs.len()
        );
    }

    #[test]
    fn zero_sum_is_zero_sum() {
        let g = random_zero_sum_game(3, 4, 5, 9).unwrap();
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(g.row_payoffs()[(i, j)], -g.col_payoffs()[(i, j)]);
            }
        }
    }
}
