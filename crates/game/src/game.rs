//! The generic N-player game interface.
//!
//! [`Game`] is the abstraction the solver stack is built against: a
//! game names its players and per-player action sets, evaluates
//! expected utilities of a [`Profile`], and exposes a canonical
//! fingerprint for instance caches. [`BimatrixGame`] is the first
//! implementor; its [`Game::as_bimatrix`] override gives bimatrix-only
//! machinery (crossbar mapping, QUBO reduction, exact oracles) a
//! zero-cost typed view, so those paths pay nothing for the
//! generalisation.
//!
//! # Example
//!
//! ```
//! use cnash_game::prelude::*;
//! use cnash_game::games;
//!
//! let bos = games::battle_of_the_sexes();
//! let game: &dyn Game = &bos;
//! assert_eq!(game.players(), 2);
//! assert_eq!(game.num_actions(0), 2);
//! let profile = Profile::pair(
//!     MixedStrategy::pure(2, 0).unwrap(),
//!     MixedStrategy::pure(2, 0).unwrap(),
//! );
//! assert!(game.is_equilibrium_profile(&profile, 1e-9));
//! assert_eq!(game.fingerprint(), bos.canonical_fingerprint());
//! ```

use crate::bimatrix::BimatrixGame;
use crate::profile::Profile;
use crate::strategy::MixedStrategy;

/// An N-player game in strategic form.
///
/// The trait is object-safe: solvers hold `&dyn Game` / `Box<dyn Game>`
/// and remain agnostic of the concrete representation. Implementors
/// must keep [`Game::fingerprint`] canonical — two games that are
/// payoff-identical must fingerprint identically whatever entry point
/// built them, because instance caches and replay tooling key on it.
pub trait Game: Send + Sync {
    /// Human-readable instance name (reports, labels).
    fn name(&self) -> &str;

    /// Number of players.
    fn players(&self) -> usize;

    /// Number of actions available to `player` (`0..self.players()`).
    fn num_actions(&self, player: usize) -> usize;

    /// Payoff of `player` at the pure action profile `actions`
    /// (one action index per player).
    fn pure_payoff(&self, player: usize, actions: &[usize]) -> f64;

    /// Expected payoff of `player` under the mixed `profile`.
    ///
    /// The default evaluates the full action product — exponential in
    /// player count, fine for the small strategic-form games this
    /// workspace handles; representations with structure (bimatrix)
    /// override it with closed-form evaluation.
    fn payoff(&self, player: usize, profile: &Profile) -> f64 {
        let players = self.players();
        let mut actions = vec![0usize; players];
        let mut total = 0.0;
        // Odometer enumeration of the action product, accumulating
        // probability-weighted pure payoffs.
        loop {
            let weight: f64 = (0..players)
                .map(|p| profile.strategy(p).prob(actions[p]))
                .product();
            if weight > 0.0 {
                total += weight * self.pure_payoff(player, &actions);
            }
            let mut carry = players;
            while carry > 0 {
                let p = carry - 1;
                actions[p] += 1;
                if actions[p] < self.num_actions(p) {
                    break;
                }
                actions[p] = 0;
                carry -= 1;
            }
            if carry == 0 {
                return total;
            }
        }
    }

    /// Best payoff `player` can get by a unilateral pure deviation from
    /// `profile` (everyone else keeps playing their mixed strategy).
    fn best_response_value(&self, player: usize, profile: &Profile) -> f64 {
        let mut best = f64::NEG_INFINITY;
        for action in 0..self.num_actions(player) {
            let mut strategies = profile.strategies().to_vec();
            strategies[player] = MixedStrategy::pure(self.num_actions(player), action)
                .expect("action index is in range");
            let deviated = Profile::new(strategies).expect("profile is non-empty");
            best = best.max(self.payoff(player, &deviated));
        }
        best
    }

    /// `player`'s incentive to deviate: best-response value minus the
    /// payoff actually obtained. Non-negative; zero iff `player` is
    /// best-responding.
    fn regret(&self, player: usize, profile: &Profile) -> f64 {
        self.best_response_value(player, profile) - self.payoff(player, profile)
    }

    /// Sum of all players' regrets — the exact exploitability of
    /// `profile`. Zero exactly at Nash equilibria (for bimatrix games
    /// this is the MAX-QUBO objective `nash_gap`).
    fn exploitability(&self, profile: &Profile) -> f64 {
        (0..self.players()).map(|p| self.regret(p, profile)).sum()
    }

    /// `true` if no player can gain more than `eps` by unilateral
    /// deviation (ε-Nash).
    fn is_equilibrium_profile(&self, profile: &Profile, eps: f64) -> bool {
        (0..self.players()).all(|p| self.regret(p, profile) <= eps)
    }

    /// `true` if `profile` has one strategy per player with the right
    /// action counts.
    fn shape_matches(&self, profile: &Profile) -> bool {
        profile.players() == self.players()
            && (0..self.players()).all(|p| profile.strategy(p).len() == self.num_actions(p))
    }

    /// Canonical payoff fingerprint — the instance-cache key.
    ///
    /// Must depend only on the payoff structure (not the display name),
    /// so equivalent instances built from different spec forms share a
    /// cache line.
    fn fingerprint(&self) -> u64;

    /// Typed view for bimatrix-only machinery; `None` for other kinds.
    fn as_bimatrix(&self) -> Option<&BimatrixGame> {
        None
    }
}

impl Game for BimatrixGame {
    fn name(&self) -> &str {
        BimatrixGame::name(self)
    }

    fn players(&self) -> usize {
        2
    }

    fn num_actions(&self, player: usize) -> usize {
        match player {
            0 => self.row_actions(),
            1 => self.col_actions(),
            _ => panic!("bimatrix game has 2 players, asked for player {player}"),
        }
    }

    fn pure_payoff(&self, player: usize, actions: &[usize]) -> f64 {
        let [i, j] = actions else {
            panic!(
                "bimatrix game takes 2 action indices, got {}",
                actions.len()
            );
        };
        match player {
            0 => self.row_payoffs()[(*i, *j)],
            1 => self.col_payoffs()[(*i, *j)],
            _ => panic!("bimatrix game has 2 players, asked for player {player}"),
        }
    }

    fn payoff(&self, player: usize, profile: &Profile) -> f64 {
        let (p, q) = profile.as_pair().expect("bimatrix profile has 2 players");
        let (f1, f2) = self.payoffs(p, q).expect("profile shape matches the game");
        match player {
            0 => f1,
            1 => f2,
            _ => panic!("bimatrix game has 2 players, asked for player {player}"),
        }
    }

    fn best_response_value(&self, player: usize, profile: &Profile) -> f64 {
        let (p, q) = profile.as_pair().expect("bimatrix profile has 2 players");
        match player {
            0 => self.row_best_value(q),
            1 => self.col_best_value(p),
            _ => panic!("bimatrix game has 2 players, asked for player {player}"),
        }
        .expect("profile shape matches the game")
    }

    /// Bit-identical to [`BimatrixGame::nash_gap`]: the generic
    /// regret-sum default associates the additions differently, and the
    /// rebased stack promises the typed and trait paths agree exactly.
    fn exploitability(&self, profile: &Profile) -> f64 {
        let (p, q) = profile.as_pair().expect("bimatrix profile has 2 players");
        self.nash_gap(p, q).expect("profile shape matches the game")
    }

    fn is_equilibrium_profile(&self, profile: &Profile, eps: f64) -> bool {
        let (p, q) = profile.as_pair().expect("bimatrix profile has 2 players");
        self.is_equilibrium(p, q, eps)
    }

    /// Identical to [`BimatrixGame::canonical_fingerprint`] — callers
    /// keying caches on either entry point see the same value.
    fn fingerprint(&self) -> u64 {
        self.canonical_fingerprint()
    }

    fn as_bimatrix(&self) -> Option<&BimatrixGame> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games;
    use crate::matrix::Matrix;

    fn bos() -> BimatrixGame {
        games::battle_of_the_sexes()
    }

    #[test]
    fn bimatrix_game_exposes_trait_shape() {
        let g = bos();
        let game: &dyn Game = &g;
        assert_eq!(game.name(), g.name());
        assert_eq!(game.players(), 2);
        assert_eq!(game.num_actions(0), g.row_actions());
        assert_eq!(game.num_actions(1), g.col_actions());
        assert!(game.as_bimatrix().is_some());
        assert_eq!(game.fingerprint(), g.canonical_fingerprint());
    }

    #[test]
    fn trait_payoffs_match_bimatrix_payoffs() {
        let g = bos();
        let p = MixedStrategy::new(vec![0.25, 0.75]).unwrap();
        let q = MixedStrategy::new(vec![0.5, 0.5]).unwrap();
        let profile = Profile::pair(p.clone(), q.clone());
        let (f1, f2) = g.payoffs(&p, &q).unwrap();
        let game: &dyn Game = &g;
        assert!((game.payoff(0, &profile) - f1).abs() < 1e-12);
        assert!((game.payoff(1, &profile) - f2).abs() < 1e-12);
        assert!(
            (game.best_response_value(0, &profile) - g.row_best_value(&q).unwrap()).abs() < 1e-12
        );
        assert!(
            (game.best_response_value(1, &profile) - g.col_best_value(&p).unwrap()).abs() < 1e-12
        );
        assert!((game.exploitability(&profile) - g.nash_gap(&p, &q).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn trait_defaults_agree_with_bimatrix_overrides() {
        // Evaluate the generic odometer/deviation defaults against the
        // closed-form bimatrix overrides on a rectangular game.
        struct Opaque(BimatrixGame);
        impl Game for Opaque {
            fn name(&self) -> &str {
                Game::name(&self.0)
            }
            fn players(&self) -> usize {
                2
            }
            fn num_actions(&self, player: usize) -> usize {
                self.0.num_actions(player)
            }
            fn pure_payoff(&self, player: usize, actions: &[usize]) -> f64 {
                self.0.pure_payoff(player, actions)
            }
            fn fingerprint(&self) -> u64 {
                self.0.canonical_fingerprint()
            }
        }
        let m = Matrix::from_rows(&[vec![3.0, 0.0, 1.0], vec![1.0, 2.0, 0.5]]).unwrap();
        let n = Matrix::from_rows(&[vec![1.0, 2.0, 0.0], vec![0.0, 1.0, 3.0]]).unwrap();
        let g = BimatrixGame::new("rect", m, n).unwrap();
        let opaque = Opaque(g.clone());
        let profile = Profile::pair(
            MixedStrategy::new(vec![0.3, 0.7]).unwrap(),
            MixedStrategy::new(vec![0.2, 0.5, 0.3]).unwrap(),
        );
        for player in 0..2 {
            assert!(
                (opaque.payoff(player, &profile) - g.payoff(player, &profile)).abs() < 1e-12,
                "payoff mismatch for player {player}"
            );
            assert!(
                (opaque.best_response_value(player, &profile)
                    - g.best_response_value(player, &profile))
                .abs()
                    < 1e-12,
                "best response mismatch for player {player}"
            );
        }
        assert!((opaque.exploitability(&profile) - g.exploitability(&profile)).abs() < 1e-12);
    }

    #[test]
    fn equilibrium_check_routes_through_profile() {
        let g = bos();
        let game: &dyn Game = &g;
        let eq = Profile::pair(
            MixedStrategy::pure(2, 0).unwrap(),
            MixedStrategy::pure(2, 0).unwrap(),
        );
        assert!(game.is_equilibrium_profile(&eq, 1e-9));
        assert!(game.exploitability(&eq).abs() < 1e-12);
        let off = Profile::pair(
            MixedStrategy::pure(2, 0).unwrap(),
            MixedStrategy::pure(2, 1).unwrap(),
        );
        assert!(!game.is_equilibrium_profile(&off, 1e-9));
        assert!(game.exploitability(&off) > 0.5);
    }

    #[test]
    fn shape_matches_validates_per_player_lengths() {
        let g = bos();
        let game: &dyn Game = &g;
        let good = Profile::pair(
            MixedStrategy::uniform(2).unwrap(),
            MixedStrategy::uniform(2).unwrap(),
        );
        assert!(game.shape_matches(&good));
        let bad_len = Profile::pair(
            MixedStrategy::uniform(3).unwrap(),
            MixedStrategy::uniform(2).unwrap(),
        );
        assert!(!game.shape_matches(&bad_len));
        let bad_players = Profile::new(vec![MixedStrategy::uniform(2).unwrap()]).unwrap();
        assert!(!game.shape_matches(&bad_players));
    }
}
