//! Fictitious play (extension): a classic learning dynamic that provides
//! a third, independent equilibrium-finding method.
//!
//! Each round, both players best-respond to the empirical mixture of the
//! opponent's past play. The empirical mixtures converge to a Nash
//! equilibrium for zero-sum games, 2×2 games, and potential/identical-
//! interest games (Robinson 1951; Miyasawa 1961; Monderer–Shapley 1996).
//! For general games convergence can fail (Shapley's famous 3×3 cycle),
//! so the result reports the final Nash gap and lets the caller judge.

use crate::bimatrix::BimatrixGame;
use crate::error::GameError;
use crate::strategy::MixedStrategy;

/// Result of a fictitious-play run.
#[derive(Debug, Clone, PartialEq)]
pub struct FictitiousPlayResult {
    /// Row player's empirical mixture.
    pub row: MixedStrategy,
    /// Column player's empirical mixture.
    pub col: MixedStrategy,
    /// Nash gap (Eq. 9 objective) of the final mixtures.
    pub gap: f64,
    /// Rounds played.
    pub rounds: usize,
}

/// Runs `rounds` of simultaneous fictitious play from the given initial
/// pure actions.
///
/// # Errors
///
/// Returns [`GameError::InvalidParameter`] if `rounds == 0` or the
/// initial actions are out of range.
///
/// # Example
///
/// ```
/// use cnash_game::{fictitious_play::fictitious_play, games};
///
/// # fn main() -> Result<(), cnash_game::GameError> {
/// // Matching pennies is zero-sum: FP converges to the mixed NE.
/// let g = games::matching_pennies();
/// let r = fictitious_play(&g, 0, 0, 100_000)?;
/// assert!(r.gap < 1e-2);
/// assert!((r.row.prob(0) - 0.5).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn fictitious_play(
    game: &BimatrixGame,
    init_row: usize,
    init_col: usize,
    rounds: usize,
) -> Result<FictitiousPlayResult, GameError> {
    let n = game.row_actions();
    let m = game.col_actions();
    if rounds == 0 {
        return Err(GameError::InvalidParameter("zero rounds".into()));
    }
    if init_row >= n || init_col >= m {
        return Err(GameError::InvalidParameter(
            "initial action out of range".into(),
        ));
    }

    // Cumulative action counts (start with the initial plays).
    let mut row_counts = vec![0.0f64; n];
    let mut col_counts = vec![0.0f64; m];
    row_counts[init_row] = 1.0;
    col_counts[init_col] = 1.0;

    // Cumulative payoff vectors: row_payoff[i] = Σ_t M[i][a_col(t)],
    // updated incrementally so each round is O(n + m).
    let mut row_payoff: Vec<f64> = (0..n).map(|i| game.row_payoffs()[(i, init_col)]).collect();
    let mut col_payoff: Vec<f64> = (0..m).map(|j| game.col_payoffs()[(init_row, j)]).collect();

    for _ in 1..rounds {
        let best_row = argmax(&row_payoff);
        let best_col = argmax(&col_payoff);
        row_counts[best_row] += 1.0;
        col_counts[best_col] += 1.0;
        for (i, rp) in row_payoff.iter_mut().enumerate() {
            *rp += game.row_payoffs()[(i, best_col)];
        }
        for (j, cp) in col_payoff.iter_mut().enumerate() {
            *cp += game.col_payoffs()[(best_row, j)];
        }
    }

    let total = rounds as f64;
    let row = MixedStrategy::new(row_counts.iter().map(|c| c / total).collect())?;
    let col = MixedStrategy::new(col_counts.iter().map(|c| c / total).collect())?;
    let gap = game.nash_gap(&row, &col)?;
    Ok(FictitiousPlayResult {
        row,
        col,
        gap,
        rounds,
    })
}

fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for (k, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = k;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games;

    #[test]
    fn converges_on_matching_pennies() {
        let g = games::matching_pennies();
        let r = fictitious_play(&g, 0, 0, 200_000).unwrap();
        assert!(r.gap < 5e-3, "gap {}", r.gap);
        assert!((r.row.prob(0) - 0.5).abs() < 0.01);
        assert!((r.col.prob(0) - 0.5).abs() < 0.01);
    }

    #[test]
    fn converges_on_rock_paper_scissors() {
        let g = games::rock_paper_scissors();
        let r = fictitious_play(&g, 0, 1, 300_000).unwrap();
        assert!(r.gap < 1e-2, "gap {}", r.gap);
        for k in 0..3 {
            assert!((r.row.prob(k) - 1.0 / 3.0).abs() < 0.02);
        }
    }

    #[test]
    fn finds_pure_equilibrium_of_prisoners_dilemma() {
        let g = games::prisoners_dilemma();
        let r = fictitious_play(&g, 0, 0, 10_000).unwrap();
        assert!(r.gap < 1e-3);
        assert_eq!(r.row.pure_action(0.01), Some(1));
    }

    #[test]
    fn coordination_reaches_an_equilibrium() {
        let g = games::coordination(3).unwrap();
        let r = fictitious_play(&g, 2, 2, 10_000).unwrap();
        assert!(r.gap < 1e-6);
        assert_eq!(r.row.pure_action(0.01), Some(2));
    }

    #[test]
    fn agrees_with_enumeration_on_bos() {
        // FP on BoS converges to one of the enumerated equilibria.
        let g = games::battle_of_the_sexes();
        let truth = crate::support_enum::enumerate_equilibria(&g, 1e-9);
        let r = fictitious_play(&g, 0, 0, 100_000).unwrap();
        assert!(r.gap < 1e-2);
        assert!(truth
            .iter()
            .any(|e| { e.row.linf_distance(&r.row) < 0.02 && e.col.linf_distance(&r.col) < 0.02 }));
    }

    #[test]
    fn rejects_bad_parameters() {
        let g = games::battle_of_the_sexes();
        assert!(fictitious_play(&g, 0, 0, 0).is_err());
        assert!(fictitious_play(&g, 2, 0, 10).is_err());
        assert!(fictitious_play(&g, 0, 2, 10).is_err());
    }

    #[test]
    fn rounds_recorded() {
        let g = games::stag_hunt();
        let r = fictitious_play(&g, 0, 0, 500).unwrap();
        assert_eq!(r.rounds, 500);
    }
}
