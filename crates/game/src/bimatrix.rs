//! Two-player games in strategic form.

use crate::error::GameError;
use crate::matrix::Matrix;
use crate::strategy::MixedStrategy;
use std::fmt;

/// A two-player game in strategic form (paper Sec. 2.1).
///
/// The row player has `n` actions and payoff matrix `M` (`n x m`); the
/// column player has `m` actions and payoff matrix `N` (`n x m`). Expected
/// payoffs for strategies `(p, q)` are `f1 = pᵀ M q` and `f2 = pᵀ N q`
/// (Eq. 2).
///
/// # Example
///
/// ```
/// use cnash_game::{games, MixedStrategy};
///
/// # fn main() -> Result<(), cnash_game::GameError> {
/// let g = games::battle_of_the_sexes();
/// let p = MixedStrategy::pure(2, 0)?;
/// let q = MixedStrategy::pure(2, 0)?;
/// assert_eq!(g.payoffs(&p, &q)?, (2.0, 1.0));
/// assert!(g.is_equilibrium(&p, &q, 1e-9));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BimatrixGame {
    name: String,
    m: Matrix,
    n: Matrix,
}

impl BimatrixGame {
    /// Creates a game from payoff matrices `M` (row player) and `N`
    /// (column player). Both must be `n x m`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::ShapeMismatch`] if the shapes differ.
    pub fn new(name: impl Into<String>, m: Matrix, n: Matrix) -> Result<Self, GameError> {
        if m.shape() != n.shape() {
            return Err(GameError::ShapeMismatch {
                left: m.shape(),
                right: n.shape(),
            });
        }
        Ok(Self {
            name: name.into(),
            m,
            n,
        })
    }

    /// Creates a zero-sum game (`N = −M`).
    ///
    /// # Errors
    ///
    /// Never fails for a valid matrix, but keeps the fallible signature for
    /// symmetry with [`BimatrixGame::new`].
    pub fn zero_sum(name: impl Into<String>, m: Matrix) -> Result<Self, GameError> {
        let n = m.map(|x| -x);
        Self::new(name, m, n)
    }

    /// Creates a symmetric game (`N = Mᵀ`); requires `M` square.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::ShapeMismatch`] if `M` is not square.
    pub fn symmetric(name: impl Into<String>, m: Matrix) -> Result<Self, GameError> {
        if m.rows() != m.cols() {
            return Err(GameError::ShapeMismatch {
                left: m.shape(),
                right: (m.cols(), m.rows()),
            });
        }
        let n = m.transposed();
        Self::new(name, m, n)
    }

    /// Human-readable instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Row player's payoff matrix `M`.
    pub fn row_payoffs(&self) -> &Matrix {
        &self.m
    }

    /// Column player's payoff matrix `N`.
    pub fn col_payoffs(&self) -> &Matrix {
        &self.n
    }

    /// Number of row-player actions (`n`).
    pub fn row_actions(&self) -> usize {
        self.m.rows()
    }

    /// Number of column-player actions (`m`).
    pub fn col_actions(&self) -> usize {
        self.m.cols()
    }

    /// Expected payoffs `(f1, f2) = (pᵀ M q, pᵀ N q)` (Eq. 2).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::ShapeMismatch`] if the strategy lengths do not
    /// match the action counts.
    pub fn payoffs(&self, p: &MixedStrategy, q: &MixedStrategy) -> Result<(f64, f64), GameError> {
        let f1 = self.m.bilinear(p.probs(), q.probs())?;
        let f2 = self.n.bilinear(p.probs(), q.probs())?;
        Ok((f1, f2))
    }

    /// Row player's payoff vector against `q`: `M q`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::ShapeMismatch`] on a length mismatch.
    pub fn row_payoff_vector(&self, q: &MixedStrategy) -> Result<Vec<f64>, GameError> {
        self.m.mat_vec(q.probs())
    }

    /// Column player's payoff vector against `p`: `Nᵀ p`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::ShapeMismatch`] on a length mismatch.
    pub fn col_payoff_vector(&self, p: &MixedStrategy) -> Result<Vec<f64>, GameError> {
        self.n.vec_mat(p.probs())
    }

    /// Best-response value for the row player against `q`: `max(M q)`
    /// (this is the `α` of Eq. 7).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::ShapeMismatch`] on a length mismatch.
    pub fn row_best_value(&self, q: &MixedStrategy) -> Result<f64, GameError> {
        Ok(self
            .row_payoff_vector(q)?
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max))
    }

    /// Best-response value for the column player against `p`: `max(Nᵀ p)`
    /// (this is the `β` of Eq. 8).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::ShapeMismatch`] on a length mismatch.
    pub fn col_best_value(&self, p: &MixedStrategy) -> Result<f64, GameError> {
        Ok(self
            .col_payoff_vector(p)?
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max))
    }

    /// The MAX-QUBO objective of Eq. (9):
    ///
    /// `f(p,q) = max(Mq) + max(Nᵀp) − pᵀ(M+N)q`.
    ///
    /// Equals the sum of both players' regrets, so `f ≥ 0` always, with
    /// `f = 0` exactly at Nash equilibria — this is why the transformation
    /// is lossless.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::ShapeMismatch`] on a length mismatch.
    pub fn nash_gap(&self, p: &MixedStrategy, q: &MixedStrategy) -> Result<f64, GameError> {
        let (f1, f2) = self.payoffs(p, q)?;
        Ok(self.row_best_value(q)? + self.col_best_value(p)? - f1 - f2)
    }

    /// Per-player regrets `(max(Mq) − pᵀMq, max(Nᵀp) − pᵀNq)`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::ShapeMismatch`] on a length mismatch.
    pub fn regrets(&self, p: &MixedStrategy, q: &MixedStrategy) -> Result<(f64, f64), GameError> {
        let (f1, f2) = self.payoffs(p, q)?;
        Ok((self.row_best_value(q)? - f1, self.col_best_value(p)? - f2))
    }

    /// `true` if `(p, q)` is an ε-Nash equilibrium: no player can gain more
    /// than `eps` by unilateral deviation (Eq. 1 with slack `eps`).
    ///
    /// # Panics
    ///
    /// Panics if the strategy lengths do not match the game (programming
    /// error at call sites that constructed strategies for this game).
    pub fn is_equilibrium(&self, p: &MixedStrategy, q: &MixedStrategy, eps: f64) -> bool {
        let (r1, r2) = self
            .regrets(p, q)
            .expect("strategy lengths must match the game");
        r1 <= eps && r2 <= eps
    }

    /// Pure best responses of the row player to `q` (argmax set of `Mq`
    /// within `tol` of the maximum).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::ShapeMismatch`] on a length mismatch.
    pub fn row_best_responses(&self, q: &MixedStrategy, tol: f64) -> Result<Vec<usize>, GameError> {
        let v = self.row_payoff_vector(q)?;
        let best = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Ok(v.iter()
            .enumerate()
            .filter(|(_, &x)| x >= best - tol)
            .map(|(i, _)| i)
            .collect())
    }

    /// Pure best responses of the column player to `p`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::ShapeMismatch`] on a length mismatch.
    pub fn col_best_responses(&self, p: &MixedStrategy, tol: f64) -> Result<Vec<usize>, GameError> {
        let v = self.col_payoff_vector(p)?;
        let best = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Ok(v.iter()
            .enumerate()
            .filter(|(_, &x)| x >= best - tol)
            .map(|(i, _)| i)
            .collect())
    }

    /// Enumerates all pure-strategy equilibria by direct best-response
    /// checking (`O(n·m·(n+m))`).
    pub fn pure_equilibria(&self, eps: f64) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.row_actions() {
            for j in 0..self.col_actions() {
                let col_j = self.m.col(j);
                let best_row = col_j.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                if self.m[(i, j)] < best_row - eps {
                    continue;
                }
                let row_i = self.n.row(i);
                let best_col = row_i.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                if self.n[(i, j)] < best_col - eps {
                    continue;
                }
                out.push((i, j));
            }
        }
        out
    }
}

impl fmt::Display for BimatrixGame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({}x{} bimatrix game)",
            self.name,
            self.row_actions(),
            self.col_actions()
        )?;
        writeln!(f, "M =\n{}", self.m)?;
        write!(f, "N =\n{}", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bos() -> BimatrixGame {
        let m = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let n = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]).unwrap();
        BimatrixGame::new("BoS", m, n).unwrap()
    }

    #[test]
    fn new_rejects_shape_mismatch() {
        let m = Matrix::identity(2).unwrap();
        let n = Matrix::identity(3).unwrap();
        assert!(matches!(
            BimatrixGame::new("bad", m, n),
            Err(GameError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn zero_sum_payoffs_cancel() {
        let m = Matrix::from_rows(&[vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap();
        let g = BimatrixGame::zero_sum("matching pennies", m).unwrap();
        let p = MixedStrategy::uniform(2).unwrap();
        let q = MixedStrategy::uniform(2).unwrap();
        let (f1, f2) = g.payoffs(&p, &q).unwrap();
        assert!((f1 + f2).abs() < 1e-12);
    }

    #[test]
    fn symmetric_requires_square() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert!(BimatrixGame::symmetric("bad", m).is_err());
    }

    #[test]
    fn payoffs_on_pure_profiles() {
        let g = bos();
        let p = MixedStrategy::pure(2, 1).unwrap();
        let q = MixedStrategy::pure(2, 1).unwrap();
        assert_eq!(g.payoffs(&p, &q).unwrap(), (1.0, 2.0));
    }

    #[test]
    fn nash_gap_zero_at_pure_equilibrium() {
        let g = bos();
        let p = MixedStrategy::pure(2, 0).unwrap();
        let q = MixedStrategy::pure(2, 0).unwrap();
        assert!(g.nash_gap(&p, &q).unwrap().abs() < 1e-12);
    }

    #[test]
    fn nash_gap_zero_at_mixed_equilibrium() {
        // BoS mixed NE: p = (2/3, 1/3), q = (1/3, 2/3).
        let g = bos();
        let p = MixedStrategy::new(vec![2.0 / 3.0, 1.0 / 3.0]).unwrap();
        let q = MixedStrategy::new(vec![1.0 / 3.0, 2.0 / 3.0]).unwrap();
        assert!(g.nash_gap(&p, &q).unwrap().abs() < 1e-12);
        assert!(g.is_equilibrium(&p, &q, 1e-9));
    }

    #[test]
    fn nash_gap_positive_off_equilibrium() {
        let g = bos();
        let p = MixedStrategy::pure(2, 0).unwrap();
        let q = MixedStrategy::pure(2, 1).unwrap();
        // (Opera, Football): both want to deviate.
        let gap = g.nash_gap(&p, &q).unwrap();
        assert!(gap > 0.5);
        assert!(!g.is_equilibrium(&p, &q, 1e-9));
    }

    #[test]
    fn nash_gap_equals_sum_of_regrets() {
        let g = bos();
        let p = MixedStrategy::new(vec![0.25, 0.75]).unwrap();
        let q = MixedStrategy::new(vec![0.5, 0.5]).unwrap();
        let (r1, r2) = g.regrets(&p, &q).unwrap();
        assert!((g.nash_gap(&p, &q).unwrap() - (r1 + r2)).abs() < 1e-12);
        assert!(r1 >= 0.0 && r2 >= 0.0);
    }

    #[test]
    fn pure_equilibria_of_bos() {
        let g = bos();
        assert_eq!(g.pure_equilibria(1e-9), vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn best_responses() {
        let g = bos();
        let q = MixedStrategy::pure(2, 0).unwrap();
        assert_eq!(g.row_best_responses(&q, 1e-9).unwrap(), vec![0]);
        let p = MixedStrategy::pure(2, 1).unwrap();
        assert_eq!(g.col_best_responses(&p, 1e-9).unwrap(), vec![1]);
    }

    #[test]
    fn best_values_match_alpha_beta_definition() {
        let g = bos();
        let q = MixedStrategy::new(vec![0.5, 0.5]).unwrap();
        // Mq = (1.0, 0.5) -> alpha = 1.0
        assert_eq!(g.row_best_value(&q).unwrap(), 1.0);
        let p = MixedStrategy::new(vec![0.5, 0.5]).unwrap();
        // N^T p = (0.5, 1.0) -> beta = 1.0
        assert_eq!(g.col_best_value(&p).unwrap(), 1.0);
    }

    #[test]
    fn display_mentions_name_and_size() {
        let s = bos().to_string();
        assert!(s.contains("BoS"));
        assert!(s.contains("2x2"));
    }
}
