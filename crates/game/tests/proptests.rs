//! Property-based tests for the game-theory substrate.

use cnash_game::families::Family;
use cnash_game::generators::random_integer_game;
use cnash_game::lemke_howson::lemke_howson_all_labels;
use cnash_game::support_enum::{count_by_kind, enumerate_equilibria};
use cnash_game::{BimatrixGame, Matrix, MixedStrategy};
use proptest::prelude::*;

/// Strategy producing a valid probability vector of length `n`.
fn arb_simplex(n: usize) -> impl Strategy<Value = MixedStrategy> {
    prop::collection::vec(0.01f64..1.0, n).prop_map(|raw| {
        let s: f64 = raw.iter().sum();
        MixedStrategy::new(raw.into_iter().map(|x| x / s).collect())
            .expect("normalised vector is a valid strategy")
    })
}

fn arb_game(n: usize, m: usize) -> impl Strategy<Value = BimatrixGame> {
    (
        prop::collection::vec(-10.0f64..10.0, n * m),
        prop::collection::vec(-10.0f64..10.0, n * m),
    )
        .prop_map(move |(a, b)| {
            BimatrixGame::new(
                "prop",
                Matrix::new(n, m, a).expect("valid"),
                Matrix::new(n, m, b).expect("valid"),
            )
            .expect("matching shapes")
        })
}

proptest! {
    /// Eq. (9) objective is a sum of regrets, hence non-negative everywhere.
    #[test]
    fn nash_gap_nonnegative(g in arb_game(3, 4), p in arb_simplex(3), q in arb_simplex(4)) {
        let gap = g.nash_gap(&p, &q).unwrap();
        prop_assert!(gap >= -1e-9, "gap {gap} negative");
    }

    /// The gap is invariant under affine offsets of the payoff matrices —
    /// the property that makes the crossbar offset normalisation lossless.
    #[test]
    fn nash_gap_offset_invariant(
        g in arb_game(3, 3),
        p in arb_simplex(3),
        q in arb_simplex(3),
        c_m in -5.0f64..5.0,
        c_n in -5.0f64..5.0,
    ) {
        let shifted = BimatrixGame::new(
            "shifted",
            g.row_payoffs().map(|x| x + c_m),
            g.col_payoffs().map(|x| x + c_n),
        ).unwrap();
        let a = g.nash_gap(&p, &q).unwrap();
        let b = shifted.nash_gap(&p, &q).unwrap();
        prop_assert!((a - b).abs() < 1e-9, "offset changed gap: {a} vs {b}");
    }

    /// Positive scaling multiplies the gap by the same factor.
    #[test]
    fn nash_gap_scales_linearly(
        g in arb_game(2, 3),
        p in arb_simplex(2),
        q in arb_simplex(3),
        s in 0.1f64..10.0,
    ) {
        let scaled = BimatrixGame::new(
            "scaled",
            g.row_payoffs().map(|x| s * x),
            g.col_payoffs().map(|x| s * x),
        ).unwrap();
        let a = g.nash_gap(&p, &q).unwrap();
        let b = scaled.nash_gap(&p, &q).unwrap();
        prop_assert!((s * a - b).abs() < 1e-8);
    }

    /// Grid round-trip: counts always sum to the interval count and the
    /// reconstructed strategy is within 1/I of the original per action.
    #[test]
    fn grid_quantization_bounds(p in arb_simplex(5), intervals in 1u32..64) {
        let counts = p.to_grid_counts(intervals).unwrap();
        prop_assert_eq!(counts.iter().sum::<u32>(), intervals);
        let q = MixedStrategy::from_grid_counts(&counts, intervals).unwrap();
        // Largest-remainder rounding moves each coordinate at most 1 unit.
        prop_assert!(p.linf_distance(&q) <= 1.0 / intervals as f64 + 1e-12);
    }

    /// Support enumeration output always verifies as an ε-equilibrium.
    #[test]
    fn enumeration_output_verifies(seed in 0u64..50) {
        let g = random_integer_game(3, 3, 9, seed).unwrap();
        for eq in enumerate_equilibria(&g, 1e-9) {
            prop_assert!(g.is_equilibrium(&eq.row, &eq.col, 1e-7));
        }
    }

    /// Bilinear payoff is bounded by the matrix extrema (convexity).
    #[test]
    fn payoff_within_matrix_bounds(g in arb_game(4, 3), p in arb_simplex(4), q in arb_simplex(3)) {
        let (f1, _) = g.payoffs(&p, &q).unwrap();
        prop_assert!(f1 <= g.row_payoffs().max() + 1e-9);
        prop_assert!(f1 >= g.row_payoffs().min() - 1e-9);
    }

    /// `row_best_value` upper-bounds the achieved payoff for any p.
    #[test]
    fn best_value_dominates(g in arb_game(3, 3), p in arb_simplex(3), q in arb_simplex(3)) {
        let (f1, f2) = g.payoffs(&p, &q).unwrap();
        prop_assert!(g.row_best_value(&q).unwrap() >= f1 - 1e-9);
        prop_assert!(g.col_best_value(&p).unwrap() >= f2 - 1e-9);
    }

    /// Pure strategies are on every grid.
    #[test]
    fn pure_strategies_on_grid(n in 1usize..8, intervals in 1u32..32) {
        let p = MixedStrategy::pure(n, n - 1).unwrap();
        prop_assert!(p.is_on_grid(intervals, 1e-12));
    }

    /// Oracle self-consistency across every structured game family: the
    /// two exact solvers share no code, so on small instances of every
    /// family (a) enumeration finds at least one equilibrium (Nash's
    /// theorem), (b) every Lemke–Howson solution certificate-verifies
    /// and appears in the enumerated set, and (c) the enumerator's
    /// pure-equilibrium count agrees with direct best-response scanning.
    #[test]
    fn families_oracles_agree(
        family_idx in 0usize..Family::ALL.len(),
        size in 2usize..5,
        seed in 0u64..200,
    ) {
        let family = Family::ALL[family_idx];
        let g = family
            .build(size, family.default_scale(), family.default_knob(), seed)
            .expect("default parameters are valid");
        let truth = enumerate_equilibria(&g, 1e-9);
        prop_assert!(!truth.is_empty(), "{}: no equilibria enumerated", g.name());
        for eq in lemke_howson_all_labels(&g) {
            prop_assert!(
                g.is_equilibrium(&eq.row, &eq.col, 1e-7),
                "{}: LH returned a non-equilibrium {eq}",
                g.name()
            );
            prop_assert!(
                truth.iter().any(|t| t.same_profile(&eq, 1e-5)),
                "{}: LH equilibrium {eq} missing from enumeration",
                g.name()
            );
        }
        // Pure/mixed split: every pure equilibrium the direct scan finds
        // must be enumerated (as a pure profile), and vice versa.
        let scanned = g.pure_equilibria(1e-9);
        let (pure, _mixed) = count_by_kind(&truth, 1e-6);
        prop_assert!(
            pure == scanned.len(),
            "{}: enumeration found {pure} pure equilibria, direct scan {scanned:?}",
            g.name()
        );
    }
}
