//! Differential property test: the exact-rational support enumerator
//! against the `f64` one, across every structured game family.
//!
//! The trust relation is one-directional. The exact oracle is the
//! anchor: every profile it returns must verify both exactly (by
//! substitution over `Rat`) and in `f64`. The float oracle is the one
//! under test: each of its equilibria must be *explained* by the exact
//! set — matched by profile distance, absorbed by an exact
//! support-pair class (continuum containment), or, for borderline
//! ε-points near an exactly-infeasible support pair, at least survive
//! exact-substitution scrutiny with a regret inside its claiming
//! tolerance. A float equilibrium none of those explain would be the
//! float pipeline listing a non-equilibrium — the exact arithmetic
//! refuting it with certainty.

use cnash_game::equilibrium::continuum_representatives;
use cnash_game::exact_enum::{enumerate_exact, exact_profile_regret, verify_exact};
use cnash_game::families::Family;
use cnash_game::support_enum::enumerate_equilibria;
use cnash_game::SupportClass;
use proptest::prelude::*;

/// Profile tolerance when matching a float equilibrium to an exact one
/// (diffcheck's `MATCH_TOL`).
const MATCH_TOL: f64 = 1e-4;
/// Payoff-tie slack for support-pair classes (diffcheck's `CLASS_TOL`).
const CLASS_TOL: f64 = 1e-6;
/// Probability tolerance for support extraction (diffcheck's
/// `SUPPORT_TOL`).
const SUPPORT_TOL: f64 = 1e-9;
/// The float oracle's own claiming tolerance: the exact regret bound an
/// unmatched float equilibrium must stay inside to avoid refutation.
const CLAIM_TOL: f64 = 1e-6;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(90))]

    /// All 6 families × sizes 2–4 × 5 seeds: exact ⊇ float (within
    /// tolerance/class containment), and every exact equilibrium
    /// verifies both exactly and in f64.
    #[test]
    fn exact_enumeration_explains_float_enumeration(
        family_idx in 0usize..Family::ALL.len(),
        size in 2usize..5,
        seed in 0u64..5,
    ) {
        let family = Family::ALL[family_idx];
        let g = family
            .build(size, family.default_scale(), family.default_knob(), seed)
            .expect("default parameters are valid");

        let float_eqs = enumerate_equilibria(&g, 1e-9);
        let exact_eqs = enumerate_exact(&g);
        prop_assert!(!float_eqs.is_empty(), "{}: float oracle empty", g.name());
        prop_assert!(!exact_eqs.is_empty(), "{}: exact oracle empty", g.name());

        // Anchor side: exact profiles verify exactly and in f64.
        let mut converted = Vec::with_capacity(exact_eqs.len());
        for ee in &exact_eqs {
            prop_assert!(
                verify_exact(&g, ee),
                "{}: exact equilibrium fails exact substitution",
                g.name()
            );
            let eq = ee.to_equilibrium(&g).expect("profile fits the game");
            prop_assert!(
                g.is_equilibrium(&eq.row, &eq.col, 1e-7),
                "{}: exact equilibrium {eq} fails float verification",
                g.name()
            );
            converted.push(eq);
        }

        // Oracle-under-test side: every float equilibrium is explained.
        let exact_classes: Vec<SupportClass> =
            continuum_representatives(&g, &converted, CLASS_TOL).expect("profiles fit");
        for fe in &float_eqs {
            let matched = converted.iter().any(|e| fe.same_profile(e, MATCH_TOL))
                || exact_classes
                    .iter()
                    .any(|c| c.contains_profile(&fe.row, &fe.col, SUPPORT_TOL));
            if matched {
                continue;
            }
            let regret = exact_profile_regret(&g, &fe.row, &fe.col).to_f64();
            prop_assert!(
                regret <= CLAIM_TOL,
                "{}: float equilibrium {fe} refuted by exact substitution (regret {regret:e})",
                g.name()
            );
        }
    }

    /// Determinism: the exact enumerator is a pure function of the
    /// game — two runs agree structurally, including singular flags.
    #[test]
    fn exact_enumeration_is_deterministic(
        family_idx in 0usize..Family::ALL.len(),
        seed in 0u64..5,
    ) {
        let family = Family::ALL[family_idx];
        let g = family
            .build(3, family.default_scale(), family.default_knob(), seed)
            .expect("default parameters are valid");
        prop_assert_eq!(enumerate_exact(&g), enumerate_exact(&g));
    }
}
