//! Captures the compiler version at build time so the daemon can
//! report it (`serviced --version`, the `build` block of a ping
//! response) without shelling out at runtime.

use std::process::Command;

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".into());
    let version = Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())
        .unwrap_or_else(|| "rustc (unknown)".into());
    println!("cargo:rustc-env=CNASH_RUSTC_VERSION={version}");
    println!("cargo:rerun-if-env-changed=RUSTC");
}
