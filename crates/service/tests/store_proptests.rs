//! Property tests of the solution store's two load-bearing promises:
//!
//! 1. **Durability** — append → reopen → lookup is bit-identical for
//!    arbitrary key/payload sets (last write wins per key), at any
//!    append order.
//! 2. **Crash safety** — arbitrary damage to the log (a truncated
//!    tail from a torn write, a flipped byte anywhere past the magic)
//!    never panics and never loses a record *before* the damage:
//!    `open` serves the surviving prefix, compacts the log, and the
//!    compacted log is fsck-clean and append-able again.

use cnash_service::store::{RECORD_HEADER_BYTES, STORE_MAGIC};
use cnash_service::SolutionStore;
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique throwaway log path per proptest case.
fn temp_log(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "cnash-store-prop-{tag}-{}-{n}.log",
        std::process::id()
    ))
}

/// Byte offset one past record `i` in a log of `payloads` (records are
/// `RECORD_HEADER_BYTES` + payload).
fn record_end(payloads: &[String], i: usize) -> usize {
    STORE_MAGIC.len()
        + payloads[..=i]
            .iter()
            .map(|p| RECORD_HEADER_BYTES + p.len())
            .sum::<usize>()
}

/// The payload alphabet: JSON punctuation plus multi-byte UTF-8, so
/// the framing is exercised with byte lengths ≠ char counts (the store
/// treats payloads as opaque UTF-8).
const PAYLOAD_CHARS: &[char] = &[
    'a', 'z', '0', '9', '{', '}', '"', ':', ',', '.', ' ', 'é', '→', '∎',
];

/// Payloads that exercise the framing: empty through ~40 chars.
fn payload_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..PAYLOAD_CHARS.len(), 0..40)
        .prop_map(|idxs| idxs.into_iter().map(|i| PAYLOAD_CHARS[i]).collect())
}

/// Short ASCII payloads (the flip test computes byte offsets).
fn ascii_payload_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..26, 1..20)
        .prop_map(|v| v.into_iter().map(|b| (b'a' + b) as char).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn append_reopen_lookup_is_bit_identical(
        records in prop::collection::vec((0u64..32, payload_strategy()), 1..24),
    ) {
        let path = temp_log("roundtrip");
        {
            let store = SolutionStore::open(&path).expect("fresh open");
            for (key, payload) in &records {
                store.append(*key, payload).expect("append");
            }
        }
        // Last write wins per key; `append` refuses resident keys, so
        // the expectation is the FIRST payload per key.
        let mut expected: HashMap<u64, &str> = HashMap::new();
        for (key, payload) in &records {
            expected.entry(*key).or_insert(payload.as_str());
        }
        let store = SolutionStore::open(&path).expect("reopen");
        prop_assert!(!store.open_report().compacted, "clean log must not compact");
        prop_assert_eq!(store.len(), expected.len() as u64);
        for (key, payload) in &expected {
            let got = store.lookup(*key).expect("resident key");
            prop_assert_eq!(got.as_ref(), *payload);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_serves_the_surviving_prefix(
        payloads in prop::collection::vec(payload_strategy(), 1..12),
        cut_back in 0usize..200,
    ) {
        let path = temp_log("truncate");
        {
            let store = SolutionStore::open(&path).expect("fresh open");
            for (i, payload) in payloads.iter().enumerate() {
                store.append(i as u64, payload).expect("append");
            }
        }
        let full = std::fs::metadata(&path).expect("metadata").len() as usize;
        // Cut anywhere from just-the-magic up to the full log.
        let cut = full.saturating_sub(cut_back).max(STORE_MAGIC.len());
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..cut]).expect("truncate");

        let survivors = (0..payloads.len())
            .take_while(|&i| record_end(&payloads, i) <= cut)
            .count();
        let store = SolutionStore::open(&path).expect("truncated log must open");
        prop_assert_eq!(store.len(), survivors as u64);
        for (i, payload) in payloads.iter().enumerate().take(survivors) {
            let got = store.lookup(i as u64).expect("survivor resident");
            prop_assert_eq!(got.as_ref(), payload.as_str());
        }
        // A recovered store is a working store: append, reopen, fsck.
        store.append(u64::MAX, "post-recovery").expect("append after recovery");
        drop(store);
        let reopened = SolutionStore::open(&path).expect("reopen after recovery");
        prop_assert!(!reopened.open_report().compacted, "recovery left a clean log");
        let appended = reopened.lookup(u64::MAX).expect("appended");
        prop_assert_eq!(appended.as_ref(), "post-recovery");
        let fsck = SolutionStore::fsck(&path).expect("fsck");
        prop_assert!(fsck.ok(), "post-recovery log must be fsck-clean: {fsck:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_byte_never_panics_and_keeps_the_prefix(
        payloads in prop::collection::vec(ascii_payload_strategy(), 2..10),
        flip_at in 0usize..400,
        flip_mask in 1u8..=255,
    ) {
        let path = temp_log("flip");
        {
            let store = SolutionStore::open(&path).expect("fresh open");
            for (i, payload) in payloads.iter().enumerate() {
                store.append(i as u64, payload).expect("append");
            }
        }
        let mut bytes = std::fs::read(&path).expect("read");
        // Flip one byte somewhere past the magic (flips inside the
        // magic make the file foreign — refused by design, not
        // recovered — so they are a different contract).
        let at = STORE_MAGIC.len() + flip_at % (bytes.len() - STORE_MAGIC.len());
        bytes[at] ^= flip_mask;
        std::fs::write(&path, &bytes).expect("write corrupted");

        // The first record whose frame contains the flipped byte; every
        // record before it must survive verbatim (damage can only eat
        // the log from the flip onward — a corrupt length misframes the
        // rest, a corrupt checksum skips one record).
        let damaged = (0..payloads.len())
            .find(|&i| at < record_end(&payloads, i))
            .expect("flip lands inside some record");
        let store = SolutionStore::open(&path).expect("corrupt log must still open");
        prop_assert!(store.len() <= payloads.len() as u64);
        for (i, payload) in payloads.iter().enumerate().take(damaged) {
            let got = store.lookup(i as u64).expect("pre-damage record resident");
            prop_assert_eq!(got.as_ref(), payload.as_str());
        }
        drop(store);
        // Whatever the damage, recovery converges: the compacted log is
        // fsck-clean and stable across a further reopen.
        let fsck = SolutionStore::fsck(&path).expect("fsck");
        prop_assert!(fsck.ok(), "recovered log must be fsck-clean: {fsck:?}");
        let reopened = SolutionStore::open(&path).expect("reopen recovered");
        prop_assert!(!reopened.open_report().compacted, "recovery is idempotent");
        std::fs::remove_file(&path).ok();
    }
}
