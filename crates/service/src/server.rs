//! The TCP front-end: a single-threaded nonblocking reactor driving
//! every connection's state machine, plus the solve executor gluing
//! protocol → cache → scheduler → runtime.
//!
//! # Reactor architecture
//!
//! One `cnash-reactor` thread owns the listener, every connection
//! socket and the [`Poller`] (epoll on Linux). Per readiness tick it:
//!
//! 1. accepts new connections (dropping them over
//!    [`ServiceConfig::max_connections`]),
//! 2. reads ready connections through an incremental [`LineFramer`],
//!    turning complete lines into response slots or scheduler jobs,
//! 3. applies solve completions (scheduler shards push results into a
//!    shared queue and nudge the [`Waker`]),
//! 4. advances each connection's reorder buffer — responses stream
//!    back **in request order** regardless of shard interleaving — and
//!    writes as much as the kernel accepts into the socket.
//!
//! Responses the kernel will not take queue in a bounded per-connection
//! [`WriteQueue`]: past the soft limit the reactor **stops reading**
//! that connection (backpressure — a slow reader throttles itself, not
//! the daemon), and past the hard cap the connection is dropped and
//! counted (`conn_overflow_dropped`). Shutdown is graceful: the
//! listener closes first, in-flight jobs drain (the shutdown signal
//! cancels their batches, so they finish fast), queued responses flush,
//! and only then do sockets close — bounded by
//! [`ServiceConfig::drain_ms`].

use crate::cache::InstanceCache;
use crate::framing::{overflow_verdict, FramedLine, LineFramer, QueueVerdict, WriteQueue};
use crate::protocol::{self, Request, TruthPolicy};
use crate::reactor::{drain_wakeups, waker_fd, PollEvent, Poller, Waker};
use crate::sched::Scheduler;
use crate::store::{self, SolutionStore};
use cnash_game::support_enum::MAX_ENUM_ACTIONS;
use cnash_runtime::report::game_report_json;
use cnash_runtime::spec::JobSpec;
use cnash_runtime::{BatchRunner, CancelToken, Json};
use cnash_telemetry::{Counter, Gauge, Histogram, Registry, TelemetrySpan};
use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Hard cap on one request line; longer lines get one error response
/// and are discarded through their terminating newline.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Poller token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// Poller token of the waker's receive end.
const TOKEN_WAKER: u64 = 1;
/// First token handed to an accepted connection.
const FIRST_CONN_TOKEN: u64 = 2;
/// One `read` call's buffer.
const READ_CHUNK: usize = 16 * 1024;
/// Per-connection read budget per readiness tick — a firehose client
/// cannot starve its peers for longer than this.
const READ_BUDGET: usize = 64 * 1024;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address. Port `0` asks the OS for an ephemeral port —
    /// read the actual one from [`ServiceHandle::addr`].
    pub addr: String,
    /// Scheduler shards (`0` = one per available core).
    pub shards: usize,
    /// Worker threads per batch job. The default of `1` trades
    /// per-job latency for throughput: with every shard busy, extra
    /// per-batch threads would only oversubscribe the cores.
    pub batch_threads: usize,
    /// Open-connection cap; connections accepted past it are closed
    /// immediately and counted under `conn_rejected`.
    pub max_connections: usize,
    /// Write-queue depth (bytes) past which the reactor stops reading
    /// the connection until the queue drains below half this limit.
    pub write_queue_soft_limit: usize,
    /// Write-queue depth (bytes) past which the connection is dropped
    /// and counted under `conn_overflow_dropped`. Only responses to
    /// already-accepted requests (in-flight solves) can push the queue
    /// beyond the soft limit, so this bounds per-connection memory at
    /// roughly `hard limit + one maximal response`.
    pub write_queue_hard_limit: usize,
    /// Graceful-shutdown budget: how long the reactor waits for
    /// in-flight jobs to drain and queued responses to flush before
    /// force-closing the stragglers.
    pub drain_ms: u64,
    /// Optional `SO_SNDBUF` clamp for accepted connections. `None`
    /// leaves the kernel's autotuning (tens of MB per connection on
    /// loopback); a value bounds kernel memory per connection and makes
    /// the reactor's write-queue backpressure engage early instead of
    /// hiding behind kernel buffering.
    pub send_buffer_bytes: Option<usize>,
    /// Optional path of a persistent [`SolutionStore`] log. When set,
    /// the daemon warm-boots from it (one scan on open), answers repeat
    /// solves from disk with a `"cache":"disk"` provenance field, and
    /// appends every fresh solve's deterministic payload. `None` (the
    /// default) keeps the service fully in-memory and its wire output
    /// byte-identical to pre-store builds.
    pub store_path: Option<String>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            shards: 0,
            batch_threads: 1,
            max_connections: 4096,
            write_queue_soft_limit: 256 * 1024,
            write_queue_hard_limit: 8 * 1024 * 1024,
            drain_ms: 5_000,
            send_buffer_bytes: None,
            store_path: None,
        }
    }
}

/// A signal that shuts the daemon down from any thread (idempotent).
#[derive(Clone)]
pub struct ShutdownSignal {
    cancel: CancelToken,
    fired: Arc<AtomicBool>,
    waker: Waker,
}

impl ShutdownSignal {
    /// Requests shutdown: cancels in-flight batches (they observe the
    /// token and finish fast) and wakes the reactor, which stops
    /// accepting, drains, flushes and exits.
    pub fn fire(&self) {
        if self.fired.swap(true, Ordering::SeqCst) {
            return;
        }
        self.cancel.cancel();
        self.waker.wake();
    }

    fn is_fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }
}

/// A running service instance.
pub struct ServiceHandle {
    addr: SocketAddr,
    signal: ShutdownSignal,
    reactor: JoinHandle<()>,
    registry: Arc<Registry>,
    store: Option<Arc<SolutionStore>>,
}

impl ServiceHandle {
    /// The bound address (with the OS-chosen port when the config asked
    /// for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's telemetry registry (per-op latency histograms,
    /// connection gauges, scheduler gauges, cache counters) — what the
    /// `metrics` op and `serviced --metrics-file` snapshot.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The persistent solution store the daemon serves from, when one
    /// was configured via [`ServiceConfig::store_path`].
    pub fn store(&self) -> Option<&Arc<SolutionStore>> {
        self.store.as_ref()
    }

    /// A clonable handle that can shut the daemon down.
    pub fn shutdown_signal(&self) -> ShutdownSignal {
        self.signal.clone()
    }

    /// Blocks until the daemon exits (a `shutdown` request, or
    /// [`ShutdownSignal::fire`]).
    pub fn join(self) {
        self.reactor.join().expect("reactor panicked");
    }

    /// Fires shutdown and waits for exit.
    pub fn stop(self) {
        self.signal.fire();
        self.join();
    }
}

/// Binds the listener and spawns the daemon: scheduler shards plus the
/// reactor thread owning every socket.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable, or the errno
/// of the poller/waker setup.
pub fn serve(config: ServiceConfig) -> io::Result<ServiceHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let (waker, wake_rx) = Waker::new()?;
    let mut poller = Poller::new()?;
    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, true, false)?;
    poller.register(waker_fd(&wake_rx), TOKEN_WAKER, true, false)?;

    let signal = ShutdownSignal {
        cancel: CancelToken::new(),
        fired: Arc::new(AtomicBool::new(false)),
        waker,
    };
    let registry = Arc::new(Registry::new());
    let cache = Arc::new(InstanceCache::with_registry(&registry));
    let store = config
        .store_path
        .as_deref()
        .map(|path| SolutionStore::open_with_registry(path, &registry).map(Arc::new))
        .transpose()?;
    let scheduler = Scheduler::with_registry(config.shards, &registry);
    let reactor = Reactor {
        listener,
        wake_rx,
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
        drain_deadline: None,
        ctx: Ctx {
            poller,
            config,
            cache,
            store: store.clone(),
            scheduler,
            registry: Arc::clone(&registry),
            signal: signal.clone(),
            completions: Arc::new(Mutex::new(Vec::new())),
            metrics: ServiceMetrics::new(&registry),
            draining: false,
        },
    };
    let thread = std::thread::Builder::new()
        .name("cnash-reactor".into())
        .spawn(move || reactor.run())?;
    Ok(ServiceHandle {
        addr,
        signal,
        reactor: thread,
        registry,
        store,
    })
}

/// Connection-layer instruments, registered under stable names.
struct ServiceMetrics {
    /// Gauge: currently open connections.
    conn_open: Arc<Gauge>,
    /// Gauge: bytes queued across every connection's write queue.
    conn_write_queue_bytes: Arc<Gauge>,
    /// Connections the kernel handed to `accept` (including rejects).
    conn_accepted: Arc<Counter>,
    /// Connections closed for any reason (EOF, shutdown, drop).
    conn_closed: Arc<Counter>,
    /// Accepted connections closed immediately: over
    /// `max_connections`, or arriving during drain.
    conn_rejected: Arc<Counter>,
    /// Connections dropped for exceeding the write-queue hard cap.
    conn_overflow_dropped: Arc<Counter>,
    /// Times a connection's reads were paused at the soft limit.
    conn_backpressure_stalls: Arc<Counter>,
    op_ping: Arc<Histogram>,
    op_solve: Arc<Histogram>,
    op_stats: Arc<Histogram>,
    op_metrics: Arc<Histogram>,
}

impl ServiceMetrics {
    fn new(registry: &Registry) -> Self {
        Self {
            conn_open: registry.gauge("conn_open"),
            conn_write_queue_bytes: registry.gauge("conn_write_queue_bytes"),
            conn_accepted: registry.counter("conn_accepted"),
            conn_closed: registry.counter("conn_closed"),
            conn_rejected: registry.counter("conn_rejected"),
            conn_overflow_dropped: registry.counter("conn_overflow_dropped"),
            conn_backpressure_stalls: registry.counter("conn_backpressure_stalls"),
            op_ping: registry.histogram("op_ping_ns"),
            op_solve: registry.histogram("op_solve_ns"),
            op_stats: registry.histogram("op_stats_ns"),
            op_metrics: registry.histogram("op_metrics_ns"),
        }
    }
}

/// One request's place in the response stream. Everything is plain
/// data resolved on the reactor thread at emission time — `stats` and
/// `metrics` must observe every earlier response, which is exactly
/// when the reorder buffer reaches their sequence number.
enum Slot {
    /// A finished response.
    Ready(Json),
    /// `stats`, computed at emission (payload: request id).
    Stats(Json),
    /// `metrics`, computed at emission (payload: request id).
    Metrics(Json),
    /// `shutdown`: emit the acknowledgement, close this connection
    /// once it flushes, and fire the daemon-wide shutdown.
    Shutdown(Json),
}

/// A solve finished on some shard: `(connection token, seq, response)`.
type Completion = (u64, u64, Json);

/// Why a connection is being closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Close {
    /// Stream complete (EOF + drained), shutdown flush, or drain end.
    Done,
    /// Write-queue hard cap exceeded.
    Overflow,
    /// The socket failed mid-write or lost its poller registration.
    Torn,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    fd: RawFd,
    token: u64,
    framer: LineFramer,
    wq: WriteQueue,
    /// Out-of-order response slots awaiting their turn.
    pending: BTreeMap<u64, Slot>,
    /// Next sequence number to assign to an incoming request.
    next_seq: u64,
    /// Next sequence number to emit into the write queue.
    next_emit: u64,
    /// Solve jobs submitted to the scheduler, not yet completed.
    in_flight: usize,
    /// EOF observed (or the read side failed).
    read_closed: bool,
    /// A shutdown acknowledgement is queued: close once flushed.
    close_after_flush: bool,
    /// Reads paused by write-queue backpressure.
    paused: bool,
    /// Interest currently registered with the poller.
    want_read: bool,
    want_write: bool,
}

impl Conn {
    fn new(stream: TcpStream, fd: RawFd, token: u64) -> Self {
        Self {
            stream,
            fd,
            token,
            framer: LineFramer::new(MAX_LINE_BYTES),
            wq: WriteQueue::new(),
            pending: BTreeMap::new(),
            next_seq: 0,
            next_emit: 0,
            in_flight: 0,
            read_closed: false,
            close_after_flush: false,
            paused: false,
            want_read: true,
            want_write: false,
        }
    }

    fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }
}

/// Everything the per-connection logic needs besides the connection
/// map itself — split out so `&mut Conn` (borrowed from the map) and
/// `&mut Ctx` can coexist.
struct Ctx {
    poller: Poller,
    config: ServiceConfig,
    cache: Arc<InstanceCache>,
    store: Option<Arc<SolutionStore>>,
    scheduler: Scheduler,
    registry: Arc<Registry>,
    signal: ShutdownSignal,
    completions: Arc<Mutex<Vec<Completion>>>,
    metrics: ServiceMetrics,
    draining: bool,
}

/// The event loop's owner: sockets, connection map, drain clock.
struct Reactor {
    listener: TcpListener,
    wake_rx: UnixStream,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    drain_deadline: Option<Instant>,
    ctx: Ctx,
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<PollEvent> = Vec::with_capacity(256);
        loop {
            // Draining polls on a short leash so the deadline fires
            // even with no socket activity; otherwise block freely —
            // completions and shutdown arrive through the waker.
            let timeout = self.ctx.draining.then(|| Duration::from_millis(20));
            if let Err(e) = self.ctx.poller.wait(&mut events, timeout) {
                if e.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                break; // the poller itself failed: nothing left to drive
            }
            for &ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => drain_wakeups(&self.wake_rx),
                    token => self.conn_ready(token, ev),
                }
            }
            self.apply_completions();
            if self.ctx.signal.is_fired() && !self.ctx.draining {
                self.begin_drain();
            }
            if self.ctx.draining {
                if self.drain_deadline.is_some_and(|d| Instant::now() >= d) {
                    for token in self.conns.keys().copied().collect::<Vec<_>>() {
                        self.close_conn(token, Close::Done);
                    }
                }
                if self.conns.is_empty() {
                    break;
                }
            }
        }
        for token in self.conns.keys().copied().collect::<Vec<_>>() {
            self.close_conn(token, Close::Done);
        }
        // Queued jobs observe the cancelled token and finish fast;
        // their completions have nowhere to go and are dropped.
        self.ctx.scheduler.shutdown();
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.ctx.metrics.conn_accepted.inc();
                    let over_cap = self.conns.len() >= self.ctx.config.max_connections;
                    if self.ctx.draining || self.ctx.signal.is_fired() || over_cap {
                        self.ctx.metrics.conn_rejected.inc();
                        continue; // dropping the stream closes it
                    }
                    if stream.set_nonblocking(true).is_err() {
                        self.ctx.metrics.conn_rejected.inc();
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    if let Some(bytes) = self.ctx.config.send_buffer_bytes {
                        let _ = crate::reactor::set_send_buffer(fd, bytes);
                    }
                    let token = self.next_token;
                    if self.ctx.poller.register(fd, token, true, false).is_err() {
                        self.ctx.metrics.conn_rejected.inc();
                        continue;
                    }
                    self.next_token += 1;
                    self.conns.insert(token, Conn::new(stream, fd, token));
                    self.ctx.metrics.conn_open.inc();
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn conn_ready(&mut self, token: u64, ev: PollEvent) {
        let verdict = match self.conns.get_mut(&token) {
            None => return, // stale event for an already-closed conn
            Some(conn) => {
                if ev.readable {
                    self.ctx.read_input(conn);
                }
                self.ctx.after_progress(conn)
            }
        };
        if let Some(close) = verdict {
            self.close_conn(token, close);
        }
    }

    fn apply_completions(&mut self) {
        let batch: Vec<Completion> = {
            let mut queue = self
                .ctx
                .completions
                .lock()
                .expect("completion queue poisoned");
            std::mem::take(&mut *queue)
        };
        for (token, seq, response) in batch {
            let verdict = match self.conns.get_mut(&token) {
                None => continue, // the connection was dropped mid-solve
                Some(conn) => {
                    conn.in_flight -= 1;
                    conn.pending.insert(seq, Slot::Ready(response));
                    self.ctx.after_progress(conn)
                }
            };
            if let Some(close) = verdict {
                self.close_conn(token, close);
            }
        }
    }

    fn begin_drain(&mut self) {
        self.ctx.draining = true;
        self.drain_deadline =
            Some(Instant::now() + Duration::from_millis(self.ctx.config.drain_ms));
        let _ = self.ctx.poller.deregister(self.listener.as_raw_fd());
        // Re-evaluate every connection under drain rules: reads stop,
        // idle connections close now, busy ones close once their
        // in-flight responses flush.
        for token in self.conns.keys().copied().collect::<Vec<_>>() {
            let verdict = match self.conns.get_mut(&token) {
                None => continue,
                Some(conn) => self.ctx.after_progress(conn),
            };
            if let Some(close) = verdict {
                self.close_conn(token, close);
            }
        }
    }

    fn close_conn(&mut self, token: u64, close: Close) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.ctx.poller.deregister(conn.fd);
        let metrics = &self.ctx.metrics;
        metrics
            .conn_write_queue_bytes
            .add(-(conn.wq.bytes() as i64));
        metrics.conn_open.dec();
        metrics.conn_closed.inc();
        if close == Close::Overflow {
            metrics.conn_overflow_dropped.inc();
        }
        // Dropping `conn.stream` closes the socket (FIN, or RST for an
        // overflow drop with unread input — either way the client sees
        // the connection end).
    }
}

impl Ctx {
    /// Reads and processes as much input as budget, backpressure and
    /// the kernel allow.
    fn read_input(&mut self, conn: &mut Conn) {
        if conn.read_closed || conn.paused || conn.close_after_flush || self.draining {
            return;
        }
        let mut chunk = [0u8; READ_CHUNK];
        let mut budget = READ_BUDGET;
        'tick: while budget > 0 {
            match (&conn.stream).read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    budget = budget.saturating_sub(n);
                    conn.framer.extend(&chunk[..n]);
                    while let Some(line) = conn.framer.next_line() {
                        self.process_line(conn, line);
                        if conn.close_after_flush {
                            break 'tick; // requests after shutdown are not served
                        }
                    }
                    // Checking between chunks bounds the queue overshoot
                    // to one chunk's worth of requests.
                    if conn.wq.bytes() > self.config.write_queue_soft_limit {
                        break;
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.read_closed = true;
                    break;
                }
            }
        }
    }

    /// Parses one framed line into a response slot or a scheduler job.
    fn process_line(&mut self, conn: &mut Conn, line: FramedLine) {
        let text = match line {
            FramedLine::Oversized => {
                let seq = conn.alloc_seq();
                conn.pending.insert(
                    seq,
                    Slot::Ready(protocol::error_response(
                        &Json::Null,
                        &format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                    )),
                );
                return;
            }
            FramedLine::Line(text) => text,
        };
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return; // blank lines consume no sequence number
        }
        let envelope = protocol::parse_request(trimmed);
        let id = envelope.id;
        let seq = conn.alloc_seq();
        let slot = match envelope.request {
            Err(e) => Slot::Ready(protocol::error_response(&id, &e.message)),
            Ok(Request::Ping) => {
                let span = TelemetrySpan::start(&self.metrics.op_ping);
                let pong = protocol::pong_response(&id);
                span.finish();
                Slot::Ready(pong)
            }
            Ok(Request::Stats) => Slot::Stats(id),
            Ok(Request::Metrics) => Slot::Metrics(id),
            Ok(Request::Shutdown) => Slot::Shutdown(id),
            Ok(Request::Solve { job, truth }) => {
                match self.submit_solve(conn.token, seq, &id, *job, truth) {
                    Ok(()) => {
                        conn.in_flight += 1;
                        return; // the completion queue delivers the slot
                    }
                    Err(error) => Slot::Ready(error),
                }
            }
        };
        conn.pending.insert(seq, slot);
    }

    /// Hands a solve to the scheduler; its completion flows back through
    /// the shared queue + waker.
    fn submit_solve(
        &mut self,
        token: u64,
        seq: u64,
        id: &Json,
        job: JobSpec,
        truth: TruthPolicy,
    ) -> Result<(), Json> {
        let cache = Arc::clone(&self.cache);
        let store = self.store.clone();
        let cancel = self.signal.cancel.clone();
        let batch_threads = self.config.batch_threads;
        let sink = Arc::clone(&self.metrics.op_solve);
        let completions = Arc::clone(&self.completions);
        let waker = self.signal.waker.clone();
        let job_id = id.clone();
        self.scheduler
            .submit(Box::new(move || {
                let span = TelemetrySpan::start(&sink);
                // A panicking solve must still produce a response: the
                // reorder buffer cannot advance past a missing sequence
                // number, so a lost response would wedge every later
                // reply on this connection.
                let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    execute_solve(
                        &cache,
                        store.as_deref(),
                        &job,
                        truth,
                        batch_threads,
                        &cancel,
                        &job_id,
                    )
                }))
                .unwrap_or_else(|_| {
                    protocol::error_response(&job_id, "internal error: solve panicked")
                });
                span.finish();
                completions
                    .lock()
                    .expect("completion queue poisoned")
                    .push((token, seq, response));
                waker.wake();
            }))
            .map_err(|_| protocol::error_response(id, "service is shutting down"))
    }

    /// Emits every due slot into the write queue. `stats`/`metrics`
    /// are computed here — with all earlier responses resolved — which
    /// preserves the blocking server's lazy-evaluation semantics.
    fn advance_reorder(&mut self, conn: &mut Conn) {
        while !conn.close_after_flush {
            let Some(slot) = conn.pending.remove(&conn.next_emit) else {
                break;
            };
            conn.next_emit += 1;
            let doc = match slot {
                Slot::Ready(doc) => doc,
                Slot::Stats(id) => {
                    let span = TelemetrySpan::start(&self.metrics.op_stats);
                    let mut doc = Json::obj([
                        ("id", id),
                        ("ok", Json::Bool(true)),
                        ("stats", self.cache.stats().to_json()),
                        ("shards", Json::num(self.scheduler.shard_count() as f64)),
                        // Grouped so golden-file tooling can strip the
                        // scheduling-dependent counts in one move.
                        (
                            "scheduler",
                            Json::obj([
                                ("jobs_executed", Json::uint(self.scheduler.jobs_executed())),
                                ("jobs_stolen", Json::uint(self.scheduler.jobs_stolen())),
                            ]),
                        ),
                    ]);
                    // Present only when a store is configured, so the
                    // no-store golden streams are byte-unchanged.
                    if let (Some(store), Json::Obj(map)) = (&self.store, &mut doc) {
                        map.insert("store".into(), store.stats().to_json());
                    }
                    span.finish();
                    doc
                }
                Slot::Metrics(id) => {
                    let span = TelemetrySpan::start(&self.metrics.op_metrics);
                    let doc = protocol::metrics_response(&id, &self.registry.snapshot());
                    span.finish();
                    doc
                }
                Slot::Shutdown(id) => {
                    // Answer the prefix, then this acknowledgement, then
                    // close — and take the whole daemon down with us.
                    conn.close_after_flush = true;
                    self.signal.fire();
                    protocol::shutdown_response(&id)
                }
            };
            let mut bytes = doc.compact().into_bytes();
            bytes.push(b'\n');
            self.metrics.conn_write_queue_bytes.add(bytes.len() as i64);
            conn.wq.push(bytes);
        }
    }

    /// The per-connection maintenance pass run after any state change:
    /// advance the reorder buffer, flush what the kernel takes, apply
    /// the backpressure verdict, update poller interest, and decide
    /// whether the connection is finished.
    fn after_progress(&mut self, conn: &mut Conn) -> Option<Close> {
        self.advance_reorder(conn);
        match conn.wq.write_to(&mut (&conn.stream)) {
            Ok(n) => self.metrics.conn_write_queue_bytes.add(-(n as i64)),
            Err(_) => return Some(Close::Torn),
        }
        let soft = self.config.write_queue_soft_limit;
        match overflow_verdict(conn.wq.bytes(), soft, self.config.write_queue_hard_limit) {
            QueueVerdict::Drop => return Some(Close::Overflow),
            QueueVerdict::Pause => {
                if !conn.paused {
                    conn.paused = true;
                    self.metrics.conn_backpressure_stalls.inc();
                }
            }
            QueueVerdict::Ok => {
                // Hysteresis: resume reads only once the queue has
                // drained well clear of the limit.
                if conn.paused && conn.wq.bytes() <= soft / 2 {
                    conn.paused = false;
                }
            }
        }
        let idle = conn.in_flight == 0 && conn.pending.is_empty() && conn.wq.is_empty();
        if conn.close_after_flush && conn.wq.is_empty() {
            return Some(Close::Done);
        }
        if idle && (conn.read_closed || self.draining) {
            return Some(Close::Done);
        }
        let want_read =
            !conn.read_closed && !conn.paused && !conn.close_after_flush && !self.draining;
        let want_write = !conn.wq.is_empty();
        if (want_read, want_write) != (conn.want_read, conn.want_write) {
            if self
                .poller
                .reregister(conn.fd, conn.token, want_read, want_write)
                .is_err()
            {
                return Some(Close::Torn);
            }
            conn.want_read = want_read;
            conn.want_write = want_write;
        }
        None
    }
}

/// Runs one solve request to completion and builds its response.
///
/// When a [`SolutionStore`] is supplied, it is consulted *before* the
/// instance cache: a resident record answers the request in O(lookup)
/// — no programming, no anneal — with the stored deterministic payload
/// plus a fresh `id`, a `"cache":"disk"` provenance field and this
/// call's timing fields. A fresh (non-cancelled) solve's payload is
/// appended on the way out, so the next identical request — in this
/// process or any later one — is a disk hit.
///
/// Public because the offline `presolve` sweeper drives this exact
/// function: sweeping through it (rather than a parallel code path)
/// is what makes presolved records byte-identical to what the daemon
/// would have produced live.
pub fn execute_solve(
    cache: &InstanceCache,
    store: Option<&SolutionStore>,
    job: &JobSpec,
    truth: TruthPolicy,
    batch_threads: usize,
    cancel: &CancelToken,
    id: &Json,
) -> Json {
    let start = Instant::now();
    let game = match job.game.build() {
        Ok(game) => game,
        Err(e) => return protocol::error_response(id, &e.message),
    };
    // The store key is a pure function of the built game + request
    // knobs, so it can be derived (and answered) before any expensive
    // preparation.
    let store_key = store.map(|s| {
        let key = store::solve_key(&game, job, truth);
        (s, key)
    });
    if let Some((store, key)) = store_key {
        if let Some(payload) = store.lookup(key) {
            // Records are checksummed, so this parse cannot fail short
            // of a key collision; if it somehow does, fall through to a
            // live solve rather than serving garbage.
            if let Ok(Json::Obj(mut map)) = Json::parse(&payload) {
                map.insert("id".into(), id.clone());
                map.insert("cache".into(), Json::str("disk"));
                map.insert(
                    "wall_ms".into(),
                    Json::Num(start.elapsed().as_secs_f64() * 1e3),
                );
                map.insert("program_ms".into(), Json::Num(0.0));
                return Json::Obj(map);
            }
        }
    }
    let prepared = match cache.prepare_with_game(game, &job.solver) {
        Ok(prepared) => prepared,
        Err(e) => return protocol::error_response(id, &e.message),
    };
    let program_ms = start.elapsed().as_secs_f64() * 1e3;

    // `enumerate` on a game past the support-enumeration bound would
    // panic inside the oracle; degrade to `skip` instead and flag the
    // response so clients know their coverage statistics are against an
    // empty ground truth they did not ask for.
    let enumerable = prepared.game.row_actions() <= MAX_ENUM_ACTIONS
        && prepared.game.col_actions() <= MAX_ENUM_ACTIONS;
    let degraded = truth == TruthPolicy::Enumerate && !enumerable;
    let ground_truth = match truth {
        TruthPolicy::Enumerate if !degraded => cache.ground_truth(&prepared.game),
        _ => Arc::new(Vec::new()),
    };
    let mut runner = BatchRunner::new(job.runs, job.base_seed).threads(batch_threads);
    runner.early_stop = job.early_stop;
    // A *child* of the daemon's shutdown token: shutdown cancels this
    // batch, but the batch's own early stop (which cancels its token to
    // halt its pool) cannot leak into sibling jobs on other shards.
    let batch_token = cancel.child();
    let batch = runner.evaluate_cancellable(prepared.solver.as_ref(), &ground_truth, &batch_token);

    let label = job
        .label
        .clone()
        .unwrap_or_else(|| format!("{} on {}", job.solver.label(), prepared.game.name()));
    let mut response = Json::obj([
        ("id", id.clone()),
        ("ok", Json::Bool(true)),
        ("label", Json::str(label)),
        ("cache_hit", Json::Bool(prepared.cache_hit)),
        ("report", game_report_json(&batch.report)),
        ("scheduled_runs", Json::num(batch.scheduled_runs as f64)),
        ("executed_runs", Json::num(batch.executed_runs as f64)),
        ("stopped_early", Json::Bool(batch.stopped_early)),
        ("cancelled", Json::Bool(batch.cancelled)),
        ("wall_ms", Json::Num(start.elapsed().as_secs_f64() * 1e3)),
        ("program_ms", Json::Num(program_ms)),
    ]);
    // Only present (as `true`) when the degrade actually happened, so
    // existing golden streams are unchanged.
    if degraded {
        if let Json::Obj(map) = &mut response {
            map.insert("ground_truth_degraded".into(), Json::Bool(true));
        }
    }
    // Persist the deterministic payload: the response minus the
    // request-scoped `id` and this call's timing fields. A cancelled
    // batch is a partial result — never recorded.
    if let Some((store, key)) = store_key {
        if !batch.cancelled {
            let mut payload = response.clone();
            protocol::strip_timing(&mut payload);
            if let Json::Obj(map) = &mut payload {
                map.remove("id");
            }
            // Best effort: a full disk degrades the store to a cache,
            // not the solve to an error.
            let _ = store.append(key, &payload.compact());
        }
    }
    response
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};

    fn send_lines(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let mut stream = TcpStream::connect(addr).expect("connect");
        for line in lines {
            stream.write_all(line.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
        }
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let reader = BufReader::new(stream);
        reader.lines().map(|l| l.unwrap()).collect()
    }

    const SOLVE_BOS: &str = r#"{"op":"solve","id":2,"job":{"game":{"builtin":"battle_of_the_sexes"},"solver":{"type":"cnash","preset":"paper","intervals":12,"iterations":1500,"hardware_seed":1},"runs":4,"base_seed":0}}"#;

    #[test]
    fn round_trips_pipelined_requests_in_order() {
        let handle = serve(ServiceConfig {
            shards: 2,
            ..ServiceConfig::default()
        })
        .unwrap();
        let addr = handle.addr();
        let responses = send_lines(
            addr,
            &[
                r#"{"op":"ping","id":1}"#,
                SOLVE_BOS,
                SOLVE_BOS.replace(r#""id":2"#, r#""id":3"#).as_str(),
                r#"{"op":"bogus","id":4}"#,
            ],
        );
        assert_eq!(responses.len(), 4);
        let docs: Vec<Json> = responses.iter().map(|l| Json::parse(l).unwrap()).collect();
        // Responses arrive in request order whatever the shard timing.
        for (k, doc) in docs.iter().enumerate() {
            assert_eq!(doc.get("id").unwrap().as_usize().unwrap(), k + 1);
        }
        assert!(docs[0].get("pong").unwrap().as_bool().unwrap());
        for doc in &docs[1..3] {
            assert!(doc.get("ok").unwrap().as_bool().unwrap());
            let report = doc.get("report").unwrap();
            assert_eq!(report.get("runs").unwrap().as_usize().unwrap(), 4);
        }
        // Identical pipelined jobs: single-flight programming means
        // exactly one of the two built the instance — the other hit,
        // whichever shard won the race.
        let hits = docs[1..3]
            .iter()
            .filter(|d| d.get("cache_hit").unwrap().as_bool().unwrap())
            .count();
        assert_eq!(hits, 1);
        assert!(!docs[3].get("ok").unwrap().as_bool().unwrap());
        // The deterministic payloads of identical jobs are identical.
        let mut a = docs[1].clone();
        let mut b = docs[2].clone();
        protocol::strip_timing(&mut a);
        protocol::strip_timing(&mut b);
        if let (Json::Obj(a), Json::Obj(b)) = (&mut a, &mut b) {
            a.remove("id");
            b.remove("id");
            a.remove("cache_hit");
            b.remove("cache_hit");
        }
        assert_eq!(a, b);
        handle.stop();
    }

    #[test]
    fn shutdown_op_terminates_the_daemon_after_answering() {
        let handle = serve(ServiceConfig::default()).unwrap();
        let addr = handle.addr();
        let responses = send_lines(
            addr,
            &[
                r#"{"op":"solve","id":1,"job":{"game":{"builtin":"matching_pennies"},"solver":{"type":"ideal","preset":"ideal","intervals":12,"iterations":1500},"runs":2}}"#,
                r#"{"op":"stats","id":2}"#,
                r#"{"op":"shutdown","id":3}"#,
            ],
        );
        assert_eq!(responses.len(), 3);
        let stats = Json::parse(&responses[1]).unwrap();
        // The stats response post-dates the solve: its counters include
        // the miss.
        assert_eq!(
            stats
                .get("stats")
                .unwrap()
                .get("instance_misses")
                .unwrap()
                .as_usize()
                .unwrap(),
            1
        );
        let bye = Json::parse(&responses[2]).unwrap();
        assert!(bye.get("shutting_down").unwrap().as_bool().unwrap());
        handle.join(); // returns: the daemon exited on its own
    }

    #[test]
    fn metrics_op_reports_per_op_latencies_and_cache_counters() {
        let handle = serve(ServiceConfig::default()).unwrap();
        let responses = send_lines(
            handle.addr(),
            &[
                r#"{"op":"ping","id":1}"#,
                SOLVE_BOS,
                r#"{"op":"metrics","id":3}"#,
            ],
        );
        assert_eq!(responses.len(), 3);
        let ping = Json::parse(&responses[0]).unwrap();
        assert!(ping.get("build").unwrap().get("version").is_ok());
        let doc = Json::parse(&responses[2]).unwrap();
        assert!(doc.get("ok").unwrap().as_bool().unwrap());
        let m = doc.get("metrics").unwrap();
        let counters = m.get("counters").unwrap();
        // One solve, cold cache: exactly one programming miss, and the
        // scheduler executed exactly that one job.
        assert_eq!(
            counters
                .get("cache_instance_misses")
                .unwrap()
                .as_u64()
                .unwrap(),
            1
        );
        assert_eq!(
            counters
                .get("sched_jobs_executed")
                .unwrap()
                .as_u64()
                .unwrap(),
            1
        );
        // The connection layer reports itself: this one connection is
        // open and nothing has been dropped or stalled.
        assert_eq!(counters.get("conn_accepted").unwrap().as_u64().unwrap(), 1);
        assert_eq!(
            counters
                .get("conn_overflow_dropped")
                .unwrap()
                .as_u64()
                .unwrap(),
            0
        );
        let gauges = m.get("gauges").unwrap();
        assert_eq!(gauges.get("conn_open").unwrap().as_u64().unwrap(), 1);
        // The metrics snapshot post-dates the emitted ping and solve:
        // both latency histograms hold exactly one observation.
        let hists = m.get("histograms").unwrap();
        for name in ["op_ping_ns", "op_solve_ns"] {
            assert_eq!(
                hists
                    .get(name)
                    .unwrap()
                    .get("count")
                    .unwrap()
                    .as_u64()
                    .unwrap(),
                1,
                "histogram {name}"
            );
        }
        // The solve drove the annealer: the process-global run counter
        // is at least the 4 runs of this batch.
        assert!(counters.get("sa_runs").unwrap().as_u64().unwrap() >= 4);
        handle.stop();
    }

    #[test]
    fn family_games_solve_and_share_the_instance_cache() {
        // A family instance named over the wire and the same game sent
        // again must hit the programmed-instance cache the second time
        // (canonical fingerprints are spec-form independent).
        let handle = serve(ServiceConfig::default()).unwrap();
        let solve = r#"{"op":"solve","id":1,"job":{"game":{"family":{"name":"dominance_solvable","size":3,"seed":5}},"solver":{"type":"cnash","preset":"paper","intervals":12,"iterations":800,"hardware_seed":0},"runs":2}}"#;
        let responses = send_lines(
            handle.addr(),
            &[solve, solve.replace(r#""id":1"#, r#""id":2"#).as_str()],
        );
        assert_eq!(responses.len(), 2);
        let docs: Vec<Json> = responses.iter().map(|l| Json::parse(l).unwrap()).collect();
        for doc in &docs {
            assert!(doc.get("ok").unwrap().as_bool().unwrap(), "{doc:?}");
            let report = doc.get("report").unwrap();
            // Dominance-solvable games have exactly one equilibrium.
            assert_eq!(report.get("target_count").unwrap().as_usize().unwrap(), 1);
        }
        let hits = docs
            .iter()
            .filter(|d| d.get("cache_hit").unwrap().as_bool().unwrap())
            .count();
        assert_eq!(hits, 1, "repeat family request must hit the cache");
        handle.stop();
    }

    #[test]
    fn truth_skip_reports_empty_ground_truth() {
        let handle = serve(ServiceConfig::default()).unwrap();
        let responses = send_lines(
            handle.addr(),
            &[
                r#"{"op":"solve","id":1,"job":{"game":{"random":{"rows":6,"cols":6,"max_payoff":3,"seed":4}},"solver":{"type":"cnash","preset":"paper","intervals":12,"iterations":400,"hardware_seed":0},"runs":2},"ground_truth":"skip"}"#,
            ],
        );
        let doc = Json::parse(&responses[0]).unwrap();
        assert!(doc.get("ok").unwrap().as_bool().unwrap());
        let report = doc.get("report").unwrap();
        assert_eq!(report.get("target_count").unwrap().as_usize().unwrap(), 0);
        // An explicit skip is what the client asked for — not a degrade.
        assert!(doc.opt("ground_truth_degraded").is_none());
        handle.stop();
    }

    #[test]
    fn oversized_enumerate_degrades_to_skip_with_a_flag() {
        // 18 actions per player is past the support-enumeration bound
        // (MAX_ENUM_ACTIONS = 16): the default `enumerate` policy used
        // to panic the solve; it must now degrade to `skip`, answer
        // normally against an empty ground truth, and flag the degrade.
        let handle = serve(ServiceConfig::default()).unwrap();
        let responses = send_lines(
            handle.addr(),
            &[
                r#"{"op":"solve","id":1,"job":{"game":{"random":{"rows":18,"cols":18,"max_payoff":3,"seed":4}},"solver":{"type":"cnash","preset":"paper","intervals":12,"iterations":200,"hardware_seed":0},"runs":1}}"#,
                r#"{"op":"solve","id":2,"job":{"game":{"random":{"rows":4,"cols":4,"max_payoff":3,"seed":4}},"solver":{"type":"cnash","preset":"paper","intervals":12,"iterations":200,"hardware_seed":0},"runs":1}}"#,
            ],
        );
        assert_eq!(responses.len(), 2);
        let big = Json::parse(&responses[0]).unwrap();
        assert!(big.get("ok").unwrap().as_bool().unwrap(), "{big:?}");
        assert!(
            big.get("ground_truth_degraded").unwrap().as_bool().unwrap(),
            "oversized enumerate must be flagged"
        );
        let report = big.get("report").unwrap();
        assert_eq!(report.get("target_count").unwrap().as_usize().unwrap(), 0);
        // An enumerable game keeps the exact path and carries no flag.
        let small = Json::parse(&responses[1]).unwrap();
        assert!(small.get("ok").unwrap().as_bool().unwrap());
        assert!(small.opt("ground_truth_degraded").is_none());
        assert!(
            small
                .get("report")
                .unwrap()
                .get("target_count")
                .unwrap()
                .as_usize()
                .unwrap()
                > 0
        );
        handle.stop();
    }

    #[test]
    fn oversized_request_line_gets_an_error_and_the_connection_survives() {
        let handle = serve(ServiceConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        // A 2 MiB line (twice MAX_LINE_BYTES) followed by a valid ping.
        let big = vec![b'x'; 2 * MAX_LINE_BYTES];
        stream.write_all(&big).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.write_all(b"{\"op\":\"ping\",\"id\":7}\n").unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let reader = BufReader::new(stream);
        let responses: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
        assert_eq!(responses.len(), 2, "{responses:?}");
        let err = Json::parse(&responses[0]).unwrap();
        assert!(!err.get("ok").unwrap().as_bool().unwrap());
        assert!(
            err.get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("exceeds"),
            "{err:?}"
        );
        let pong = Json::parse(&responses[1]).unwrap();
        assert_eq!(pong.get("id").unwrap().as_usize().unwrap(), 7);
        assert!(pong.get("pong").unwrap().as_bool().unwrap());
        handle.stop();
    }

    #[test]
    fn store_serves_disk_hits_byte_identical_and_survives_restart() {
        let path =
            std::env::temp_dir().join(format!("cnash_server_store_{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let config = || ServiceConfig {
            store_path: Some(path.to_string_lossy().into_owned()),
            ..ServiceConfig::default()
        };
        // Deterministic payload comparison: everything but the request
        // id, the provenance flag and the timing fields.
        let normalise = |line: &str| {
            let mut doc = Json::parse(line).unwrap();
            protocol::strip_timing(&mut doc);
            if let Json::Obj(map) = &mut doc {
                map.remove("id");
                map.remove("cache");
            }
            doc.compact()
        };

        let handle = serve(config()).unwrap();
        let addr = handle.addr();
        // Separate connections so the repeat request cannot race the
        // cold solve across shards.
        let cold = send_lines(addr, &[SOLVE_BOS]);
        let warm = send_lines(addr, &[SOLVE_BOS, r#"{"op":"stats","id":9}"#]);
        let cold_doc = Json::parse(&cold[0]).unwrap();
        assert!(cold_doc.get("ok").unwrap().as_bool().unwrap());
        assert!(
            cold_doc.opt("cache").is_none(),
            "cold solve has no provenance flag"
        );
        let warm_doc = Json::parse(&warm[0]).unwrap();
        assert_eq!(warm_doc.get("cache").unwrap().as_str().unwrap(), "disk");
        assert_eq!(
            warm_doc.get("program_ms").unwrap().as_f64().unwrap(),
            0.0,
            "disk hits program nothing"
        );
        assert_eq!(normalise(&cold[0]), normalise(&warm[0]));
        // The stats response gains a store block only on the store path.
        let stats = Json::parse(&warm[1]).unwrap();
        let store_stats = stats.get("store").unwrap();
        assert_eq!(store_stats.get("hits").unwrap().as_u64().unwrap(), 1);
        assert_eq!(store_stats.get("records").unwrap().as_u64().unwrap(), 1);
        assert_eq!(handle.store().unwrap().len(), 1);
        handle.stop();

        // A fresh daemon on the same log warm-boots: the first request
        // of its life is already a disk hit.
        let handle = serve(config()).unwrap();
        assert_eq!(handle.store().unwrap().open_report().records, 1);
        let reborn = send_lines(handle.addr(), &[SOLVE_BOS]);
        let doc = Json::parse(&reborn[0]).unwrap();
        assert_eq!(doc.get("cache").unwrap().as_str().unwrap(), "disk");
        assert_eq!(normalise(&cold[0]), normalise(&reborn[0]));
        handle.stop();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn connection_cap_rejects_the_excess_connection() {
        let handle = serve(ServiceConfig {
            max_connections: 2,
            ..ServiceConfig::default()
        })
        .unwrap();
        let addr = handle.addr();
        let keep_a = TcpStream::connect(addr).unwrap();
        let keep_b = TcpStream::connect(addr).unwrap();
        // Let the reactor accept both before the third arrives.
        let mut third = TcpStream::connect(addr).unwrap();
        third
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // The daemon closes the excess connection without a response.
        let mut sink = Vec::new();
        let n = third.read_to_end(&mut sink).unwrap_or(0);
        assert_eq!(n, 0, "rejected connection got bytes: {sink:?}");
        // The two under the cap still work.
        for conn in [keep_a, keep_b] {
            let mut conn = conn;
            conn.write_all(b"{\"op\":\"ping\",\"id\":1}\n").unwrap();
            let mut reader = BufReader::new(conn);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("\"pong\":true"), "{line}");
        }
        handle.stop();
    }
}
