//! The TCP front-end: accept loop, per-connection ordered streaming,
//! and the solve executor gluing protocol → cache → scheduler →
//! runtime.

use crate::cache::InstanceCache;
use crate::protocol::{self, Request, TruthPolicy};
use crate::sched::Scheduler;
use cnash_game::support_enum::MAX_ENUM_ACTIONS;
use cnash_runtime::report::game_report_json;
use cnash_runtime::spec::JobSpec;
use cnash_runtime::{BatchRunner, CancelToken, Json};
use cnash_telemetry::{Registry, TelemetrySpan};
use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address. Port `0` asks the OS for an ephemeral port —
    /// read the actual one from [`ServiceHandle::addr`].
    pub addr: String,
    /// Scheduler shards (`0` = one per available core).
    pub shards: usize,
    /// Worker threads per batch job. The default of `1` trades
    /// per-job latency for throughput: with every shard busy, extra
    /// per-batch threads would only oversubscribe the cores.
    pub batch_threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            shards: 0,
            batch_threads: 1,
        }
    }
}

/// A signal that shuts the daemon down from any thread (idempotent).
#[derive(Clone)]
pub struct ShutdownSignal {
    cancel: CancelToken,
    fired: Arc<AtomicBool>,
    addr: SocketAddr,
    /// Open connections, closed on fire so blocked readers see EOF.
    connections: Arc<Mutex<HashMap<u64, TcpStream>>>,
    next_conn: Arc<AtomicU64>,
}

impl ShutdownSignal {
    /// Requests shutdown: cancels in-flight batches, closes every open
    /// connection (their readers observe EOF) and unblocks the accept
    /// loop.
    pub fn fire(&self) {
        if self.fired.swap(true, Ordering::SeqCst) {
            return;
        }
        self.cancel.cancel();
        for (_, stream) in self.connections.lock().expect("registry poisoned").iter() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        // Poke the listener so its blocking accept() observes the flag.
        let _ = TcpStream::connect(self.addr);
    }

    fn is_fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    /// Registers a live connection; returns the deregistration token.
    fn register(&self, stream: TcpStream) -> u64 {
        let token = self.next_conn.fetch_add(1, Ordering::Relaxed);
        self.connections
            .lock()
            .expect("registry poisoned")
            .insert(token, stream);
        // A connection accepted in the middle of fire() might miss the
        // close loop; re-check after registering.
        if self.is_fired() {
            if let Some(stream) = self
                .connections
                .lock()
                .expect("registry poisoned")
                .remove(&token)
            {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
        token
    }

    /// Removes a connection from the registry (the socket itself closes
    /// when its last clone drops, or explicitly on fire).
    fn deregister(&self, token: u64) {
        self.connections
            .lock()
            .expect("registry poisoned")
            .remove(&token);
    }
}

/// A running service instance.
pub struct ServiceHandle {
    addr: SocketAddr,
    signal: ShutdownSignal,
    accept: JoinHandle<()>,
    registry: Arc<Registry>,
}

impl ServiceHandle {
    /// The bound address (with the OS-chosen port when the config asked
    /// for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's telemetry registry (per-op latency histograms,
    /// scheduler gauges, cache counters) — what the `metrics` op and
    /// `serviced --metrics-file` snapshot.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// A clonable handle that can shut the daemon down.
    pub fn shutdown_signal(&self) -> ShutdownSignal {
        self.signal.clone()
    }

    /// Blocks until the daemon exits (a `shutdown` request, or
    /// [`ShutdownSignal::fire`]).
    pub fn join(self) {
        self.accept.join().expect("accept loop panicked");
    }

    /// Fires shutdown and waits for exit.
    pub fn stop(self) {
        self.signal.fire();
        self.join();
    }
}

/// Binds the listener and spawns the daemon: scheduler shards, accept
/// loop, connection handlers.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn serve(config: ServiceConfig) -> std::io::Result<ServiceHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let signal = ShutdownSignal {
        cancel: CancelToken::new(),
        fired: Arc::new(AtomicBool::new(false)),
        addr,
        connections: Arc::new(Mutex::new(HashMap::new())),
        next_conn: Arc::new(AtomicU64::new(0)),
    };
    let registry = Arc::new(Registry::new());
    let cache = Arc::new(InstanceCache::with_registry(&registry));
    let scheduler = Arc::new(Scheduler::with_registry(config.shards, &registry));

    let accept = {
        let signal = signal.clone();
        let registry = Arc::clone(&registry);
        std::thread::Builder::new()
            .name("cnash-accept".into())
            .spawn(move || accept_loop(listener, config, cache, scheduler, registry, signal))
            .expect("spawn accept loop")
    };
    Ok(ServiceHandle {
        addr,
        signal,
        accept,
        registry,
    })
}

fn accept_loop(
    listener: TcpListener,
    config: ServiceConfig,
    cache: Arc<InstanceCache>,
    scheduler: Arc<Scheduler>,
    registry: Arc<Registry>,
    signal: ShutdownSignal,
) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if signal.is_fired() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let cache = Arc::clone(&cache);
        let scheduler = Arc::clone(&scheduler);
        let registry = Arc::clone(&registry);
        let signal = signal.clone();
        let config = config.clone();
        connections.retain(|h| !h.is_finished());
        connections.push(
            std::thread::Builder::new()
                .name("cnash-conn".into())
                .spawn(move || {
                    handle_connection(stream, &config, &cache, &scheduler, &registry, &signal)
                })
                .expect("spawn connection handler"),
        );
    }
    for conn in connections {
        let _ = conn.join();
    }
    // Drain the scheduler once every connection has finished
    // submitting; queued jobs observe the cancelled token and finish
    // fast. Threads removed by the `retain` above have finished and
    // dropped their handles, but give any last-instant drop a moment.
    let mut scheduler = scheduler;
    loop {
        match Arc::try_unwrap(scheduler) {
            Ok(sched) => {
                sched.shutdown();
                return;
            }
            Err(still_shared) => {
                scheduler = still_shared;
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// What a connection's writer emits for one request slot.
enum Out {
    /// A finished response.
    Ready(Json),
    /// A response computed at emission time — after every earlier
    /// response has been written — used by `stats`, whose counters must
    /// reflect the completed prefix.
    Lazy(Box<dyn FnOnce() -> Json + Send>),
    /// Like [`Out::Lazy`], but the connection is closed right after the
    /// response is flushed — the `shutdown` acknowledgement (the daemon
    /// must answer the prefix, then this, then tear the socket down so
    /// the reader unblocks even against a silent client).
    Final(Box<dyn FnOnce() -> Json + Send>),
}

fn handle_connection(
    stream: TcpStream,
    config: &ServiceConfig,
    cache: &Arc<InstanceCache>,
    scheduler: &Arc<Scheduler>,
    registry: &Arc<Registry>,
    signal: &ShutdownSignal,
) {
    // Per-op latency sinks, registered once per connection and shared
    // with every job / lazy thunk this connection spawns.
    let op_ping = registry.histogram("op_ping_ns");
    let op_solve = registry.histogram("op_solve_ns");
    let op_stats = registry.histogram("op_stats_ns");
    let op_metrics = registry.histogram("op_metrics_ns");
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // A connection that cannot be registered could never be closed by
    // ShutdownSignal::fire — its blocked reader would hang shutdown
    // against a silent client — so refuse it outright (this only
    // happens when fd duplication fails, i.e. the process is already
    // resource-exhausted).
    let registration = match stream.try_clone() {
        Ok(clone) => signal.register(clone),
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<(u64, Out)>();

    // Writer: reorder (seq, response) pairs into request order.
    let writer = std::thread::Builder::new()
        .name("cnash-conn-writer".into())
        .spawn(move || {
            let mut out = BufWriter::new(stream);
            let mut pending: BTreeMap<u64, Out> = BTreeMap::new();
            let mut next = 0u64;
            for (seq, response) in rx {
                pending.insert(seq, response);
                while let Some(slot) = pending.remove(&next) {
                    next += 1;
                    let (doc, close_after) = match slot {
                        Out::Ready(doc) => (doc, false),
                        Out::Lazy(thunk) => (thunk(), false),
                        Out::Final(thunk) => (thunk(), true),
                    };
                    if out.write_all(doc.compact().as_bytes()).is_err()
                        || out.write_all(b"\n").is_err()
                        || out.flush().is_err()
                    {
                        return; // client went away
                    }
                    if close_after {
                        let _ = out.get_ref().shutdown(std::net::Shutdown::Both);
                        return;
                    }
                }
            }
        })
        .expect("spawn connection writer");

    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    let mut seq = 0u64;
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break, // EOF or torn connection
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let envelope = protocol::parse_request(line.trim());
        let id = envelope.id;
        let out = match envelope.request {
            Err(e) => Out::Ready(protocol::error_response(&id, &e.message)),
            Ok(Request::Ping) => {
                let span = TelemetrySpan::start(&op_ping);
                let pong = protocol::pong_response(&id);
                span.finish();
                Out::Ready(pong)
            }
            Ok(Request::Stats) => {
                let cache = Arc::clone(cache);
                let scheduler = Arc::clone(scheduler);
                let sink = Arc::clone(&op_stats);
                Out::Lazy(Box::new(move || {
                    let span = TelemetrySpan::start(&sink);
                    let doc = Json::obj([
                        ("id", id.clone()),
                        ("ok", Json::Bool(true)),
                        ("stats", cache.stats().to_json()),
                        ("shards", Json::num(scheduler.shard_count() as f64)),
                        // Grouped so golden-file tooling can strip the
                        // scheduling-dependent counts in one move.
                        (
                            "scheduler",
                            Json::obj([
                                ("jobs_executed", Json::uint(scheduler.jobs_executed())),
                                ("jobs_stolen", Json::uint(scheduler.jobs_stolen())),
                            ]),
                        ),
                    ]);
                    span.finish();
                    doc
                }))
            }
            Ok(Request::Metrics) => {
                let registry = Arc::clone(registry);
                let sink = Arc::clone(&op_metrics);
                Out::Lazy(Box::new(move || {
                    let span = TelemetrySpan::start(&sink);
                    let doc = protocol::metrics_response(&id, &registry.snapshot());
                    span.finish();
                    doc
                }))
            }
            Ok(Request::Shutdown) => {
                let signal = signal.clone();
                Out::Final(Box::new(move || {
                    // Leave this connection out of fire()'s close loop
                    // so the acknowledgement still reaches the client;
                    // the writer closes the socket right after it.
                    signal.deregister(registration);
                    signal.fire();
                    protocol::shutdown_response(&id)
                }))
            }
            Ok(Request::Solve { job, truth }) => {
                let cache = Arc::clone(cache);
                let tx = tx.clone();
                let my_seq = seq;
                let cancel = signal.cancel.clone();
                let batch_threads = config.batch_threads;
                let job_id = id.clone();
                let sink = Arc::clone(&op_solve);
                let submitted = scheduler.submit(Box::new(move || {
                    let span = TelemetrySpan::start(&sink);
                    // A panicking solve must still produce a response:
                    // the writer's reorder buffer cannot advance past a
                    // missing sequence number, so a lost response would
                    // wedge every later reply on this connection.
                    let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        execute_solve(&cache, &job, truth, batch_threads, &cancel, &job_id)
                    }))
                    .unwrap_or_else(|_| {
                        protocol::error_response(&job_id, "internal error: solve panicked")
                    });
                    span.finish();
                    let _ = tx.send((my_seq, Out::Ready(response)));
                }));
                match submitted {
                    Ok(()) => {
                        seq += 1;
                        continue; // the job sends its own response
                    }
                    Err(_) => Out::Ready(protocol::error_response(&id, "service is shutting down")),
                }
            }
        };
        let _ = tx.send((seq, out));
        seq += 1;
    }
    drop(tx); // writer drains in-flight job responses, then exits
    let _ = writer.join();
    signal.deregister(registration);
}

/// Runs one solve request to completion and builds its response.
fn execute_solve(
    cache: &InstanceCache,
    job: &JobSpec,
    truth: TruthPolicy,
    batch_threads: usize,
    cancel: &CancelToken,
    id: &Json,
) -> Json {
    let start = Instant::now();
    let prepared = match cache.prepare(&job.game, &job.solver) {
        Ok(prepared) => prepared,
        Err(e) => return protocol::error_response(id, &e.message),
    };
    let program_ms = start.elapsed().as_secs_f64() * 1e3;

    // `enumerate` on a game past the support-enumeration bound would
    // panic inside the oracle; degrade to `skip` instead and flag the
    // response so clients know their coverage statistics are against an
    // empty ground truth they did not ask for.
    let enumerable = prepared.game.row_actions() <= MAX_ENUM_ACTIONS
        && prepared.game.col_actions() <= MAX_ENUM_ACTIONS;
    let degraded = truth == TruthPolicy::Enumerate && !enumerable;
    let ground_truth = match truth {
        TruthPolicy::Enumerate if !degraded => cache.ground_truth(&prepared.game),
        _ => Arc::new(Vec::new()),
    };
    let mut runner = BatchRunner::new(job.runs, job.base_seed).threads(batch_threads);
    runner.early_stop = job.early_stop;
    // A *child* of the daemon's shutdown token: shutdown cancels this
    // batch, but the batch's own early stop (which cancels its token to
    // halt its pool) cannot leak into sibling jobs on other shards.
    let batch_token = cancel.child();
    let batch = runner.evaluate_cancellable(prepared.solver.as_ref(), &ground_truth, &batch_token);

    let label = job
        .label
        .clone()
        .unwrap_or_else(|| format!("{} on {}", job.solver.label(), prepared.game.name()));
    let mut response = Json::obj([
        ("id", id.clone()),
        ("ok", Json::Bool(true)),
        ("label", Json::str(label)),
        ("cache_hit", Json::Bool(prepared.cache_hit)),
        ("report", game_report_json(&batch.report)),
        ("scheduled_runs", Json::num(batch.scheduled_runs as f64)),
        ("executed_runs", Json::num(batch.executed_runs as f64)),
        ("stopped_early", Json::Bool(batch.stopped_early)),
        ("cancelled", Json::Bool(batch.cancelled)),
        ("wall_ms", Json::Num(start.elapsed().as_secs_f64() * 1e3)),
        ("program_ms", Json::Num(program_ms)),
    ]);
    // Only present (as `true`) when the degrade actually happened, so
    // existing golden streams are unchanged.
    if degraded {
        if let Json::Obj(map) = &mut response {
            map.insert("ground_truth_degraded".into(), Json::Bool(true));
        }
    }
    response
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send_lines(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let mut stream = TcpStream::connect(addr).expect("connect");
        for line in lines {
            stream.write_all(line.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
        }
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let reader = BufReader::new(stream);
        reader.lines().map(|l| l.unwrap()).collect()
    }

    const SOLVE_BOS: &str = r#"{"op":"solve","id":2,"job":{"game":{"builtin":"battle_of_the_sexes"},"solver":{"type":"cnash","preset":"paper","intervals":12,"iterations":1500,"hardware_seed":1},"runs":4,"base_seed":0}}"#;

    #[test]
    fn round_trips_pipelined_requests_in_order() {
        let handle = serve(ServiceConfig {
            shards: 2,
            ..ServiceConfig::default()
        })
        .unwrap();
        let addr = handle.addr();
        let responses = send_lines(
            addr,
            &[
                r#"{"op":"ping","id":1}"#,
                SOLVE_BOS,
                SOLVE_BOS.replace(r#""id":2"#, r#""id":3"#).as_str(),
                r#"{"op":"bogus","id":4}"#,
            ],
        );
        assert_eq!(responses.len(), 4);
        let docs: Vec<Json> = responses.iter().map(|l| Json::parse(l).unwrap()).collect();
        // Responses arrive in request order whatever the shard timing.
        for (k, doc) in docs.iter().enumerate() {
            assert_eq!(doc.get("id").unwrap().as_usize().unwrap(), k + 1);
        }
        assert!(docs[0].get("pong").unwrap().as_bool().unwrap());
        for doc in &docs[1..3] {
            assert!(doc.get("ok").unwrap().as_bool().unwrap());
            let report = doc.get("report").unwrap();
            assert_eq!(report.get("runs").unwrap().as_usize().unwrap(), 4);
        }
        // Identical pipelined jobs: single-flight programming means
        // exactly one of the two built the instance — the other hit,
        // whichever shard won the race.
        let hits = docs[1..3]
            .iter()
            .filter(|d| d.get("cache_hit").unwrap().as_bool().unwrap())
            .count();
        assert_eq!(hits, 1);
        assert!(!docs[3].get("ok").unwrap().as_bool().unwrap());
        // The deterministic payloads of identical jobs are identical.
        let mut a = docs[1].clone();
        let mut b = docs[2].clone();
        protocol::strip_timing(&mut a);
        protocol::strip_timing(&mut b);
        if let (Json::Obj(a), Json::Obj(b)) = (&mut a, &mut b) {
            a.remove("id");
            b.remove("id");
            a.remove("cache_hit");
            b.remove("cache_hit");
        }
        assert_eq!(a, b);
        handle.stop();
    }

    #[test]
    fn shutdown_op_terminates_the_daemon_after_answering() {
        let handle = serve(ServiceConfig::default()).unwrap();
        let addr = handle.addr();
        let responses = send_lines(
            addr,
            &[
                r#"{"op":"solve","id":1,"job":{"game":{"builtin":"matching_pennies"},"solver":{"type":"ideal","preset":"ideal","intervals":12,"iterations":1500},"runs":2}}"#,
                r#"{"op":"stats","id":2}"#,
                r#"{"op":"shutdown","id":3}"#,
            ],
        );
        assert_eq!(responses.len(), 3);
        let stats = Json::parse(&responses[1]).unwrap();
        // The stats response post-dates the solve: its counters include
        // the miss.
        assert_eq!(
            stats
                .get("stats")
                .unwrap()
                .get("instance_misses")
                .unwrap()
                .as_usize()
                .unwrap(),
            1
        );
        let bye = Json::parse(&responses[2]).unwrap();
        assert!(bye.get("shutting_down").unwrap().as_bool().unwrap());
        handle.join(); // returns: the daemon exited on its own
    }

    #[test]
    fn metrics_op_reports_per_op_latencies_and_cache_counters() {
        let handle = serve(ServiceConfig::default()).unwrap();
        let responses = send_lines(
            handle.addr(),
            &[
                r#"{"op":"ping","id":1}"#,
                SOLVE_BOS,
                r#"{"op":"metrics","id":3}"#,
            ],
        );
        assert_eq!(responses.len(), 3);
        let ping = Json::parse(&responses[0]).unwrap();
        assert!(ping.get("build").unwrap().get("version").is_ok());
        let doc = Json::parse(&responses[2]).unwrap();
        assert!(doc.get("ok").unwrap().as_bool().unwrap());
        let m = doc.get("metrics").unwrap();
        let counters = m.get("counters").unwrap();
        // One solve, cold cache: exactly one programming miss, and the
        // scheduler executed exactly that one job.
        assert_eq!(
            counters
                .get("cache_instance_misses")
                .unwrap()
                .as_u64()
                .unwrap(),
            1
        );
        assert_eq!(
            counters
                .get("sched_jobs_executed")
                .unwrap()
                .as_u64()
                .unwrap(),
            1
        );
        // The metrics snapshot post-dates the emitted ping and solve:
        // both latency histograms hold exactly one observation.
        let hists = m.get("histograms").unwrap();
        for name in ["op_ping_ns", "op_solve_ns"] {
            assert_eq!(
                hists
                    .get(name)
                    .unwrap()
                    .get("count")
                    .unwrap()
                    .as_u64()
                    .unwrap(),
                1,
                "histogram {name}"
            );
        }
        // The solve drove the annealer: the process-global run counter
        // is at least the 4 runs of this batch.
        assert!(counters.get("sa_runs").unwrap().as_u64().unwrap() >= 4);
        handle.stop();
    }

    #[test]
    fn family_games_solve_and_share_the_instance_cache() {
        // A family instance named over the wire and the same game sent
        // again must hit the programmed-instance cache the second time
        // (canonical fingerprints are spec-form independent).
        let handle = serve(ServiceConfig::default()).unwrap();
        let solve = r#"{"op":"solve","id":1,"job":{"game":{"family":{"name":"dominance_solvable","size":3,"seed":5}},"solver":{"type":"cnash","preset":"paper","intervals":12,"iterations":800,"hardware_seed":0},"runs":2}}"#;
        let responses = send_lines(
            handle.addr(),
            &[solve, solve.replace(r#""id":1"#, r#""id":2"#).as_str()],
        );
        assert_eq!(responses.len(), 2);
        let docs: Vec<Json> = responses.iter().map(|l| Json::parse(l).unwrap()).collect();
        for doc in &docs {
            assert!(doc.get("ok").unwrap().as_bool().unwrap(), "{doc:?}");
            let report = doc.get("report").unwrap();
            // Dominance-solvable games have exactly one equilibrium.
            assert_eq!(report.get("target_count").unwrap().as_usize().unwrap(), 1);
        }
        let hits = docs
            .iter()
            .filter(|d| d.get("cache_hit").unwrap().as_bool().unwrap())
            .count();
        assert_eq!(hits, 1, "repeat family request must hit the cache");
        handle.stop();
    }

    #[test]
    fn truth_skip_reports_empty_ground_truth() {
        let handle = serve(ServiceConfig::default()).unwrap();
        let responses = send_lines(
            handle.addr(),
            &[
                r#"{"op":"solve","id":1,"job":{"game":{"random":{"rows":6,"cols":6,"max_payoff":3,"seed":4}},"solver":{"type":"cnash","preset":"paper","intervals":12,"iterations":400,"hardware_seed":0},"runs":2},"ground_truth":"skip"}"#,
            ],
        );
        let doc = Json::parse(&responses[0]).unwrap();
        assert!(doc.get("ok").unwrap().as_bool().unwrap());
        let report = doc.get("report").unwrap();
        assert_eq!(report.get("target_count").unwrap().as_usize().unwrap(), 0);
        // An explicit skip is what the client asked for — not a degrade.
        assert!(doc.opt("ground_truth_degraded").is_none());
        handle.stop();
    }

    #[test]
    fn oversized_enumerate_degrades_to_skip_with_a_flag() {
        // 18 actions per player is past the support-enumeration bound
        // (MAX_ENUM_ACTIONS = 16): the default `enumerate` policy used
        // to panic the solve; it must now degrade to `skip`, answer
        // normally against an empty ground truth, and flag the degrade.
        let handle = serve(ServiceConfig::default()).unwrap();
        let responses = send_lines(
            handle.addr(),
            &[
                r#"{"op":"solve","id":1,"job":{"game":{"random":{"rows":18,"cols":18,"max_payoff":3,"seed":4}},"solver":{"type":"cnash","preset":"paper","intervals":12,"iterations":200,"hardware_seed":0},"runs":1}}"#,
                r#"{"op":"solve","id":2,"job":{"game":{"random":{"rows":4,"cols":4,"max_payoff":3,"seed":4}},"solver":{"type":"cnash","preset":"paper","intervals":12,"iterations":200,"hardware_seed":0},"runs":1}}"#,
            ],
        );
        assert_eq!(responses.len(), 2);
        let big = Json::parse(&responses[0]).unwrap();
        assert!(big.get("ok").unwrap().as_bool().unwrap(), "{big:?}");
        assert!(
            big.get("ground_truth_degraded").unwrap().as_bool().unwrap(),
            "oversized enumerate must be flagged"
        );
        let report = big.get("report").unwrap();
        assert_eq!(report.get("target_count").unwrap().as_usize().unwrap(), 0);
        // An enumerable game keeps the exact path and carries no flag.
        let small = Json::parse(&responses[1]).unwrap();
        assert!(small.get("ok").unwrap().as_bool().unwrap());
        assert!(small.opt("ground_truth_degraded").is_none());
        assert!(
            small
                .get("report")
                .unwrap()
                .get("target_count")
                .unwrap()
                .as_usize()
                .unwrap()
                > 0
        );
        handle.stop();
    }
}
