//! The JSON-lines wire protocol of the solver service.
//!
//! Every request and every response is a single-line JSON object
//! terminated by `\n` ([`Json::compact`] framing). Requests carry an
//! `op` discriminator and an optional client-chosen `id` that the
//! service echoes back verbatim:
//!
//! ```json
//! {"op":"ping","id":1}
//! {"op":"solve","id":2,"job":{...jobs-file job spec...}}
//! {"op":"solve","id":3,"job":{...},"ground_truth":"skip"}
//! {"op":"stats","id":4}
//! {"op":"metrics","id":5}
//! {"op":"shutdown","id":6}
//! ```
//!
//! The `job` payload is exactly one entry of a `cnash-runtime` jobs
//! file ([`JobSpec`]), so every `GameSpec` wire form is addressable —
//! including seeded generator instances (`{"game":{"random":{...}}}`)
//! and structured family instances
//! (`{"game":{"family":{"name":"covariant","size":8,"knob":-50,"seed":3}}}`,
//! see `cnash_game::families`), which the instance cache keys by the
//! *built* game's canonical payoff fingerprint exactly like any other
//! spec form; `ground_truth` selects whether the service
//! enumerates the game's ground-truth equilibria for coverage
//! statistics (`"enumerate"`, the default) or skips enumeration
//! (`"skip"` — the report then has `target_count = 0`).
//!
//! ## Ground-truth degradation (oversized instances)
//!
//! Support enumeration is exponential in the action count and hard-
//! bounded at `cnash_game::support_enum::MAX_ENUM_ACTIONS` (16) actions
//! per player. A `solve` whose game exceeds that bound under the
//! default `"enumerate"` policy is **not** an error: the service
//! automatically degrades the request to `"skip"` and answers normally,
//! adding `"ground_truth_degraded": true` to the solve response. The
//! flag is present **only** when the degrade happened — an explicit
//! `"skip"` request, or an enumerable game, never carries it — so
//! clients that care about exact coverage statistics should check for
//! it: a degraded response's `covered`/`target_count` fields report
//! against an *empty* ground truth the client did not ask for.
//!
//! ## Strict request parsing
//!
//! Request objects are validated **strictly**: any key the selected
//! `op` does not define is an error naming the offending key (e.g.
//! `unknown key \`jobb\` in solve request` — the usual failure is a
//! typo that would otherwise silently fall back to a default). Every
//! op accepts `op` and `id`; `solve` additionally accepts `job` and
//! `ground_truth`. The same policy applies recursively to the `job`
//! payload — `cnash-runtime` rejects unknown keys in game, solver,
//! job and early-stop objects with the same message shape
//! (`Json::expect_keys`). Like every other decode failure the error is
//! reported per-line in an [`Envelope`]; the connection stays up.
//!
//! ## Ordering and determinism
//!
//! Responses on a connection are streamed **in request order**, even
//! though solve jobs execute concurrently across the scheduler's
//! shards. Combined with the runtime's determinism contract (seed-
//! ordered folding), the *deterministic* part of every solve response —
//! everything except the `wall_ms`/`program_ms` wall-clock fields — is
//! a pure function of the request sequence, whatever the shard count,
//! thread count or steal interleaving. [`strip_timing`] removes exactly
//! the wall-clock fields, which is what the golden-file smoke test
//! diffs against.
//!
//! `stats` responses report cache counters at *emission* time (after
//! every earlier response on the connection has been emitted); they are
//! deterministic whenever no later-submitted or concurrent work races
//! them — in particular a `stats` as the final query of a connection.
//!
//! ## Disk provenance (`cache:"disk"`)
//!
//! A daemon started with `--store <path>` answers a repeat `solve` from
//! its persistent solution store (`crate::store`): the response is the
//! stored deterministic payload — byte-identical to what a cold solve
//! would have produced — plus `"cache":"disk"`, a fresh `wall_ms`, and
//! `program_ms` of `0.0` (nothing was programmed). Cold responses never
//! carry a `cache` key, and a store-less daemon's wire output is
//! byte-unchanged, so golden streams only need to strip `cache` (and
//! the timing fields) to compare cold and disk-hit responses. The
//! `cache_hit` boolean inside a disk-served payload refers to the
//! in-memory instance cache *at record time*, not this request.
//!
//! With a store configured, `stats` responses additionally carry a
//! `"store"` block (`hits`/`misses`/`appends`/`records`), and the
//! `metrics` snapshot gains `store_hits`/`store_misses`/`store_appends`
//! counters, a `store_records` gauge and a `store_open_scan_ns`
//! histogram.
//!
//! ## The `metrics` response schema
//!
//! `{"op":"metrics"}` returns the daemon's full telemetry snapshot.
//! The schema below is **stable**: fields are only ever added, never
//! renamed or removed, and all counts are exact JSON integers
//! ([`Json::uint`] — no `f64` precision cliff). Like `stats`, the
//! snapshot is taken at emission time.
//!
//! ```json
//! {"id":5,"ok":true,"metrics":{
//!   "enabled":true,
//!   "counters":{"cache_instance_hits":63, "op_solve":64, "sa_runs":640, ...},
//!   "gauges":{"sched_queue_depth_0":0, ...},
//!   "histograms":{"op_solve_ns":{"count":64,"sum_ns":812345678,
//!     "min_ns":901234,"max_ns":55123456,"mean_ns":12692901.2,
//!     "p50_ns":11534335,"p90_ns":23068671,"p99_ns":50331647,"p999_ns":55123456}, ...},
//!   "events":{"dropped":0,"entries":[{"seq":0,"at_us":1754650000000000,
//!     "kind":"...","detail":"..."}]},
//!   "sa_trace":{"dropped":0,"entries":[...]},
//!   "pool_worker_folds":[1024,1019,997,1008]
//! }}
//! ```
//!
//! * `enabled` — the process-wide telemetry switch
//!   ([`cnash_telemetry::enabled`]). Counters keep counting when it is
//!   off; only timing spans and event pushes stop.
//! * `counters` / `gauges` / `histograms` — the daemon registry
//!   (per-op latencies `op_<name>_ns`, scheduler `sched_*`, cache
//!   `cache_*`) merged with the process-global hot-path aggregates
//!   (`sa_runs`, `sa_sweeps`, `sa_accepts`, `sa_swaps`, `pool_tasks`,
//!   `pool_task_ns`, `pool_fold_wait_ns`). Histogram quantiles are the
//!   log-bucketed upper bounds (≤ ~3.2% relative error), clamped to
//!   the observed `max_ns`; `min_ns` is 0 while a histogram is empty.
//! * `events` — the registry event ring, oldest first, with the exact
//!   count of evicted entries; `sa_trace` — the sampled annealer
//!   energy trajectory ring (empty unless sampling is enabled, see
//!   `serviced --sa-trace-interval` /
//!   [`cnash_telemetry::hot::set_sa_trace_interval`]).
//! * `pool_worker_folds` — per-worker-slot fold counts from the
//!   deterministic fold pool, trimmed to the highest slot seen.
//!
//! Because the hot-path aggregates are process-global, embedded
//! daemons sharing one process also share those totals; the
//! registry-backed sections are strictly per-daemon.

use cnash_runtime::spec::JobSpec;
use cnash_runtime::{Json, SpecError};
use cnash_telemetry::{hot, Event, HistSnapshot, RegistrySnapshot};

/// How a solve request obtains ground-truth equilibria.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruthPolicy {
    /// Support-enumerate (and cache) the game's equilibria — exact
    /// coverage statistics, intractable for large games.
    Enumerate,
    /// Skip enumeration: `covered`/`target_count` report against an
    /// empty ground truth.
    Skip,
}

/// A parsed service request.
#[derive(Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Schedule one batch job.
    Solve {
        /// The job to run.
        job: Box<JobSpec>,
        /// Ground-truth policy.
        truth: TruthPolicy,
    },
    /// Cache / scheduler statistics.
    Stats,
    /// Full telemetry snapshot (see the module docs for the schema).
    Metrics,
    /// Orderly daemon shutdown.
    Shutdown,
}

/// A request line decoded far enough to answer it: the echoed `id` and
/// either the request or the error to report.
#[derive(Debug)]
pub struct Envelope {
    /// The client's `id` node, echoed verbatim (`Json::Null` if absent
    /// or the line was unparseable).
    pub id: Json,
    /// The decoded request.
    pub request: Result<Request, SpecError>,
}

/// Decodes one request line.
///
/// Never fails outright: undecodable lines produce an [`Envelope`]
/// whose `request` is the error to send back, with whatever `id` could
/// still be recovered.
pub(crate) fn parse_request(line: &str) -> Envelope {
    let doc = match Json::parse(line) {
        Ok(doc) => doc,
        Err(e) => {
            return Envelope {
                id: Json::Null,
                request: Err(SpecError {
                    message: format!("malformed request line: {e}"),
                }),
            }
        }
    };
    let id = doc.opt("id").cloned().unwrap_or(Json::Null);
    let request = decode(&doc);
    Envelope { id, request }
}

fn decode(doc: &Json) -> Result<Request, SpecError> {
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .map_err(|e| SpecError {
            message: format!("request needs a string `op`: {e}"),
        })?;
    // Unknown keys are rejected naming the key (see the module docs):
    // a typo'd field must not silently act as its default.
    const BARE_KEYS: &[&str] = &["op", "id"];
    match op {
        "ping" => {
            doc.expect_keys("ping request", BARE_KEYS)?;
            Ok(Request::Ping)
        }
        "stats" => {
            doc.expect_keys("stats request", BARE_KEYS)?;
            Ok(Request::Stats)
        }
        "metrics" => {
            doc.expect_keys("metrics request", BARE_KEYS)?;
            Ok(Request::Metrics)
        }
        "shutdown" => {
            doc.expect_keys("shutdown request", BARE_KEYS)?;
            Ok(Request::Shutdown)
        }
        "solve" => {
            doc.expect_keys("solve request", &["op", "id", "job", "ground_truth"])?;
            let job = doc.get("job").map_err(|e| SpecError {
                message: format!("solve request: {e}"),
            })?;
            let truth = match doc.opt("ground_truth").map(Json::as_str).transpose()? {
                None | Some("enumerate") => TruthPolicy::Enumerate,
                Some("skip") => TruthPolicy::Skip,
                Some(other) => {
                    return Err(SpecError {
                        message: format!(
                            "unknown ground_truth policy `{other}` (expected `enumerate` or `skip`)"
                        ),
                    })
                }
            };
            Ok(Request::Solve {
                job: Box::new(JobSpec::from_json(job)?),
                truth,
            })
        }
        other => Err(SpecError {
            message: format!("unknown op `{other}`"),
        }),
    }
}

/// Builds an error response.
pub(crate) fn error_response(id: &Json, message: &str) -> Json {
    Json::obj([
        ("id", id.clone()),
        ("ok", Json::Bool(false)),
        ("error", Json::str(message)),
    ])
}

/// The daemon's build identity: crate version and the compiler that
/// produced the binary (both captured at compile time).
pub fn build_info() -> Json {
    Json::obj([
        ("version", Json::str(env!("CARGO_PKG_VERSION"))),
        ("rustc", Json::str(env!("CNASH_RUSTC_VERSION"))),
    ])
}

/// Builds the `ping` response. Carries the daemon's [`build_info`] so
/// a liveness probe doubles as a version check (golden-file tooling
/// strips the `build` block — it varies with the toolchain).
pub(crate) fn pong_response(id: &Json) -> Json {
    Json::obj([
        ("id", id.clone()),
        ("ok", Json::Bool(true)),
        ("pong", Json::Bool(true)),
        ("build", build_info()),
    ])
}

/// Renders one histogram snapshot in the wire schema (see module
/// docs): exact integer count/sum/min/max plus log-bucketed
/// percentiles, all in nanoseconds.
fn histogram_json(h: &HistSnapshot) -> Json {
    Json::obj([
        ("count", Json::uint(h.count)),
        ("sum_ns", Json::uint(h.sum)),
        ("min_ns", Json::uint(if h.count == 0 { 0 } else { h.min })),
        ("max_ns", Json::uint(h.max)),
        ("mean_ns", Json::num(h.mean())),
        ("p50_ns", Json::uint(h.quantile(0.50))),
        ("p90_ns", Json::uint(h.quantile(0.90))),
        ("p99_ns", Json::uint(h.quantile(0.99))),
        ("p999_ns", Json::uint(h.quantile(0.999))),
    ])
}

/// Renders an event list plus its exact eviction count.
fn events_json(entries: &[Event], dropped: u64) -> Json {
    Json::obj([
        ("dropped", Json::uint(dropped)),
        (
            "entries",
            Json::Arr(
                entries
                    .iter()
                    .map(|e| {
                        Json::obj([
                            ("seq", Json::uint(e.seq)),
                            ("at_us", Json::uint(e.at_us)),
                            ("kind", Json::str(e.kind)),
                            ("detail", Json::str(&e.detail)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Builds the `metrics` response from the daemon's registry snapshot,
/// folding in the process-global hot-path aggregates
/// ([`cnash_telemetry::hot`]). The schema is documented (and kept
/// stable) in the module docs.
pub fn metrics_response(id: &Json, snapshot: &RegistrySnapshot) -> Json {
    let mut counters: Vec<(String, Json)> = snapshot
        .counters
        .iter()
        .map(|(name, &v)| (name.clone(), Json::uint(v)))
        .collect();
    for (name, counter) in [
        ("pool_tasks", &hot::POOL_TASKS),
        ("sa_accepts", &hot::SA_ACCEPTS),
        ("sa_runs", &hot::SA_RUNS),
        ("sa_swaps", &hot::SA_SWAPS),
        ("sa_sweeps", &hot::SA_SWEEPS),
    ] {
        counters.push((name.to_string(), Json::uint(counter.get())));
    }
    counters.sort_by(|a, b| a.0.cmp(&b.0));

    let gauges: Vec<(String, Json)> = snapshot
        .gauges
        .iter()
        .map(|(name, &v)| {
            let value = u64::try_from(v).map_or_else(|_| Json::num(v as f64), Json::uint);
            (name.clone(), value)
        })
        .collect();

    let mut histograms: Vec<(String, Json)> = snapshot
        .histograms
        .iter()
        .map(|(name, h)| (name.clone(), histogram_json(h)))
        .collect();
    for (name, hist) in [
        ("pool_fold_wait_ns", &hot::POOL_FOLD_WAIT_NS),
        ("pool_task_ns", &hot::POOL_TASK_NS),
    ] {
        histograms.push((name.to_string(), histogram_json(&hist.snapshot())));
    }
    histograms.sort_by(|a, b| a.0.cmp(&b.0));

    let (trace, trace_dropped) = hot::SA_TRACE.snapshot();
    let metrics = Json::obj([
        ("enabled", Json::Bool(cnash_telemetry::enabled())),
        ("counters", Json::Obj(counters.into_iter().collect())),
        ("gauges", Json::Obj(gauges.into_iter().collect())),
        ("histograms", Json::Obj(histograms.into_iter().collect())),
        (
            "events",
            events_json(&snapshot.events, snapshot.events_dropped),
        ),
        ("sa_trace", events_json(&trace, trace_dropped)),
        (
            "pool_worker_folds",
            Json::Arr(hot::worker_folds().into_iter().map(Json::uint).collect()),
        ),
    ]);
    Json::obj([
        ("id", id.clone()),
        ("ok", Json::Bool(true)),
        ("metrics", metrics),
    ])
}

/// Builds the `shutdown` acknowledgement.
pub(crate) fn shutdown_response(id: &Json) -> Json {
    Json::obj([
        ("id", id.clone()),
        ("ok", Json::Bool(true)),
        ("shutting_down", Json::Bool(true)),
    ])
}

/// Removes the wall-clock fields (`wall_ms`, `program_ms`) from a
/// response, leaving only the deterministic payload — the golden-file
/// normal form (see the module docs).
pub fn strip_timing(response: &mut Json) {
    if let Json::Obj(map) = response {
        map.remove("wall_ms");
        map.remove("program_ms");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        assert!(matches!(
            parse_request(r#"{"op":"ping","id":1}"#).request,
            Ok(Request::Ping)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#).request,
            Ok(Request::Stats)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"metrics","id":5}"#).request,
            Ok(Request::Metrics)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown","id":"bye"}"#).request,
            Ok(Request::Shutdown)
        ));
        let line = r#"{"op":"solve","id":7,"job":{"game":{"builtin":"matching_pennies"},
            "solver":{"type":"ideal","preset":"ideal","intervals":12},"runs":3},
            "ground_truth":"skip"}"#
            .replace('\n', " ");
        let env = parse_request(&line);
        assert_eq!(env.id, Json::num(7.0));
        match env.request {
            Ok(Request::Solve { job, truth }) => {
                assert_eq!(job.runs, 3);
                assert_eq!(truth, TruthPolicy::Skip);
            }
            other => panic!("expected solve, got {other:?}"),
        }
    }

    #[test]
    fn recovers_ids_from_bad_requests() {
        let env = parse_request(r#"{"op":"warp","id":9}"#);
        assert_eq!(env.id, Json::num(9.0));
        assert!(env.request.is_err());
        let env = parse_request("not json at all");
        assert_eq!(env.id, Json::Null);
        assert!(env.request.is_err());
        assert!(parse_request(r#"{"op":"solve","id":1}"#).request.is_err());
        assert!(
            parse_request(r#"{"op":"solve","id":1,"job":{},"ground_truth":"maybe"}"#)
                .request
                .is_err()
        );
    }

    #[test]
    fn unknown_request_keys_are_rejected_naming_the_key() {
        let cases = [
            (r#"{"op":"ping","id":1,"pong":true}"#, "pong"),
            (r#"{"op":"stats","verbose":true}"#, "verbose"),
            (r#"{"op":"metrics","id":2,"format":"json"}"#, "format"),
            (r#"{"op":"shutdown","id":3,"force":true}"#, "force"),
            (
                r#"{"op":"solve","id":4,"jobb":{"game":{"builtin":"matching_pennies"}}}"#,
                "jobb",
            ),
        ];
        for (line, key) in cases {
            let err = parse_request(line).request.expect_err(line).message;
            assert!(
                err.contains(&format!("unknown key `{key}`")),
                "{line}: {err}"
            );
        }
        // The strictness recurses into the job payload via the runtime.
        let line = r#"{"op":"solve","id":5,"job":{"game":{"builtin":"matching_pennies"},"solver":{"type":"ideal"},"runz":2}}"#;
        let err = parse_request(line).request.expect_err(line).message;
        assert!(err.contains("unknown key `runz`"), "{err}");
    }

    #[test]
    fn pong_carries_build_info() {
        let pong = pong_response(&Json::num(1.0));
        let build = pong.get("build").unwrap();
        assert_eq!(
            build.get("version").unwrap().as_str().unwrap(),
            env!("CARGO_PKG_VERSION")
        );
        assert!(build
            .get("rustc")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("rustc"));
    }

    #[test]
    fn metrics_response_has_the_documented_shape() {
        let reg = cnash_telemetry::Registry::new();
        reg.counter("op_ping").add(3);
        reg.gauge("sched_queue_depth_0").set(0);
        reg.histogram("op_solve_ns").record(1500);
        let _ = reg.events().push("smoke", "hello".into());
        let resp = metrics_response(&Json::num(9.0), &reg.snapshot());
        assert_eq!(resp.get("ok").unwrap(), &Json::Bool(true));
        let m = resp.get("metrics").unwrap();
        assert!(matches!(m.get("enabled").unwrap(), Json::Bool(_)));
        let counters = m.get("counters").unwrap();
        assert_eq!(counters.get("op_ping").unwrap().as_u64().unwrap(), 3);
        // The process-global hot aggregates are merged in by name.
        for name in [
            "sa_runs",
            "sa_sweeps",
            "sa_accepts",
            "sa_swaps",
            "pool_tasks",
        ] {
            assert!(
                counters.get(name).unwrap().as_u64().is_ok(),
                "missing {name}"
            );
        }
        assert_eq!(
            m.get("gauges").unwrap().get("sched_queue_depth_0").unwrap(),
            &Json::uint(0)
        );
        let hist = m.get("histograms").unwrap().get("op_solve_ns").unwrap();
        for key in [
            "count", "sum_ns", "min_ns", "max_ns", "mean_ns", "p50_ns", "p90_ns", "p99_ns",
            "p999_ns",
        ] {
            assert!(hist.get(key).is_ok(), "missing histogram field {key}");
        }
        assert_eq!(hist.get("count").unwrap().as_u64().unwrap(), 1);
        // Quantiles clamp to the observed max: a single observation is
        // every percentile.
        assert_eq!(hist.get("p999_ns").unwrap().as_u64().unwrap(), 1500);
        let events = m.get("events").unwrap();
        assert_eq!(events.get("dropped").unwrap().as_u64().unwrap(), 0);
        let entry = &events.get("entries").unwrap().as_arr().unwrap()[0];
        assert_eq!(entry.get("kind").unwrap().as_str().unwrap(), "smoke");
        assert!(m.get("sa_trace").unwrap().get("dropped").is_ok());
        assert!(m.get("pool_worker_folds").unwrap().as_arr().is_ok());
    }

    #[test]
    fn strip_timing_removes_only_wall_clock_fields() {
        let mut doc = Json::obj([
            ("id", Json::num(1.0)),
            ("wall_ms", Json::Num(12.5)),
            ("program_ms", Json::Num(3.25)),
            ("cache_hit", Json::Bool(true)),
        ]);
        strip_timing(&mut doc);
        assert_eq!(
            doc,
            Json::obj([("id", Json::num(1.0)), ("cache_hit", Json::Bool(true))])
        );
    }
}
