//! The JSON-lines wire protocol of the solver service.
//!
//! Every request and every response is a single-line JSON object
//! terminated by `\n` ([`Json::compact`] framing). Requests carry an
//! `op` discriminator and an optional client-chosen `id` that the
//! service echoes back verbatim:
//!
//! ```json
//! {"op":"ping","id":1}
//! {"op":"solve","id":2,"job":{...jobs-file job spec...}}
//! {"op":"solve","id":3,"job":{...},"ground_truth":"skip"}
//! {"op":"stats","id":4}
//! {"op":"shutdown","id":5}
//! ```
//!
//! The `job` payload is exactly one entry of a `cnash-runtime` jobs
//! file ([`JobSpec`]), so every `GameSpec` wire form is addressable —
//! including seeded generator instances (`{"game":{"random":{...}}}`)
//! and structured family instances
//! (`{"game":{"family":{"name":"covariant","size":8,"knob":-50,"seed":3}}}`,
//! see `cnash_game::families`), which the instance cache keys by the
//! *built* game's canonical payoff fingerprint exactly like any other
//! spec form; `ground_truth` selects whether the service
//! enumerates the game's ground-truth equilibria for coverage
//! statistics (`"enumerate"`, the default) or skips enumeration
//! (`"skip"` — the report then has `target_count = 0`).
//!
//! ## Ground-truth degradation (oversized instances)
//!
//! Support enumeration is exponential in the action count and hard-
//! bounded at `cnash_game::support_enum::MAX_ENUM_ACTIONS` (16) actions
//! per player. A `solve` whose game exceeds that bound under the
//! default `"enumerate"` policy is **not** an error: the service
//! automatically degrades the request to `"skip"` and answers normally,
//! adding `"ground_truth_degraded": true` to the solve response. The
//! flag is present **only** when the degrade happened — an explicit
//! `"skip"` request, or an enumerable game, never carries it — so
//! clients that care about exact coverage statistics should check for
//! it: a degraded response's `covered`/`target_count` fields report
//! against an *empty* ground truth the client did not ask for.
//!
//! ## Ordering and determinism
//!
//! Responses on a connection are streamed **in request order**, even
//! though solve jobs execute concurrently across the scheduler's
//! shards. Combined with the runtime's determinism contract (seed-
//! ordered folding), the *deterministic* part of every solve response —
//! everything except the `wall_ms`/`program_ms` wall-clock fields — is
//! a pure function of the request sequence, whatever the shard count,
//! thread count or steal interleaving. [`strip_timing`] removes exactly
//! the wall-clock fields, which is what the golden-file smoke test
//! diffs against.
//!
//! `stats` responses report cache counters at *emission* time (after
//! every earlier response on the connection has been emitted); they are
//! deterministic whenever no later-submitted or concurrent work races
//! them — in particular a `stats` as the final query of a connection.

use cnash_runtime::spec::JobSpec;
use cnash_runtime::{Json, SpecError};

/// How a solve request obtains ground-truth equilibria.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruthPolicy {
    /// Support-enumerate (and cache) the game's equilibria — exact
    /// coverage statistics, intractable for large games.
    Enumerate,
    /// Skip enumeration: `covered`/`target_count` report against an
    /// empty ground truth.
    Skip,
}

/// A parsed service request.
#[derive(Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Schedule one batch job.
    Solve {
        /// The job to run.
        job: Box<JobSpec>,
        /// Ground-truth policy.
        truth: TruthPolicy,
    },
    /// Cache / scheduler statistics.
    Stats,
    /// Orderly daemon shutdown.
    Shutdown,
}

/// A request line decoded far enough to answer it: the echoed `id` and
/// either the request or the error to report.
#[derive(Debug)]
pub struct Envelope {
    /// The client's `id` node, echoed verbatim (`Json::Null` if absent
    /// or the line was unparseable).
    pub id: Json,
    /// The decoded request.
    pub request: Result<Request, SpecError>,
}

/// Decodes one request line.
///
/// Never fails outright: undecodable lines produce an [`Envelope`]
/// whose `request` is the error to send back, with whatever `id` could
/// still be recovered.
pub fn parse_request(line: &str) -> Envelope {
    let doc = match Json::parse(line) {
        Ok(doc) => doc,
        Err(e) => {
            return Envelope {
                id: Json::Null,
                request: Err(SpecError {
                    message: format!("malformed request line: {e}"),
                }),
            }
        }
    };
    let id = doc.opt("id").cloned().unwrap_or(Json::Null);
    let request = decode(&doc);
    Envelope { id, request }
}

fn decode(doc: &Json) -> Result<Request, SpecError> {
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .map_err(|e| SpecError {
            message: format!("request needs a string `op`: {e}"),
        })?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "solve" => {
            let job = doc.get("job").map_err(|e| SpecError {
                message: format!("solve request: {e}"),
            })?;
            let truth = match doc.opt("ground_truth").map(Json::as_str).transpose()? {
                None | Some("enumerate") => TruthPolicy::Enumerate,
                Some("skip") => TruthPolicy::Skip,
                Some(other) => {
                    return Err(SpecError {
                        message: format!(
                            "unknown ground_truth policy `{other}` (expected `enumerate` or `skip`)"
                        ),
                    })
                }
            };
            Ok(Request::Solve {
                job: Box::new(JobSpec::from_json(job)?),
                truth,
            })
        }
        other => Err(SpecError {
            message: format!("unknown op `{other}`"),
        }),
    }
}

/// Builds an error response.
pub fn error_response(id: &Json, message: &str) -> Json {
    Json::obj([
        ("id", id.clone()),
        ("ok", Json::Bool(false)),
        ("error", Json::str(message)),
    ])
}

/// Builds the `ping` response.
pub fn pong_response(id: &Json) -> Json {
    Json::obj([
        ("id", id.clone()),
        ("ok", Json::Bool(true)),
        ("pong", Json::Bool(true)),
    ])
}

/// Builds the `shutdown` acknowledgement.
pub fn shutdown_response(id: &Json) -> Json {
    Json::obj([
        ("id", id.clone()),
        ("ok", Json::Bool(true)),
        ("shutting_down", Json::Bool(true)),
    ])
}

/// Removes the wall-clock fields (`wall_ms`, `program_ms`) from a
/// response, leaving only the deterministic payload — the golden-file
/// normal form (see the module docs).
pub fn strip_timing(response: &mut Json) {
    if let Json::Obj(map) = response {
        map.remove("wall_ms");
        map.remove("program_ms");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        assert!(matches!(
            parse_request(r#"{"op":"ping","id":1}"#).request,
            Ok(Request::Ping)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#).request,
            Ok(Request::Stats)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown","id":"bye"}"#).request,
            Ok(Request::Shutdown)
        ));
        let line = r#"{"op":"solve","id":7,"job":{"game":{"builtin":"matching_pennies"},
            "solver":{"type":"ideal","preset":"ideal","intervals":12},"runs":3},
            "ground_truth":"skip"}"#
            .replace('\n', " ");
        let env = parse_request(&line);
        assert_eq!(env.id, Json::num(7.0));
        match env.request {
            Ok(Request::Solve { job, truth }) => {
                assert_eq!(job.runs, 3);
                assert_eq!(truth, TruthPolicy::Skip);
            }
            other => panic!("expected solve, got {other:?}"),
        }
    }

    #[test]
    fn recovers_ids_from_bad_requests() {
        let env = parse_request(r#"{"op":"warp","id":9}"#);
        assert_eq!(env.id, Json::num(9.0));
        assert!(env.request.is_err());
        let env = parse_request("not json at all");
        assert_eq!(env.id, Json::Null);
        assert!(env.request.is_err());
        assert!(parse_request(r#"{"op":"solve","id":1}"#).request.is_err());
        assert!(
            parse_request(r#"{"op":"solve","id":1,"job":{},"ground_truth":"maybe"}"#)
                .request
                .is_err()
        );
    }

    #[test]
    fn strip_timing_removes_only_wall_clock_fields() {
        let mut doc = Json::obj([
            ("id", Json::num(1.0)),
            ("wall_ms", Json::Num(12.5)),
            ("program_ms", Json::Num(3.25)),
            ("cache_hit", Json::Bool(true)),
        ]);
        strip_timing(&mut doc);
        assert_eq!(
            doc,
            Json::obj([("id", Json::num(1.0)), ("cache_hit", Json::Bool(true))])
        );
    }
}
