//! The solver daemon.
//!
//! `cargo run --release -p cnash-service --bin serviced -- \
//!      [--addr HOST:PORT] [--shards S] [--batch-threads T] \
//!      [--max-conns N] [--store PATH] [--metrics-file PATH] \
//!      [--metrics-interval-ms MS] [--sa-trace-interval N]`
//!
//! Operational behaviour (reactor architecture, backpressure and
//! overload semantics, worked session transcripts) is documented in
//! `docs/SERVICE.md`.
//!
//! Binds the address (default `127.0.0.1:0` — an OS-chosen ephemeral
//! port), prints one readiness line
//! (`cnash-service listening on HOST:PORT`) to stdout, and serves until
//! a client sends `{"op":"shutdown"}`. The wire protocol is documented
//! in `cnash_service::protocol`; `cnash-bench`'s `service_client`
//! binary is the matching CLI.
//!
//! With `--store PATH` the daemon opens (or creates) the persistent
//! solution store at `PATH`, warm-boots from it — every record
//! presolved by `cnash-bench`'s `presolve` sweeper or appended by a
//! previous daemon run is served from disk with a `"cache":"disk"`
//! provenance flag — and appends each fresh solve's deterministic
//! payload. A second readiness line
//! (`cnash-service store PATH: N records`) reports the warm-boot scan.
//!
//! With `--metrics-file PATH` the daemon appends one JSON line per
//! `--metrics-interval-ms` (default 1000) to `PATH` — the `metrics`
//! payload of the wire protocol wrapped as
//! `{"at_ms":<since start>,"metrics":{...}}` — and writes one final
//! snapshot on shutdown, so a crashed-client post-mortem always has
//! the latest counters. `--version` prints the build identity (crate
//! version + rustc) and exits.

use cnash_service::protocol;
use cnash_service::{serve, ServiceConfig};
use cnash_telemetry::Registry;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: serviced [flags]");
    eprintln!("  --addr HOST:PORT         bind address [127.0.0.1:0 = ephemeral port]");
    eprintln!("  --shards S               scheduler shards [0 = one per core]");
    eprintln!("  --batch-threads T        worker threads per batch job [1]");
    eprintln!("  --max-conns N            open-connection cap [4096]");
    eprintln!("  --store PATH             persistent solution store (warm boot + disk hits)");
    eprintln!("  --metrics-file PATH      append periodic telemetry snapshots (JSON lines)");
    eprintln!("  --metrics-interval-ms MS snapshot period for --metrics-file [1000]");
    eprintln!("  --sa-trace-interval N    sample annealer energy every N iterations [0 = off]");
    eprintln!("  --version                print build identity and exit");
    std::process::exit(2);
}

/// Flags not covered by [`ServiceConfig`].
struct DaemonOptions {
    metrics_file: Option<String>,
    metrics_interval: Duration,
    sa_trace_interval: u64,
}

fn parse_config() -> (ServiceConfig, DaemonOptions) {
    let mut config = ServiceConfig::default();
    let mut options = DaemonOptions {
        metrics_file: None,
        metrics_interval: Duration::from_millis(1000),
        sa_trace_interval: 0,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--version" {
            let build = protocol::build_info();
            println!(
                "serviced {} ({})",
                build.get("version").and_then(|v| v.as_str()).unwrap_or("?"),
                build.get("rustc").and_then(|v| v.as_str()).unwrap_or("?"),
            );
            std::process::exit(0);
        }
        if !matches!(
            flag,
            "--addr"
                | "--shards"
                | "--batch-threads"
                | "--max-conns"
                | "--store"
                | "--metrics-file"
                | "--metrics-interval-ms"
                | "--sa-trace-interval"
        ) {
            usage(&format!("unknown flag {flag}"));
        }
        i += 1;
        let value = args
            .get(i)
            .unwrap_or_else(|| usage(&format!("{flag} needs a value")));
        let count = |v: &str| {
            v.parse::<usize>()
                .unwrap_or_else(|_| usage(&format!("{flag} needs a non-negative integer")))
        };
        match flag {
            "--addr" => config.addr = value.clone(),
            "--shards" => config.shards = count(value),
            "--batch-threads" => config.batch_threads = count(value).max(1),
            "--max-conns" => config.max_connections = count(value).max(1),
            "--store" => config.store_path = Some(value.clone()),
            "--metrics-file" => options.metrics_file = Some(value.clone()),
            "--metrics-interval-ms" => {
                options.metrics_interval = Duration::from_millis(count(value).max(1) as u64);
            }
            "--sa-trace-interval" => options.sa_trace_interval = count(value) as u64,
            _ => unreachable!("flag validated above"),
        }
        i += 1;
    }
    (config, options)
}

/// Appends one `{"at_ms":…,"metrics":{…}}` line to the snapshot file.
fn write_snapshot(file: &mut std::fs::File, started: Instant, registry: &Registry) {
    let response = protocol::metrics_response(&cnash_runtime::Json::Null, &registry.snapshot());
    let Ok(metrics) = response.get("metrics") else {
        return;
    };
    let line = cnash_runtime::Json::obj([
        (
            "at_ms",
            cnash_runtime::Json::uint(
                started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64
            ),
        ),
        ("metrics", metrics.clone()),
    ]);
    if writeln!(file, "{}", line.compact())
        .and_then(|()| file.flush())
        .is_err()
    {
        eprintln!("cnash-service: cannot append metrics snapshot");
    }
}

fn main() {
    let (config, options) = parse_config();
    cnash_telemetry::hot::set_sa_trace_interval(options.sa_trace_interval);
    let handle = match serve(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: cannot start: {e}");
            std::process::exit(1);
        }
    };
    println!("cnash-service listening on {}", handle.addr());
    if let Some(store) = handle.store() {
        let report = store.open_report();
        let health = if report.compacted {
            format!(
                " (recovered: {} corrupt skipped, {} tail bytes dropped)",
                report.corrupt_skipped, report.truncated_tail_bytes
            )
        } else {
            String::new()
        };
        println!(
            "cnash-service store {}: {} records{health}",
            store.path().display(),
            report.records
        );
    }
    std::io::stdout().flush().expect("stdout");

    // Periodic telemetry snapshots: a detached writer ticking until the
    // daemon exits, plus one final snapshot after join() so the file
    // always ends with the complete totals.
    let stopping = Arc::new(AtomicBool::new(false));
    let writer = options.metrics_file.as_ref().map(|path| {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap_or_else(|e| {
                eprintln!("error: cannot open metrics file {path}: {e}");
                std::process::exit(1);
            });
        let registry = Arc::clone(handle.registry());
        let stopping = Arc::clone(&stopping);
        let interval = options.metrics_interval;
        std::thread::Builder::new()
            .name("cnash-metrics".into())
            .spawn(move || {
                let started = Instant::now();
                while !stopping.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    write_snapshot(&mut file, started, &registry);
                }
                write_snapshot(&mut file, started, &registry);
            })
            .expect("spawn metrics writer")
    });

    handle.join();
    stopping.store(true, Ordering::Relaxed);
    if let Some(writer) = writer {
        let _ = writer.join();
    }
    println!("cnash-service stopped");
}
