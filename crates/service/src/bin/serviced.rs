//! The solver daemon.
//!
//! `cargo run --release -p cnash-service --bin serviced -- \
//!      [--addr HOST:PORT] [--shards S] [--batch-threads T]`
//!
//! Binds the address (default `127.0.0.1:0` — an OS-chosen ephemeral
//! port), prints one readiness line
//! (`cnash-service listening on HOST:PORT`) to stdout, and serves until
//! a client sends `{"op":"shutdown"}`. The wire protocol is documented
//! in `cnash_service::protocol`; `cnash-bench`'s `service_client`
//! binary is the matching CLI.

use cnash_service::{serve, ServiceConfig};
use std::io::Write;

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: serviced [flags]");
    eprintln!("  --addr HOST:PORT   bind address [127.0.0.1:0 = ephemeral port]");
    eprintln!("  --shards S         scheduler shards [0 = one per core]");
    eprintln!("  --batch-threads T  worker threads per batch job [1]");
    std::process::exit(2);
}

fn parse_config() -> ServiceConfig {
    let mut config = ServiceConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if !matches!(flag, "--addr" | "--shards" | "--batch-threads") {
            usage(&format!("unknown flag {flag}"));
        }
        i += 1;
        let value = args
            .get(i)
            .unwrap_or_else(|| usage(&format!("{flag} needs a value")));
        let count = |v: &str| {
            v.parse::<usize>()
                .unwrap_or_else(|_| usage(&format!("{flag} needs a non-negative integer")))
        };
        match flag {
            "--addr" => config.addr = value.clone(),
            "--shards" => config.shards = count(value),
            "--batch-threads" => config.batch_threads = count(value).max(1),
            _ => unreachable!("flag validated above"),
        }
        i += 1;
    }
    config
}

fn main() {
    let config = parse_config();
    let handle = match serve(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: cannot bind: {e}");
            std::process::exit(1);
        }
    };
    println!("cnash-service listening on {}", handle.addr());
    std::io::stdout().flush().expect("stdout");
    handle.join();
    println!("cnash-service stopped");
}
