//! The sharded work-stealing scheduler behind the service.
//!
//! Incoming solve jobs are distributed round-robin over `S` shards,
//! each a worker thread owning one [`WorkQueue`] (the pool primitive
//! from `cnash-runtime`). A shard drains its own queue FIFO; when
//! empty it *steals* the newest job from a sibling, so a connection
//! that bursts fifty jobs onto one shard is load-balanced across the
//! whole daemon without any central dispatcher lock on the hot path.
//!
//! Jobs are opaque closures: response ordering is the connection
//! layer's concern (each job sends its result into the connection's
//! reorder buffer), which keeps the scheduler deterministic-agnostic —
//! any steal interleaving yields the same per-connection output.
//!
//! Shutdown closes every queue; workers finish the jobs already
//! running, drain what was queued (each queued job observes the
//! cancelled token and reports a cancelled batch quickly) and exit.

use cnash_runtime::pool::effective_threads;
use cnash_runtime::WorkQueue;
use cnash_telemetry::{Counter, Gauge, Registry};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A unit of scheduled work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Telemetry handles shared by the submit path and every shard loop.
///
/// Queue-depth gauges count jobs *queued but not yet started*: `inc` on
/// a successful push, `dec` the moment a shard pops (or steals) the
/// job. `executed` counts completed job runs; `steals` the subset that
/// ran on a shard other than the one they were submitted to.
#[derive(Debug)]
struct SchedTelemetry {
    depth: Vec<Arc<Gauge>>,
    executed: Arc<Counter>,
    steals: Arc<Counter>,
}

impl SchedTelemetry {
    /// Fresh, unregistered instruments (scheduler-local stats).
    fn local(count: usize) -> Self {
        Self {
            depth: (0..count).map(|_| Arc::new(Gauge::new())).collect(),
            executed: Arc::new(Counter::new()),
            steals: Arc::new(Counter::new()),
        }
    }

    /// Instruments owned by `registry` under the stable names
    /// `sched_queue_depth_<shard>`, `sched_jobs_executed` and
    /// `sched_steals`.
    fn registered(count: usize, registry: &Registry) -> Self {
        Self {
            depth: (0..count)
                .map(|me| registry.gauge(&format!("sched_queue_depth_{me}")))
                .collect(),
            executed: registry.counter("sched_jobs_executed"),
            steals: registry.counter("sched_steals"),
        }
    }
}

/// Sharded work-stealing executor.
pub struct Scheduler {
    shards: Vec<Arc<WorkQueue<Job>>>,
    workers: Vec<JoinHandle<()>>,
    next: AtomicUsize,
    telemetry: Arc<SchedTelemetry>,
}

impl Scheduler {
    /// Spawns `shards` worker shards (`0` = one per available core).
    pub fn new(shards: usize) -> Self {
        Self::build(shards, None)
    }

    /// Spawns a scheduler whose queue-depth gauges and steal/executed
    /// counters live in `registry`, under the stable names
    /// `sched_queue_depth_<shard>`, `sched_jobs_executed` and
    /// `sched_steals`.
    pub(crate) fn with_registry(shards: usize, registry: &Registry) -> Self {
        Self::build(shards, Some(registry))
    }

    fn build(shards: usize, registry: Option<&Registry>) -> Self {
        let count = effective_threads(shards);
        let telemetry = Arc::new(match registry {
            Some(reg) => SchedTelemetry::registered(count, reg),
            None => SchedTelemetry::local(count),
        });
        let queues: Vec<Arc<WorkQueue<Job>>> =
            (0..count).map(|_| Arc::new(WorkQueue::new())).collect();
        let workers = (0..count)
            .map(|me| {
                let queues = queues.clone();
                let telemetry = Arc::clone(&telemetry);
                std::thread::Builder::new()
                    .name(format!("cnash-shard-{me}"))
                    .spawn(move || shard_loop(me, &queues, &telemetry))
                    .expect("spawn shard worker")
            })
            .collect();
        Self {
            shards: queues,
            workers,
            next: AtomicUsize::new(0),
            telemetry,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total jobs executed to completion (any shard).
    pub fn jobs_executed(&self) -> u64 {
        self.telemetry.executed.get()
    }

    /// Jobs that ran on a shard other than the one they were queued on.
    pub fn jobs_stolen(&self) -> u64 {
        self.telemetry.steals.get()
    }

    /// Submits a job (round-robin shard assignment).
    ///
    /// # Errors
    ///
    /// Returns the job back if the scheduler is shut down.
    pub fn submit(&self, job: Job) -> Result<(), Job> {
        let shard = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        // Gauge up *before* the push: a shard may pop the job
        // immediately, and its `dec` must never observe the gauge
        // before our `inc` (the depth would transiently read −1).
        self.telemetry.depth[shard].inc();
        match self.shards[shard].push(job) {
            Ok(()) => Ok(()),
            Err(job) => {
                self.telemetry.depth[shard].dec();
                Err(job)
            }
        }
    }

    /// Closes every shard queue and joins the workers once queued work
    /// has drained.
    pub fn shutdown(self) {
        for q in &self.shards {
            q.close();
        }
        for w in self.workers {
            w.join().expect("shard worker panicked");
        }
    }
}

/// Runs one job with panic isolation: a panicking job must not kill
/// its shard — the daemon would otherwise keep round-robining 1/S of
/// all future work onto a dead queue where it hangs forever. The job's
/// own response-channel send is lost on panic; the connection layer
/// guards against that with its own `catch_unwind` around the solve.
fn run_isolated(job: Job) {
    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
        eprintln!("cnash-service: a scheduled job panicked; shard continues");
    }
}

fn shard_loop(me: usize, queues: &[Arc<WorkQueue<Job>>], telemetry: &SchedTelemetry) {
    let own = &queues[me];
    loop {
        // Own work first (FIFO).
        if let Some(job) = own.pop_timeout(Duration::from_millis(20)) {
            telemetry.depth[me].dec();
            run_isolated(job);
            telemetry.executed.inc();
            continue;
        }
        // Idle: steal the newest job from the first busy sibling.
        let stolen = (1..queues.len())
            .map(|k| (me + k) % queues.len())
            .find_map(|victim| queues[victim].steal().map(|job| (victim, job)));
        if let Some((victim, job)) = stolen {
            telemetry.depth[victim].dec();
            telemetry.steals.inc();
            run_isolated(job);
            telemetry.executed.inc();
            continue;
        }
        if own.is_closed() {
            // No own work, nothing stealable, no new pushes possible.
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn executes_everything_across_shards() {
        let sched = Scheduler::new(3);
        assert_eq!(sched.shard_count(), 3);
        let (tx, rx) = mpsc::channel();
        for k in 0..50usize {
            let tx = tx.clone();
            sched
                .submit(Box::new(move || tx.send(k).unwrap()))
                .unwrap_or_else(|_| panic!("open scheduler accepts work"));
        }
        drop(tx);
        let mut seen: Vec<usize> = rx.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
        sched.shutdown();
    }

    #[test]
    fn stealing_drains_a_bursty_shard() {
        // One slow job pins shard 0; everything queued behind it must
        // still complete promptly by theft — asserted by draining the
        // channel with a receive timeout well below the slow job's
        // duration times the queue length.
        let sched = Scheduler::new(4);
        let (tx, rx) = mpsc::channel();
        for k in 0..16usize {
            let tx = tx.clone();
            sched
                .submit(Box::new(move || {
                    if k % 4 == 0 {
                        std::thread::sleep(Duration::from_millis(40));
                    }
                    tx.send(k).unwrap();
                }))
                .unwrap_or_else(|_| panic!("open scheduler accepts work"));
        }
        drop(tx);
        let mut count = 0;
        while rx.recv_timeout(Duration::from_secs(5)).is_ok() {
            count += 1;
        }
        assert_eq!(count, 16);
        sched.shutdown();
    }

    #[test]
    fn a_panicking_job_does_not_kill_its_shard() {
        let sched = Scheduler::new(1); // one shard: it must survive
        let (tx, rx) = mpsc::channel();
        sched
            .submit(Box::new(|| panic!("job blew up")))
            .unwrap_or_else(|_| panic!("open scheduler accepts work"));
        sched
            .submit(Box::new(move || tx.send(42u32).unwrap()))
            .unwrap_or_else(|_| panic!("open scheduler accepts work"));
        // The job after the panicking one still runs on the same shard.
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(42));
        sched.shutdown(); // and shutdown joins cleanly (no poisoned worker)
    }

    #[test]
    fn telemetry_accounts_for_every_job_and_settles_to_empty_queues() {
        let registry = Registry::new();
        let sched = Scheduler::with_registry(2, &registry);
        let (tx, rx) = mpsc::channel();
        for k in 0..20usize {
            let tx = tx.clone();
            sched
                .submit(Box::new(move || tx.send(k).unwrap()))
                .unwrap_or_else(|_| panic!("open scheduler accepts work"));
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 20);
        assert!(sched.jobs_executed() <= 20);
        sched.shutdown();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["sched_jobs_executed"], 20);
        assert!(snap.counters["sched_steals"] <= 20);
        // Every queued job was consumed: the depth gauges settle at 0.
        assert_eq!(snap.gauges["sched_queue_depth_0"], 0);
        assert_eq!(snap.gauges["sched_queue_depth_1"], 0);
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let sched = Scheduler::new(2);
        let (tx, rx) = mpsc::channel();
        for k in 0..8usize {
            let tx = tx.clone();
            sched
                .submit(Box::new(move || tx.send(k).unwrap()))
                .unwrap_or_else(|_| panic!("open scheduler accepts work"));
        }
        drop(tx);
        sched.shutdown();
        let mut seen: Vec<usize> = rx.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>(), "queued work drained");
    }
}
