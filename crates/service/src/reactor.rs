//! A hand-rolled nonblocking readiness layer: the dependency budget is
//! "vendored crates only", so instead of mio/tokio this module speaks
//! to the kernel directly — `epoll(7)` on Linux, `poll(2)` on the
//! other unixes — through four `extern "C"` declarations resolved
//! against the libc the standard library already links.
//!
//! The surface is the minimal readiness API the server's event loop
//! (and the `service_load` harness on the client side) needs:
//!
//! * [`Poller`] — register/re-register/deregister a file descriptor
//!   under a caller-chosen `u64` token, then [`Poller::wait`] for
//!   level-triggered readiness events;
//! * [`Waker`] — a clonable, thread-safe handle that makes a blocked
//!   `wait` return, built on a nonblocking `UnixStream::pair` (the
//!   read end is registered like any other fd; completion callbacks on
//!   scheduler shards hold the write end).
//!
//! Error and hang-up conditions are folded into the readiness flags
//! (`readable`/`writable` both set): the owner's next `read`/`write`
//! observes the failure directly, which keeps the loop's close logic
//! in exactly one place.

#[cfg(not(unix))]
compile_error!("cnash-service's reactor needs a unix readiness API (epoll or poll)");

use std::io::{self, Read, Write};
use std::os::raw::c_int;
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollEvent {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd is readable (or in an error/hang-up state the next read
    /// will observe).
    pub readable: bool,
    /// The fd is writable (or in an error state the next write will
    /// observe).
    pub writable: bool,
}

/// Clamps an optional timeout to the C `int` milliseconds the kernel
/// APIs take (`-1` = block forever).
fn timeout_ms(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(d) => d.as_millis().min(c_int::MAX as u128) as c_int,
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! Linux backend: one `epoll` instance holds the interest set in
    //! the kernel, so `wait` is O(ready), not O(registered).

    use super::{timeout_ms, PollEvent};
    use std::io;
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// `struct epoll_event`. Packed on x86-64, where the kernel ABI
    /// has no padding between the 32-bit mask and the 64-bit payload.
    #[derive(Clone, Copy)]
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn interest_mask(readable: bool, writable: bool) -> u32 {
        let mut mask = 0;
        if readable {
            mask |= EPOLLIN | EPOLLRDHUP;
        }
        if writable {
            mask |= EPOLLOUT;
        }
        mask
    }

    /// Readiness multiplexer over one `epoll` instance.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
        scratch: Vec<u64>, // raw epoll_event storage, 12 B each on x86-64
    }

    /// How many events one `wait` call can surface (more stay queued
    /// in the kernel for the next call — level-triggered, nothing is
    /// lost).
    const WAIT_CAPACITY: usize = 256;

    impl Poller {
        /// Creates the kernel `epoll` instance (close-on-exec).
        ///
        /// # Errors
        ///
        /// The `epoll_create1` errno, e.g. fd exhaustion.
        pub fn new() -> io::Result<Self> {
            // SAFETY: no pointers involved; a negative return is errno.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            // Size the scratch area in u64s so alignment is at least
            // that of EpollEvent whatever the arch's layout.
            let words = WAIT_CAPACITY * std::mem::size_of::<EpollEvent>().div_ceil(8);
            Ok(Self {
                epfd,
                scratch: vec![0u64; words],
            })
        }

        fn ctl(&mut self, op: c_int, fd: RawFd, mask: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask,
                data: token,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Adds `fd` to the interest set under `token`.
        ///
        /// # Errors
        ///
        /// The `epoll_ctl` errno (e.g. the fd is already registered).
        pub fn register(
            &mut self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest_mask(readable, writable), token)
        }

        /// Replaces the interest of an already-registered `fd`.
        ///
        /// # Errors
        ///
        /// The `epoll_ctl` errno (e.g. the fd was never registered).
        pub fn reregister(
            &mut self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest_mask(readable, writable), token)
        }

        /// Removes `fd` from the interest set.
        ///
        /// # Errors
        ///
        /// The `epoll_ctl` errno (e.g. the fd was never registered).
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Blocks until at least one registered fd is ready (or the
        /// timeout elapses), filling `out` with the ready set.
        ///
        /// # Errors
        ///
        /// The `epoll_wait` errno; [`io::ErrorKind::Interrupted`] on
        /// `EINTR` — callers should retry.
        pub fn wait(
            &mut self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            out.clear();
            // SAFETY: scratch is u64-aligned (≥ EpollEvent's packed
            // alignment) and sized for WAIT_CAPACITY events.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.scratch.as_mut_ptr().cast::<EpollEvent>(),
                    WAIT_CAPACITY as c_int,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                return Err(io::Error::last_os_error());
            }
            for k in 0..n as usize {
                // SAFETY: the kernel wrote `n` events into scratch.
                let ev = unsafe { *self.scratch.as_ptr().cast::<EpollEvent>().add(k) };
                let bits = ev.events;
                out.push(PollEvent {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: epfd came from epoll_create1 and is closed once.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! Portable unix backend: the interest set lives in user space and
    //! `wait` rebuilds a `pollfd` array per call — O(registered), fine
    //! for the non-Linux development case this path serves.

    use super::{timeout_ms, PollEvent};
    use std::collections::BTreeMap;
    use std::io;
    use std::os::raw::{c_int, c_short, c_uint};
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_uint, timeout: c_int) -> c_int;
    }

    /// Readiness multiplexer over `poll(2)`.
    #[derive(Debug, Default)]
    pub struct Poller {
        interest: BTreeMap<RawFd, (u64, bool, bool)>,
    }

    impl Poller {
        /// Creates an empty interest set.
        ///
        /// # Errors
        ///
        /// Never fails on this backend (the signature matches epoll's).
        pub fn new() -> io::Result<Self> {
            Ok(Self::default())
        }

        /// Adds `fd` to the interest set under `token`.
        ///
        /// # Errors
        ///
        /// `AlreadyExists` if the fd is already registered.
        pub fn register(
            &mut self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            if self.interest.contains_key(&fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd registered",
                ));
            }
            self.interest.insert(fd, (token, readable, writable));
            Ok(())
        }

        /// Replaces the interest of an already-registered `fd`.
        ///
        /// # Errors
        ///
        /// `NotFound` if the fd was never registered.
        pub fn reregister(
            &mut self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            match self.interest.get_mut(&fd) {
                Some(slot) => {
                    *slot = (token, readable, writable);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        /// Removes `fd` from the interest set.
        ///
        /// # Errors
        ///
        /// `NotFound` if the fd was never registered.
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            match self.interest.remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        /// Blocks until at least one registered fd is ready (or the
        /// timeout elapses), filling `out` with the ready set.
        ///
        /// # Errors
        ///
        /// The `poll` errno; [`io::ErrorKind::Interrupted`] on `EINTR`.
        pub fn wait(
            &mut self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            out.clear();
            let mut fds: Vec<PollFd> = self
                .interest
                .iter()
                .map(|(&fd, &(_, readable, writable))| PollFd {
                    fd,
                    events: if readable { POLLIN } else { 0 } | if writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            // SAFETY: fds is a live slice for the duration of the call.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_uint, timeout_ms(timeout)) };
            if n < 0 {
                return Err(io::Error::last_os_error());
            }
            for pfd in &fds {
                if pfd.revents == 0 {
                    continue;
                }
                let (token, _, _) = self.interest[&pfd.fd];
                out.push(PollEvent {
                    token,
                    readable: pfd.revents & (POLLIN | POLLERR | POLLHUP) != 0,
                    writable: pfd.revents & (POLLOUT | POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

pub use sys::Poller;

/// A clonable handle that makes a blocked [`Poller::wait`] return.
///
/// Built on a nonblocking `UnixStream::pair`: [`Waker::wake`] writes
/// one byte into the pair; the read end is registered with the poller
/// like any other fd and drained with [`drain_wakeups`]. A full pipe
/// means a wake-up is already pending, so a `WouldBlock` on the write
/// is success, not failure.
#[derive(Debug, Clone)]
pub struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    /// Creates the waker and the receive end to register with a poller.
    ///
    /// # Errors
    ///
    /// The `socketpair` / `fcntl` errno.
    pub fn new() -> io::Result<(Self, UnixStream)> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((Self { tx: Arc::new(tx) }, rx))
    }

    /// Makes the poller's current (or next) `wait` return. Never
    /// blocks; infallible by design (a send failure means the receive
    /// end is gone, i.e. the loop already exited).
    pub fn wake(&self) {
        let _ = (&*self.tx).write(&[1u8]);
    }
}

/// Drains pending wake-up bytes from a [`Waker`]'s receive end (call
/// when the poller reports it readable, before processing whatever the
/// wake-ups announced — any byte written after the drain triggers a
/// fresh readiness event, so no wake-up is ever lost).
pub fn drain_wakeups(rx: &UnixStream) {
    let mut sink = [0u8; 64];
    loop {
        match (&*rx).read(&mut sink) {
            Ok(0) => return,   // all wakers dropped
            Ok(_) => continue, // keep draining
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return, // WouldBlock: drained
        }
    }
}

/// The raw fd of a waker receive end — what gets registered.
pub fn waker_fd(rx: &UnixStream) -> RawFd {
    rx.as_raw_fd()
}

/// Clamps a socket's kernel send buffer (`SO_SNDBUF`).
///
/// The kernel's autotuned per-connection buffers reach tens of
/// megabytes on loopback; at thousands of connections that is the
/// daemon's memory bill, and it hides slow readers from the
/// application-level backpressure accounting. Clamping makes the
/// kernel hand `WouldBlock` back early so the reactor's own bounded
/// write queue is the buffer of record. (The kernel rounds the value
/// up to its floor and doubles it for bookkeeping overhead.)
///
/// # Errors
///
/// The `setsockopt` errno.
pub fn set_send_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    const SOL_SOCKET: c_int = if cfg!(target_os = "linux") { 1 } else { 0xffff };
    const SO_SNDBUF: c_int = if cfg!(target_os = "linux") { 7 } else { 0x1001 };
    extern "C" {
        fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> c_int;
    }
    let value: c_int = bytes.min(c_int::MAX as usize) as c_int;
    let rc = unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_SNDBUF,
            std::ptr::from_ref(&value).cast(),
            std::mem::size_of::<c_int>() as u32,
        )
    };
    if rc == 0 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn reports_readability_when_bytes_arrive() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.register(server.as_raw_fd(), 7, true, false).unwrap();
        let mut events = Vec::new();
        // Nothing pending: a short wait times out empty.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        client.write_all(b"hi").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn reregister_switches_interest_and_deregister_silences() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        client.write_all(b"x").unwrap();

        let mut poller = Poller::new().unwrap();
        // Write-only interest: pending input must not surface.
        poller.register(server.as_raw_fd(), 1, false, true).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(
            events.iter().all(|e| e.writable),
            "only writability may surface: {events:?}"
        );

        poller
            .reregister(server.as_raw_fd(), 1, true, false)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.readable && e.token == 1));

        poller.deregister(server.as_raw_fd()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "deregistered fd still reported");
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let (waker, rx) = Waker::new().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(waker_fd(&rx), 99, true, false).unwrap();

        // Keep a clone alive across the test: dropping the last write
        // end would hang up the pair and leave `rx` forever readable.
        let keepalive = waker.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
            waker.wake(); // coalesced, not lost
        });
        let mut events = Vec::new();
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(5), "wake-up arrived");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 99);
        // Both wakes are in before draining (no racing writer left).
        handle.join().unwrap();
        drain_wakeups(&rx);
        // Drained: the next wait times out quietly.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
        drop(keepalive);
    }
}
