//! The instance cache: memoized programmed hardware and ground truth.
//!
//! Instantiating a solver for a request has two costs that dwarf the
//! per-request state:
//!
//! * **programming** — mapping the game onto the bi-crossbar samples
//!   `O(n·m·I²·t)` devices (C-Nash), and building the Eq. 6 S-QUBO
//!   blows the game up into slack variables (D-Wave baselines);
//! * **ground truth** — support enumeration of the game's equilibria
//!   for coverage statistics.
//!
//! Both are pure functions of the game's *canonical* payoff structure
//! (plus, for programming, the hardware config and silicon seed), so
//! the cache keys them on [`BimatrixGame::canonical_fingerprint`]
//! combined with the programming-relevant config fingerprints.
//! Parameter sweeps that only change per-request knobs — iteration
//! budget, gap tolerance, WTA routing, D-Wave model or read budget,
//! run counts, seeds — all hit the same cache line and skip the
//! `O(n·m)` mapping path entirely.
//!
//! Lookups are **single-flight**: concurrent requests for the same key
//! block on one build (via [`OnceLock`]) instead of programming the
//! same instance twice, so a burst of identical requests does the
//! expensive work exactly once.

use cnash_core::baselines::DWaveNashSolver;
use cnash_core::{CNashSolver, IdealSolver, NashSolver, ProgrammedCNash};
use cnash_game::canonical::Hasher64;
use cnash_game::support_enum::enumerate_equilibria;
use cnash_game::{BimatrixGame, Equilibrium};
use cnash_qubo::dwave::DWaveModel;
use cnash_qubo::squbo::{SQubo, SQuboWeights};
use cnash_runtime::spec::{GameSpec, SolverSpec};
use cnash_runtime::{Json, SpecError};
use cnash_telemetry::{Counter, Registry};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Ground-truth enumeration tolerance (the workspace-wide epsilon used
/// by every evaluation harness).
const TRUTH_TOL: f64 = 1e-9;

#[derive(Debug, Clone)]
enum ProgrammedInstance {
    CNash(ProgrammedCNash),
    SQubo(Arc<SQubo>),
}

type InstanceSlot = Arc<OnceLock<Result<ProgrammedInstance, SpecError>>>;
type TruthSlot = Arc<OnceLock<Arc<Vec<Equilibrium>>>>;

/// A solver materialised for one request.
pub struct PreparedJob {
    /// The built game instance.
    pub game: BimatrixGame,
    /// The solver, ready to run.
    pub solver: Box<dyn NashSolver>,
    /// Whether the programmed instance came out of the cache (always
    /// `false` for solvers with no programming step, e.g. `ideal` or
    /// `cfr`).
    pub cache_hit: bool,
}

/// Counter snapshot of an [`InstanceCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Solve requests served from a cached programmed instance.
    pub instance_hits: u64,
    /// Solve requests that had to program an instance (or that are
    /// uncacheable, e.g. `ideal` solvers).
    pub instance_misses: u64,
    /// Distinct programmed instances held.
    pub instances: u64,
    /// Ground-truth lookups served from cache.
    pub truth_hits: u64,
    /// Ground-truth enumerations performed.
    pub truth_misses: u64,
    /// Distinct ground-truth sets held.
    pub truths: u64,
}

impl CacheStats {
    /// Serialises the snapshot. Counts are emitted as [`Json::uint`] so
    /// long-running daemons report them exactly: the old `as f64` path
    /// silently lost precision past 2^53. The rendered bytes are
    /// unchanged for values below that cliff (integers print as
    /// integers either way).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("instance_hits", Json::uint(self.instance_hits)),
            ("instance_misses", Json::uint(self.instance_misses)),
            ("instances", Json::uint(self.instances)),
            ("truth_hits", Json::uint(self.truth_hits)),
            ("truth_misses", Json::uint(self.truth_misses)),
            ("truths", Json::uint(self.truths)),
        ])
    }
}

/// Default bound on cached programmed instances. Each C-Nash entry
/// pins `O(n·m·I²·t)` device state, so the instance map is the
/// daemon's dominant memory consumer and must not grow with traffic.
pub const DEFAULT_MAX_INSTANCES: usize = 256;
/// Default bound on cached ground-truth sets (equilibria are small).
pub const DEFAULT_MAX_TRUTHS: usize = 4096;

/// Memoizes programmed instances and ground-truth enumerations across
/// requests. Shared (`Arc`) by every connection and scheduler shard.
///
/// Both maps are **bounded**: once a map reaches its capacity, adding
/// a key evicts an arbitrary resident entry (random-replacement —
/// constant-time, no recency bookkeeping on the hot path). Requests
/// already holding an evicted slot keep using it (`Arc`); it is merely
/// no longer findable, so the worst case of eviction is a re-program,
/// never an error.
#[derive(Debug)]
pub struct InstanceCache {
    instances: Mutex<HashMap<u64, InstanceSlot>>,
    truths: Mutex<HashMap<u64, TruthSlot>>,
    max_instances: usize,
    max_truths: usize,
    instance_hits: Arc<Counter>,
    instance_misses: Arc<Counter>,
    truth_hits: Arc<Counter>,
    truth_misses: Arc<Counter>,
}

impl Default for InstanceCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_MAX_INSTANCES, DEFAULT_MAX_TRUTHS)
    }
}

impl InstanceCache {
    /// Creates an empty cache with the default capacity bounds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache whose hit/miss counters live in
    /// `registry` (as `cache_instance_hits`, `cache_instance_misses`,
    /// `cache_truth_hits`, `cache_truth_misses`), so a metrics snapshot
    /// of the registry sees them without asking the cache.
    pub(crate) fn with_registry(registry: &Registry) -> Self {
        Self {
            instance_hits: registry.counter("cache_instance_hits"),
            instance_misses: registry.counter("cache_instance_misses"),
            truth_hits: registry.counter("cache_truth_hits"),
            truth_misses: registry.counter("cache_truth_misses"),
            ..Self::default()
        }
    }

    /// Creates an empty cache bounded at `max_instances` programmed
    /// instances and `max_truths` ground-truth sets (each clamped to at
    /// least 1).
    pub fn with_capacity(max_instances: usize, max_truths: usize) -> Self {
        Self {
            instances: Mutex::new(HashMap::new()),
            truths: Mutex::new(HashMap::new()),
            max_instances: max_instances.max(1),
            max_truths: max_truths.max(1),
            instance_hits: Arc::new(Counter::new()),
            instance_misses: Arc::new(Counter::new()),
            truth_hits: Arc::new(Counter::new()),
            truth_misses: Arc::new(Counter::new()),
        }
    }

    /// A snapshot of the hit/miss counters and entry counts.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            instance_hits: self.instance_hits.get(),
            instance_misses: self.instance_misses.get(),
            instances: self.instances.lock().expect("cache poisoned").len() as u64,
            truth_hits: self.truth_hits.get(),
            truth_misses: self.truth_misses.get(),
            truths: self.truths.lock().expect("cache poisoned").len() as u64,
        }
    }

    /// Builds the game and solver for a request, reusing the programmed
    /// instance when an equivalent one is cached.
    ///
    /// # Errors
    ///
    /// Errors on invalid specs or unmappable games. Build errors are
    /// cached too (negative caching): re-requesting a game that cannot
    /// be programmed fails fast instead of re-attempting the mapping.
    pub fn prepare(
        &self,
        game_spec: &GameSpec,
        solver_spec: &SolverSpec,
    ) -> Result<PreparedJob, SpecError> {
        self.prepare_with_game(game_spec.build()?, solver_spec)
    }

    /// [`InstanceCache::prepare`] for a game that is already built —
    /// the solve fast path builds the game once to derive the solution
    /// store key and must not pay (or risk divergence from) a second
    /// `GameSpec::build`.
    ///
    /// # Errors
    ///
    /// Same contract as [`InstanceCache::prepare`].
    pub fn prepare_with_game(
        &self,
        game: BimatrixGame,
        solver_spec: &SolverSpec,
    ) -> Result<PreparedJob, SpecError> {
        let game_fp = game.canonical_fingerprint();
        match solver_spec {
            SolverSpec::CNash {
                config,
                hardware_seed,
            } => {
                let built = config.build().map_err(|e| SpecError {
                    message: format!("cnash: {e}"),
                })?;
                let mut h = Hasher64::new();
                h.write_str("cnash")
                    .write_u64(game_fp)
                    .write_u64(built.crossbar.program_fingerprint())
                    .write_str(&format!("{:?}", built.wta))
                    .write_u64(*hardware_seed);
                let (slot, hit) = self.instance_slot(h.finish());
                let programmed = slot.get_or_init(|| {
                    CNashSolver::new(&game, built, *hardware_seed)
                        .map(|s| ProgrammedInstance::CNash(s.programmed()))
                        .map_err(|e| SpecError {
                            message: format!("cnash: {e}"),
                        })
                });
                // Finding a negatively-cached failure skips the mapping
                // attempt but serves nothing — not a hit.
                let hit = hit && programmed.is_ok();
                self.count_instance(hit);
                let ProgrammedInstance::CNash(parts) = programmed.clone()? else {
                    return Err(SpecError {
                        message: "instance cache key collision (cnash)".into(),
                    });
                };
                let solver =
                    CNashSolver::from_programmed(&game, built, parts).map_err(|e| SpecError {
                        message: format!("cnash: {e}"),
                    })?;
                Ok(PreparedJob {
                    game,
                    solver: Box::new(solver),
                    cache_hit: hit,
                })
            }
            SolverSpec::DWave {
                model,
                reads_per_run,
            } => {
                let device = match model.as_str() {
                    "2000q" => DWaveModel::dwave_2000q(),
                    "advantage4.1" => DWaveModel::advantage_4_1(),
                    other => {
                        return Err(SpecError {
                            message: format!("unknown D-Wave model `{other}`"),
                        })
                    }
                };
                let mut h = Hasher64::new();
                h.write_str("squbo").write_u64(game_fp);
                let (slot, hit) = self.instance_slot(h.finish());
                let programmed = slot.get_or_init(|| {
                    SQubo::build(&game, &SQuboWeights::default())
                        .map(|s| ProgrammedInstance::SQubo(Arc::new(s)))
                        .map_err(|e| SpecError {
                            message: format!("dwave: {e}"),
                        })
                });
                let hit = hit && programmed.is_ok();
                self.count_instance(hit);
                let ProgrammedInstance::SQubo(squbo) = programmed.clone()? else {
                    return Err(SpecError {
                        message: "instance cache key collision (squbo)".into(),
                    });
                };
                let solver = DWaveNashSolver::from_programmed(&game, device, *reads_per_run, squbo)
                    .map_err(|e| SpecError {
                        message: format!("dwave: {e}"),
                    })?;
                Ok(PreparedJob {
                    game,
                    solver: Box::new(solver),
                    cache_hit: hit,
                })
            }
            SolverSpec::Ideal { config } => {
                // Nothing is programmed: the ideal solver evaluates in
                // software. Counted as a miss (no programming skipped).
                self.count_instance(false);
                let built = config.build().map_err(|e| SpecError {
                    message: format!("ideal: {e}"),
                })?;
                let solver = IdealSolver::new(&game, built);
                Ok(PreparedJob {
                    game,
                    solver: Box::new(solver),
                    cache_hit: false,
                })
            }
            SolverSpec::Cfr { .. } => {
                // CFR runs in software against the generic game trait —
                // no crossbar, no QUBO, nothing to memoize. Counted as a
                // miss like `ideal`.
                self.count_instance(false);
                let solver = solver_spec.build(&game)?;
                Ok(PreparedJob {
                    game,
                    solver,
                    cache_hit: false,
                })
            }
        }
    }

    /// The (cached) ground-truth equilibria of `game`.
    pub fn ground_truth(&self, game: &BimatrixGame) -> Arc<Vec<Equilibrium>> {
        let key = game.canonical_fingerprint();
        let (slot, hit) = {
            let mut map = self.truths.lock().expect("cache poisoned");
            match map.get(&key) {
                Some(slot) => (Arc::clone(slot), true),
                None => {
                    evict_to_fit(&mut map, self.max_truths, key);
                    let slot: TruthSlot = Arc::new(OnceLock::new());
                    map.insert(key, Arc::clone(&slot));
                    (slot, false)
                }
            }
        };
        if hit {
            self.truth_hits.inc();
        } else {
            self.truth_misses.inc();
        }
        Arc::clone(slot.get_or_init(|| Arc::new(enumerate_equilibria(game, TRUTH_TOL))))
    }

    fn instance_slot(&self, key: u64) -> (InstanceSlot, bool) {
        let mut map = self.instances.lock().expect("cache poisoned");
        match map.get(&key) {
            Some(slot) => (Arc::clone(slot), true),
            None => {
                evict_to_fit(&mut map, self.max_instances, key);
                let slot: InstanceSlot = Arc::new(OnceLock::new());
                map.insert(key, Arc::clone(&slot));
                (slot, false)
            }
        }
    }

    fn count_instance(&self, hit: bool) {
        if hit {
            self.instance_hits.inc();
        } else {
            self.instance_misses.inc();
        }
    }
}

/// Makes room for `incoming` in a bounded map by removing an arbitrary
/// resident entry when the map is at capacity (random replacement —
/// HashMap iteration order is effectively random). In-flight holders of
/// an evicted slot keep their `Arc`; the entry just stops being
/// findable.
fn evict_to_fit<V>(map: &mut HashMap<u64, V>, capacity: usize, incoming: u64) {
    while map.len() >= capacity {
        let Some(&victim) = map.keys().find(|&&k| k != incoming) else {
            return;
        };
        map.remove(&victim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnash_runtime::ConfigSpec;

    fn cnash_spec(iterations: usize) -> SolverSpec {
        SolverSpec::CNash {
            config: ConfigSpec::paper(12).with_iterations(iterations),
            hardware_seed: 5,
        }
    }

    #[test]
    fn repeat_requests_hit_and_match_cold_runs_bitwise() {
        let cache = InstanceCache::new();
        let game = GameSpec::Builtin("battle_of_the_sexes".into());
        let cold = cache.prepare(&game, &cnash_spec(800)).unwrap();
        assert!(!cold.cache_hit);
        let warm = cache.prepare(&game, &cnash_spec(800)).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(cold.solver.run(3), warm.solver.run(3));
        let stats = cache.stats();
        assert_eq!((stats.instance_hits, stats.instance_misses), (1, 1));
        assert_eq!(stats.instances, 1);
    }

    #[test]
    fn parameter_sweeps_share_one_programmed_instance() {
        let cache = InstanceCache::new();
        let game = GameSpec::Builtin("bird_game".into());
        assert!(!cache.prepare(&game, &cnash_spec(500)).unwrap().cache_hit);
        // Different iteration budget: same programming.
        assert!(cache.prepare(&game, &cnash_spec(900)).unwrap().cache_hit);
        // Different hardware seed: different silicon, new instance.
        let other_seed = SolverSpec::CNash {
            config: ConfigSpec::paper(12),
            hardware_seed: 6,
        };
        assert!(!cache.prepare(&game, &other_seed).unwrap().cache_hit);
        // Different preset (ideal crossbar ≠ paper crossbar): new
        // instance even at the same seed.
        let ideal_hw = SolverSpec::CNash {
            config: ConfigSpec::ideal(12),
            hardware_seed: 5,
        };
        assert!(!cache.prepare(&game, &ideal_hw).unwrap().cache_hit);
        assert_eq!(cache.stats().instances, 3);
    }

    #[test]
    fn equal_payoffs_hit_across_spec_forms() {
        // The same game arriving as a builtin and as explicit matrices
        // must share the cache line: the key is canonical.
        let cache = InstanceCache::new();
        let builtin = GameSpec::Builtin("matching_pennies".into());
        let explicit = GameSpec::from_game(&builtin.build().unwrap());
        assert!(!cache.prepare(&builtin, &cnash_spec(500)).unwrap().cache_hit);
        assert!(
            cache
                .prepare(&explicit, &cnash_spec(500))
                .unwrap()
                .cache_hit
        );
    }

    #[test]
    fn family_specs_share_cache_lines_with_explicit_payoffs() {
        // A GameSpec::Family instance and the explicit capture of the
        // game it builds are the same canonical instance: one
        // programming pass serves both, and different seeds do not.
        let cache = InstanceCache::new();
        let family = GameSpec::Family {
            family: "anti_coordination".into(),
            size: 3,
            rows: None,
            cols: None,
            scale: None,
            knob: None,
            seed: 4,
        };
        let explicit = GameSpec::from_game(&family.build().unwrap());
        assert!(!cache.prepare(&family, &cnash_spec(500)).unwrap().cache_hit);
        assert!(
            cache
                .prepare(&explicit, &cnash_spec(500))
                .unwrap()
                .cache_hit
        );
        let other_seed = GameSpec::Family {
            family: "anti_coordination".into(),
            size: 3,
            rows: None,
            cols: None,
            scale: None,
            knob: None,
            seed: 5,
        };
        assert!(
            !cache
                .prepare(&other_seed, &cnash_spec(500))
                .unwrap()
                .cache_hit
        );
        assert_eq!(cache.stats().instances, 2);
    }

    #[test]
    fn dwave_instances_share_across_models_and_reads() {
        let cache = InstanceCache::new();
        let game = GameSpec::Builtin("prisoners_dilemma".into());
        let spec = |model: &str, reads: usize| SolverSpec::DWave {
            model: model.into(),
            reads_per_run: reads,
        };
        assert!(!cache.prepare(&game, &spec("2000q", 5)).unwrap().cache_hit);
        // Model and read budget are per-request: still the same S-QUBO.
        assert!(
            cache
                .prepare(&game, &spec("advantage4.1", 50))
                .unwrap()
                .cache_hit
        );
        assert!(cache.prepare(&game, &spec("5000x", 1)).is_err());
    }

    #[test]
    fn ideal_is_uncacheable_and_truth_is_cached() {
        let cache = InstanceCache::new();
        let spec = SolverSpec::Ideal {
            config: ConfigSpec::ideal(12),
        };
        let game = GameSpec::Builtin("stag_hunt".into());
        assert!(!cache.prepare(&game, &spec).unwrap().cache_hit);
        assert!(!cache.prepare(&game, &spec).unwrap().cache_hit);
        assert_eq!(cache.stats().instances, 0);

        let g = game.build().unwrap();
        let a = cache.ground_truth(&g);
        let b = cache.ground_truth(&g);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.truth_hits, stats.truth_misses), (1, 1));
    }

    #[test]
    fn cfr_is_uncacheable_and_solves_through_the_trait() {
        let cache = InstanceCache::new();
        let spec = SolverSpec::Cfr { iterations: 4000 };
        let game = GameSpec::Builtin("prisoners_dilemma".into());
        let a = cache.prepare(&game, &spec).unwrap();
        assert!(!a.cache_hit);
        assert!(!cache.prepare(&game, &spec).unwrap().cache_hit);
        assert_eq!(cache.stats().instances, 0, "nothing to memoize");
        let out = a.solver.run(1);
        assert!(out.is_equilibrium, "PD's pure equilibrium is claimable");
    }

    #[test]
    fn unmappable_games_fail_fast_on_repeat() {
        // Non-integer payoffs cannot be programmed; the failure is
        // cached (negative caching) and returned on every retry.
        let cache = InstanceCache::new();
        let game = GameSpec::Explicit {
            name: "frac".into(),
            row_payoffs: vec![vec![0.5, 0.0], vec![0.0, 1.0]],
            col_payoffs: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
        };
        assert!(cache.prepare(&game, &cnash_spec(100)).is_err());
        assert!(cache.prepare(&game, &cnash_spec(100)).is_err());
        let stats = cache.stats();
        assert_eq!(stats.instances, 1, "the failed slot is held");
        // Finding the cached failure is not a hit — nothing was served.
        assert_eq!((stats.instance_hits, stats.instance_misses), (0, 2));
    }

    #[test]
    fn registry_backed_counters_are_visible_in_snapshots() {
        let registry = Registry::new();
        let cache = InstanceCache::with_registry(&registry);
        let game = GameSpec::Builtin("battle_of_the_sexes".into());
        assert!(!cache.prepare(&game, &cnash_spec(100)).unwrap().cache_hit);
        assert!(cache.prepare(&game, &cnash_spec(100)).unwrap().cache_hit);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["cache_instance_hits"], 1);
        assert_eq!(snap.counters["cache_instance_misses"], 1);
        // The cache's own stats read the same counters.
        let stats = cache.stats();
        assert_eq!((stats.instance_hits, stats.instance_misses), (1, 1));
    }

    #[test]
    fn stats_json_is_exact_past_the_f64_cliff() {
        let stats = CacheStats {
            instance_hits: (1u64 << 53) + 1,
            instance_misses: 0,
            instances: 0,
            truth_hits: 0,
            truth_misses: 0,
            truths: 0,
        };
        let json = stats.to_json();
        assert_eq!(
            json.get("instance_hits").unwrap().as_u64().unwrap(),
            (1u64 << 53) + 1
        );
    }

    #[test]
    fn instance_map_is_bounded_by_eviction() {
        let cache = InstanceCache::with_capacity(2, 4096);
        let spec = SolverSpec::DWave {
            model: "2000q".into(),
            reads_per_run: 1,
        };
        let game = |name: &str| GameSpec::Builtin(name.into());
        for name in ["battle_of_the_sexes", "prisoners_dilemma", "stag_hunt"] {
            assert!(!cache.prepare(&game(name), &spec).unwrap().cache_hit);
        }
        assert_eq!(cache.stats().instances, 2, "capacity holds");
        // Replaying the set stays within capacity and still serves hits
        // for whatever random replacement left resident (evicted keys
        // re-program and may in turn evict — between 1 and 2 of the 3
        // replays can hit, never 0 or 3).
        let hits = ["battle_of_the_sexes", "prisoners_dilemma", "stag_hunt"]
            .iter()
            .filter(|name| cache.prepare(&game(name), &spec).unwrap().cache_hit)
            .count();
        assert!((1..=2).contains(&hits), "hits = {hits}");
        assert_eq!(cache.stats().instances, 2);
    }
}
