//! Incremental wire framing for the nonblocking server: byte chunks in,
//! protocol lines out, plus the bounded per-connection write queue.
//!
//! Both halves are deliberately socket-free so the overload behaviour
//! is unit-testable without a kernel in the loop:
//!
//! * [`LineFramer`] accumulates whatever `read` returned and yields
//!   complete `\n`-terminated lines. A line that exceeds the limit is
//!   reported once as [`FramedLine::Oversized`] and then *discarded
//!   through its terminating newline*, so one abusive request costs the
//!   connection exactly one error response — not the connection itself
//!   and not unbounded memory.
//! * [`WriteQueue`] holds serialized responses the kernel would not
//!   take yet; the server pairs its byte count with the soft/hard
//!   limits in `ServiceConfig` ([`overflow_verdict`]) to decide when
//!   to stop reading a connection and when to drop it.

use std::collections::VecDeque;
use std::io::{self, Write};

/// One framing product out of [`LineFramer::next_line`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FramedLine {
    /// A complete line, newline stripped (lossy UTF-8: the protocol
    /// parser turns garbage bytes into a protocol error response).
    Line(String),
    /// A line that exceeded the length limit. Emitted exactly once per
    /// offending line; the rest of the line is discarded silently.
    Oversized,
}

/// Incremental `\n`-splitter with a length cap and discard-resync.
#[derive(Debug)]
pub struct LineFramer {
    buf: Vec<u8>,
    /// Bytes of `buf` already scanned for `\n` (no O(n²) rescans).
    scanned: usize,
    /// Inside an oversized line, dropping bytes until its newline.
    discarding: bool,
    limit: usize,
}

impl LineFramer {
    /// A framer that flags lines longer than `limit` bytes.
    pub fn new(limit: usize) -> Self {
        Self {
            buf: Vec::new(),
            scanned: 0,
            discarding: false,
            limit,
        }
    }

    /// Appends bytes from the socket.
    pub fn extend(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes currently buffered (bounded by `limit` + one read chunk).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    fn find_newline(&self) -> Option<usize> {
        self.buf[self.scanned..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|p| p + self.scanned)
    }

    /// Pops the next complete line, if one is buffered.
    pub fn next_line(&mut self) -> Option<FramedLine> {
        if self.discarding {
            match self.find_newline() {
                Some(pos) => {
                    self.buf.drain(..=pos);
                    self.scanned = 0;
                    self.discarding = false;
                }
                None => {
                    // Still inside the oversized line: drop it all.
                    self.buf.clear();
                    self.scanned = 0;
                    return None;
                }
            }
        }
        match self.find_newline() {
            Some(pos) if pos > self.limit => {
                self.buf.drain(..=pos);
                self.scanned = 0;
                Some(FramedLine::Oversized)
            }
            Some(pos) => {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                self.scanned = 0;
                Some(FramedLine::Line(
                    String::from_utf8_lossy(&line[..line.len() - 1]).into_owned(),
                ))
            }
            None if self.buf.len() > self.limit => {
                // No newline yet and already past the cap: flag it
                // and discard until the newline eventually arrives.
                self.discarding = true;
                self.buf.clear();
                self.scanned = 0;
                Some(FramedLine::Oversized)
            }
            None => {
                self.scanned = self.buf.len();
                None
            }
        }
    }
}

/// FIFO of serialized response buffers awaiting a writable socket.
#[derive(Debug, Default)]
pub struct WriteQueue {
    bufs: VecDeque<Vec<u8>>,
    /// Bytes of the front buffer already written.
    front_pos: usize,
    bytes: usize,
}

impl WriteQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues one serialized response.
    pub fn push(&mut self, buf: Vec<u8>) {
        if buf.is_empty() {
            return;
        }
        self.bytes += buf.len();
        self.bufs.push_back(buf);
    }

    /// Bytes queued and not yet accepted by the kernel.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Whether everything queued has been written.
    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// Writes as much as the sink takes, returning the bytes moved.
    /// `WouldBlock` is a normal partial-progress outcome (`Ok`), not an
    /// error; `Interrupted` is retried internally.
    ///
    /// # Errors
    ///
    /// Any other I/O error — the connection is torn.
    pub fn write_to<W: Write>(&mut self, sink: &mut W) -> io::Result<usize> {
        let mut total = 0;
        while let Some(front) = self.bufs.front() {
            match sink.write(&front[self.front_pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.front_pos += n;
                    self.bytes -= n;
                    total += n;
                    if self.front_pos == front.len() {
                        self.bufs.pop_front();
                        self.front_pos = 0;
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(total)
    }
}

/// What a connection's write-queue depth demands, given the configured
/// soft and hard limits (see `ServiceConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueVerdict {
    /// Under the soft limit: keep reading requests.
    Ok,
    /// Over the soft limit: stop reading this connection (backpressure)
    /// until the queue drains below half the soft limit.
    Pause,
    /// Over the hard cap: the client consumes responses slower than it
    /// pipelines requests faster than memory allows — drop it.
    Drop,
}

/// The backpressure decision for a queue of `bytes` bytes.
pub fn overflow_verdict(bytes: usize, soft_limit: usize, hard_limit: usize) -> QueueVerdict {
    if bytes > hard_limit {
        QueueVerdict::Drop
    } else if bytes > soft_limit {
        QueueVerdict::Pause
    } else {
        QueueVerdict::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(framer: &mut LineFramer) -> Vec<FramedLine> {
        std::iter::from_fn(|| framer.next_line()).collect()
    }

    #[test]
    fn splits_lines_across_arbitrary_chunk_boundaries() {
        let mut framer = LineFramer::new(1024);
        for chunk in [&b"{\"op\":\"pi"[..], b"ng\"}\n{\"op\":", b"\"stats\"}\n"] {
            framer.extend(chunk);
        }
        assert_eq!(
            lines(&mut framer),
            vec![
                FramedLine::Line("{\"op\":\"ping\"}".into()),
                FramedLine::Line("{\"op\":\"stats\"}".into()),
            ]
        );
        assert_eq!(framer.buffered(), 0);
    }

    #[test]
    fn one_byte_at_a_time_still_frames() {
        let mut framer = LineFramer::new(64);
        let mut seen = Vec::new();
        for b in b"ab\ncd\n" {
            framer.extend(&[*b]);
            seen.extend(lines(&mut framer));
        }
        assert_eq!(
            seen,
            vec![FramedLine::Line("ab".into()), FramedLine::Line("cd".into())]
        );
    }

    #[test]
    fn oversized_line_is_flagged_once_and_resyncs_on_its_newline() {
        let mut framer = LineFramer::new(8);
        // 20 bytes, no newline yet: flagged once, memory released.
        framer.extend(&[b'x'; 20]);
        assert_eq!(framer.next_line(), Some(FramedLine::Oversized));
        assert_eq!(framer.next_line(), None);
        assert_eq!(framer.buffered(), 0, "discarded, not buffered");
        // More of the same line: still discarding, still silent.
        framer.extend(&[b'x'; 20]);
        assert_eq!(framer.next_line(), None);
        // The newline ends the discard; the next line parses normally.
        framer.extend(b"tail\nok\n");
        assert_eq!(framer.next_line(), Some(FramedLine::Line("ok".into())));
        assert_eq!(framer.next_line(), None);
    }

    #[test]
    fn oversized_line_arriving_whole_is_flagged_and_skipped() {
        let mut framer = LineFramer::new(4);
        framer.extend(b"toolongline\nok\n");
        assert_eq!(framer.next_line(), Some(FramedLine::Oversized));
        assert_eq!(framer.next_line(), Some(FramedLine::Line("ok".into())));
        assert_eq!(framer.next_line(), None);
    }

    #[test]
    fn non_utf8_bytes_survive_lossily() {
        let mut framer = LineFramer::new(64);
        framer.extend(&[0xff, 0xfe, b'\n']);
        match framer.next_line() {
            Some(FramedLine::Line(s)) => assert!(!s.is_empty()),
            other => panic!("expected a lossy line, got {other:?}"),
        }
    }

    struct Throttle {
        taken: Vec<u8>,
        accept: usize,
    }

    impl Write for Throttle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.accept == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            let n = buf.len().min(self.accept);
            self.accept -= n;
            self.taken.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_queue_tracks_partial_writes_exactly() {
        let mut wq = WriteQueue::new();
        wq.push(b"hello\n".to_vec());
        wq.push(b"world\n".to_vec());
        assert_eq!(wq.bytes(), 12);

        let mut sink = Throttle {
            taken: Vec::new(),
            accept: 8, // splits the second buffer mid-way
        };
        assert_eq!(wq.write_to(&mut sink).unwrap(), 8);
        assert_eq!(wq.bytes(), 4);
        assert!(!wq.is_empty());
        assert_eq!(sink.taken, b"hello\nwo");

        sink.accept = usize::MAX;
        assert_eq!(wq.write_to(&mut sink).unwrap(), 4);
        assert!(wq.is_empty());
        assert_eq!(wq.bytes(), 0);
        assert_eq!(sink.taken, b"hello\nworld\n");
    }

    #[test]
    fn overflow_verdicts_partition_the_depth_axis() {
        assert_eq!(overflow_verdict(0, 10, 100), QueueVerdict::Ok);
        assert_eq!(overflow_verdict(10, 10, 100), QueueVerdict::Ok);
        assert_eq!(overflow_verdict(11, 10, 100), QueueVerdict::Pause);
        assert_eq!(overflow_verdict(100, 10, 100), QueueVerdict::Pause);
        assert_eq!(overflow_verdict(101, 10, 100), QueueVerdict::Drop);
    }
}
