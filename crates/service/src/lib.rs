//! # cnash-service: the persistent solver daemon
//!
//! Everything below this crate solves *one* batch and exits; this
//! crate is the long-running layer that serves solve traffic
//! continuously — the ROADMAP's service axis:
//!
//! * [`protocol`] — JSON-lines over TCP: `ping` / `solve` / `stats` /
//!   `metrics` / `shutdown` requests, one JSON object per line,
//!   responses streamed back **in request order** per connection;
//! * [`cache`] — the instance cache: programmed bi-crossbars and
//!   S-QUBOs memoized by the game's canonical payoff fingerprint
//!   (`cnash_game::canonical`) plus the programming-relevant config
//!   fingerprints, with single-flight builds and cached ground truth —
//!   repeated and parameter-swept requests skip the `O(n·m)`
//!   mapping/programming path entirely;
//! * [`sched`] — a sharded work-stealing scheduler on
//!   `cnash-runtime`'s pool primitives: round-robin submission onto
//!   per-shard queues, idle shards steal, cancellation broadcasts on
//!   shutdown;
//! * [`reactor`] — the hand-rolled nonblocking readiness layer
//!   (epoll on Linux, poll(2) elsewhere) plus a cross-thread waker;
//! * [`framing`] — incremental line framing and the bounded
//!   per-connection write queue with backpressure verdicts;
//! * [`store`] — the persistent pre-solve store: an append-only,
//!   checksummed record log of deterministic solve payloads keyed by
//!   canonical-game × solver/hardware fingerprints, rebuilt by one
//!   scan on open (corruption is skipped and compacted, never a
//!   crash). With `serviced --store <path>` the daemon warm-boots from
//!   it and answers repeat solves in O(lookup) with a `"cache":"disk"`
//!   provenance flag; the `presolve` sweeper fills it offline;
//! * [`server`] — the single-threaded reactor event loop driving
//!   every connection's state machine (accept, frame, schedule,
//!   reorder, flush, drain) on top of the layers above.
//!
//! The determinism contract extends the runtime's: for a fixed request
//! sequence on one connection, every response payload except the
//! wall-clock fields is bit-identical whatever the shard count, batch
//! thread count or steal interleaving ([`protocol::strip_timing`]
//! removes the wall-clock fields; CI's `service-smoke` job diffs the
//! stripped stream against a golden file).
//!
//! ## Quickstart
//!
//! ```
//! use cnash_service::{serve, ServiceConfig};
//! use std::io::{BufRead, BufReader, Write};
//! use std::net::TcpStream;
//!
//! let handle = serve(ServiceConfig::default()).unwrap();
//! let mut conn = TcpStream::connect(handle.addr()).unwrap();
//! conn.write_all(
//!     b"{\"op\":\"solve\",\"id\":1,\"job\":{\
//!        \"game\":{\"builtin\":\"matching_pennies\"},\
//!        \"solver\":{\"type\":\"cnash\",\"preset\":\"ideal\",\
//!                    \"intervals\":12,\"iterations\":2000},\
//!        \"runs\":2}}\n",
//! )
//! .unwrap();
//! let mut line = String::new();
//! BufReader::new(conn.try_clone().unwrap()).read_line(&mut line).unwrap();
//! assert!(line.contains("\"ok\":true"));
//! handle.stop();
//! ```

pub mod cache;
pub mod framing;
pub mod protocol;
pub mod reactor;
pub mod sched;
pub mod server;
pub mod store;

pub use cache::{CacheStats, InstanceCache, PreparedJob};
pub use protocol::{strip_timing, Request, TruthPolicy};
pub use sched::Scheduler;
pub use server::{execute_solve, serve, ServiceConfig, ServiceHandle, ShutdownSignal};
pub use store::{solve_key, FsckReport, OpenReport, SolutionStore, StoreStats};
