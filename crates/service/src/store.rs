//! The persistent pre-solve store: solve responses that survive
//! restarts.
//!
//! The in-memory [`InstanceCache`](crate::cache::InstanceCache) wins
//! ~170× on repeat requests but evaporates with the process. This
//! module adds the durable layer underneath it: an **append-only
//! record log** on disk holding the deterministic payload of every
//! completed solve, keyed by a 64-bit fingerprint of everything that
//! determines that payload — the game's *canonical* payoff fingerprint
//! (spec-form independent, see `cnash_game::canonical`) combined with
//! the solver/hardware spec, run budget, seeding, early-stop rule,
//! display label and ground-truth policy. A repeat `solve` request on
//! a warm store is answered in O(lookup) without running a single
//! anneal iteration, marked with a `"cache":"disk"` provenance field,
//! and its payload is byte-identical to the cold-solve response modulo
//! that field and the wall-clock fields (CI's `store-smoke` job gates
//! exactly this, across a daemon restart).
//!
//! ## On-disk format
//!
//! Hand-rolled, dependency-free, and deliberately boring: an 8-byte
//! magic (`CNSHSTR1`) followed by length-prefixed records
//!
//! ```text
//! | key: u64 LE | payload_len: u32 LE | checksum: u64 LE | payload |
//! ```
//!
//! where `payload` is the compact-JSON deterministic response (the
//! solve response minus `id`, `wall_ms`, `program_ms`) and `checksum`
//! is [`record_checksum`] over the key and payload. The log is only
//! ever appended to; there is no in-place mutation to corrupt.
//!
//! ## Crash safety: open is a scan, corruption is skipped
//!
//! [`SolutionStore::open`] rebuilds the in-memory index with a single
//! forward scan. A **truncated tail** (torn final write — the crash
//! case append-only logs exist for) drops the partial record; a record
//! whose **checksum does not match** is skipped; a frame that points
//! past the end of the file is treated as a truncated tail. None of
//! these are errors — surviving records are served, and the log is
//! **compacted** (rewritten atomically via a temp file + rename) so
//! the damage does not linger. Only a missing/foreign magic or a real
//! I/O failure fails the open. The recovery properties are
//! property-tested in `tests/store_proptests.rs`.
//!
//! Payloads live in the index (`Arc<str>`), so after the open scan the
//! whole store serves from memory — this *is* the daemon's warm boot.
//!
//! [`fsck`](SolutionStore::fsck) is the same walk without the
//! recovery: a read-only checksum + framing + index-consistency report
//! for CI (`store fsck` binary, nightly job).

use crate::protocol::TruthPolicy;
use cnash_game::canonical::Hasher64;
use cnash_game::BimatrixGame;
use cnash_runtime::spec::JobSpec;
use cnash_runtime::{EarlyStop, Json};
use cnash_telemetry::{Counter, Gauge, Registry};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// File magic: 8 bytes at offset 0 of every store log.
pub const STORE_MAGIC: &[u8; 8] = b"CNSHSTR1";

/// Fixed bytes per record before the payload: key (8) + len (4) +
/// checksum (8).
pub const RECORD_HEADER_BYTES: usize = 20;

/// Checksum of one record: [`Hasher64`] over a domain tag, the key and
/// the payload bytes. Catches key corruption as well as payload
/// corruption (the key is not covered by the payload).
pub fn record_checksum(key: u64, payload: &str) -> u64 {
    let mut h = Hasher64::new();
    h.write_str("store-record")
        .write_u64(key)
        .write_str(payload);
    h.finish()
}

/// The store key of a solve request: a fingerprint of everything that
/// determines the *deterministic* response payload.
///
/// * the game's canonical payoff fingerprint (spec-form independent —
///   a builtin and its explicit-matrix capture share the key),
/// * the solver spec's canonical JSON (config preset, iteration
///   budget, hardware seed, D-Wave model/reads — the
///   solver/hardware fingerprint),
/// * `runs`, `base_seed` and the early-stop rule (they shape
///   `executed_runs`/`stopped_early` and the seed-ordered fold),
/// * the *resolved* display label (the default label embeds the
///   spec-form-dependent game name, which appears in the payload),
/// * the ground-truth policy (coverage statistics differ).
///
/// `batch_threads` is deliberately absent: the runtime's determinism
/// contract makes the payload thread-count independent.
pub fn solve_key(game: &BimatrixGame, job: &JobSpec, truth: TruthPolicy) -> u64 {
    let label = job
        .label
        .clone()
        .unwrap_or_else(|| format!("{} on {}", job.solver.label(), game.name()));
    let early = match job.early_stop {
        None => "none".to_string(),
        Some(EarlyStop::Successes(n)) => format!("successes:{n}"),
        Some(EarlyStop::Coverage(n)) => format!("coverage:{n}"),
    };
    let mut h = Hasher64::new();
    h.write_str("solve-record-v1")
        .write_u64(game.canonical_fingerprint())
        .write_str(&job.solver.to_json().compact())
        .write_u64(job.runs as u64)
        .write_u64(job.base_seed)
        .write_str(&early)
        .write_str(&label)
        .write_str(match truth {
            TruthPolicy::Enumerate => "enumerate",
            TruthPolicy::Skip => "skip",
        });
    h.finish()
}

/// What [`SolutionStore::open`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenReport {
    /// Records serving after the scan.
    pub records: u64,
    /// Records skipped for a bad checksum.
    pub corrupt_skipped: u64,
    /// Bytes dropped from a truncated (or frame-overrunning) tail.
    pub truncated_tail_bytes: u64,
    /// Whether the log was rewritten to shed skipped bytes.
    pub compacted: bool,
}

/// Read-only integrity report of a store log ([`SolutionStore::fsck`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsckReport {
    /// Checksum-valid records in the log.
    pub records: u64,
    /// Distinct keys among the valid records.
    pub distinct_keys: u64,
    /// Keys that appear more than once (append-time dedup should make
    /// this 0; last record wins on open).
    pub duplicate_keys: u64,
    /// Records whose checksum does not match their bytes.
    pub corrupt_records: u64,
    /// Bytes in a truncated or frame-overrunning tail.
    pub truncated_tail_bytes: u64,
    /// Total log size in bytes, magic included.
    pub log_bytes: u64,
}

impl FsckReport {
    /// A clean log: every byte accounted for by checksum-valid,
    /// uniquely-keyed records.
    pub fn ok(&self) -> bool {
        self.corrupt_records == 0 && self.truncated_tail_bytes == 0 && self.duplicate_keys == 0
    }

    /// Serialises the report (exact integers throughout).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("records", Json::uint(self.records)),
            ("distinct_keys", Json::uint(self.distinct_keys)),
            ("duplicate_keys", Json::uint(self.duplicate_keys)),
            ("corrupt_records", Json::uint(self.corrupt_records)),
            (
                "truncated_tail_bytes",
                Json::uint(self.truncated_tail_bytes),
            ),
            ("log_bytes", Json::uint(self.log_bytes)),
            ("ok", Json::Bool(self.ok())),
        ])
    }
}

/// Counter snapshot of a [`SolutionStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Records appended this process lifetime.
    pub appends: u64,
    /// Records currently resident (disk and memory — they are the
    /// same set).
    pub records: u64,
}

impl StoreStats {
    /// Serialises the snapshot (exact integers, like
    /// [`CacheStats`](crate::cache::CacheStats)).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("hits", Json::uint(self.hits)),
            ("misses", Json::uint(self.misses)),
            ("appends", Json::uint(self.appends)),
            ("records", Json::uint(self.records)),
        ])
    }
}

struct Inner {
    file: File,
    index: HashMap<u64, Arc<str>>,
}

/// The disk-backed solution store: an append-only record log plus the
/// in-memory index rebuilt by one scan on open. Shared (`Arc`) by every
/// scheduler shard; all mutation is behind one mutex (appends are rare
/// — every append is a solve that just took orders of magnitude
/// longer).
pub struct SolutionStore {
    path: PathBuf,
    inner: Mutex<Inner>,
    open_report: OpenReport,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    appends: Arc<Counter>,
    records_gauge: Arc<Gauge>,
}

impl std::fmt::Debug for SolutionStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolutionStore")
            .field("path", &self.path)
            .field("records", &self.len())
            .finish()
    }
}

/// One raw scan over a store log's bytes: the shared walk under both
/// `open` (which recovers) and `fsck` (which only reports).
struct Scan {
    /// Surviving records in log order (last occurrence of a key wins,
    /// earlier duplicates are dropped during replay into the map).
    records: Vec<(u64, Arc<str>)>,
    corrupt_skipped: u64,
    truncated_tail_bytes: u64,
    duplicate_keys: u64,
}

fn scan_log(bytes: &[u8]) -> io::Result<Scan> {
    if bytes.len() < STORE_MAGIC.len() || &bytes[..STORE_MAGIC.len()] != STORE_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a cnash solution store (bad magic)",
        ));
    }
    let mut scan = Scan {
        records: Vec::new(),
        corrupt_skipped: 0,
        truncated_tail_bytes: 0,
        duplicate_keys: 0,
    };
    let mut seen: HashMap<u64, usize> = HashMap::new();
    let mut pos = STORE_MAGIC.len();
    while pos < bytes.len() {
        if bytes.len() - pos < RECORD_HEADER_BYTES {
            scan.truncated_tail_bytes = (bytes.len() - pos) as u64;
            break;
        }
        let key = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8 bytes"));
        let len =
            u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().expect("4 bytes")) as usize;
        let sum = u64::from_le_bytes(bytes[pos + 12..pos + 20].try_into().expect("8 bytes"));
        let body = pos + RECORD_HEADER_BYTES;
        if len > bytes.len() - body {
            // A frame pointing past EOF: either a torn tail write or a
            // corrupted length. Either way nothing after this offset
            // can be framed — treat the rest as a truncated tail.
            scan.truncated_tail_bytes = (bytes.len() - pos) as u64;
            break;
        }
        pos = body + len;
        let payload = &bytes[body..pos];
        let valid = std::str::from_utf8(payload)
            .ok()
            .filter(|p| record_checksum(key, p) == sum);
        match valid {
            Some(payload) => {
                if let Some(&prior) = seen.get(&key) {
                    // Last record wins; drop the stale occurrence but
                    // keep log order for the survivors.
                    scan.duplicate_keys += 1;
                    scan.records[prior] = (key, Arc::from(payload));
                } else {
                    seen.insert(key, scan.records.len());
                    scan.records.push((key, Arc::from(payload)));
                }
            }
            None => scan.corrupt_skipped += 1,
        }
    }
    Ok(scan)
}

fn write_record(out: &mut impl Write, key: u64, payload: &str) -> io::Result<()> {
    out.write_all(&key.to_le_bytes())?;
    out.write_all(&(payload.len() as u32).to_le_bytes())?;
    out.write_all(&record_checksum(key, payload).to_le_bytes())?;
    out.write_all(payload.as_bytes())
}

impl SolutionStore {
    /// Opens (or creates) a store log, rebuilding the index with one
    /// scan. Truncated tails and checksum-invalid records are skipped
    /// and the log is compacted — corruption is never a crash.
    ///
    /// # Errors
    ///
    /// Fails on real I/O errors, or when the file exists but does not
    /// start with the store magic (it is not a store log — refusing to
    /// "recover" it protects whatever it actually is).
    pub fn open(path: impl AsRef<Path>) -> io::Result<SolutionStore> {
        Self::open_instrumented(path, None)
    }

    /// [`SolutionStore::open`] with the store's instruments registered
    /// in `registry` under stable names: `store_hits`, `store_misses`,
    /// `store_appends` (counters), `store_records` (gauge) and
    /// `store_open_scan_ns` (histogram — one observation per open), so
    /// metrics snapshots see the store without asking it.
    pub fn open_with_registry(
        path: impl AsRef<Path>,
        registry: &Registry,
    ) -> io::Result<SolutionStore> {
        Self::open_instrumented(path, Some(registry))
    }

    fn open_instrumented(
        path: impl AsRef<Path>,
        registry: Option<&Registry>,
    ) -> io::Result<SolutionStore> {
        let path = path.as_ref().to_path_buf();
        let started = Instant::now();
        let (scan, compact) = match std::fs::read(&path) {
            Ok(bytes) if bytes.is_empty() => {
                // An empty file (fresh `touch`, or a crash before the
                // magic landed): claim it as a new store.
                std::fs::write(&path, STORE_MAGIC)?;
                (
                    Scan {
                        records: Vec::new(),
                        corrupt_skipped: 0,
                        truncated_tail_bytes: 0,
                        duplicate_keys: 0,
                    },
                    false,
                )
            }
            Ok(bytes) => {
                let scan = scan_log(&bytes)?;
                let dirty = scan.corrupt_skipped > 0
                    || scan.truncated_tail_bytes > 0
                    || scan.duplicate_keys > 0;
                (scan, dirty)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                std::fs::write(&path, STORE_MAGIC)?;
                (
                    Scan {
                        records: Vec::new(),
                        corrupt_skipped: 0,
                        truncated_tail_bytes: 0,
                        duplicate_keys: 0,
                    },
                    false,
                )
            }
            Err(e) => return Err(e),
        };
        if compact {
            // Shed the skipped bytes atomically: full rewrite beside
            // the log, then rename over it. A crash mid-compaction
            // leaves either the old log (skipped again next open) or
            // the new one — never a halfway state.
            let tmp = path.with_extension("compact-tmp");
            let mut out = io::BufWriter::new(File::create(&tmp)?);
            out.write_all(STORE_MAGIC)?;
            for (key, payload) in &scan.records {
                write_record(&mut out, *key, payload)?;
            }
            out.into_inner().map_err(|e| e.into_error())?.sync_all()?;
            std::fs::rename(&tmp, &path)?;
        }
        let file = OpenOptions::new().append(true).open(&path)?;
        let index: HashMap<u64, Arc<str>> = scan.records.iter().cloned().collect();
        let open_report = OpenReport {
            records: index.len() as u64,
            corrupt_skipped: scan.corrupt_skipped,
            truncated_tail_bytes: scan.truncated_tail_bytes,
            compacted: compact,
        };
        let (hits, misses, appends, records_gauge) = match registry {
            Some(r) => {
                r.histogram("store_open_scan_ns")
                    .record(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                (
                    r.counter("store_hits"),
                    r.counter("store_misses"),
                    r.counter("store_appends"),
                    r.gauge("store_records"),
                )
            }
            None => (
                Arc::new(Counter::new()),
                Arc::new(Counter::new()),
                Arc::new(Counter::new()),
                Arc::new(Gauge::new()),
            ),
        };
        records_gauge.set(index.len() as i64);
        Ok(SolutionStore {
            path,
            inner: Mutex::new(Inner { file, index }),
            open_report,
            hits,
            misses,
            appends,
            records_gauge,
        })
    }

    /// The log path this store serves from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// What the open scan found and did.
    pub fn open_report(&self) -> OpenReport {
        self.open_report
    }

    /// Resident record count.
    pub fn len(&self) -> u64 {
        self.inner.lock().expect("store poisoned").index.len() as u64
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `key` is resident. Unlike [`SolutionStore::lookup`]
    /// this moves no counters — it is the sweeper's resumability probe,
    /// not a serve.
    pub fn contains(&self, key: u64) -> bool {
        self.inner
            .lock()
            .expect("store poisoned")
            .index
            .contains_key(&key)
    }

    /// Looks `key` up, counting a hit or a miss. O(lookup): the
    /// payload is served from the in-memory index built at open.
    pub fn lookup(&self, key: u64) -> Option<Arc<str>> {
        let found = self
            .inner
            .lock()
            .expect("store poisoned")
            .index
            .get(&key)
            .cloned();
        if found.is_some() {
            self.hits.inc();
        } else {
            self.misses.inc();
        }
        found
    }

    /// Appends one record, unless `key` is already resident (appends
    /// are idempotent — the store is a set, and re-solving a resident
    /// key by definition produced the same payload). Returns whether a
    /// record was written.
    ///
    /// Durability: the write is flushed to the OS, not fsynced — a
    /// power loss may cost the tail record, which the next open's
    /// truncated-tail recovery absorbs.
    ///
    /// # Errors
    ///
    /// Propagates write errors (the record is then *not* indexed, so
    /// memory and disk stay consistent).
    pub fn append(&self, key: u64, payload: &str) -> io::Result<bool> {
        let mut inner = self.inner.lock().expect("store poisoned");
        if inner.index.contains_key(&key) {
            return Ok(false);
        }
        write_record(&mut inner.file, key, payload)?;
        inner.file.flush()?;
        inner.index.insert(key, Arc::from(payload));
        self.appends.inc();
        self.records_gauge.set(inner.index.len() as i64);
        Ok(true)
    }

    /// A snapshot of the hit/miss/append counters and record count.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            appends: self.appends.get(),
            records: self.len(),
        }
    }

    /// Read-only integrity walk of a store log: re-frames and
    /// re-checksums every record and cross-checks the rebuilt index
    /// against the log (framing covers every byte, keys are unique).
    /// Never mutates the file — safe to run against a store another
    /// process is reading.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a missing/foreign magic.
    pub fn fsck(path: impl AsRef<Path>) -> io::Result<FsckReport> {
        let bytes = std::fs::read(path)?;
        let scan = scan_log(&bytes)?;
        let distinct: HashMap<u64, ()> = scan.records.iter().map(|(k, _)| (*k, ())).collect();
        Ok(FsckReport {
            records: scan.records.len() as u64 + scan.duplicate_keys,
            distinct_keys: distinct.len() as u64,
            duplicate_keys: scan.duplicate_keys,
            corrupt_records: scan.corrupt_skipped,
            truncated_tail_bytes: scan.truncated_tail_bytes,
            log_bytes: bytes.len() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "cnash_store_test_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn append_reopen_lookup_round_trips() {
        let path = temp_path("roundtrip");
        let _cleanup = Cleanup(path.clone());
        let store = SolutionStore::open(&path).unwrap();
        assert!(store.is_empty());
        assert!(store.append(7, r#"{"ok":true,"x":1}"#).unwrap());
        assert!(store.append(9, r#"{"ok":true,"x":2}"#).unwrap());
        // Idempotent: a resident key is never re-written.
        assert!(!store.append(7, r#"{"ok":true,"x":1}"#).unwrap());
        assert_eq!(store.stats().appends, 2);
        drop(store);

        let store = SolutionStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert!(!store.open_report().compacted);
        assert_eq!(&*store.lookup(7).unwrap(), r#"{"ok":true,"x":1}"#);
        assert_eq!(&*store.lookup(9).unwrap(), r#"{"ok":true,"x":2}"#);
        assert!(store.lookup(8).is_none());
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.records), (2, 1, 2));
    }

    #[test]
    fn truncated_tail_is_dropped_and_compacted() {
        let path = temp_path("trunc");
        let _cleanup = Cleanup(path.clone());
        let store = SolutionStore::open(&path).unwrap();
        store.append(1, r#"{"a":1}"#).unwrap();
        store.append(2, r#"{"b":2}"#).unwrap();
        drop(store);
        // Tear the final record's last 3 bytes off.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let report = SolutionStore::fsck(&path).unwrap();
        assert_eq!(report.records, 1);
        assert!(report.truncated_tail_bytes > 0);
        assert!(!report.ok());

        let store = SolutionStore::open(&path).unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.open_report().compacted);
        assert_eq!(&*store.lookup(1).unwrap(), r#"{"a":1}"#);
        assert!(store.lookup(2).is_none());
        drop(store);
        // The compaction stuck: a further open is clean.
        assert!(SolutionStore::fsck(&path).unwrap().ok());
    }

    #[test]
    fn flipped_checksum_byte_skips_only_that_record() {
        let path = temp_path("flip");
        let _cleanup = Cleanup(path.clone());
        let store = SolutionStore::open(&path).unwrap();
        store.append(1, r#"{"a":1}"#).unwrap();
        store.append(2, r#"{"b":2}"#).unwrap();
        store.append(3, r#"{"c":3}"#).unwrap();
        drop(store);
        // Flip a byte of record 2's checksum field: records are
        // magic + [key 8 | len 4 | sum 8 | payload], payloads 7 bytes.
        let mut bytes = std::fs::read(&path).unwrap();
        let record2 = STORE_MAGIC.len() + RECORD_HEADER_BYTES + 7;
        bytes[record2 + 12] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let report = SolutionStore::fsck(&path).unwrap();
        assert_eq!(report.corrupt_records, 1);
        assert_eq!(report.records, 2);

        let store = SolutionStore::open(&path).unwrap();
        assert!(store.open_report().compacted);
        assert_eq!(store.open_report().corrupt_skipped, 1);
        assert_eq!(&*store.lookup(1).unwrap(), r#"{"a":1}"#);
        assert!(store.lookup(2).is_none());
        assert_eq!(&*store.lookup(3).unwrap(), r#"{"c":3}"#);
        // Appends keep working after a recovery open.
        store.append(2, r#"{"b":2}"#).unwrap();
        drop(store);
        assert!(SolutionStore::fsck(&path).unwrap().ok());
    }

    #[test]
    fn foreign_files_are_refused_not_recovered() {
        let path = temp_path("foreign");
        let _cleanup = Cleanup(path.clone());
        std::fs::write(&path, b"definitely not a store log").unwrap();
        let err = SolutionStore::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(SolutionStore::fsck(&path).is_err());
    }

    #[test]
    fn registry_backed_instruments_are_visible_in_snapshots() {
        let path = temp_path("registry");
        let _cleanup = Cleanup(path.clone());
        let registry = Registry::new();
        let store = SolutionStore::open_with_registry(&path, &registry).unwrap();
        store.append(5, r#"{"x":5}"#).unwrap();
        assert!(store.lookup(5).is_some());
        assert!(store.lookup(6).is_none());
        let snap = registry.snapshot();
        assert_eq!(snap.counters["store_hits"], 1);
        assert_eq!(snap.counters["store_misses"], 1);
        assert_eq!(snap.counters["store_appends"], 1);
        assert_eq!(snap.gauges["store_records"], 1);
        assert_eq!(snap.histograms["store_open_scan_ns"].count, 1);
    }

    #[test]
    fn solve_keys_separate_what_the_payload_separates() {
        use cnash_runtime::spec::{ConfigSpec, GameSpec, SolverSpec};
        let job = |game: &GameSpec, runs: usize, seed: u64, label: Option<&str>| JobSpec {
            game: game.clone(),
            solver: SolverSpec::CNash {
                config: ConfigSpec::paper(12).with_iterations(800),
                hardware_seed: 1,
            },
            runs,
            base_seed: seed,
            early_stop: None,
            label: label.map(str::to_string),
        };
        let builtin = GameSpec::Builtin("battle_of_the_sexes".into());
        let game = builtin.build().unwrap();
        let base = solve_key(&game, &job(&builtin, 4, 0, None), TruthPolicy::Enumerate);
        // Identical job: identical key.
        assert_eq!(
            base,
            solve_key(&game, &job(&builtin, 4, 0, None), TruthPolicy::Enumerate)
        );
        // Every payload-relevant knob moves the key.
        assert_ne!(
            base,
            solve_key(&game, &job(&builtin, 5, 0, None), TruthPolicy::Enumerate)
        );
        assert_ne!(
            base,
            solve_key(&game, &job(&builtin, 4, 1, None), TruthPolicy::Enumerate)
        );
        assert_ne!(
            base,
            solve_key(
                &game,
                &job(&builtin, 4, 0, Some("bos")),
                TruthPolicy::Enumerate
            )
        );
        assert_ne!(
            base,
            solve_key(&game, &job(&builtin, 4, 0, None), TruthPolicy::Skip)
        );
        // An explicit-matrix capture keeps the game's name: the builtin
        // and captured forms build canonically-equal games with equal
        // default labels, so they share one record — spec-form
        // independence, like the instance cache.
        let explicit = GameSpec::from_game(&game);
        let explicit_game = explicit.build().unwrap();
        assert_eq!(
            game.canonical_fingerprint(),
            explicit_game.canonical_fingerprint()
        );
        assert_eq!(
            base,
            solve_key(
                &explicit_game,
                &job(&explicit, 4, 0, None),
                TruthPolicy::Enumerate
            )
        );
        // Renaming the same payoffs changes the default label, which
        // the payload embeds — the key must diverge...
        let GameSpec::Explicit {
            row_payoffs,
            col_payoffs,
            ..
        } = explicit
        else {
            unreachable!("from_game returns an explicit spec");
        };
        let renamed = GameSpec::Explicit {
            name: "renamed".into(),
            row_payoffs,
            col_payoffs,
        };
        let renamed_game = renamed.build().unwrap();
        assert_eq!(
            game.canonical_fingerprint(),
            renamed_game.canonical_fingerprint()
        );
        assert_ne!(
            base,
            solve_key(
                &renamed_game,
                &job(&renamed, 4, 0, None),
                TruthPolicy::Enumerate
            )
        );
        // ... while a pinned label makes them share a record again.
        assert_eq!(
            solve_key(
                &game,
                &job(&builtin, 4, 0, Some("pin")),
                TruthPolicy::Enumerate
            ),
            solve_key(
                &renamed_game,
                &job(&renamed, 4, 0, Some("pin")),
                TruthPolicy::Enumerate
            )
        );
    }
}
