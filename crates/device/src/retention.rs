//! FeFET retention and endurance models (extension).
//!
//! Non-volatile storage is central to the paper's pitch (Sec. 2.3), but a
//! deployed C-Nash accelerator must survive two ageing mechanisms:
//!
//! * **retention loss** — the remnant polarization depolarizes
//!   logarithmically over time, shrinking the memory window,
//! * **endurance degradation** — program/erase cycling causes wake-up
//!   (early widening) followed by fatigue (window collapse), the
//!   canonical HZO behaviour.
//!
//! Both reduce the low/high V_TH separation; the read fails once the
//! window falls below the sense margin. These models let the
//! fault-injection studies age a crossbar realistically.

/// Retention model: window scale after `time` seconds at temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetentionModel {
    /// Fractional polarization loss per decade of time (typ. 2–5 % for
    /// HZO FeFETs).
    pub loss_per_decade: f64,
    /// Reference time where loss starts counting (s).
    pub t0: f64,
}

impl Default for RetentionModel {
    fn default() -> Self {
        Self {
            loss_per_decade: 0.03,
            t0: 1.0,
        }
    }
}

impl RetentionModel {
    /// Remaining window fraction after `time` seconds (clamped ≥ 0).
    ///
    /// # Panics
    ///
    /// Panics if `time` is negative.
    pub fn window_fraction(&self, time: f64) -> f64 {
        assert!(time >= 0.0, "negative retention time");
        if time <= self.t0 {
            return 1.0;
        }
        (1.0 - self.loss_per_decade * (time / self.t0).log10()).max(0.0)
    }

    /// Time (s) until the window shrinks to `fraction` of nominal.
    pub fn time_to_fraction(&self, fraction: f64) -> f64 {
        if fraction >= 1.0 {
            return self.t0;
        }
        self.t0 * 10f64.powf((1.0 - fraction) / self.loss_per_decade)
    }
}

/// Endurance model: wake-up then fatigue over program/erase cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceModel {
    /// Cycles at which wake-up peaks (typ. 1e3–1e4).
    pub wakeup_cycles: f64,
    /// Peak window gain from wake-up (e.g. 1.1 = +10 %).
    pub wakeup_gain: f64,
    /// Cycles at which fatigue halves the window (typ. 1e9–1e11).
    pub fatigue_half_cycles: f64,
}

impl Default for EnduranceModel {
    fn default() -> Self {
        Self {
            wakeup_cycles: 1e4,
            wakeup_gain: 1.10,
            fatigue_half_cycles: 1e10,
        }
    }
}

impl EnduranceModel {
    /// Window scale after `cycles` program/erase cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is negative.
    pub fn window_fraction(&self, cycles: f64) -> f64 {
        assert!(cycles >= 0.0, "negative cycle count");
        // Wake-up: smooth rise to `wakeup_gain` around wakeup_cycles.
        let wake =
            1.0 + (self.wakeup_gain - 1.0) * (cycles / (cycles + self.wakeup_cycles)).min(1.0);
        // Fatigue: logistic collapse centred at fatigue_half_cycles.
        let fatigue = 1.0 / (1.0 + cycles / self.fatigue_half_cycles);
        wake * fatigue
    }

    /// `true` while the window exceeds the sense margin `min_fraction`.
    pub fn is_alive(&self, cycles: f64, min_fraction: f64) -> bool {
        self.window_fraction(cycles) >= min_fraction
    }
}

/// Combined ageing: retention after `time` on a device cycled `cycles`
/// times. The SA loop's *read* traffic does not wear the ferroelectric —
/// only writes do — so C-Nash's store-once/anneal-many usage sits in the
/// friendly corner of this model.
pub fn aged_window_fraction(
    retention: &RetentionModel,
    endurance: &EnduranceModel,
    time: f64,
    cycles: f64,
) -> f64 {
    retention.window_fraction(time) * endurance.window_fraction(cycles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_device_has_full_window() {
        let r = RetentionModel::default();
        assert_eq!(r.window_fraction(0.0), 1.0);
        assert_eq!(r.window_fraction(0.5), 1.0);
    }

    #[test]
    fn ten_year_retention_within_spec() {
        // 10 years ≈ 3.15e8 s ≈ 8.5 decades: ~26 % loss at 3 %/decade —
        // window still dominant, matching published HZO retention.
        let r = RetentionModel::default();
        let f = r.window_fraction(3.15e8);
        assert!(f > 0.7 && f < 0.8, "10-year window fraction {f}");
    }

    #[test]
    fn retention_is_monotone() {
        let r = RetentionModel::default();
        let mut last = 1.1;
        for exp in 0..12 {
            let f = r.window_fraction(10f64.powi(exp));
            assert!(f <= last);
            last = f;
        }
    }

    #[test]
    fn time_to_fraction_inverts_window() {
        let r = RetentionModel::default();
        let t = r.time_to_fraction(0.85);
        assert!((r.window_fraction(t) - 0.85).abs() < 1e-9);
    }

    #[test]
    fn wakeup_then_fatigue() {
        let e = EnduranceModel::default();
        let fresh = e.window_fraction(0.0);
        let woken = e.window_fraction(1e5);
        let dead = e.window_fraction(1e12);
        assert!(woken > fresh, "wake-up should widen the window");
        assert!(dead < 0.2, "fatigue should collapse the window");
    }

    #[test]
    fn alive_check() {
        let e = EnduranceModel::default();
        assert!(e.is_alive(1e6, 0.5));
        assert!(!e.is_alive(1e12, 0.5));
    }

    #[test]
    fn combined_ageing_multiplies() {
        let r = RetentionModel::default();
        let e = EnduranceModel::default();
        let f = aged_window_fraction(&r, &e, 1e6, 1e6);
        assert!((f - r.window_fraction(1e6) * e.window_fraction(1e6)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "negative retention time")]
    fn rejects_negative_time() {
        RetentionModel::default().window_fraction(-1.0);
    }
}
