//! Preisach hysteresis model of the ferroelectric layer.
//!
//! The Preisach model represents a ferroelectric as an ensemble of
//! elementary square-loop switches ("hysterons"), each with its own up- and
//! down-switching voltages. Sweeping the gate voltage flips the hysterons
//! whose thresholds are crossed; the mean hysteron state is the normalised
//! remnant polarization `P ∈ [−1, 1]`, which shifts the FeFET threshold
//! voltage linearly (Ni et al. \[27] use the same abstraction inside their
//! circuit-compatible compact model).
//!
//! C-Nash only needs the two saturated states (binary storage), but the
//! full minor-loop behaviour is implemented so partial programming and
//! disturb studies are possible.

use std::fmt;

/// One elementary Preisach switch.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Hysteron {
    /// Gate voltage above which the hysteron switches up (polarization +1).
    v_up: f64,
    /// Gate voltage below which the hysteron switches down (−1).
    v_down: f64,
    /// Current state, `+1.0` or `−1.0`.
    state: f64,
}

/// Parameters of the hysteron ensemble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreisachParams {
    /// Mean coercive voltage (V); hysterons switch up near `+vc` and down
    /// near `−vc`.
    pub coercive_voltage: f64,
    /// Spread of switching voltages across the ensemble (V).
    pub coercive_spread: f64,
    /// Number of hysterons (granularity of the polarization curve).
    pub hysteron_count: usize,
    /// Threshold-voltage shift at saturated polarization (V). The FeFET
    /// V_TH is `vth_mid − polarization × vth_window / 2`.
    pub vth_window: f64,
    /// Threshold voltage at zero polarization (V).
    pub vth_mid: f64,
}

impl Default for PreisachParams {
    /// Defaults produce the low-V_TH ≈ 0.4 V / high-V_TH ≈ 1.2 V binary
    /// window of Fig. 2b with ±4 V write pulses.
    fn default() -> Self {
        Self {
            coercive_voltage: 1.2,
            coercive_spread: 0.5,
            hysteron_count: 64,
            vth_window: 0.8,
            vth_mid: 0.8,
        }
    }
}

/// A Preisach hysteron-ensemble model of one ferroelectric capacitor.
///
/// # Example
///
/// ```
/// use cnash_device::preisach::{Preisach, PreisachParams};
///
/// let mut fe = Preisach::new(PreisachParams::default());
/// fe.apply_voltage(4.0);   // positive write pulse
/// assert!(fe.polarization() > 0.99);
/// assert!(fe.vth() < 0.5); // low-V_TH state
/// fe.apply_voltage(-4.0);  // negative write pulse
/// assert!(fe.polarization() < -0.99);
/// assert!(fe.vth() > 1.1); // high-V_TH state
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Preisach {
    params: PreisachParams,
    hysterons: Vec<Hysteron>,
}

impl Preisach {
    /// Creates the ensemble in the fully down-polarized (high-V_TH) state.
    ///
    /// Switching thresholds are spread deterministically (equally spaced
    /// quantiles) so the polarization curve is smooth and reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `hysteron_count == 0` or `coercive_spread < 0`.
    pub fn new(params: PreisachParams) -> Self {
        assert!(params.hysteron_count > 0, "need at least one hysteron");
        assert!(params.coercive_spread >= 0.0, "negative spread");
        let n = params.hysteron_count;
        let hysterons = (0..n)
            .map(|k| {
                // Quantile in (−1, 1), symmetric around 0.
                let u = (2.0 * (k as f64 + 0.5) / n as f64) - 1.0;
                let offset = u * params.coercive_spread;
                Hysteron {
                    v_up: params.coercive_voltage + offset,
                    v_down: -params.coercive_voltage + offset,
                    state: -1.0,
                }
            })
            .collect();
        Self { params, hysterons }
    }

    /// Applies a quasi-static gate voltage (one write pulse amplitude),
    /// flipping every hysteron whose threshold is crossed.
    pub fn apply_voltage(&mut self, v: f64) {
        for h in &mut self.hysterons {
            if v >= h.v_up {
                h.state = 1.0;
            } else if v <= h.v_down {
                h.state = -1.0;
            }
        }
    }

    /// Applies a sequence of pulse amplitudes in order.
    pub fn apply_pulse_train(&mut self, pulses: &[f64]) {
        for &v in pulses {
            self.apply_voltage(v);
        }
    }

    /// Normalised remnant polarization in `[−1, 1]`.
    pub fn polarization(&self) -> f64 {
        self.hysterons.iter().map(|h| h.state).sum::<f64>() / self.hysterons.len() as f64
    }

    /// Present threshold voltage implied by the polarization state.
    pub fn vth(&self) -> f64 {
        self.params.vth_mid - self.polarization() * self.params.vth_window / 2.0
    }

    /// Model parameters.
    pub fn params(&self) -> &PreisachParams {
        &self.params
    }
}

impl fmt::Display for Preisach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Preisach(P={:+.3}, Vth={:.3} V, {} hysterons)",
            self.polarization(),
            self.vth(),
            self.hysterons.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Preisach {
        Preisach::new(PreisachParams::default())
    }

    #[test]
    fn starts_fully_down() {
        let fe = fresh();
        assert_eq!(fe.polarization(), -1.0);
        assert!((fe.vth() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn saturates_up_and_down() {
        let mut fe = fresh();
        fe.apply_voltage(4.0);
        assert_eq!(fe.polarization(), 1.0);
        assert!((fe.vth() - 0.4).abs() < 1e-12);
        fe.apply_voltage(-4.0);
        assert_eq!(fe.polarization(), -1.0);
    }

    #[test]
    fn small_voltages_do_nothing() {
        let mut fe = fresh();
        fe.apply_voltage(0.3);
        fe.apply_voltage(-0.3);
        assert_eq!(fe.polarization(), -1.0);
    }

    #[test]
    fn partial_switching_is_monotonic_in_amplitude() {
        // Increasing positive amplitudes switch monotonically more hysterons.
        let mut last = -1.0;
        for amp in [0.8, 1.0, 1.2, 1.4, 1.6, 1.8] {
            let mut fe = fresh();
            fe.apply_voltage(amp);
            let p = fe.polarization();
            assert!(p >= last - 1e-12, "non-monotonic at {amp}: {p} < {last}");
            last = p;
        }
    }

    #[test]
    fn minor_loop_hysteresis() {
        // Partially program up, then a small negative pulse: the state
        // must differ from a fresh device given the same final pulse
        // (history dependence — the essence of hysteresis).
        let mut a = fresh();
        a.apply_pulse_train(&[1.4, -0.9]);
        let mut b = fresh();
        b.apply_voltage(-0.9);
        assert!(a.polarization() > b.polarization());
    }

    #[test]
    fn pulse_train_equivalent_to_sequence() {
        let mut a = fresh();
        a.apply_pulse_train(&[1.3, -1.1, 1.5]);
        let mut b = fresh();
        b.apply_voltage(1.3);
        b.apply_voltage(-1.1);
        b.apply_voltage(1.5);
        assert_eq!(a.polarization(), b.polarization());
    }

    #[test]
    fn vth_window_endpoints() {
        let p = PreisachParams {
            vth_mid: 1.0,
            vth_window: 0.6,
            ..PreisachParams::default()
        };
        let mut fe = Preisach::new(p);
        fe.apply_voltage(10.0);
        assert!((fe.vth() - 0.7).abs() < 1e-12);
        fe.apply_voltage(-10.0);
        assert!((fe.vth() - 1.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one hysteron")]
    fn zero_hysterons_panics() {
        let _ = Preisach::new(PreisachParams {
            hysteron_count: 0,
            ..PreisachParams::default()
        });
    }

    #[test]
    fn display_reports_state() {
        let s = fresh().to_string();
        assert!(s.contains("Vth"));
    }
}
