//! The 1FeFET1R bit-cell (Fig. 2c/d).
//!
//! A 1FeFET1R cell puts a series resistor `R` under the FeFET's source.
//! When the stored bit is '1' (low V_TH) and both the word line (gate) and
//! the data line (drain) are driven, the FeFET channel resistance collapses
//! far below `R`, so the cell current is clamped to `≈ V_DL / R`. The
//! exponential sensitivity of the bare FeFET ON current to `V_TH`
//! variations is thereby suppressed (Fig. 2d) — only the resistor's 8 %
//! spread remains, which is what makes large analog current sums linear
//! enough for VMV multiplication (Fig. 7a).
//!
//! The cell computes `i = p × m × q` "for free": the WL input gates on
//! `p`, the DL input gates on `q`, and the stored bit provides `m`
//! (paper Sec. 2.3).

use crate::fefet::{FeFet, FeFetParams, FeFetState};
use crate::variability::DeviceSample;

/// Electrical parameters of the 1FeFET1R cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellParams {
    /// Nominal series resistance (Ω).
    pub resistance: f64,
    /// Word-line read voltage applied for an active `p` input (V).
    pub v_wl_read: f64,
    /// Data-line read voltage applied for an active `q` input (V).
    pub v_dl_read: f64,
    /// FeFET electrical parameters.
    pub fefet: FeFetParams,
}

impl Default for CellParams {
    /// Nominal ON current `V_DL / R = 0.1 V / 100 kΩ = 1 µA`, matching the
    /// µA-scale cell currents of Fig. 2d / Fig. 7a.
    fn default() -> Self {
        Self {
            resistance: 100e3,
            v_wl_read: 0.8,
            v_dl_read: 0.1,
            fefet: FeFetParams::default(),
        }
    }
}

/// One 1FeFET1R cell with its sampled device deviations.
///
/// # Example
///
/// ```
/// use cnash_device::cell::OneFeFetOneR;
/// use cnash_device::fefet::FeFetState;
///
/// let cell = OneFeFetOneR::ideal(FeFetState::LowVth);
/// let i = cell.output_current(true, true);
/// assert!((i - 1e-6).abs() / 1e-6 < 0.05); // ≈ 1 µA clamped ON current
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OneFeFetOneR {
    fefet: FeFet,
    params: CellParams,
    resistance: f64,
}

impl OneFeFetOneR {
    /// Creates a cell storing `state` with the given deviations.
    pub fn new(state: FeFetState, params: CellParams, sample: DeviceSample) -> Self {
        Self {
            fefet: FeFet::new(state, params.fefet, sample.delta_vth),
            resistance: params.resistance * sample.resistor_factor,
            params,
        }
    }

    /// Nominal cell without variability.
    pub fn ideal(state: FeFetState) -> Self {
        Self::new(state, CellParams::default(), DeviceSample::default())
    }

    /// Stored bit.
    pub fn bit(&self) -> u8 {
        self.fefet.state().bit()
    }

    /// Rewrites the stored bit (write pulse on the gate, Fig. 2a).
    pub fn write(&mut self, bit: bool) {
        self.fefet.program(FeFetState::from_bit(bit));
    }

    /// Nominal clamped ON current of this cell design (`V_DL / R`), before
    /// per-device resistor deviation.
    pub fn nominal_on_current(params: &CellParams) -> f64 {
        params.v_dl_read / params.resistance
    }

    /// Cell output current for the given line drives.
    ///
    /// `wl_active` encodes one unary unit of the row strategy input `p`,
    /// `dl_active` one unary unit of the column input `q`. The current is
    /// the series combination of the (gate-dependent) channel resistance
    /// and the resistor; a deselected or '0' cell only leaks.
    pub fn output_current(&self, wl_active: bool, dl_active: bool) -> f64 {
        if !dl_active {
            return 0.0; // no drain bias, no current path
        }
        let vg = if wl_active {
            self.params.v_wl_read
        } else {
            0.0
        };
        let r_ch = self.fefet.channel_resistance(vg, self.params.v_dl_read);
        if !r_ch.is_finite() {
            return 0.0;
        }
        self.params.v_dl_read / (r_ch + self.resistance)
    }

    /// Relative deviation of the selected-'1' current from the nominal
    /// clamp (used to verify ON-current-variability suppression).
    pub fn on_current_error(&self) -> f64 {
        let nominal = Self::nominal_on_current(&self.params);
        (self.output_current(true, true) - nominal) / nominal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variability::VariabilityModel;

    #[test]
    fn truth_table_of_selected_one() {
        let c = OneFeFetOneR::ideal(FeFetState::LowVth);
        let on = c.output_current(true, true);
        assert!(on > 9e-7, "selected '1' current {on} too small");
        assert!(
            c.output_current(false, true) < on / 100.0,
            "WL off must cut current"
        );
        assert_eq!(c.output_current(true, false), 0.0, "DL off means no path");
        assert_eq!(c.output_current(false, false), 0.0);
    }

    #[test]
    fn stored_zero_stays_off() {
        let c = OneFeFetOneR::ideal(FeFetState::HighVth);
        let on = OneFeFetOneR::ideal(FeFetState::LowVth).output_current(true, true);
        assert!(c.output_current(true, true) < on / 100.0);
    }

    #[test]
    fn write_flips_bit() {
        let mut c = OneFeFetOneR::ideal(FeFetState::HighVth);
        assert_eq!(c.bit(), 0);
        c.write(true);
        assert_eq!(c.bit(), 1);
        assert!(c.output_current(true, true) > 9e-7);
    }

    #[test]
    fn resistor_clamps_on_current_variability() {
        // The whole point of the 1R: a ±3σ V_TH shift must barely move the
        // selected-'1' current, while the bare FeFET current would change
        // by orders of magnitude.
        let nominal = OneFeFetOneR::ideal(FeFetState::LowVth).output_current(true, true);
        let shifted = OneFeFetOneR::new(
            FeFetState::LowVth,
            CellParams::default(),
            DeviceSample {
                delta_vth: 0.120, // +3σ
                resistor_factor: 1.0,
            },
        )
        .output_current(true, true);
        let rel = (shifted - nominal).abs() / nominal;
        assert!(rel < 0.05, "ON current moved {rel:.3} under 3σ V_TH shift");
    }

    #[test]
    fn on_current_spread_tracks_resistor_spread() {
        // With the paper's variability the selected-'1' current spread
        // should be close to the 8 % resistor spread (V_TH contributes ~0).
        let v = VariabilityModel::paper();
        let samples = v.sample_many(2000, 99);
        let currents: Vec<f64> = samples
            .iter()
            .map(|&s| {
                OneFeFetOneR::new(FeFetState::LowVth, CellParams::default(), s)
                    .output_current(true, true)
            })
            .collect();
        let n = currents.len() as f64;
        let mean = currents.iter().sum::<f64>() / n;
        let std = (currents.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / n).sqrt();
        let rel = std / mean;
        assert!(
            (rel - 0.08).abs() < 0.02,
            "ON-current spread {rel:.3} should be ≈ resistor spread 0.08"
        );
    }

    #[test]
    fn nominal_on_current_value() {
        let p = CellParams::default();
        assert!((OneFeFetOneR::nominal_on_current(&p) - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn on_current_error_near_zero_for_ideal() {
        let c = OneFeFetOneR::ideal(FeFetState::LowVth);
        assert!(c.on_current_error().abs() < 0.05);
    }
}
