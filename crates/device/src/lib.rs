//! Behavioural FeFET device substrate for the C-Nash reproduction.
//!
//! The paper simulates its circuits in Cadence SPECTRE with the Preisach
//! FeFET compact model \[27] and TSMC 28 nm MOSFETs. This crate provides the
//! behavioural equivalents that the architecture actually consumes:
//!
//! * [`preisach`] — a hysteron-ensemble Preisach model mapping programming
//!   pulses to remnant polarization and threshold-voltage shift (Fig. 2a),
//! * [`fefet`] — a two-state FeFET with an ID–VG characteristic built from
//!   a subthreshold exponential and an ON-region saturation (Fig. 2b),
//! * [`cell`] — the 1FeFET1R structure of Yin et al. \[25], whose series
//!   resistor clamps the ON current and thereby suppresses device-to-device
//!   ON-current variability (Fig. 2c/d); the cell natively computes
//!   `i = p × m × q` when inputs drive its gate (WL) and drain (DL),
//! * [`variability`] — device-to-device variability: `σ(V_TH) = 40 mV`
//!   from Soliman et al. \[29] and 8 % resistor spread from Saito et
//!   al. \[30],
//! * [`corners`] — the five process corners (tt/ss/ff/snfp/fnsp) used in
//!   the WTA robustness study (Fig. 7b),
//! * [`montecarlo`] — a seeded Monte-Carlo runner with summary statistics,
//! * [`waveform`] — simple transient waveforms with first-order settling.
//!
//! # Example
//!
//! ```
//! use cnash_device::cell::OneFeFetOneR;
//! use cnash_device::fefet::FeFetState;
//! use cnash_device::variability::DeviceSample;
//!
//! let cell = OneFeFetOneR::ideal(FeFetState::LowVth);
//! // WL and DL both driven: the stored '1' conducts the clamped ON current.
//! let on = cell.output_current(true, true);
//! assert!(on > 1e-7);
//! // Deselected cell contributes (almost) nothing.
//! assert!(cell.output_current(false, true) < on * 1e-3);
//! # let _ = DeviceSample::default();
//! ```

pub mod cell;
pub mod corners;
pub mod fefet;
pub mod mlc;
pub mod montecarlo;
pub mod preisach;
pub mod retention;
pub mod variability;
pub mod waveform;

pub use cell::OneFeFetOneR;
pub use corners::ProcessCorner;
pub use fefet::{FeFet, FeFetParams, FeFetState};
pub use variability::{DeviceSample, VariabilityModel};
