//! Transient waveforms with first-order settling.
//!
//! The paper reports transient validation waveforms for the WTA cell
//! (Fig. 5c, 0.08 ns settling) and across process corners (Fig. 7b). A
//! first-order RC-style exponential captures the behaviour the SA loop
//! cares about: *when* the output is within tolerance of its final value.

/// A uniformly sampled time series.
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    dt: f64,
    samples: Vec<f64>,
}

impl Waveform {
    /// Creates a waveform from a sample period `dt` (seconds) and samples.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `samples` is empty.
    pub fn new(dt: f64, samples: Vec<f64>) -> Self {
        assert!(dt > 0.0, "sample period must be positive");
        assert!(!samples.is_empty(), "waveform needs at least one sample");
        Self { dt, samples }
    }

    /// First-order exponential step from `start` to `target` with time
    /// constant `tau`, sampled every `dt` for `duration` seconds.
    ///
    /// # Panics
    ///
    /// Panics if any of `tau`, `dt`, `duration` is non-positive.
    pub fn first_order_step(start: f64, target: f64, tau: f64, dt: f64, duration: f64) -> Self {
        assert!(tau > 0.0 && dt > 0.0 && duration > 0.0, "positive timing");
        let steps = (duration / dt).ceil() as usize + 1;
        let samples = (0..steps)
            .map(|k| {
                let t = k as f64 * dt;
                target + (start - target) * (-t / tau).exp()
            })
            .collect();
        Self { dt, samples }
    }

    /// Sample period (s).
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Time axis (s).
    pub fn times(&self) -> Vec<f64> {
        (0..self.samples.len())
            .map(|k| k as f64 * self.dt)
            .collect()
    }

    /// Sample values.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Final sample.
    pub fn final_value(&self) -> f64 {
        *self.samples.last().expect("non-empty waveform")
    }

    /// First time at which the waveform enters (and stays within)
    /// `tolerance × |final − initial|` of the final value; `None` if it
    /// never settles.
    pub fn settling_time(&self, tolerance: f64) -> Option<f64> {
        let fin = self.final_value();
        let swing = (fin - self.samples[0]).abs();
        if swing == 0.0 {
            return Some(0.0);
        }
        let band = tolerance * swing;
        // Walk backwards: find the last sample outside the band.
        let last_outside = self.samples.iter().rposition(|&v| (v - fin).abs() > band);
        match last_outside {
            None => Some(0.0),
            Some(k) if k + 1 < self.samples.len() => Some((k + 1) as f64 * self.dt),
            Some(_) => None, // still outside the band at the end
        }
    }

    /// Zips time and value pairs (for CSV/plot export).
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.times()
            .into_iter()
            .zip(self.samples.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_converges_to_target() {
        let w = Waveform::first_order_step(0.0, 1.0, 1e-9, 1e-11, 10e-9);
        assert!((w.final_value() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn settling_time_close_to_theory() {
        // 1 % settling of a first-order system takes ln(100) ≈ 4.6 τ.
        let tau = 1e-9;
        let w = Waveform::first_order_step(0.0, 1.0, tau, 1e-12, 20e-9);
        let ts = w.settling_time(0.01).expect("settles");
        let theory = tau * 100f64.ln();
        assert!(
            (ts - theory).abs() / theory < 0.01,
            "settling {ts:.3e} vs theory {theory:.3e}"
        );
    }

    #[test]
    fn constant_waveform_settles_immediately() {
        let w = Waveform::new(1e-9, vec![2.0, 2.0, 2.0]);
        assert_eq!(w.settling_time(0.01), Some(0.0));
    }

    #[test]
    fn never_settling_returns_none() {
        // Final sample jumps away: last sample outside band is the last one.
        let w = Waveform::new(1e-9, vec![0.0, 1.0, 0.0, 5.0]);
        // final=5, swing=5, band(1%)=0.05; sample[2]=0 is outside and is
        // the second-to-last ⇒ settles exactly at the last sample...
        // Construct a clearly non-settling case instead: oscillation whose
        // final value equals the first.
        let w2 = Waveform::new(1e-9, vec![0.0, 1.0, 0.0]);
        // swing = 0 (final == initial) ⇒ settles at 0 by convention.
        assert_eq!(w2.settling_time(0.01), Some(0.0));
        assert!(w.settling_time(0.01).is_some());
    }

    #[test]
    fn times_are_uniform() {
        let w = Waveform::new(0.5, vec![1.0, 2.0, 3.0]);
        assert_eq!(w.times(), vec![0.0, 0.5, 1.0]);
        assert_eq!(w.points().len(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_dt() {
        let _ = Waveform::new(0.0, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn rejects_empty() {
        let _ = Waveform::new(1.0, vec![]);
    }
}
