//! FeFET ID–VG behavioural model.
//!
//! A FeFET stores a bit as a low/high threshold voltage programmed through
//! its ferroelectric gate stack (Fig. 2a/b). For array simulation we model
//! the drain current with the standard piecewise characteristic:
//!
//! * subthreshold (`V_G < V_TH`): exponential with a finite subthreshold
//!   swing, floored at a leakage current,
//! * ON region (`V_G ≥ V_TH`): saturation current with overdrive scaling.
//!
//! The bare FeFET ON current is exponentially sensitive to `V_TH`
//! variations — exactly the problem the 1FeFET1R cell ([`crate::cell`])
//! solves by clamping the current with a series resistor.

use crate::preisach::Preisach;
use std::fmt;

/// Binary storage state of a FeFET (paper Fig. 2b: '1' = low V_TH
/// conducts at the read voltage, '0' = high V_TH stays off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeFetState {
    /// Programmed with a positive pulse; conducts at the read voltage.
    LowVth,
    /// Programmed (erased) with a negative pulse; off at the read voltage.
    HighVth,
}

impl FeFetState {
    /// The stored bit: `LowVth` ↦ 1, `HighVth` ↦ 0.
    pub fn bit(self) -> u8 {
        match self {
            FeFetState::LowVth => 1,
            FeFetState::HighVth => 0,
        }
    }

    /// State storing the given bit.
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            FeFetState::LowVth
        } else {
            FeFetState::HighVth
        }
    }
}

impl fmt::Display for FeFetState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeFetState::LowVth => write!(f, "low-Vth ('1')"),
            FeFetState::HighVth => write!(f, "high-Vth ('0')"),
        }
    }
}

/// Electrical parameters of the FeFET characteristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeFetParams {
    /// Threshold voltage of the low-V_TH (programmed) state (V).
    pub vth_low: f64,
    /// Threshold voltage of the high-V_TH (erased) state (V).
    pub vth_high: f64,
    /// Subthreshold swing (V per decade of current).
    pub subthreshold_swing: f64,
    /// Drain current at `V_G = V_TH` (edge of conduction, A).
    pub i_threshold: f64,
    /// Saturated ON current deep in the ON region (A).
    pub i_on: f64,
    /// Leakage floor (A).
    pub i_leak: f64,
    /// Gate overdrive at which the ON current saturates (V).
    pub overdrive_sat: f64,
}

impl Default for FeFetParams {
    /// Calibrated to the measured curves of Fig. 2b: ~5 decades between
    /// the '0' and '1' currents at the 0.8 V read voltage.
    fn default() -> Self {
        Self {
            vth_low: 0.4,
            vth_high: 1.2,
            subthreshold_swing: 0.09,
            i_threshold: 1e-7,
            i_on: 4e-5,
            i_leak: 1e-12,
            overdrive_sat: 0.5,
        }
    }
}

/// A binary-storage FeFET with its present threshold voltage.
///
/// `delta_vth` carries device-to-device variability sampled from
/// [`crate::variability::VariabilityModel`].
///
/// # Example
///
/// ```
/// use cnash_device::fefet::{FeFet, FeFetParams, FeFetState};
///
/// let on = FeFet::new(FeFetState::LowVth, FeFetParams::default(), 0.0);
/// let off = FeFet::new(FeFetState::HighVth, FeFetParams::default(), 0.0);
/// let vg = 0.8; // read voltage between the two thresholds
/// assert!(on.drain_current(vg) / off.drain_current(vg) > 1e3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FeFet {
    state: FeFetState,
    params: FeFetParams,
    delta_vth: f64,
}

impl FeFet {
    /// Creates a FeFET in `state` with threshold offset `delta_vth` (V).
    pub fn new(state: FeFetState, params: FeFetParams, delta_vth: f64) -> Self {
        Self {
            state,
            params,
            delta_vth,
        }
    }

    /// Nominal device without variability.
    pub fn ideal(state: FeFetState) -> Self {
        Self::new(state, FeFetParams::default(), 0.0)
    }

    /// Creates a FeFET whose threshold comes from a programmed
    /// [`Preisach`] stack (positive saturation ⇒ low V_TH).
    pub fn from_preisach(fe: &Preisach, params: FeFetParams, delta_vth: f64) -> Self {
        let mid = fe.params().vth_mid;
        let state = if fe.vth() < mid {
            FeFetState::LowVth
        } else {
            FeFetState::HighVth
        };
        Self::new(state, params, delta_vth)
    }

    /// Programs the device to a new state (write pulse, Fig. 2a).
    pub fn program(&mut self, state: FeFetState) {
        self.state = state;
    }

    /// Stored state.
    pub fn state(&self) -> FeFetState {
        self.state
    }

    /// Effective threshold voltage including variability.
    pub fn vth(&self) -> f64 {
        let base = match self.state {
            FeFetState::LowVth => self.params.vth_low,
            FeFetState::HighVth => self.params.vth_high,
        };
        base + self.delta_vth
    }

    /// Drain current at gate voltage `vg` (drain at the nominal read
    /// bias). Piecewise: leakage floor → subthreshold exponential →
    /// saturating ON region.
    pub fn drain_current(&self, vg: f64) -> f64 {
        let p = &self.params;
        let od = vg - self.vth();
        if od < 0.0 {
            // Subthreshold: i_threshold · 10^(od / SS), floored at leakage.
            let i = p.i_threshold * 10f64.powf(od / p.subthreshold_swing);
            i.max(p.i_leak)
        } else {
            // ON region: rise from i_threshold to i_on over `overdrive_sat`.
            let frac = (od / p.overdrive_sat).min(1.0);
            p.i_threshold + (p.i_on - p.i_threshold) * frac
        }
    }

    /// Effective channel resistance at gate voltage `vg` for a small drain
    /// bias `vd` (used by the 1FeFET1R divider).
    pub fn channel_resistance(&self, vg: f64, vd: f64) -> f64 {
        let i = self.drain_current(vg);
        if i <= 0.0 {
            f64::INFINITY
        } else {
            vd / i
        }
    }

    /// Sweeps the ID–VG characteristic over `points` gate voltages in
    /// `[vg_min, vg_max]` (reproduces Fig. 2b).
    pub fn id_vg_sweep(&self, vg_min: f64, vg_max: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two sweep points");
        (0..points)
            .map(|k| {
                let vg = vg_min + (vg_max - vg_min) * k as f64 / (points - 1) as f64;
                (vg, self.drain_current(vg))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_bit_round_trip() {
        assert_eq!(FeFetState::from_bit(true), FeFetState::LowVth);
        assert_eq!(FeFetState::from_bit(false), FeFetState::HighVth);
        assert_eq!(FeFetState::LowVth.bit(), 1);
        assert_eq!(FeFetState::HighVth.bit(), 0);
    }

    #[test]
    fn on_off_ratio_at_read_voltage() {
        let on = FeFet::ideal(FeFetState::LowVth);
        let off = FeFet::ideal(FeFetState::HighVth);
        let ratio = on.drain_current(0.8) / off.drain_current(0.8);
        assert!(ratio > 1e3, "on/off ratio {ratio} too small");
    }

    #[test]
    fn current_monotonic_in_vg() {
        let d = FeFet::ideal(FeFetState::LowVth);
        let sweep = d.id_vg_sweep(0.0, 2.0, 101);
        for w in sweep.windows(2) {
            assert!(w[1].1 >= w[0].1, "non-monotonic at {:?}", w);
        }
    }

    #[test]
    fn leakage_floor_respected() {
        let d = FeFet::ideal(FeFetState::HighVth);
        assert!(d.drain_current(0.0) >= FeFetParams::default().i_leak);
        assert!(d.drain_current(-1.0) >= FeFetParams::default().i_leak);
    }

    #[test]
    fn on_current_saturates() {
        let d = FeFet::ideal(FeFetState::LowVth);
        let p = FeFetParams::default();
        assert!((d.drain_current(2.0) - p.i_on).abs() < 1e-12);
        assert!((d.drain_current(5.0) - p.i_on).abs() < 1e-12);
    }

    #[test]
    fn vth_shift_moves_current_exponentially() {
        // +40 mV of V_TH costs ~1 decade / (SS/40mV) of subthreshold current.
        let nom = FeFet::new(FeFetState::HighVth, FeFetParams::default(), 0.0);
        let hot = FeFet::new(FeFetState::HighVth, FeFetParams::default(), 0.040);
        let vg = 0.8;
        let ratio = nom.drain_current(vg) / hot.drain_current(vg);
        let expected = 10f64.powf(0.040 / 0.09);
        assert!((ratio - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn program_changes_state() {
        let mut d = FeFet::ideal(FeFetState::HighVth);
        d.program(FeFetState::LowVth);
        assert_eq!(d.state(), FeFetState::LowVth);
        assert!((d.vth() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn from_preisach_maps_polarization_to_state() {
        use crate::preisach::{Preisach, PreisachParams};
        let mut fe = Preisach::new(PreisachParams::default());
        fe.apply_voltage(4.0);
        let d = FeFet::from_preisach(&fe, FeFetParams::default(), 0.0);
        assert_eq!(d.state(), FeFetState::LowVth);
        fe.apply_voltage(-4.0);
        let d = FeFet::from_preisach(&fe, FeFetParams::default(), 0.0);
        assert_eq!(d.state(), FeFetState::HighVth);
    }

    #[test]
    fn channel_resistance_is_small_when_on() {
        let d = FeFet::ideal(FeFetState::LowVth);
        // Deep ON: R_ch = 0.1 V / 40 µA = 2.5 kΩ, far below the 100 kΩ clamp.
        let r = d.channel_resistance(1.5, 0.1);
        assert!(r < 1e4, "channel resistance {r} too large");
    }

    #[test]
    fn display_state() {
        assert!(FeFetState::LowVth.to_string().contains("low"));
    }

    #[test]
    #[should_panic(expected = "at least two sweep points")]
    fn sweep_needs_points() {
        FeFet::ideal(FeFetState::LowVth).id_vg_sweep(0.0, 1.0, 1);
    }
}
