//! Seeded Monte-Carlo runner with summary statistics.
//!
//! The robustness experiments (Fig. 7a) run 100 Monte-Carlo instances of a
//! crossbar, each with independently sampled device deviations. This module
//! provides the generic runner plus the summary statistics reported in the
//! figures.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Summary statistics of a scalar sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (population form).
    pub std: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Stats {
    /// Computes statistics of `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "statistics of an empty sample set");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        Self {
            count: samples.len(),
            mean,
            std: var.sqrt(),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Coefficient of variation `std / |mean|` (∞ if the mean is 0).
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.std / self.mean.abs()
        }
    }
}

/// Runs `trials` evaluations of `f`, each with a fresh RNG derived from
/// `base_seed` (trial `k` uses seed `base_seed + k`), and returns the
/// per-trial outputs.
///
/// # Example
///
/// ```
/// use cnash_device::montecarlo::{monte_carlo, Stats};
/// use rand::RngExt;
///
/// let outs = monte_carlo(100, 7, |rng| rng.random_range(0.0..1.0));
/// let stats = Stats::from_samples(&outs);
/// assert!(stats.mean > 0.3 && stats.mean < 0.7);
/// ```
pub fn monte_carlo<T>(
    trials: usize,
    base_seed: u64,
    mut f: impl FnMut(&mut StdRng) -> T,
) -> Vec<T> {
    (0..trials)
        .map(|k| {
            let mut rng = StdRng::seed_from_u64(base_seed.wrapping_add(k as u64));
            f(&mut rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn stats_of_constant() {
        let s = Stats::from_samples(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn stats_of_known_set() {
        let s = Stats::from_samples(&[1.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 1.0);
        assert_eq!(s.count, 2);
        assert_eq!(s.cv(), 0.5);
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn stats_of_empty_panics() {
        let _ = Stats::from_samples(&[]);
    }

    #[test]
    fn cv_of_zero_mean_is_infinite() {
        let s = Stats::from_samples(&[-1.0, 1.0]);
        assert!(s.cv().is_infinite());
    }

    #[test]
    fn monte_carlo_reproducible_and_trial_independent() {
        let a = monte_carlo(5, 11, |rng| rng.random_range(0u32..1000));
        let b = monte_carlo(5, 11, |rng| rng.random_range(0u32..1000));
        assert_eq!(a, b);
        // Different trials see different RNG streams.
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn monte_carlo_different_seeds_differ() {
        let a = monte_carlo(5, 1, |rng| rng.random_range(0u32..1000));
        let b = monte_carlo(5, 2, |rng| rng.random_range(0u32..1000));
        assert_ne!(a, b);
    }
}
