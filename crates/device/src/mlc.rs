//! Multi-level-cell (MLC) FeFET storage (extension).
//!
//! The crossbar demonstration the paper derives its timing from (Soliman
//! et al. \[29]) is a *multi-level cell* FeFET array; C-Nash scales it "to
//! a precision of 1-bit/1-bit". This module models the MLC device the
//! paper scaled *down from*: partial-polarization programming yields
//! several threshold levels per transistor, trading cells-per-element
//! (`t`) against read margin. The level-confusion analysis quantifies why
//! the paper's 1-bit operating point is the robust choice at
//! `σ(V_TH) = 40 mV`.

use crate::preisach::{Preisach, PreisachParams};
use crate::variability::VariabilityModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A multi-level FeFET cell storing one of `levels` states as a partial
/// polarization of its Preisach stack.
#[derive(Debug, Clone, PartialEq)]
pub struct MlcFeFet {
    params: PreisachParams,
    levels: u8,
    stored: u8,
    delta_vth: f64,
}

impl MlcFeFet {
    /// Creates a cell with `levels ≥ 2` states, storing level 0.
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2`.
    pub fn new(params: PreisachParams, levels: u8, delta_vth: f64) -> Self {
        assert!(levels >= 2, "an MLC cell needs at least two levels");
        Self {
            params,
            levels,
            stored: 0,
            delta_vth,
        }
    }

    /// Number of levels.
    pub fn levels(&self) -> u8 {
        self.levels
    }

    /// Stored level.
    pub fn stored(&self) -> u8 {
        self.stored
    }

    /// Programs `level` via a partial-switching write pulse: the pulse
    /// amplitude is chosen so the hysteron ensemble reaches the target
    /// fractional polarization.
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels`.
    pub fn program(&mut self, level: u8) {
        assert!(level < self.levels, "level {level} out of range");
        self.stored = level;
    }

    /// Target polarization of a level: equally spaced in `[-1, 1]`.
    pub fn level_polarization(&self, level: u8) -> f64 {
        -1.0 + 2.0 * level as f64 / (self.levels - 1) as f64
    }

    /// Nominal threshold voltage of a level.
    pub fn level_vth(&self, level: u8) -> f64 {
        self.params.vth_mid - self.level_polarization(level) * self.params.vth_window / 2.0
    }

    /// This cell's actual threshold voltage (level + device deviation).
    pub fn vth(&self) -> f64 {
        self.level_vth(self.stored) + self.delta_vth
    }

    /// Spacing between adjacent level thresholds (the read margin budget).
    pub fn level_spacing(&self) -> f64 {
        self.params.vth_window / (self.levels - 1) as f64
    }

    /// Reads the level back by nearest-threshold classification (ideal
    /// sense amplifier with thresholds centred between levels).
    pub fn read_level(&self) -> u8 {
        let vth = self.vth();
        let mut best = 0u8;
        let mut best_d = f64::INFINITY;
        for l in 0..self.levels {
            let d = (vth - self.level_vth(l)).abs();
            if d < best_d {
                best_d = d;
                best = l;
            }
        }
        best
    }

    /// Writes the level through an actual Preisach partial-programming
    /// pulse train and returns the achieved polarization (for validating
    /// that partial switching can hit the targets).
    pub fn program_via_preisach(&mut self, level: u8) -> f64 {
        self.program(level);
        let target = self.level_polarization(level);
        let mut fe = Preisach::new(self.params);
        // Reset down, then search the positive pulse amplitude that lands
        // at (or just above) the target polarization.
        fe.apply_voltage(-10.0);
        let mut lo = 0.0;
        let mut hi = self.params.coercive_voltage + self.params.coercive_spread + 1.0;
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            let mut probe = fe.clone();
            probe.apply_voltage(mid);
            if probe.polarization() < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        fe.apply_voltage(hi);
        fe.polarization()
    }
}

/// Monte-Carlo estimate of the probability that a random device confuses
/// some written level on readback, at the given variability.
pub fn level_confusion_rate(
    levels: u8,
    variability: &VariabilityModel,
    trials: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut errors = 0usize;
    let mut total = 0usize;
    for _ in 0..trials {
        let s = variability.sample(&mut rng);
        for level in 0..levels {
            let mut cell = MlcFeFet::new(PreisachParams::default(), levels, s.delta_vth);
            cell.program(level);
            if cell.read_level() != level {
                errors += 1;
            }
            total += 1;
        }
    }
    errors as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_span_the_window() {
        let c = MlcFeFet::new(PreisachParams::default(), 4, 0.0);
        assert!((c.level_vth(0) - 1.2).abs() < 1e-12); // fully down
        assert!((c.level_vth(3) - 0.4).abs() < 1e-12); // fully up
        assert!(c.level_vth(1) > c.level_vth(2));
    }

    #[test]
    fn spacing_shrinks_with_level_count() {
        let two = MlcFeFet::new(PreisachParams::default(), 2, 0.0);
        let four = MlcFeFet::new(PreisachParams::default(), 4, 0.0);
        assert!((two.level_spacing() - 0.8).abs() < 1e-12);
        assert!((four.level_spacing() - 0.8 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ideal_readback_round_trip() {
        let mut c = MlcFeFet::new(PreisachParams::default(), 4, 0.0);
        for l in 0..4 {
            c.program(l);
            assert_eq!(c.read_level(), l);
        }
    }

    #[test]
    fn preisach_partial_programming_hits_targets() {
        let mut c = MlcFeFet::new(PreisachParams::default(), 4, 0.0);
        for l in 0..4 {
            let achieved = c.program_via_preisach(l);
            let target = c.level_polarization(l);
            assert!(
                (achieved - target).abs() < 0.05,
                "level {l}: achieved {achieved} vs target {target}"
            );
        }
    }

    #[test]
    fn confusion_grows_with_level_count() {
        let v = VariabilityModel::paper();
        let e2 = level_confusion_rate(2, &v, 2000, 1);
        let e4 = level_confusion_rate(4, &v, 2000, 1);
        let e8 = level_confusion_rate(8, &v, 2000, 1);
        assert!(e2 <= e4 && e4 <= e8, "{e2} {e4} {e8}");
        // Binary cells are essentially error-free at 40 mV sigma
        // (800 mV window => 10-sigma margins)...
        assert!(e2 < 1e-3);
        // ...while 8 levels (57 mV half-spacing vs 40 mV sigma) confuse
        // a noticeable fraction — the quantitative case for the paper's
        // 1-bit scaling.
        assert!(e8 > 0.05);
    }

    #[test]
    #[should_panic(expected = "at least two levels")]
    fn rejects_single_level() {
        let _ = MlcFeFet::new(PreisachParams::default(), 1, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_level() {
        let mut c = MlcFeFet::new(PreisachParams::default(), 4, 0.0);
        c.program(4);
    }
}
