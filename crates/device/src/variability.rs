//! Device-to-device variability sampling.
//!
//! The paper's robustness study (Sec. 4.1) assumes a `σ = 40 mV` FeFET
//! threshold-voltage spread (from the multi-level-cell crossbar
//! demonstration of Soliman et al. \[29]) and an 8 % resistor spread (from
//! the 1T1R analog CiM array of Saito et al. \[30]). Every cell of a
//! simulated crossbar draws one [`DeviceSample`] at construction.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Gaussian device-to-device variability magnitudes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariabilityModel {
    /// Standard deviation of the FeFET threshold voltage (V).
    pub sigma_vth: f64,
    /// Relative standard deviation of the series resistor.
    pub sigma_resistor_rel: f64,
}

impl VariabilityModel {
    /// The paper's values: `σ(V_TH) = 40 mV` \[29], 8 % resistor σ \[30].
    pub fn paper() -> Self {
        Self {
            sigma_vth: 0.040,
            sigma_resistor_rel: 0.08,
        }
    }

    /// No variability (ideal devices).
    pub fn none() -> Self {
        Self {
            sigma_vth: 0.0,
            sigma_resistor_rel: 0.0,
        }
    }

    /// Scales both spreads by `factor` (for stress studies).
    pub fn scaled(self, factor: f64) -> Self {
        Self {
            sigma_vth: self.sigma_vth * factor,
            sigma_resistor_rel: self.sigma_resistor_rel * factor,
        }
    }

    /// Draws one device sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> DeviceSample {
        DeviceSample {
            delta_vth: gaussian(rng) * self.sigma_vth,
            // Resistor factor clamped to stay physical (> 10 % of nominal).
            resistor_factor: (1.0 + gaussian(rng) * self.sigma_resistor_rel).max(0.1),
        }
    }

    /// Draws `n` samples from a dedicated seeded RNG (reproducible).
    pub fn sample_many(&self, n: usize, seed: u64) -> Vec<DeviceSample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| self.sample(&mut rng)).collect()
    }
}

impl Default for VariabilityModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// One device's sampled deviations from nominal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSample {
    /// Threshold-voltage offset (V).
    pub delta_vth: f64,
    /// Multiplicative resistor deviation (1.0 = nominal).
    pub resistor_factor: f64,
}

impl Default for DeviceSample {
    /// The nominal (no-deviation) sample.
    fn default() -> Self {
        Self {
            delta_vth: 0.0,
            resistor_factor: 1.0,
        }
    }
}

/// Standard normal via Box–Muller (avoids pulling in a distributions
/// crate for a single use).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        let u2: f64 = rng.random();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let v = VariabilityModel::paper();
        assert_eq!(v.sigma_vth, 0.040);
        assert_eq!(v.sigma_resistor_rel, 0.08);
    }

    #[test]
    fn none_produces_nominal_samples() {
        let v = VariabilityModel::none();
        for s in v.sample_many(10, 1) {
            assert_eq!(s.delta_vth, 0.0);
            assert_eq!(s.resistor_factor, 1.0);
        }
    }

    #[test]
    fn sampling_is_reproducible() {
        let v = VariabilityModel::paper();
        assert_eq!(v.sample_many(5, 42), v.sample_many(5, 42));
        assert_ne!(v.sample_many(5, 42), v.sample_many(5, 43));
    }

    #[test]
    fn sample_statistics_match_sigma() {
        let v = VariabilityModel::paper();
        let samples = v.sample_many(20_000, 7);
        let n = samples.len() as f64;
        let mean: f64 = samples.iter().map(|s| s.delta_vth).sum::<f64>() / n;
        let var: f64 = samples
            .iter()
            .map(|s| (s.delta_vth - mean).powi(2))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 2e-3, "mean {mean} too far from 0");
        assert!(
            (var.sqrt() - 0.040).abs() < 2e-3,
            "std {} too far from 40 mV",
            var.sqrt()
        );
    }

    #[test]
    fn resistor_factor_stays_physical() {
        // Even with an absurd 200 % spread the factor is clamped positive.
        let v = VariabilityModel {
            sigma_vth: 0.0,
            sigma_resistor_rel: 2.0,
        };
        for s in v.sample_many(1000, 3) {
            assert!(s.resistor_factor >= 0.1);
        }
    }

    #[test]
    fn scaled_spreads() {
        let v = VariabilityModel::paper().scaled(0.5);
        assert_eq!(v.sigma_vth, 0.020);
        assert_eq!(v.sigma_resistor_rel, 0.04);
    }

    #[test]
    fn default_sample_is_nominal() {
        let s = DeviceSample::default();
        assert_eq!(s.delta_vth, 0.0);
        assert_eq!(s.resistor_factor, 1.0);
    }
}
