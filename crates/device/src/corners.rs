//! Process corners for MOSFET periphery (WTA tree, drivers).
//!
//! The paper validates the WTA component across the five standard TSMC
//! 28 nm corners (Fig. 7b): typical (tt), both-slow (ss), both-fast (ff)
//! and the two skewed corners (snfp: slow NMOS / fast PMOS, fnsp: fast
//! NMOS / slow PMOS). For the behavioural WTA model a corner manifests as
//! a drive-current scale (affects settling speed) and an analog offset
//! scale (mismatch between the cross-coupled pair worsens when the
//! transistors skew).

use std::fmt;

/// A MOSFET process corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProcessCorner {
    /// Typical NMOS / typical PMOS — the nominal corner.
    #[default]
    Tt,
    /// Slow NMOS / slow PMOS.
    Ss,
    /// Fast NMOS / fast PMOS.
    Ff,
    /// Slow NMOS / fast PMOS (skewed).
    Snfp,
    /// Fast NMOS / slow PMOS (skewed).
    Fnsp,
}

impl ProcessCorner {
    /// All five corners in the order of Fig. 7b.
    pub const ALL: [ProcessCorner; 5] = [
        ProcessCorner::Ss,
        ProcessCorner::Snfp,
        ProcessCorner::Fnsp,
        ProcessCorner::Ff,
        ProcessCorner::Tt,
    ];

    /// NMOS drive-strength multiplier.
    pub fn nmos_drive(self) -> f64 {
        match self {
            ProcessCorner::Tt => 1.00,
            ProcessCorner::Ss => 0.85,
            ProcessCorner::Ff => 1.15,
            ProcessCorner::Snfp => 0.85,
            ProcessCorner::Fnsp => 1.15,
        }
    }

    /// PMOS drive-strength multiplier.
    pub fn pmos_drive(self) -> f64 {
        match self {
            ProcessCorner::Tt => 1.00,
            ProcessCorner::Ss => 0.85,
            ProcessCorner::Ff => 1.15,
            ProcessCorner::Snfp => 1.15,
            ProcessCorner::Fnsp => 0.85,
        }
    }

    /// Settling-delay multiplier of analog stages (slower corners settle
    /// later): inverse of the geometric-mean drive.
    pub fn delay_scale(self) -> f64 {
        1.0 / (self.nmos_drive() * self.pmos_drive()).sqrt()
    }

    /// Multiplier on analog offset/mismatch errors. Skewed corners
    /// unbalance the current mirrors, typical is best.
    pub fn offset_scale(self) -> f64 {
        let skew = (self.nmos_drive() - self.pmos_drive()).abs();
        1.0 + 4.0 * skew
    }
}

impl fmt::Display for ProcessCorner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProcessCorner::Tt => "tt",
            ProcessCorner::Ss => "ss",
            ProcessCorner::Ff => "ff",
            ProcessCorner::Snfp => "snfp",
            ProcessCorner::Fnsp => "fnsp",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_five_unique_corners() {
        let mut seen = std::collections::HashSet::new();
        for c in ProcessCorner::ALL {
            assert!(seen.insert(c));
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn typical_is_nominal() {
        let tt = ProcessCorner::Tt;
        assert_eq!(tt.nmos_drive(), 1.0);
        assert_eq!(tt.pmos_drive(), 1.0);
        assert_eq!(tt.delay_scale(), 1.0);
        assert_eq!(tt.offset_scale(), 1.0);
    }

    #[test]
    fn slow_corner_is_slowest() {
        let ss = ProcessCorner::Ss.delay_scale();
        for c in ProcessCorner::ALL {
            assert!(ss >= c.delay_scale() - 1e-12, "{c} slower than ss");
        }
        assert!(ss > 1.0);
    }

    #[test]
    fn fast_corner_is_fastest() {
        let ff = ProcessCorner::Ff.delay_scale();
        for c in ProcessCorner::ALL {
            assert!(ff <= c.delay_scale() + 1e-12, "{c} faster than ff");
        }
        assert!(ff < 1.0);
    }

    #[test]
    fn skewed_corners_have_worst_offsets() {
        let skewed = ProcessCorner::Snfp.offset_scale();
        assert!(skewed > ProcessCorner::Tt.offset_scale());
        assert!(skewed > ProcessCorner::Ss.offset_scale());
        assert_eq!(
            ProcessCorner::Snfp.offset_scale(),
            ProcessCorner::Fnsp.offset_scale()
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(ProcessCorner::Snfp.to_string(), "snfp");
        assert_eq!(ProcessCorner::default().to_string(), "tt");
    }
}
