//! Property-based tests of the device models.

use cnash_device::cell::{CellParams, OneFeFetOneR};
use cnash_device::fefet::{FeFet, FeFetParams, FeFetState};
use cnash_device::preisach::{Preisach, PreisachParams};
use cnash_device::variability::{DeviceSample, VariabilityModel};
use proptest::prelude::*;

proptest! {
    /// The Preisach polarization is always within [-1, 1] and vth within
    /// the configured window, for any pulse train.
    #[test]
    fn preisach_state_bounded(pulses in prop::collection::vec(-5.0f64..5.0, 0..30)) {
        let mut fe = Preisach::new(PreisachParams::default());
        fe.apply_pulse_train(&pulses);
        let p = fe.polarization();
        prop_assert!((-1.0..=1.0).contains(&p));
        let params = PreisachParams::default();
        let lo = params.vth_mid - params.vth_window / 2.0;
        let hi = params.vth_mid + params.vth_window / 2.0;
        prop_assert!((lo - 1e-12..=hi + 1e-12).contains(&fe.vth()));
    }

    /// Saturating writes erase all history: any pulse train followed by a
    /// strong positive pulse gives polarization +1.
    #[test]
    fn strong_write_erases_history(pulses in prop::collection::vec(-3.0f64..3.0, 0..20)) {
        let mut fe = Preisach::new(PreisachParams::default());
        fe.apply_pulse_train(&pulses);
        fe.apply_voltage(10.0);
        prop_assert_eq!(fe.polarization(), 1.0);
    }

    /// FeFET current is monotone non-decreasing in VG for any threshold
    /// offset within ±5σ.
    #[test]
    fn fefet_current_monotone(delta in -0.2f64..0.2, state in prop::bool::ANY) {
        let d = FeFet::new(
            FeFetState::from_bit(state),
            FeFetParams::default(),
            delta,
        );
        let mut last = 0.0f64;
        for k in 0..=40 {
            let vg = k as f64 * 0.05;
            let i = d.drain_current(vg);
            prop_assert!(i >= last - 1e-18, "non-monotone at vg={vg}");
            prop_assert!(i > 0.0);
            last = i;
        }
    }

    /// The 1FeFET1R selected-'1' current never exceeds the resistor-only
    /// bound V/R and never drops below 60% of it for ±3σ devices.
    #[test]
    fn cell_current_clamped(
        dvth in -0.12f64..0.12,
        rfac in 0.76f64..1.24,
    ) {
        let params = CellParams::default();
        let cell = OneFeFetOneR::new(
            FeFetState::LowVth,
            params,
            DeviceSample { delta_vth: dvth, resistor_factor: rfac },
        );
        let i = cell.output_current(true, true);
        let bound = params.v_dl_read / (params.resistance * rfac);
        prop_assert!(i <= bound + 1e-18, "exceeds V/R bound");
        prop_assert!(i >= 0.6 * bound, "far below clamp: {i} vs {bound}");
    }

    /// Deselected cells (WL or DL off) always carry (almost) no current.
    #[test]
    fn deselected_cells_leak_only(
        dvth in -0.12f64..0.12,
        rfac in 0.76f64..1.24,
        bit in prop::bool::ANY,
    ) {
        let cell = OneFeFetOneR::new(
            FeFetState::from_bit(bit),
            CellParams::default(),
            DeviceSample { delta_vth: dvth, resistor_factor: rfac },
        );
        prop_assert_eq!(cell.output_current(true, false), 0.0);
        prop_assert!(cell.output_current(false, true) < 1e-9);
    }

    /// Variability sampling respects the configured spreads statistically
    /// (loose 3-sigma-of-the-mean bound on batch means).
    #[test]
    fn variability_means_are_centred(seed in 0u64..1000) {
        let v = VariabilityModel::paper();
        let samples = v.sample_many(500, seed);
        let mean_v: f64 = samples.iter().map(|s| s.delta_vth).sum::<f64>() / 500.0;
        let mean_r: f64 = samples.iter().map(|s| s.resistor_factor).sum::<f64>() / 500.0;
        prop_assert!(mean_v.abs() < 0.04 * 3.0 / (500f64).sqrt() * 2.0);
        prop_assert!((mean_r - 1.0).abs() < 0.08 * 3.0 / (500f64).sqrt() * 2.0);
    }
}
