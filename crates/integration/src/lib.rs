//! Placeholder library target; the integration tests of the workspace
//! live in the repository-root `tests/` directory and are wired in via
//! `[[test]]` path entries in this package's manifest.
