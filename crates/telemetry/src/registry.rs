//! Named-metric registry and plain-data snapshots.
//!
//! A [`Registry`] owns one namespace of counters, gauges and
//! histograms plus an event log. Components register (or re-look-up)
//! metrics by name at startup and then hold the returned `Arc` across
//! the hot path — the registry locks are touched only at registration
//! and snapshot time, never per-operation.
//!
//! The crate deliberately knows nothing about JSON: a
//! [`RegistrySnapshot`] is plain data, and the service layer (which
//! owns the wire format) renders it. Registries are per-instance on
//! purpose — each `serve()` call gets its own, so tests and embedded
//! daemons never observe each other's counts. Process-global hot-path
//! metrics (annealer, worker pool) live in [`crate::hot`] instead.

use crate::counter::{Counter, Gauge};
use crate::events::{Event, EventLog};
use crate::hist::{HistSnapshot, Histogram};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Default event-log capacity for a registry.
const EVENT_CAPACITY: usize = 256;

/// One namespace of named metrics.
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    events: EventLog,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            events: EventLog::new(EVENT_CAPACITY),
        }
    }

    /// Gets or creates the counter named `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("registry lock");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Gets or creates the gauge named `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("registry lock");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Gets or creates the histogram named `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("registry lock");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// The registry's event log.
    #[must_use]
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Copies every metric out. Name maps are `BTreeMap`s, so
    /// iteration (and any rendering built on it) is deterministically
    /// ordered.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self
            .counters
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        let (events, events_dropped) = self.events.snapshot();
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
            events,
            events_dropped,
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

/// Plain-data copy of a [`Registry`] at one instant.
#[derive(Clone, Debug)]
pub struct RegistrySnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistSnapshot>,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Events evicted from the ring so far.
    pub events_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_is_the_same_metric() {
        let reg = Registry::new();
        let a = reg.counter("requests");
        let b = reg.counter("requests");
        a.add(5);
        b.add(2);
        assert_eq!(reg.counter("requests").get(), 7);
        assert!(Arc::ptr_eq(&a, &b));
        reg.gauge("depth").set(3);
        reg.histogram("lat").record(10);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["requests"], 7);
        assert_eq!(snap.gauges["depth"], 3);
        assert_eq!(snap.histograms["lat"].count, 1);
        assert_eq!(snap.events_dropped, 0);
    }

    #[test]
    fn registries_are_isolated() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("x").inc();
        assert_eq!(b.counter("x").get(), 0);
    }
}
