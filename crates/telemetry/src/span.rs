//! Span-scoped timers: an RAII guard that records its lifetime into a
//! [`Histogram`](crate::Histogram) in nanoseconds when dropped.
//!
//! When telemetry is globally disabled ([`crate::set_enabled`]) the
//! guard is inert: no clock read on construction, no record on drop —
//! this is what keeps the disabled-path overhead at a single relaxed
//! atomic load, the property `telemetry_bench` gates.

use crate::hist::Histogram;
use std::time::Instant;

/// Times a scope into a histogram of nanoseconds.
///
/// ```
/// use cnash_telemetry::{Histogram, TelemetrySpan};
/// static LATENCY: Histogram = Histogram::new();
/// {
///     let _span = TelemetrySpan::start(&LATENCY);
///     // ... the timed work ...
/// }
/// assert!(LATENCY.count() >= 1);
/// ```
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct TelemetrySpan<'a> {
    sink: &'a Histogram,
    started: Option<Instant>,
}

impl<'a> TelemetrySpan<'a> {
    /// Starts a span (a no-op guard when telemetry is disabled).
    #[inline]
    pub fn start(sink: &'a Histogram) -> Self {
        let started = crate::enabled().then(Instant::now);
        Self { sink, started }
    }

    /// Ends the span early, recording now instead of at scope exit.
    pub fn finish(self) {
        drop(self);
    }

    /// Abandons the span: nothing is recorded. For paths that turn out
    /// not to be the operation the histogram measures (e.g. an early
    /// protocol error).
    pub fn cancel(mut self) {
        self.started = None;
    }
}

impl Drop for TelemetrySpan<'_> {
    fn drop(&mut self) {
        if let Some(started) = self.started {
            self.sink
                .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_once_on_drop() {
        let hist = Histogram::new();
        {
            let _span = TelemetrySpan::start(&hist);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.min >= 1_000_000, "slept >= 1ms, recorded {}", snap.min);
    }

    #[test]
    fn cancel_records_nothing() {
        let hist = Histogram::new();
        TelemetrySpan::start(&hist).cancel();
        assert_eq!(hist.count(), 0);
        TelemetrySpan::start(&hist).finish();
        assert_eq!(hist.count(), 1);
    }
}
