//! Process-global hot-path metrics for the annealer and worker pool.
//!
//! The SA inner loop and the pool's task plumbing cannot thread an
//! `Arc<Registry>` through their (deliberately `Copy`) option structs
//! without changing public APIs, so their instrumentation lands in
//! `const`-initialized statics instead. Everything here is cumulative
//! over the process lifetime and monotone; consumers (the service's
//! `metrics` op, `telemetry_bench`) report values, never reset them —
//! assertions against these metrics should therefore check deltas or
//! monotonicity, not absolute counts.
//!
//! The annealer records its per-run aggregates **once at the end of a
//! run** (a handful of relaxed adds per `simulated_annealing` call),
//! never inside the sweep loop: the hot path itself stays untouched,
//! which is how solver output stays bit-identical with telemetry on or
//! off (property-tested in `tests/telemetry_identity.rs`).

use crate::counter::Counter;
use crate::events::EventLog;
use crate::hist::Histogram;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Completed simulated-annealing driver invocations (full, delta or
/// tempering). Each invocation is one *restart* in the paper's
/// restart-TTS sense (Fig. 10): solvers reach a target confidence by
/// re-running the annealer under fresh seeds, and this counts those
/// re-runs.
pub static SA_RUNS: Counter = Counter::new();
/// Total SA sweeps (iterations) across all runs.
pub static SA_SWEEPS: Counter = Counter::new();
/// Total accepted Metropolis moves across all runs.
pub static SA_ACCEPTS: Counter = Counter::new();
/// Accepted replica-exchange swaps (parallel tempering only).
pub static SA_SWAPS: Counter = Counter::new();

/// Tasks executed by `fan_out_ordered` workers.
pub static POOL_TASKS: Counter = Counter::new();
/// Per-task execution time, nanoseconds.
pub static POOL_TASK_NS: Histogram = Histogram::new();
/// Time a finished item waited before the in-order fold consumed it,
/// nanoseconds — the reorder-window backpressure signal.
pub static POOL_FOLD_WAIT_NS: Histogram = Histogram::new();

/// Per-worker slots for fold contributions (worker index mod 64).
const WORKER_SLOTS: usize = 64;
static WORKER_FOLDS: [AtomicU64; WORKER_SLOTS] = [const { AtomicU64::new(0) }; WORKER_SLOTS];
/// High-water mark of worker indices seen (bounds the snapshot).
static WORKER_SEEN: AtomicUsize = AtomicUsize::new(0);

/// Credits one folded item to `worker`.
#[inline]
pub fn record_worker_fold(worker: usize) {
    WORKER_FOLDS[worker % WORKER_SLOTS].fetch_add(1, Ordering::Relaxed);
    WORKER_SEEN.fetch_max((worker % WORKER_SLOTS) + 1, Ordering::Relaxed);
}

/// Fold contributions per worker index, trimmed to the highest worker
/// seen (empty when the pool never ran).
#[must_use]
pub fn worker_folds() -> Vec<u64> {
    let seen = WORKER_SEEN.load(Ordering::Relaxed).min(WORKER_SLOTS);
    WORKER_FOLDS[..seen]
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .collect()
}

/// Sampled SA energy-trajectory trace (kind `"sa_energy"`); fed only
/// when [`sa_trace_interval`] is nonzero.
pub static SA_TRACE: EventLog = EventLog::new(1024);

/// Sweep-sampling interval for the energy trace; 0 disables tracing.
static SA_TRACE_INTERVAL: AtomicU64 = AtomicU64::new(0);

/// Sets the energy-trace sampling interval (record every `n`-th sweep;
/// 0 turns the trace off). Drivers read this **once per run**, so a
/// mid-run change applies from the next run.
pub fn set_sa_trace_interval(n: u64) {
    SA_TRACE_INTERVAL.store(n, Ordering::Relaxed);
}

/// Current energy-trace sampling interval (0 = off).
#[must_use]
pub fn sa_trace_interval() -> u64 {
    SA_TRACE_INTERVAL.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_folds_trim_to_high_water_mark() {
        // Slots well above anything the pool uses in-process, so this
        // test stays independent of other tests exercising the pool.
        record_worker_fold(57);
        record_worker_fold(57);
        record_worker_fold(59);
        let folds = worker_folds();
        assert!(folds.len() >= 60);
        assert!(folds[57] >= 2);
        assert!(folds[59] >= 1);
    }

    #[test]
    fn trace_interval_round_trips() {
        // Restore 0 so concurrent tests never see tracing enabled.
        set_sa_trace_interval(8);
        assert_eq!(sa_trace_interval(), 8);
        set_sa_trace_interval(0);
        assert_eq!(sa_trace_interval(), 0);
    }
}
