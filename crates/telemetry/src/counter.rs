//! Sharded lock-free counters and point-in-time gauges.
//!
//! A [`Counter`] spreads increments over a small fixed array of
//! cache-line-padded atomic cells so that concurrent writers on
//! different cores do not fight over one line; reads sum the shards.
//! Totals are exact (every increment lands in exactly one shard) but a
//! concurrent read is only a *consistent lower bound* — the usual
//! statistical-counter contract. A [`Gauge`] is a single signed atomic
//! for values that go both ways (queue depth, in-flight requests).

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of shards per counter. A small power of two: enough to
/// decongest a machine's worth of worker threads without bloating the
/// per-metric footprint (16 shards × 64 B = 1 KiB per counter).
pub const COUNTER_SHARDS: usize = 16;

/// One counter cell on its own cache line.
#[repr(align(64))]
struct Shard(AtomicU64);

/// Process-wide round-robin source of per-thread shard slots.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The shard index this thread hits first, assigned round-robin on
    /// first use so thread pools spread evenly over the shard array.
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
}

/// A monotonically increasing, write-sharded `u64` counter.
///
/// `const`-constructible, so hot-path modules can keep counters in
/// `static`s with zero initialization cost.
pub struct Counter {
    shards: [Shard; COUNTER_SHARDS],
}

impl Counter {
    /// A zeroed counter.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            shards: [const { Shard(AtomicU64::new(0)) }; COUNTER_SHARDS],
        }
    }

    /// Adds `n` to the calling thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        let slot = MY_SHARD.with(|s| *s);
        self.shards[slot].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Sums the shards: exact once writers are quiescent, a consistent
    /// lower bound while they are not.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A signed instantaneous value (queue depth, in-flight count).
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    /// Adds `delta` (negative to decrement).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrements by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_totals_are_exact_across_threads() {
        let counter = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        counter.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter.get(), 80_000);
    }

    #[test]
    fn counter_add_accumulates() {
        let c = Counter::new();
        c.add(3);
        c.add(39);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_tracks_both_directions() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.add(-5);
        assert_eq!(g.get(), -4);
        g.set(7);
        assert_eq!(g.get(), 7);
    }
}
