//! Log-bucketed latency histograms with exact merge.
//!
//! The bucket layout is the classic HDR-style compromise: values below
//! `2 * SUB` (64) get one bucket each (exact), and every octave above
//! that is split into `SUB` (32) sub-buckets, so the relative
//! quantization error is bounded by `1/SUB ≈ 3%` at any magnitude up
//! to `u64::MAX`. That yields a fixed [`BUCKETS`] (1920) array of
//! atomic cells — recording is two relaxed `fetch_add`s plus a
//! `fetch_min`/`fetch_max`, and needs no locks.
//!
//! Percentiles are read from a [`HistSnapshot`]: the reported
//! `pXX` value is the **upper bound** of the bucket containing the
//! rank-`ceil(q·count)` observation (clamped to the observed max), so a
//! reported p99 is always ≥ the true p99 and within one sub-bucket of
//! it. Snapshots merge bucket-wise ([`HistSnapshot::merge`]), which is
//! associative and commutative — the deterministic-merge property the
//! sharded recorders rely on, proptested in `tests/proptests.rs`.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the sub-buckets per octave.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave (32): bounds the relative error at ~3%.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: 64 exact buckets + 32 per octave for octaves
/// `1..=58` (the last of which tops out at `u64::MAX`).
pub const BUCKETS: usize = (SUB as usize) * 2 + (SUB as usize) * 58;

/// Maps a value to its bucket index. Total and monotone over `u64`.
#[inline]
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB * 2 {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros(); // floor(log2), >= SUB_BITS + 1
        let octave = (exp - SUB_BITS) as usize;
        let mantissa = ((value >> (exp - SUB_BITS)) - SUB) as usize;
        (SUB as usize) * (octave + 1) + mantissa
    }
}

/// The inclusive `[lo, hi]` value range of a bucket.
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    let sub = SUB as usize;
    if index < sub * 2 {
        return (index as u64, index as u64);
    }
    let octave = (index / sub - 1) as u32;
    let mantissa = (index % sub) as u64;
    // Computed in u128: the top bucket's exclusive upper bound is 2^64.
    let lo = u128::from(SUB + mantissa) << octave;
    let hi = (u128::from(SUB + mantissa + 1) << octave) - 1;
    (lo as u64, hi.min(u128::from(u64::MAX)) as u64)
}

/// A lock-free recording histogram.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state out. Concurrent recording makes the
    /// copy a consistent lower bound, exact once writers are quiescent.
    #[must_use]
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = vec![0u64; BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

/// A plain-data copy of a histogram, mergeable and queryable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping at `u64::MAX`).
    pub sum: u64,
    /// Smallest observation (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
}

impl HistSnapshot {
    /// An empty snapshot (the merge identity).
    #[must_use]
    pub fn empty() -> Self {
        Self {
            buckets: vec![0u64; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Folds `other` in, bucket-wise. Associative and commutative, so
    /// shards may be merged in any order with identical results.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine = mine.wrapping_add(*theirs);
        }
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the rank-`ceil(q·count)` observation, clamped to
    /// the observed `max`. Returns 0 for an empty snapshot.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(index).1.min(self.max);
            }
        }
        self.max
    }

    /// Mean observation (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_total_and_monotone_at_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(63), 63);
        assert_eq!(bucket_index(64), 64);
        assert_eq!(bucket_index(127), 95);
        assert_eq!(bucket_index(128), 96);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        let mut last = 0;
        for v in [0u64, 1, 63, 64, 65, 1000, 65_536, 1 << 40, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx >= last, "index must be monotone in the value");
            last = idx;
        }
    }

    #[test]
    fn bucket_bounds_bracket_their_members() {
        for v in [0u64, 1, 31, 63, 64, 97, 128, 1000, 123_456_789, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn exact_region_is_exact() {
        let h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 64);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 63);
        assert_eq!(snap.quantile(0.5), 31);
        assert_eq!(snap.quantile(1.0), 63);
    }

    #[test]
    fn quantiles_are_upper_bounds_within_one_sub_bucket() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        let p99 = snap.quantile(0.99);
        assert!(p99 >= 9900, "p99 must not under-report: {p99}");
        assert!(
            p99 as f64 <= 9900.0 * (1.0 + 2.0 / SUB as f64),
            "p99 too loose: {p99}"
        );
        assert_eq!(snap.quantile(1.0), 10_000);
    }

    #[test]
    fn empty_snapshot_is_merge_identity() {
        let h = Histogram::new();
        h.record(5);
        h.record(500);
        let snap = h.snapshot();
        let mut merged = HistSnapshot::empty();
        merged.merge(&snap);
        assert_eq!(merged, snap);
        assert_eq!(HistSnapshot::empty().quantile(0.99), 0);
        assert!((snap.mean() - 252.5).abs() < 1e-9);
    }
}
