//! Fixed-capacity structured event log.
//!
//! A bounded ring of [`Event`]s guarded by a mutex — events are *rare*
//! (connection errors, shutdowns, degraded requests, sampled SA
//! traces), so a lock is the right tool; the lock-free machinery lives
//! in the counters and histograms that sit on hot paths. Every event
//! gets a process-unique, strictly increasing sequence number, and the
//! ring keeps exact books: `dropped = next_seq - retained`, so a reader
//! can always tell how much history it lost.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// One structured log entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Strictly increasing sequence number (0-based, never reused).
    pub seq: u64,
    /// Microseconds since the Unix epoch at push time.
    pub at_us: u64,
    /// Short machine-readable kind, e.g. `"conn_error"`, `"sa_trace"`.
    pub kind: &'static str,
    /// Free-form detail payload.
    pub detail: String,
}

struct Ring {
    buf: VecDeque<Event>,
    next_seq: u64,
}

/// A bounded, drop-counting event ring.
pub struct EventLog {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl EventLog {
    /// An empty log retaining at most `capacity` events (`capacity`
    /// is clamped to at least 1).
    #[must_use]
    pub const fn new(capacity: usize) -> Self {
        Self {
            capacity: if capacity == 0 { 1 } else { capacity },
            ring: Mutex::new(Ring {
                buf: VecDeque::new(),
                next_seq: 0,
            }),
        }
    }

    /// Appends an event, evicting the oldest once full. Returns the
    /// assigned sequence number. A no-op returning `None` when
    /// telemetry is globally disabled.
    pub fn push(&self, kind: &'static str, detail: String) -> Option<u64> {
        if !crate::enabled() {
            return None;
        }
        let at_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        let mut ring = self.ring.lock().expect("event log lock");
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.buf.len() == self.capacity {
            ring.buf.pop_front();
        }
        ring.buf.push_back(Event {
            seq,
            at_us,
            kind,
            detail,
        });
        Some(seq)
    }

    /// The retained events (oldest first) and the exact number of
    /// events evicted so far.
    #[must_use]
    pub fn snapshot(&self) -> (Vec<Event>, u64) {
        let ring = self.ring.lock().expect("event log lock");
        let dropped = ring.next_seq - ring.buf.len() as u64;
        (ring.buf.iter().cloned().collect(), dropped)
    }

    /// Total events ever pushed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.ring.lock().expect("event log lock").next_seq
    }

    /// Maximum retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("capacity", &self.capacity)
            .field("total", &self.total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_dense_and_drops_exact() {
        let log = EventLog::new(4);
        for k in 0..10u64 {
            assert_eq!(log.push("tick", format!("k={k}")), Some(k));
        }
        let (events, dropped) = log.snapshot();
        assert_eq!(dropped, 6);
        assert_eq!(events.len(), 4);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest evicted first");
        assert_eq!(log.total(), 10);
    }

    #[test]
    fn under_capacity_drops_nothing() {
        let log = EventLog::new(8);
        log.push("a", String::new());
        log.push("b", "x".into());
        let (events, dropped) = log.snapshot();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].kind, "b");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let log = EventLog::new(0);
        assert_eq!(log.capacity(), 1);
        log.push("a", String::new());
        log.push("b", String::new());
        let (events, dropped) = log.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(dropped, 1);
    }
}
