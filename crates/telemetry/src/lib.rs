//! In-process telemetry for the C-Nash stack: counters, gauges,
//! latency histograms, RAII spans, and a structured event log.
//!
//! Hand-rolled and dependency-free — this crate sits below
//! `cnash-runtime` in the workspace graph so the worker pool and the
//! annealer can instrument their hot paths without a cycle; the
//! service layer renders [`RegistrySnapshot`]s to JSON on its side of
//! the fence (schema in `cnash-service`'s `protocol` docs and
//! `docs/OBSERVABILITY.md`).
//!
//! Design points:
//!
//! - **Recording is lock-free.** [`Counter`] shards writes over padded
//!   atomic cells; [`Histogram`] is a fixed array of atomic buckets
//!   (log-spaced, ≤ ~3% relative error, exact below 64). Locks appear
//!   only around rare paths (event log, registry name maps).
//! - **Merges are deterministic.** [`HistSnapshot::merge`] is a
//!   bucket-wise add — associative, commutative, proptested — so
//!   sharded recorders can be combined in any order bit-identically.
//! - **A global kill switch.** [`set_enabled`]`(false)` turns spans
//!   and event pushes into no-ops (one relaxed load); counters are so
//!   cheap they stay on. `telemetry_bench` gates the enabled-vs-
//!   disabled overhead of the full service path at < 5%.
//! - **No behavioural feedback.** Nothing in this crate is consulted
//!   by solver logic; instrumented code records *after* decisions are
//!   made (the annealer once per run), keeping solver output
//!   bit-identical with telemetry on or off.

mod counter;
mod events;
mod hist;
pub mod hot;
mod registry;
mod span;

pub use counter::{Counter, Gauge, COUNTER_SHARDS};
pub use events::{Event, EventLog};
pub use hist::{bucket_bounds, bucket_index, HistSnapshot, Histogram, BUCKETS};
pub use registry::{Registry, RegistrySnapshot};
pub use span::TelemetrySpan;

use std::sync::atomic::{AtomicBool, Ordering};

/// Global recording switch (default on).
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns span timing and event logging on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry recording is enabled.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}
