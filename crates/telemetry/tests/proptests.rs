//! Property tests of the three telemetry invariants the stack leans
//! on:
//!
//! 1. **Histogram bucketing** — every recorded value lands in a bucket
//!    whose bounds bracket it, and a reported quantile never
//!    under-reports: it is ≥ the true rank statistic and ≤ that
//!    statistic's own bucket upper bound (the documented ≤ ~3%
//!    over-report).
//! 2. **Deterministic merge** — merging sharded recorders is order-
//!    invariant and equal to recording everything into one histogram.
//! 3. **Ring-buffer accounting** — the event log's dropped count is
//!    exactly `pushes - capacity` once it overflows, and the retained
//!    window is the dense suffix of sequence numbers.

use cnash_telemetry::{bucket_bounds, bucket_index, EventLog, HistSnapshot, Histogram};
use proptest::prelude::*;

/// The true rank-`ceil(q·n)` order statistic of `values`.
fn true_quantile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn bucket_bounds_bracket_every_value(
        v in prop::collection::vec(0u64..u64::MAX, 1..64),
    ) {
        for &value in &v {
            let idx = bucket_index(value);
            let (lo, hi) = bucket_bounds(idx);
            prop_assert!(lo <= value && value <= hi, "{value} outside [{lo}, {hi}]");
            // Adjacent buckets tile the axis: the next bucket starts
            // right after this one ends.
            if hi < u64::MAX {
                prop_assert_eq!(bucket_index(hi + 1), idx + 1);
            }
        }
    }

    #[test]
    fn quantiles_bracket_the_true_order_statistic(
        values in prop::collection::vec(0u64..10_000_000, 1..80),
        q_mille in 1u64..=1000,
    ) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.max, *values.iter().max().unwrap());
        prop_assert_eq!(snap.min, *values.iter().min().unwrap());

        let q = q_mille as f64 / 1000.0;
        let reported = snap.quantile(q);
        let truth = true_quantile(&values, q);
        prop_assert!(reported >= truth, "q={q}: {reported} under-reports {truth}");
        let ceiling = bucket_bounds(bucket_index(truth)).1.min(snap.max);
        prop_assert!(
            reported <= ceiling,
            "q={q}: {reported} above the true statistic's bucket cap {ceiling}"
        );
    }

    #[test]
    fn sharded_merge_is_order_invariant_and_lossless(
        shards in prop::collection::vec(
            prop::collection::vec(0u64..1_000_000, 0..30),
            1..6,
        ),
    ) {
        // One recorder per shard, plus a reference recording everything.
        let reference = Histogram::new();
        let snaps: Vec<HistSnapshot> = shards
            .iter()
            .map(|shard| {
                let h = Histogram::new();
                for &v in shard {
                    h.record(v);
                    reference.record(v);
                }
                h.snapshot()
            })
            .collect();

        let mut forward = HistSnapshot::empty();
        for s in &snaps {
            forward.merge(s);
        }
        let mut backward = HistSnapshot::empty();
        for s in snaps.iter().rev() {
            backward.merge(s);
        }
        // Pairwise tree merge (a third association order).
        let mut tree: Vec<HistSnapshot> = snaps.clone();
        while tree.len() > 1 {
            let mut next = Vec::new();
            for pair in tree.chunks(2) {
                let mut acc = pair[0].clone();
                if let Some(rhs) = pair.get(1) {
                    acc.merge(rhs);
                }
                next.push(acc);
            }
            tree = next;
        }

        prop_assert_eq!(&forward, &backward);
        prop_assert_eq!(&forward, &tree[0]);
        prop_assert_eq!(&forward, &reference.snapshot());
        for q in [0.5, 0.9, 0.99, 0.999] {
            prop_assert_eq!(forward.quantile(q), backward.quantile(q));
        }
    }

    #[test]
    fn event_ring_drop_accounting_is_exact(
        capacity in 1usize..16,
        pushes in 0u64..100,
    ) {
        let log = EventLog::new(capacity);
        for k in 0..pushes {
            let seq = log.push("tick", format!("k={k}")).expect("telemetry enabled");
            prop_assert_eq!(seq, k);
        }
        let (events, dropped) = log.snapshot();
        let retained = pushes.min(capacity as u64);
        prop_assert_eq!(events.len() as u64, retained);
        prop_assert_eq!(dropped, pushes - retained);
        for (offset, event) in events.iter().enumerate() {
            prop_assert_eq!(event.seq, pushes - retained + offset as u64);
        }
        prop_assert_eq!(log.total(), pushes);
    }
}
