//! Machine-readable (JSON) views of batch and portfolio results.

use crate::batch::BatchReport;
use crate::json::Json;
use crate::portfolio::PortfolioOutcome;
use cnash_core::GameReport;
use cnash_game::Equilibrium;

fn equilibrium_json(eq: &Equilibrium) -> Json {
    Json::obj([
        (
            "row",
            Json::Arr(eq.row.probs().iter().map(|&p| Json::Num(p)).collect()),
        ),
        (
            "col",
            Json::Arr(eq.col.probs().iter().map(|&p| Json::Num(p)).collect()),
        ),
        ("gap", Json::Num(eq.gap)),
    ])
}

/// Serialises an aggregated [`GameReport`].
pub fn game_report_json(report: &GameReport) -> Json {
    let (error_pct, pure_pct, mixed_pct) = report.distribution.percentages();
    Json::obj([
        ("solver", Json::str(report.solver.clone())),
        ("game", Json::str(report.game.clone())),
        ("runs", Json::num(report.runs as f64)),
        ("success_rate_pct", Json::Num(report.success_rate)),
        (
            "distribution",
            Json::obj([
                ("error", Json::num(report.distribution.error as f64)),
                ("pure_ne", Json::num(report.distribution.pure_ne as f64)),
                ("mixed_ne", Json::num(report.distribution.mixed_ne as f64)),
                ("error_pct", Json::Num(error_pct)),
                ("pure_pct", Json::Num(pure_pct)),
                ("mixed_pct", Json::Num(mixed_pct)),
            ]),
        ),
        ("covered", Json::num(report.covered as f64)),
        ("target_count", Json::num(report.target_count as f64)),
        ("coverage_fraction", Json::Num(report.coverage_fraction())),
        (
            "distinct_found",
            Json::Arr(report.distinct_found.iter().map(equilibrium_json).collect()),
        ),
        (
            "mean_time_to_solution_s",
            Json::Num(report.mean_time_to_solution),
        ),
        ("tts99_s", Json::Num(report.tts99)),
        ("mean_run_time_s", Json::Num(report.mean_run_time)),
        ("hits_truncated", Json::Bool(report.hits_truncated)),
    ])
}

/// Serialises a [`BatchReport`].
pub fn batch_report_json(batch: &BatchReport) -> Json {
    Json::obj([
        ("report", game_report_json(&batch.report)),
        ("scheduled_runs", Json::num(batch.scheduled_runs as f64)),
        ("executed_runs", Json::num(batch.executed_runs as f64)),
        ("stopped_early", Json::Bool(batch.stopped_early)),
        ("cancelled", Json::Bool(batch.cancelled)),
        ("threads", Json::num(batch.threads as f64)),
        ("wall_seconds", Json::Num(batch.wall_seconds)),
    ])
}

/// Serialises a whole [`PortfolioOutcome`].
pub fn portfolio_json(outcome: &PortfolioOutcome) -> Json {
    Json::obj([
        (
            "winner",
            match outcome.winner {
                Some(i) => Json::num(i as f64),
                None => Json::Null,
            },
        ),
        (
            "jobs",
            Json::Arr(
                outcome
                    .results
                    .iter()
                    .map(|r| {
                        let mut obj = match batch_report_json(&r.batch) {
                            Json::Obj(map) => map,
                            _ => unreachable!("batch_report_json returns an object"),
                        };
                        obj.insert("label".into(), Json::str(r.label.clone()));
                        Json::Obj(obj)
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchRunner;
    use cnash_core::{CNashConfig, CNashSolver};
    use cnash_game::games;
    use cnash_game::support_enum::enumerate_equilibria;

    #[test]
    fn batch_report_serialises_to_valid_json() {
        let game = games::battle_of_the_sexes();
        let truth = enumerate_equilibria(&game, 1e-9);
        let solver =
            CNashSolver::new(&game, CNashConfig::ideal(12).with_iterations(1000), 0).unwrap();
        let batch = BatchRunner::new(5, 0).threads(2).evaluate(&solver, &truth);
        let text = batch_report_json(&batch).pretty();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("executed_runs").unwrap().as_usize().unwrap(), 5);
        let report = doc.get("report").unwrap();
        assert_eq!(report.get("solver").unwrap().as_str().unwrap(), "C-Nash");
        assert!(report.get("success_rate_pct").unwrap().as_f64().unwrap() > 0.0);
        assert!(!report.get("hits_truncated").unwrap().as_bool().unwrap());
    }
}
